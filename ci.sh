#!/bin/bash
# Hermetic CI gate: formatting, offline release build, offline test suite.
# Must pass with no network and no registry access — the workspace has no
# external dependencies by policy (see DESIGN.md, "Hermetic builds").
set -e
cd "$(dirname "$0")"

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy --offline -D warnings ==="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "=== cargo doc --offline -D warnings ==="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "=== cargo build --release --offline ==="
cargo build --release --offline

echo "=== cargo test -q --offline ==="
cargo test -q --offline

echo "=== release: differential + parallel + fast-forward + fault equivalence ==="
cargo test -q --release --offline -p fqms-memctrl \
  --test differential --test parallel_equivalence \
  --test fast_forward_equivalence --test fault_differential

echo "=== run_figures.sh --resume: interrupted sweeps resume bit-identically ==="
# Emulate an interrupted sweep deterministically: run a prefix of the
# binary list, then resume with the full list, and compare every output
# against an uninterrupted reference run. Logs are excluded (they carry
# wall-clock timings); the figure TSVs and metrics sidecars must match
# bit for bit.
RESUME_A="$(mktemp -d)"
RESUME_B="$(mktemp -d)"
trap 'rm -rf "$RESUME_A" "$RESUME_B"' EXIT
FQMS_SKIP_CI=1 FQMS_RUNLEN=quick FQMS_RESULTS_DIR="$RESUME_A" \
  FQMS_BINS="tables fig1" ./run_figures.sh > /dev/null
FQMS_SKIP_CI=1 FQMS_RUNLEN=quick FQMS_RESULTS_DIR="$RESUME_A" \
  FQMS_BINS="tables fig1 faults" ./run_figures.sh --resume > "$RESUME_A/resume.out"
grep -q "tables (checkpointed, skipped)" "$RESUME_A/resume.out" || {
  echo "resume check FAILED: completed binary was re-run"; exit 1; }
FQMS_SKIP_CI=1 FQMS_RUNLEN=quick FQMS_RESULTS_DIR="$RESUME_B" \
  FQMS_BINS="tables fig1 faults" ./run_figures.sh > /dev/null
for f in tables fig1 faults; do
  cmp "$RESUME_A/$f.tsv" "$RESUME_B/$f.tsv"
  cmp "$RESUME_A/$f.metrics.tsv" "$RESUME_B/$f.metrics.tsv"
done
echo "resume check OK"

echo "CI OK"
