#!/bin/bash
# Hermetic CI gate: formatting, offline release build, offline test suite.
# Must pass with no network and no registry access — the workspace has no
# external dependencies by policy (see DESIGN.md, "Hermetic builds").
set -e
cd "$(dirname "$0")"

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy --offline -D warnings ==="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "=== cargo build --release --offline ==="
cargo build --release --offline

echo "=== cargo test -q --offline ==="
cargo test -q --offline

echo "=== release: differential + parallel + fast-forward equivalence ==="
cargo test -q --release --offline -p fqms-memctrl --test differential --test parallel_equivalence --test fast_forward_equivalence

echo "CI OK"
