#!/bin/bash
# Hermetic CI gate: formatting, offline release build, offline test suite.
# Must pass with no network and no registry access — the workspace has no
# external dependencies by policy (see DESIGN.md, "Hermetic builds").
set -e
cd "$(dirname "$0")"

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== cargo clippy --offline -D warnings ==="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "=== cargo doc --offline -D warnings ==="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "=== cargo build --release --offline ==="
cargo build --release --offline

echo "=== cargo test -q --offline ==="
cargo test -q --offline

echo "=== release: differential + parallel + fast-forward + fault + scan equivalence ==="
cargo test -q --release --offline -p fqms-memctrl \
  --test differential --test parallel_equivalence \
  --test fast_forward_equivalence --test fault_differential \
  --test checkpoint_differential --test retry_policy \
  --test select_differential --test hierarchy_conservation \
  --test blacklist_properties --test freerun_differential \
  --test rt_wcet --test overload_differential
cargo test -q --release --offline -p fqms-sim --test freerun_properties

echo "=== speedup smoke gate: free-run parallel never slower + >=5x over cycle-by-cycle ==="
# The speedup binary exits nonzero when the free-running parallel engine
# is slower than serial beyond tolerance at any >=4-channel / >=2-thread
# sweep point, when the 64-channel QoS-mix speedup over cycle-by-cycle
# falls below 5x, or when event-driven is ever slower than cycle-by-cycle
# (see crates/bench/src/bin/speedup.rs; tolerances recorded in the JSON).
SPEEDUP_TMP="$(mktemp -d)"
FQMS_RUNLEN=quick FQMS_BENCH_PR3="$SPEEDUP_TMP/BENCH_pr3.json" \
  FQMS_BENCH_PR8="$SPEEDUP_TMP/BENCH_pr8.json" \
  cargo run --release -q --offline -p fqms-bench --bin speedup \
  > "$SPEEDUP_TMP/speedup.tsv" 2> "$SPEEDUP_TMP/speedup.log" || {
  echo "speedup smoke gate FAILED:"; tail -5 "$SPEEDUP_TMP/speedup.log"
  rm -rf "$SPEEDUP_TMP"; exit 1; }
rm -rf "$SPEEDUP_TMP"
echo "speedup smoke gate OK"

echo "=== frontier smoke gate: fairness ordering + conservation ==="
# The frontier binary exits nonzero when FQ-VFTF, SD-VFTF or BLISS shows
# a higher max-slowdown than FR-FCFS on the adversarial mix, or when any
# scheduler violates conservation (see crates/bench/src/bin/frontier.rs).
FRONTIER_TMP="$(mktemp -d)"
FQMS_RUNLEN=quick FQMS_BENCH_PR7="$FRONTIER_TMP/BENCH_pr7.json" \
  cargo run --release -q --offline -p fqms-bench --bin frontier \
  > "$FRONTIER_TMP/frontier.tsv" 2> "$FRONTIER_TMP/frontier.log" || {
  echo "frontier smoke gate FAILED:"; tail -5 "$FRONTIER_TMP/frontier.log"
  rm -rf "$FRONTIER_TMP"; exit 1; }
rm -rf "$FRONTIER_TMP"
echo "frontier smoke gate OK"

echo "=== latency_cdf smoke gate: no WCET violation + conservation ==="
# The latency_cdf binary exits nonzero when any regulated real-time
# completion exceeds its analytic WCET bound (or the controller's own
# violation counter is nonzero), or when any mode violates conservation
# (see crates/bench/src/bin/latency_cdf.rs and DESIGN.md §18).
CDF_TMP="$(mktemp -d)"
FQMS_RUNLEN=quick FQMS_BENCH_PR9="$CDF_TMP/BENCH_pr9.json" \
  cargo run --release -q --offline -p fqms-bench --bin latency_cdf \
  > "$CDF_TMP/latency_cdf.tsv" 2> "$CDF_TMP/latency_cdf.log" || {
  echo "latency_cdf smoke gate FAILED:"; tail -5 "$CDF_TMP/latency_cdf.log"
  rm -rf "$CDF_TMP"; exit 1; }
rm -rf "$CDF_TMP"
echo "latency_cdf smoke gate OK"

echo "=== overload smoke gate: flood tail bounded + conservation + control effective ==="
# The overload binary exits nonzero when the QoS thread's p99 under the
# streaming flood exceeds the tail factor over its unloaded p99 (or is
# worse than the uncontrolled flood) with control on, when any cell
# violates `completed + dropped + rejected + shed + unsubmitted ==
# submitted`, or when a control-on cell never throttled/shed (see
# crates/bench/src/bin/overload.rs and DESIGN.md §19).
OVERLOAD_TMP="$(mktemp -d)"
FQMS_RUNLEN=quick FQMS_BENCH_PR10="$OVERLOAD_TMP/BENCH_pr10.json" \
  cargo run --release -q --offline -p fqms-bench --bin overload \
  > "$OVERLOAD_TMP/overload.tsv" 2> "$OVERLOAD_TMP/overload.log" || {
  echo "overload smoke gate FAILED:"; tail -5 "$OVERLOAD_TMP/overload.log"
  rm -rf "$OVERLOAD_TMP"; exit 1; }
rm -rf "$OVERLOAD_TMP"
echo "overload smoke gate OK"

echo "=== doc consistency: every scheduler + figure bin appears in README ==="
# The README's scheduler family table and figure index drift silently when
# a variant or binary is added; fail the build instead. Variants come from
# the enum itself, bins from run_figures.sh's DEFAULT_BINS.
DOC_FAIL=0
SCHEDULERS="$(sed -n '/^pub enum SchedulerKind/,/^}/p' \
  crates/memctrl/src/policy.rs | grep -oE '^    [A-Z][A-Za-z]+,' | tr -d ' ,')"
[ -n "$SCHEDULERS" ] || { echo "doc check FAILED: no SchedulerKind variants parsed"; exit 1; }
for v in $SCHEDULERS; do
  grep -qw "$v" README.md || {
    echo "doc check FAILED: SchedulerKind::$v missing from README.md"; DOC_FAIL=1; }
done
DOC_BINS="$(sed -n '/^DEFAULT_BINS=/,/"$/p' run_figures.sh \
  | sed -e 's/^DEFAULT_BINS="//' -e 's/\\$//' -e 's/"$//')"
[ -n "$DOC_BINS" ] || { echo "doc check FAILED: no DEFAULT_BINS parsed"; exit 1; }
for b in $DOC_BINS; do
  grep -qw "$b" README.md || {
    echo "doc check FAILED: figure bin '$b' missing from README.md"; DOC_FAIL=1; }
done
# The back-pressure taxonomy is API surface: every Nack variant must be
# documented in the README's overload-control section.
NACKS="$(sed -n '/^pub enum Nack/,/^}/p' crates/memctrl/src/buffers.rs \
  | grep -oE '^    [A-Z][A-Za-z]+' | tr -d ' ')"
[ -n "$NACKS" ] || { echo "doc check FAILED: no Nack variants parsed"; exit 1; }
for n in $NACKS; do
  grep -qw "$n" README.md || {
    echo "doc check FAILED: Nack::$n missing from README.md"; DOC_FAIL=1; }
done
[ "$DOC_FAIL" = "0" ] || exit 1
echo "doc consistency OK"

echo "=== run_figures.sh --resume: interrupted sweeps resume bit-identically ==="
# Emulate an interrupted sweep deterministically: run a prefix of the
# binary list, then resume with the full list, and compare every output
# against an uninterrupted reference run. Logs are excluded (they carry
# wall-clock timings); the figure TSVs and metrics sidecars must match
# bit for bit.
RESUME_A="$(mktemp -d)"
RESUME_B="$(mktemp -d)"
KILLDIR="$(mktemp -d)"
trap 'rm -rf "$RESUME_A" "$RESUME_B" "$KILLDIR"' EXIT
FQMS_SKIP_CI=1 FQMS_RUNLEN=quick FQMS_RESULTS_DIR="$RESUME_A" \
  FQMS_BINS="tables fig1" ./run_figures.sh > /dev/null
FQMS_SKIP_CI=1 FQMS_RUNLEN=quick FQMS_RESULTS_DIR="$RESUME_A" \
  FQMS_BINS="tables fig1 faults" ./run_figures.sh --resume > "$RESUME_A/resume.out"
grep -q "tables (checkpointed, skipped)" "$RESUME_A/resume.out" || {
  echo "resume check FAILED: completed binary was re-run"; exit 1; }
FQMS_SKIP_CI=1 FQMS_RUNLEN=quick FQMS_RESULTS_DIR="$RESUME_B" \
  FQMS_BINS="tables fig1 faults" ./run_figures.sh > /dev/null
for f in tables fig1 faults; do
  cmp "$RESUME_A/$f.tsv" "$RESUME_B/$f.tsv"
  cmp "$RESUME_A/$f.metrics.tsv" "$RESUME_B/$f.metrics.tsv"
done
echo "resume check OK"

echo "=== SIGKILL mid-run + checkpoint resume: bit-identical figures ==="
# Kill a figure binary with SIGKILL once its first checkpoint lands, then
# rerun the identical command: the rerun auto-resumes from the snapshot
# and its outputs (figure TSV and metrics sidecar) must match an
# uninterrupted reference run bit for bit. The binary is invoked directly
# (not via `cargo run`) so the SIGKILL hits the simulator itself.
KR_BIN=./target/release/fig4
KR_ENV="FQMS_RUNLEN=quick FQMS_SEED=42"
env $KR_ENV FQMS_SIDECAR="$KILLDIR/ref.metrics.tsv" \
  "$KR_BIN" > "$KILLDIR/ref.tsv" 2> "$KILLDIR/ref.log"
mkdir -p "$KILLDIR/ckpt"
env $KR_ENV FQMS_SIDECAR="$KILLDIR/int.metrics.tsv" \
  FQMS_CHECKPOINT_DIR="$KILLDIR/ckpt" FQMS_CHECKPOINT_EVERY=5000 \
  "$KR_BIN" > "$KILLDIR/int.tsv" 2> "$KILLDIR/int.log" &
KR_PID=$!
for _ in $(seq 1 500); do
  [ -n "$(ls -A "$KILLDIR/ckpt" 2>/dev/null)" ] && break
  kill -0 "$KR_PID" 2>/dev/null || break
  sleep 0.02
done
if kill -9 "$KR_PID" 2>/dev/null; then
  :
else
  echo "warning: $KR_BIN finished before SIGKILL; resume path not exercised"
fi
wait "$KR_PID" 2>/dev/null || true
env $KR_ENV FQMS_SIDECAR="$KILLDIR/int.metrics.tsv" \
  FQMS_CHECKPOINT_DIR="$KILLDIR/ckpt" FQMS_CHECKPOINT_EVERY=5000 \
  "$KR_BIN" > "$KILLDIR/int.tsv" 2> "$KILLDIR/int.log"
grep -q "resumed from checkpoint" "$KILLDIR/int.log" \
  || echo "warning: rerun found no checkpoint to resume (run too short?)"
cmp "$KILLDIR/ref.tsv" "$KILLDIR/int.tsv" || {
  echo "kill-and-resume check FAILED: figure output diverged"; exit 1; }
cmp "$KILLDIR/ref.metrics.tsv" "$KILLDIR/int.metrics.tsv" || {
  echo "kill-and-resume check FAILED: metrics sidecar diverged"; exit 1; }
echo "kill-and-resume check OK"

echo "CI OK"
