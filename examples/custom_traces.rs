//! Bring your own workload: drive threads with hand-built access
//! patterns, phase mixes, and replayable trace files instead of the
//! shipped statistical profiles.
//!
//! Run with: `cargo run --release --example custom_traces`

use fqms::prelude::*;
use fqms_workloads::patterns::{PhaseMix, PointerChase, RecordedTrace, SequentialStream};
use fqms_workloads::tracefile::{read_trace, write_trace};

fn main() -> Result<(), String> {
    // A phase-structured application: 20k ops of streaming, then 20k ops
    // of pointer chasing, repeating — think of a solver alternating
    // between assembly and traversal phases.
    let phased = PhaseMix::new(
        SequentialStream::new(0, 16 * 1024 * 1024, 6),
        PointerChase::new(0, 16 * 1024 * 1024, 6, 7),
        20_000,
    );

    // An adversarial bank-hammer: every access to the same bank, new rows.
    let mut hammer_rows = 0u64;
    let hammer = move || {
        hammer_rows += 1;
        fqms_cpu::trace::TraceOp {
            work: 2,
            access: Some(fqms_cpu::trace::MemAccess {
                // Stride of one full row (8 banks x 32 lines x 64 B):
                // consecutive references conflict in the same bank pair.
                addr: (1u64 << 30) + hammer_rows * 8 * 32 * 64,
                is_write: false,
                dependent: false,
            }),
        }
    };

    let mut system = SystemBuilder::new()
        .scheduler(SchedulerKind::FqVftf)
        .seed(5)
        .workload_trace("phased", Box::new(phased), 50_000)
        .workload_trace("hammer", Box::new(hammer), 0)
        .build()?;
    let m = system.run(120_000, 40_000_000);
    println!("phase-mix vs bank-hammer under FQ-VFTF:");
    for t in &m.threads {
        println!(
            "  {:8} IPC {:.3}  bus {:4.1}%  row-hit rate {:4.1}%  p95 latency {} cpu-cycles",
            t.name,
            t.ipc,
            100.0 * t.bus_utilization,
            100.0 * t.row_hit_rate,
            t.p95_read_latency
        );
    }

    // Capture a trace, write it to a file, and replay it bit-identically.
    let mut source =
        fqms_workloads::generator::SyntheticTrace::new(by_name("equake").unwrap(), 11, 0)
            .map_err(|e| e.to_string())?;
    let captured = RecordedTrace::capture(&mut source, 200_000);
    let path = std::env::temp_dir().join("fqms-example.trace");
    write_trace(
        std::fs::File::create(&path).map_err(|e| e.to_string())?,
        captured.ops(),
    )
    .map_err(|e| e.to_string())?;
    let replay = read_trace(std::fs::File::open(&path).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    println!();
    println!(
        "captured {} trace ops to {} and loaded them back",
        replay.ops().len(),
        path.display()
    );

    let mut replay_system = SystemBuilder::new()
        .seed(5)
        .workload_trace("equake-replay", Box::new(replay), 0)
        .prewarm(false)
        .build()?;
    let rm = replay_system.run(60_000, 20_000_000);
    println!(
        "replayed equake: IPC {:.3}, bus {:.1}%",
        rm.threads[0].ipc,
        100.0 * rm.threads[0].bus_utilization
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}
