//! The paper's "typical desktop" scenario: a four-core CMP running a
//! heterogeneous mix (the paper's first workload: art, lucas, apsi, ammp),
//! comparing how FR-FCFS and FQ-VFTF divide memory bandwidth and
//! performance among the threads.
//!
//! Run with: `cargo run --release --example four_core_desktop`

use fqms::prelude::*;

fn main() -> Result<(), String> {
    let len = RunLength {
        instructions: 100_000,
        max_dram_cycles: 30_000_000,
    };
    let seed = 11;
    let mix = four_core_workloads()[0];

    // Per-thread QoS baselines: each benchmark alone on a quarter-speed
    // private memory system.
    let baselines: Vec<f64> = mix
        .iter()
        .map(|p| run_private_baseline(*p, 4, len.instructions, len.max_dram_cycles * 4, seed).ipc)
        .collect();

    for scheduler in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        let m = four_core_run(&mix, scheduler, len, seed);
        println!("{scheduler}:");
        for (t, tm) in m.threads.iter().enumerate() {
            let qos = if tm.ipc / baselines[t] >= 1.0 {
                "meets QoS"
            } else {
                "BELOW QoS"
            };
            println!(
                "  {:8} normalized IPC {:5.2}  bus share {:4.1}%  [{qos}]",
                tm.name,
                tm.ipc / baselines[t],
                100.0 * tm.bus_utilization,
            );
        }
        println!(
            "  aggregate: hmean normalized IPC {:.3}, data bus {:.0}% busy",
            m.harmonic_mean_normalized_ipc(&baselines),
            100.0 * m.data_bus_utilization
        );
        println!();
    }
    println!(
        "Under FR-FCFS the most aggressive thread (art) monopolizes the bus and the\n\
         light threads fall below their quarter-machine QoS bound. Under FQ-VFTF every\n\
         thread meets QoS and the bandwidth split is close to uniform."
    );
    Ok(())
}
