//! Overload-control tour: arm the slowdown-feedback admission throttle
//! and the tiered load shedder in front of the scheduler, handle every
//! variant of the typed NACK back-pressure taxonomy at the port, and
//! watch a latency-sensitive thread's tail survive a streaming flood
//! that buries the uncontrolled controller.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example overload
//! ```

use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::engine::{interference_workload, simulate_serial, EngineSpec, RetryPolicy};
use fqms_memctrl::prelude::*;
use fqms_sim::clock::DramCycle;

/// QoS-thread read-latency percentile from a finished report.
fn qos_p99(report: &fqms_memctrl::engine::EngineReport) -> u64 {
    let mut lat: Vec<u64> = report
        .completions
        .iter()
        .flatten()
        .filter(|c| c.thread.as_u32() == 0)
        .map(|c| c.latency())
        .collect();
    lat.sort_unstable();
    if lat.is_empty() {
        0
    } else {
        lat[(lat.len() - 1) * 99 / 100]
    }
}

fn main() -> Result<(), String> {
    // --- The overload knob --------------------------------------------
    // Thread 0 is the protected QoS thread. At every 1000-cycle boundary
    // the controller reclassifies bandwidth hogs from the online
    // slowdown estimator (margin 1.0: under a flood every unprotected
    // thread qualifies) and token-gates them to 8 admissions per period.
    // Independently, a saturation detector over buffer occupancy and
    // buffer-full NACK rate walks Normal -> Degraded -> Shedding with
    // hysteresis, dropping best-effort traffic at the door.
    let overload = OverloadConfig::new(4)
        .throttled(1_000, 8, 1.0)
        .shedding(500, 24, 8, 48, 8)
        .protect(0);

    // --- The flood ----------------------------------------------------
    // Thread 0 reads a small hot footprint at 5% intensity; threads 1-3
    // stream half a request per cycle each — several times the channel's
    // service rate, forever.
    let events = interference_workload(4, 20_000, 0.05, 0.5, 42);

    let mut plain = EngineSpec::paper(1, 4);
    plain.event_capacity = Some(1 << 20);
    plain.retry = RetryPolicy::bounded(1, 1, 8);
    let mut armed = plain.clone();
    armed.config = armed.config.with_overload(overload.clone());

    let uncontrolled = simulate_serial(&plain, &events)?;
    let controlled = simulate_serial(&armed, &events)?;
    println!("QoS p99 under the flood:");
    println!("  no control    : {} cycles", qos_p99(&uncontrolled));
    println!(
        "  throttle+shed : {} cycles ({} throttle refusals, {} shed, {} completed)",
        qos_p99(&controlled),
        controlled
            .per_thread
            .iter()
            .map(|t| t.throttle_nacks)
            .sum::<u64>(),
        controlled.total_shed(),
        controlled.total_completed(),
    );

    // --- Saturation transitions in the event stream -------------------
    // The detector's level changes are first-class observability events,
    // so a monitor can alarm on SaturationEntered in real time.
    if let Some(obs) = &controlled.observations {
        for event in obs.event_streams.iter().flat_map(|ring| ring.iter()) {
            match event {
                Event::SaturationEntered { cycle, level } => {
                    println!("cycle {cycle}: saturation entered level {level}");
                }
                Event::SaturationExited { cycle, level } => {
                    println!("cycle {cycle}: saturation exited to level {level}");
                }
                _ => {}
            }
        }
    }

    // --- Handling the taxonomy at the port ----------------------------
    // Each NACK variant asks the requester for a different reaction:
    // buffer-full is transient (retry when something completes),
    // Throttled carries a provably-futile-before horizon, Shed is
    // terminal. A driver loop dispatches on the variant.
    let cfg = McConfig::paper(2, SchedulerKind::FqVftf)
        .with_overload(OverloadConfig::new(2).throttled(100, 0, 1.0).protect(0));
    let mut mc = MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800())?;
    for c in 1..=100 {
        mc.step(DramCycle::new(c)); // cross the first replenish boundary
    }
    match mc.submit(
        ThreadId::new(1),
        RequestKind::Read,
        0x1000,
        DramCycle::new(101),
    ) {
        Ok(id) => println!("admitted as {id:?}"),
        Err(Nack::TransactionBufferFull | Nack::WriteBufferFull) => {
            println!("buffer full: retry once an in-flight request completes");
        }
        Err(Nack::Throttled { retry_after }) => {
            println!("throttled: retrying before {retry_after} cycles is futile");
        }
        Err(Nack::Shed { class }) => {
            println!("shed ({class:?}): terminal, do not retry");
        }
    }
    // The protected thread passes the same gate untouched.
    let id = mc
        .submit(
            ThreadId::new(0),
            RequestKind::Read,
            0x2000,
            DramCycle::new(101),
        )
        .map_err(|nack| nack.to_string())?;
    println!("protected thread admitted as {id:?}");
    Ok(())
}
