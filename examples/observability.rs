//! Observability tour: attach tracing observers to a two-core system,
//! read the per-thread metric sinks back, replay the raw event stream of
//! the sharded engine, and dump TSV/JSON metric sidecars.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example observability
//! ```

use fqms::prelude::*;
use fqms_memctrl::engine::{simulate_parallel, simulate_serial, synthetic_workload, EngineSpec};
use fqms_memctrl::Event;

fn main() -> Result<(), String> {
    // --- A full system run with observation enabled -------------------
    // `observe_events` attaches one bounded event ring per channel plus
    // per-thread metric sinks. Observation is passive: the run is
    // bit-identical with or without it.
    let mut system = SystemBuilder::new()
        .scheduler(SchedulerKind::FqVftf)
        .seed(42)
        .workload(by_name("vpr").unwrap())
        .workload(by_name("art").unwrap())
        .observe_events(1 << 14)
        .build()?;
    system.run(20_000, 2_000_000);

    let sink = system
        .observed_metrics()
        .expect("observation was enabled at build time");
    println!("== per-thread sinks (vpr + art under FQ-VFTF) ==");
    for (thread, t) in sink.iter() {
        println!(
            "thread {thread}: {} reads (mean latency {:.1}, p95 {}), {} writes, {} NACKs, \
             mean queue depth {:.2}",
            t.reads_completed,
            t.read_latency.mean(),
            t.read_latency.percentile(0.95),
            t.writes_completed,
            t.nacks,
            t.mean_queue_depth(),
        );
    }
    println!(
        "channel: {} commands issued, {} inversion-bound trips",
        sink.commands_issued, sink.inversion_locks
    );

    // --- The same sinks as machine-readable exports -------------------
    println!("\n== TSV sidecar block ==");
    println!("{TSV_HEADER}");
    print!("{}", metrics_tsv("vpr+art", "FQ-VFTF", &sink));
    println!("\n== JSON ==");
    println!("{}", metrics_json("vpr+art", "FQ-VFTF", &sink));

    // --- Raw event streams from the sharded engine --------------------
    // The engine records one stream per channel and merges observations
    // deterministically: serial and parallel runs agree bit-for-bit.
    let mut spec = EngineSpec::paper(2, 4);
    spec.event_capacity = Some(1 << 16);
    let events = synthetic_workload(4, 2_000, 0.5, 7);
    let serial = simulate_serial(&spec, &events)?;
    let parallel = simulate_parallel(&spec, &events, 4)?;
    assert_eq!(serial, parallel, "observed runs are bit-identical");

    let obs = serial.observations.expect("event_capacity was set");
    println!("\n== engine event streams (2 channels) ==");
    for (ch, stream) in obs.event_streams.iter().enumerate() {
        let locks = stream
            .iter()
            .filter(|e| matches!(e, Event::InversionLock { .. }))
            .count();
        println!(
            "channel {ch}: {} events recorded ({} retained), {locks} inversion locks",
            stream.total_recorded(),
            stream.len(),
        );
        for event in stream.iter().take(3) {
            println!("  {event:?}");
        }
    }
    Ok(())
}
