//! Real-time mode tour: partition the banks, arm per-thread token-bucket
//! regulators, compute the analytic WCET bound, and watch it hold while
//! unregulated FR-FCFS lets bank-camping aggressors starve the same
//! victim. Ends with the mode's determinism guarantee: a regulated run
//! replays bit-identically.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example realtime_mode
//! ```

use fqms_dram::device::Geometry;
use fqms_memctrl::engine::{adversarial_workload, simulate_serial, EngineSpec};
use fqms_memctrl::prelude::*;
use fqms_memctrl::wcet::breakdown_for;

fn main() -> Result<(), String> {
    // The adversarial mix from the fault-injection tour: thread 0 issues
    // sparse reads to a cold row while three aggressors chain row hits
    // on its banks at 90% intensity.
    let events = adversarial_workload(&Geometry::paper(), 4, 20_000, 2006);

    // --- The regulation knob ------------------------------------------
    // One real-time class (thread 0) with 96 services per 2000-cycle
    // period, three best-effort classes, private bank partitions. The
    // knob is orthogonal to the scheduler: FQ-VFTF still arbitrates
    // inside each tier.
    let reg = RegulationConfig::new(2_000)
        .rt_class(96, None)
        .best_effort()
        .best_effort()
        .best_effort();

    // --- The analytic bound -------------------------------------------
    // Closed-form, from Table 6 timing + partition geometry + budgets;
    // no simulation involved. `breakdown_for` exposes each term of the
    // fixed point (DESIGN.md §18).
    let mut spec = EngineSpec::paper(1, 4);
    spec.event_capacity = Some(1 << 18);
    let breakdown = breakdown_for(&spec.timing, &spec.geometry, &reg, 0, 0)
        .expect("one RT class over paper geometry is schedulable");
    let bound = breakdown.total();
    println!("analytic WCET bound for thread 0: {bound} cycles");
    println!(
        "  own service {} + RT interference {} + refresh {} + regulator delay {}",
        breakdown.own_service,
        breakdown.rt_interference,
        breakdown.refresh,
        breakdown.regulator_delay,
    );

    // Attach the bound so the controller itself counts violations
    // (`BoundExceeded` events -> `metrics.bound_violations`).
    let mut reg = reg;
    reg.classes[0].wcet = Some(bound);
    spec.config = spec.config.with_regulation(reg);

    // --- Regulated vs. unregulated FR-FCFS ----------------------------
    let mut fr = EngineSpec::paper(1, 4);
    fr.event_capacity = Some(1 << 18);
    fr.config.scheduler = SchedulerKind::FrFcfs;

    let regulated = simulate_serial(&spec, &events)?;
    let frfcfs = simulate_serial(&fr, &events)?;
    let victim_max = |r: &fqms_memctrl::engine::EngineReport| {
        r.completions
            .iter()
            .flatten()
            .filter(|c| c.thread.as_u32() == 0)
            .map(|c| c.latency())
            .max()
            .unwrap_or(0)
    };
    let (reg_max, fr_max) = (victim_max(&regulated), victim_max(&frfcfs));
    println!("\nvictim worst-case latency under bank camping:");
    println!("  FR-FCFS (unregulated): {fr_max} cycles");
    println!("  regulated FQ-VFTF:     {reg_max} cycles (bound {bound})");
    assert!(
        reg_max <= bound,
        "empirical latency inside the analytic bound"
    );
    let metrics = &regulated.observations.as_ref().unwrap().metrics;
    assert_eq!(
        metrics.bound_violations, 0,
        "controller agrees: zero violations"
    );

    // --- Determinism --------------------------------------------------
    // Regulation state (buckets, replenish boundaries, partitions) is
    // part of the deterministic core: a regulated run replays
    // bit-identically, and checkpoints carry the regulator state.
    assert_eq!(regulated, simulate_serial(&spec, &events)?);
    println!("\nregulated run replays bit-identically; zero bound violations");
    Ok(())
}
