//! Fault-injection tour: arm a deterministic fault plan against the
//! sharded engine, watch FQ-VFTF degrade gracefully where FR-FCFS
//! starves, and verify the two properties the fault subsystem promises:
//! an empty plan is bit-identical to no plan, and a seeded plan replays
//! bit-identically run after run.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example fault_injection
//! ```

use fqms_dram::device::Geometry;
use fqms_memctrl::engine::{adversarial_workload, simulate_serial, EngineSpec, RetryPolicy};
use fqms_memctrl::prelude::*;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};

/// Starvation watchdog threshold (DRAM cycles). Calibrated against the
/// adversarial mix: above FQ-VFTF's worst-case victim latency, below
/// FR-FCFS's starvation episodes.
const WATCHDOG: u64 = 300;

fn spec(sched: SchedulerKind) -> EngineSpec {
    let mut spec = EngineSpec::paper(1, 3);
    spec.config.scheduler = sched;
    spec.config.starvation_threshold = Some(WATCHDOG);
    spec.event_capacity = Some(1 << 18);
    spec
}

fn main() -> Result<(), String> {
    // The adversarial mix: thread 0 issues sparse reads to a cold row
    // while two aggressors chain row hits on the same banks.
    let events = adversarial_workload(&Geometry::paper(), 3, 20_000, 2006);

    // --- Property 1: disabled faults are invisible --------------------
    // `None` and an explicitly empty plan must be bit-identical: the
    // injector pre-compiles its whole episode timeline from the plan's
    // own seeded RNG, and an empty plan draws nothing at all.
    let clean = simulate_serial(&spec(SchedulerKind::FqVftf), &events)?;
    let mut with_empty = spec(SchedulerKind::FqVftf);
    with_empty.fault_plan = Some(FaultPlan::none());
    assert_eq!(clean, simulate_serial(&with_empty, &events)?);
    println!("empty fault plan: bit-identical to a fault-free run");

    // --- A plan arming every fault class ------------------------------
    // Rates and windows are per-spec; the plan is seeded, so the same
    // plan yields the same episodes on every machine, every run.
    let plan = FaultPlan::new(31)
        .with(
            FaultKind::NackStorm,
            FaultWindow::new(2_000, 14_000),
            0.002,
            150,
        )
        .with(
            FaultKind::BankStall,
            FaultWindow::new(2_000, 14_000),
            0.001,
            100,
        )
        .with(
            FaultKind::RefreshPressure,
            FaultWindow::new(2_000, 14_000),
            0.001,
            60,
        )
        .with(
            FaultKind::RequestDrop,
            FaultWindow::new(2_000, 14_000),
            0.001,
            1,
        );

    println!("\n== adversarial mix under faults (watchdog at {WATCHDOG} cycles) ==");
    for sched in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        let mut s = spec(sched);
        s.fault_plan = Some(plan.clone());
        // Bounded retry keeps a NACK storm from wedging the submission
        // port forever: after 16 rejections the head is abandoned into
        // `report.rejected` instead of blocking the schedule.
        s.retry = RetryPolicy::bounded(16, 2, 64);
        let report = simulate_serial(&s, &events)?;

        // --- Property 2: seeded faults replay bit-identically ---------
        assert_eq!(report, simulate_serial(&s, &events)?);

        let obs = report
            .observations
            .as_ref()
            .expect("event_capacity was set");
        let victim = &report.per_thread[0];
        let dropped: u64 = report.per_thread.iter().map(|t| t.requests_dropped).sum();
        let rejected: usize = report.rejected.iter().map(Vec::len).sum();
        println!(
            "{}: {} faults injected, victim mean read latency {:.0} (max {}), \
             watchdog trips {}, {} dropped, {} abandoned",
            sched.name(),
            obs.metrics.faults_injected,
            obs.metrics.thread(0).read_latency.mean(),
            obs.metrics.thread(0).read_latency.max(),
            victim.starvations,
            dropped,
            rejected,
        );
        // Nothing is lost, only accounted: every submission completed,
        // was dropped by a fault, or was abandoned by bounded retry.
        assert_eq!(
            report.total_completed() as u64 + dropped + rejected as u64,
            events.len() as u64,
        );
    }
    println!(
        "\nFQ-VFTF's victim stays inside its QoS bound (watchdog dark); FR-FCFS \
         keeps starving it — surfaced as StarvationDetected events, never a hang."
    );
    Ok(())
}
