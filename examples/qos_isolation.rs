//! Performance isolation demo (the paper's Figure 1 scenario).
//!
//! Runs `vpr` alone, with a polite partner (`crafty`), and with an
//! aggressive one (`art`), under FR-FCFS — showing how an unmanaged shared
//! memory system lets a co-runner destroy a thread's performance — and
//! then shows the FQ scheduler undoing the damage.
//!
//! Run with: `cargo run --release --example qos_isolation`

use fqms::prelude::*;

const INSTRUCTIONS: u64 = 100_000;
const MAX_CYCLES: u64 = 30_000_000;
const SEED: u64 = 7;

fn report(label: &str, ipc: f64, latency: f64, solo_ipc: f64) {
    println!(
        "{label:30} IPC {ipc:.3}  ({:5.1}% of solo)  avg read latency {latency:6.0} cpu-cycles",
        100.0 * ipc / solo_ipc
    );
}

fn main() -> Result<(), String> {
    let vpr = by_name("vpr").unwrap();

    let solo = run_solo(vpr, INSTRUCTIONS, MAX_CYCLES, SEED);
    report("vpr alone", solo.ipc, solo.avg_read_latency, solo.ipc);

    for (partner, label) in [
        ("crafty", "vpr + crafty (FR-FCFS)"),
        ("art", "vpr + art (FR-FCFS)"),
    ] {
        let m = two_core_run(
            vpr,
            by_name(partner).unwrap(),
            SchedulerKind::FrFcfs,
            RunLength {
                instructions: INSTRUCTIONS,
                max_dram_cycles: MAX_CYCLES,
            },
            SEED,
        );
        report(
            label,
            m.threads[0].ipc,
            m.threads[0].avg_read_latency,
            solo.ipc,
        );
    }

    // The fix: the Fair Queuing scheduler isolates vpr from art.
    let m = two_core_run(
        vpr,
        by_name("art").unwrap(),
        SchedulerKind::FqVftf,
        RunLength {
            instructions: INSTRUCTIONS,
            max_dram_cycles: MAX_CYCLES,
        },
        SEED,
    );
    report(
        "vpr + art (FQ-VFTF)",
        m.threads[0].ipc,
        m.threads[0].avg_read_latency,
        solo.ipc,
    );
    println!();
    println!(
        "A polite partner leaves vpr untouched; an aggressive one cripples it under\n\
         FR-FCFS. The FQ scheduler restores vpr close to its half-machine QoS bound\n\
         (which is below solo performance by design: vpr now owns half the memory)."
    );
    Ok(())
}
