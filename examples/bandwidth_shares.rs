//! Asymmetric bandwidth allocation: the FQ scheduler accepts *arbitrary*
//! per-thread shares, not just equal splits — the capability the paper
//! points at for OS/VMM-controlled differentiated service.
//!
//! Two identical copies of the same aggressive workload are co-scheduled;
//! one is allocated 3/4 of the memory system and the other 1/4. Under
//! FQ-VFTF their achieved bandwidth (and IPC) should track the shares;
//! FR-FCFS, which has no notion of shares, splits evenly.
//!
//! Run with: `cargo run --release --example bandwidth_shares`

use fqms::prelude::*;

fn main() -> Result<(), String> {
    let swim = by_name("swim").unwrap();
    for (scheduler, label) in [
        (SchedulerKind::FrFcfs, "FR-FCFS (share-oblivious)"),
        (SchedulerKind::FqVftf, "FQ-VFTF (phi = 0.75 / 0.25)"),
    ] {
        let mut system = SystemBuilder::new()
            .scheduler(scheduler)
            .shares(vec![0.75, 0.25])
            .seed(21)
            .workload(swim)
            .workload(swim)
            .build()?;
        let m = system.run(150_000, 40_000_000);
        println!("{label}:");
        for (i, t) in m.threads.iter().enumerate() {
            println!(
                "  thread {i} (phi {:.2}): IPC {:.3}, bus share {:4.1}%",
                if i == 0 { 0.75 } else { 0.25 },
                t.ipc,
                100.0 * t.bus_utilization
            );
        }
        let ratio = m.threads[0].bus_utilization / m.threads[1].bus_utilization;
        println!("  bandwidth ratio thread0/thread1: {ratio:.2} (allocation asks for 3.0)");
        println!();
    }
    Ok(())
}
