//! Quickstart: build a two-core CMP, co-schedule a latency-sensitive
//! workload with a bandwidth hog, and compare FR-FCFS against the Fair
//! Queuing scheduler.
//!
//! Run with: `cargo run --release --example quickstart`

use fqms::prelude::*;

fn main() -> Result<(), String> {
    // Pick two workloads with opposite memory behaviour.
    let vpr = by_name("vpr").expect("vpr is one of the 20 shipped profiles");
    let art = by_name("art").expect("art is one of the 20 shipped profiles");

    // The QoS yardstick: vpr alone on a private memory system running at
    // half speed (its "fair half" of the shared memory system).
    let baseline = run_private_baseline(vpr, 2, 100_000, 20_000_000, 42);
    println!(
        "vpr on a half-speed private memory: IPC {:.3}",
        baseline.ipc
    );

    for scheduler in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        let mut system = SystemBuilder::new()
            .scheduler(scheduler)
            .seed(42)
            .workload(vpr)
            .workload(art)
            .build()?;
        let metrics = system.run(100_000, 20_000_000);
        let vpr_m = &metrics.threads[0];
        println!(
            "{scheduler:8}: vpr IPC {:.3} (normalized {:.2}), read latency {:.0} cpu-cycles, \
             bus {:.0}% (vpr {:.0}% / art {:.0}%)",
            vpr_m.ipc,
            vpr_m.ipc / baseline.ipc,
            vpr_m.avg_read_latency,
            100.0 * metrics.data_bus_utilization,
            100.0 * vpr_m.bus_utilization,
            100.0 * metrics.threads[1].bus_utilization,
        );
    }
    println!();
    println!("FR-FCFS lets art starve vpr well below its QoS baseline;");
    println!("FQ-VFTF restores vpr to (at least) its half-machine performance.");
    Ok(())
}
