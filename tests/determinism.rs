//! Reproducibility: identical configurations and seeds must produce
//! bit-identical results; different seeds must actually vary the runs.

use fqms::prelude::*;

const LEN: RunLength = RunLength::quick();

fn run_mix(scheduler: SchedulerKind, seed: u64) -> SystemMetrics {
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workload(by_name("art").unwrap())
        .workload(by_name("equake").unwrap())
        .workload(by_name("vpr").unwrap())
        .build()
        .unwrap();
    sys.run(LEN.instructions, LEN.max_dram_cycles)
}

#[test]
fn identical_seeds_are_bit_identical() {
    for sched in SchedulerKind::all() {
        let a = run_mix(sched, 1234);
        let b = run_mix(sched, 1234);
        assert_eq!(a, b, "{sched} diverged across identical runs");
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_mix(SchedulerKind::FqVftf, 1);
    let b = run_mix(SchedulerKind::FqVftf, 2);
    assert_ne!(
        a.threads[0].cpu_cycles, b.threads[0].cpu_cycles,
        "different seeds should perturb the run"
    );
}

#[test]
fn different_schedulers_differ() {
    let a = run_mix(SchedulerKind::FrFcfs, 7);
    let b = run_mix(SchedulerKind::FqVftf, 7);
    assert_ne!(a, b, "schedulers should not produce identical runs");
}

#[test]
fn baseline_runs_are_deterministic() {
    let p = by_name("mcf").unwrap();
    let a = run_private_baseline(p, 2, LEN.instructions, LEN.max_dram_cycles * 2, 5);
    let b = run_private_baseline(p, 2, LEN.instructions, LEN.max_dram_cycles * 2, 5);
    assert_eq!(a, b);
}
