//! Reproducibility: identical configurations and seeds must produce
//! bit-identical results; different seeds must actually vary the runs.
//!
//! Triage note (observability PR): this suite was audited when observers
//! were threaded through the controller — all cases pass against the
//! seed, so nothing is quarantined. The observed-run case below uses the
//! [`SystemBuilder::observe_events`] knob, *not* `FQMS_SIDECAR`: tests
//! run concurrently in one process, so mutating the environment here
//! would race with every other test reading it.

use fqms::prelude::*;

const LEN: RunLength = RunLength::quick();

fn run_mix(scheduler: SchedulerKind, seed: u64) -> SystemMetrics {
    build_mix(scheduler, seed, None).run(LEN.instructions, LEN.max_dram_cycles)
}

fn build_mix(scheduler: SchedulerKind, seed: u64, observe: Option<usize>) -> System {
    let b = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workload(by_name("art").unwrap())
        .workload(by_name("equake").unwrap())
        .workload(by_name("vpr").unwrap());
    let b = match observe {
        Some(cap) => b.observe_events(cap),
        None => b,
    };
    b.build().unwrap()
}

#[test]
fn identical_seeds_are_bit_identical() {
    for sched in SchedulerKind::all() {
        let a = run_mix(sched, 1234);
        let b = run_mix(sched, 1234);
        assert_eq!(a, b, "{sched} diverged across identical runs");
    }
}

#[test]
fn observed_runs_are_deterministic_and_passive() {
    // Bit-identical metric sinks across identical observed runs, and
    // bit-identical system metrics with observation on or off.
    let observed = |()| {
        let mut sys = build_mix(SchedulerKind::FqVftf, 1234, Some(1 << 14));
        let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
        (m, sys.observed_metrics().unwrap())
    };
    let (m1, sink1) = observed(());
    let (m2, sink2) = observed(());
    assert_eq!(m1, m2, "observed runs diverged");
    assert_eq!(sink1, sink2, "metric sinks diverged across identical runs");
    assert_eq!(
        m1,
        run_mix(SchedulerKind::FqVftf, 1234),
        "observation perturbed the simulation"
    );
}

#[test]
fn different_seeds_differ() {
    let a = run_mix(SchedulerKind::FqVftf, 1);
    let b = run_mix(SchedulerKind::FqVftf, 2);
    assert_ne!(
        a.threads[0].cpu_cycles, b.threads[0].cpu_cycles,
        "different seeds should perturb the run"
    );
}

#[test]
fn different_schedulers_differ() {
    let a = run_mix(SchedulerKind::FrFcfs, 7);
    let b = run_mix(SchedulerKind::FqVftf, 7);
    assert_ne!(a, b, "schedulers should not produce identical runs");
}

#[test]
fn baseline_runs_are_deterministic() {
    let p = by_name("mcf").unwrap();
    let a = run_private_baseline(p, 2, LEN.instructions, LEN.max_dram_cycles * 2, 5);
    let b = run_private_baseline(p, 2, LEN.instructions, LEN.max_dram_cycles * 2, 5);
    assert_eq!(a, b);
}
