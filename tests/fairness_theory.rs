//! GPS service-lag bounds, measured end to end (the theory behind the
//! paper's QoS claim): under FQ-VFTF every backlogged thread's data-bus
//! service stays within a bounded lag of its `phi`-entitlement; FR-FCFS
//! has no such bound when shares are unequal (it is share-oblivious).

use fqms::prelude::*;
use fqms_memctrl::request::ThreadId;

/// Runs two always-backlogged copies of `swim` with the given shares and
/// scheduler, sampling cumulative per-thread bus service every 64 DRAM
/// cycles. Returns the worst lag observed for each thread (bus cycles).
fn measure_lag(scheduler: SchedulerKind, shares: Vec<f64>, cycles: u64) -> Vec<f64> {
    let swim = by_name("swim").unwrap();
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .shares(shares.clone())
        .seed(97)
        .workload(swim)
        .workload(swim)
        .build()
        .unwrap();
    let mut tracker = ServiceLagTracker::new(shares).unwrap();
    // Let the system fill its buffers before measuring.
    for _ in 0..5_000 {
        sys.step();
    }
    let base: Vec<u64> = (0..2)
        .map(|i| {
            sys.controller()
                .thread_stats(ThreadId::new(i))
                .bus_busy_cycles
        })
        .collect();
    for k in 0..cycles {
        sys.step();
        if k % 64 == 0 {
            let sample: Vec<u64> = (0..2)
                .map(|i| {
                    sys.controller()
                        .thread_stats(ThreadId::new(i))
                        .bus_busy_cycles
                        - base[i as usize]
                })
                .collect();
            tracker.observe(&sample);
        }
    }
    (0..2).map(|i| tracker.worst_lag(i)).collect()
}

#[test]
fn fq_vftf_lag_is_bounded_with_equal_shares() {
    let lag = measure_lag(SchedulerKind::FqVftf, vec![0.5, 0.5], 60_000);
    for (i, l) in lag.iter().enumerate() {
        assert!(
            *l > -2_000.0,
            "thread {i} fell {l} bus-cycles behind its GPS entitlement"
        );
    }
}

#[test]
fn fq_vftf_lag_is_bounded_with_asymmetric_shares() {
    let lag = measure_lag(SchedulerKind::FqVftf, vec![0.75, 0.25], 60_000);
    assert!(
        lag[0] > -4_000.0,
        "the 3/4-share thread fell {} bus-cycles behind",
        lag[0]
    );
}

#[test]
fn fr_fcfs_lag_grows_without_bound_for_the_large_share() {
    // FR-FCFS ignores shares: with identical demands it converges to an
    // even split, so the 0.75-entitled thread falls behind linearly. Its
    // lag after T cycles of ~full-bus service is ~(0.5 - 0.75) * T.
    let short = measure_lag(SchedulerKind::FrFcfs, vec![0.75, 0.25], 30_000);
    let long = measure_lag(SchedulerKind::FrFcfs, vec![0.75, 0.25], 90_000);
    assert!(
        long[0] < 2.0 * short[0],
        "FR-FCFS lag should grow with time: {} -> {}",
        short[0],
        long[0]
    );
    assert!(long[0] < -4_000.0, "lag was only {}", long[0]);
}

#[test]
fn fq_lag_bound_is_independent_of_run_length() {
    // The QoS property: the worst-case lag stays below a fixed constant
    // (a few requests' worth of service) no matter how long the run is —
    // in contrast to FR-FCFS's linear divergence above. Short-window
    // excursions wander by a burst or two; they must not scale with T.
    let long = measure_lag(SchedulerKind::FqVftf, vec![0.5, 0.5], 120_000);
    for (i, l) in long.iter().enumerate() {
        assert!(
            *l > -2_000.0,
            "thread {i} lag {l} over a long run: bound is not constant"
        );
    }
}
