//! End-to-end observability tests: the metrics sidecar pipeline from a
//! full System run down to the machine-readable TSV file, and the
//! contract between `run_figures.sh` and `fqms_obs::TSV_HEADER`.
//!
//! Like `determinism.rs`, these tests drive the export path through
//! explicit file paths and the [`SystemBuilder::observe_events`] knob
//! rather than by mutating `FQMS_SIDECAR` (environment mutation races
//! across concurrently running tests).

use fqms::prelude::*;
use fqms::sidecar;
use std::path::PathBuf;

const LEN: RunLength = RunLength::quick();

fn observed_system(seed: u64) -> System {
    SystemBuilder::new()
        .scheduler(SchedulerKind::FqVftf)
        .seed(seed)
        .workload(by_name("art").unwrap())
        .workload(by_name("vpr").unwrap())
        .observe_events(1 << 14)
        .build()
        .unwrap()
}

#[test]
fn sidecar_file_is_machine_readable() {
    let mut sys = observed_system(42);
    sys.run(LEN.instructions, LEN.max_dram_cycles);
    let sink = sys.observed_metrics().unwrap();

    let path = std::env::temp_dir().join(format!("fqms-obs-e2e-{}.tsv", std::process::id()));
    sidecar::append_block(&path, "art+vpr", "FQ-VFTF", &sink).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let mut lines = text.lines();
    let header = lines.next().unwrap();
    assert_eq!(header, TSV_HEADER);
    let cols = header.split('\t').count();
    let mut rows = 0;
    for row in lines {
        rows += 1;
        let fields: Vec<&str> = row.split('\t').collect();
        assert!(
            fields.len() >= cols,
            "row has {} of {cols} columns: {row}",
            fields.len()
        );
        assert!(fields[0] == "art+vpr" && fields[1] == "FQ-VFTF");
        // Count and latency columns must parse as numbers.
        for field in &fields[3..7] {
            field.parse::<u64>().unwrap();
        }
        fields[7].parse::<f64>().unwrap();
    }
    // One row per thread plus the "all" summary row.
    assert_eq!(rows, 3);
    // The QoS-relevant signals actually flowed: reads were observed and
    // the latency histogram is non-empty.
    assert!(text.lines().nth(1).unwrap().split('\t').nth(3).unwrap() != "0");
    assert!(!text.ends_with("\t-\n"));
}

#[test]
fn json_export_matches_tsv_counts() {
    let mut sys = observed_system(7);
    sys.run(LEN.instructions, LEN.max_dram_cycles);
    let sink = sys.observed_metrics().unwrap();
    let json = metrics_json("art+vpr", "FQ-VFTF", &sink);
    let total: u64 = (0..2).map(|t| sink.thread(t).reads_completed).sum();
    assert!(json.contains(&format!("\"commands_issued\":{}", sink.commands_issued)));
    assert!(total > 0);
    // Both exporters describe the same sink: every per-thread read count
    // in the TSV appears in the JSON.
    let tsv = metrics_tsv("art+vpr", "FQ-VFTF", &sink);
    for (t, row) in tsv.lines().take(2).enumerate() {
        let reads = row.split('\t').nth(3).unwrap();
        assert!(
            json.contains(&format!("\"thread\":{t},\"reads\":{reads}")),
            "thread {t} reads {reads} missing from JSON"
        );
    }
}

#[test]
fn run_figures_fallback_header_matches_library() {
    // run_figures.sh writes a header-only sidecar for figure binaries
    // that simulate no system; its hardcoded printf must stay in sync
    // with fqms_obs::TSV_HEADER.
    let script = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../run_figures.sh");
    let script = std::fs::read_to_string(script).unwrap();
    let escaped = TSV_HEADER.replace('\t', "\\t");
    assert!(
        script.contains(&escaped),
        "run_figures.sh sidecar header drifted from fqms_obs::TSV_HEADER"
    );
}
