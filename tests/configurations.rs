//! Configuration-space integration tests: multi-rank geometries, custom
//! trace sources, alternate row policies and VFT bindings, and clock-ratio
//! variations — every axis the builder exposes must produce a working
//! system.

use fqms::prelude::*;
use fqms_cpu::trace::TraceSource;
use fqms_dram::device::Geometry;
use fqms_workloads::patterns::{PointerChase, RecordedTrace, SequentialStream};

const LEN: RunLength = RunLength::quick();
const SEED: u64 = 47;

#[test]
fn two_rank_geometry_runs_end_to_end() {
    let geo = Geometry {
        ranks: 2,
        banks: 8,
        rows: 8192,
        cols: 32,
    };
    let mut sys = SystemBuilder::new()
        .scheduler(SchedulerKind::FqVftf)
        .geometry(geo)
        .seed(SEED)
        .workload(by_name("swim").unwrap())
        .workload(by_name("art").unwrap())
        .build()
        .unwrap();
    let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
    assert!(m.threads.iter().all(|t| t.instructions >= LEN.instructions));
    assert!(m.data_bus_utilization > 0.3);
}

#[test]
fn more_banks_reduce_conflict_pressure() {
    // mcf is bank-conflict-heavy; a 16-bank device should serve it at
    // least as well as an 8-bank one.
    let run_with = |banks: u32| {
        let mut sys = SystemBuilder::new()
            .geometry(Geometry {
                ranks: 1,
                banks,
                rows: 16_384,
                cols: 32,
            })
            .seed(SEED)
            .workload(by_name("mcf").unwrap())
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles).threads[0].ipc
    };
    let narrow = run_with(4);
    let wide = run_with(16);
    assert!(
        wide > narrow * 0.98,
        "16 banks ({wide:.4}) should not lose to 4 banks ({narrow:.4})"
    );
}

#[test]
fn custom_trace_sources_drive_threads() {
    let stream = SequentialStream::new(0, 8 * 1024 * 1024, 4);
    let chase = PointerChase::new(1 << 30, 8 * 1024 * 1024, 4, SEED);
    let mut sys = SystemBuilder::new()
        .scheduler(SchedulerKind::FqVftf)
        .seed(SEED)
        .workload_trace("stream", Box::new(stream), 10_000)
        .workload_trace("chase", Box::new(chase), 10_000)
        .build()
        .unwrap();
    let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
    assert_eq!(m.threads[0].name, "stream");
    assert_eq!(m.threads[1].name, "chase");
    // The independent stream must achieve much higher IPC than the chase.
    assert!(
        m.threads[0].ipc > 2.0 * m.threads[1].ipc,
        "stream {} vs chase {}",
        m.threads[0].ipc,
        m.threads[1].ipc
    );
}

#[test]
fn recorded_trace_reproduces_generator_run() {
    // Capturing a generator and replaying it must give identical results
    // to the generator itself over the same window.
    let profile = by_name("equake").unwrap();
    let capture = {
        let mut gen =
            fqms_workloads::generator::SyntheticTrace::for_thread(profile, SEED, 0).unwrap();
        RecordedTrace::capture(&mut gen, 400_000)
    };
    let run_gen = || {
        let mut sys = SystemBuilder::new()
            .seed(SEED)
            .workload(profile)
            .prewarm(false)
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles)
    };
    let run_rec = |rec: RecordedTrace| {
        let mut sys = SystemBuilder::new()
            .seed(SEED)
            .workload_trace(profile.name, Box::new(rec), 0)
            .prewarm(false)
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles)
    };
    let a = run_gen();
    let b = run_rec(capture);
    assert_eq!(a.threads[0].cpu_cycles, b.threads[0].cpu_cycles);
    assert_eq!(a.threads[0].instructions, b.threads[0].instructions);
}

#[test]
fn open_row_policy_runs_and_differs() {
    let run_with = |policy| {
        let mut sys = SystemBuilder::new()
            .row_policy(policy)
            .seed(SEED)
            .workload(by_name("mgrid").unwrap())
            .workload(by_name("mcf").unwrap())
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles)
    };
    let closed = run_with(RowPolicy::Closed);
    let open = run_with(RowPolicy::Open);
    assert_ne!(closed, open, "row policy should alter behaviour");
    // Open rows keep banks busy far longer.
    assert!(open.bank_utilization > closed.bank_utilization);
}

#[test]
fn at_arrival_vft_binding_still_provides_isolation() {
    // The paper's "first solution" is coarser but must still keep QoS in
    // the ballpark for a moderate subject.
    let subject = by_name("gap").unwrap();
    let art = by_name("art").unwrap();
    let base = run_private_baseline(subject, 2, LEN.instructions, LEN.max_dram_cycles * 2, SEED);
    let mut sys = SystemBuilder::new()
        .scheduler(SchedulerKind::FqVftf)
        .vft_binding(VftBinding::AtArrival)
        .seed(SEED)
        .workload(subject)
        .workload(art)
        .build()
        .unwrap();
    let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
    assert!(
        m.threads[0].ipc / base.ipc > 0.85,
        "at-arrival binding lost isolation: {:.3}",
        m.threads[0].ipc / base.ipc
    );
}

#[test]
fn cpu_ratio_scales_relative_memory_cost() {
    // A faster CPU clock (higher ratio) makes memory relatively more
    // expensive: IPC in CPU terms must drop for a memory-bound thread.
    let run_with = |ratio: u64| {
        let mut sys = SystemBuilder::new()
            .cpu_ratio(ratio)
            .seed(SEED)
            .workload(by_name("lucas").unwrap())
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles).threads[0].ipc
    };
    let slow_cpu = run_with(2);
    let fast_cpu = run_with(10);
    assert!(
        fast_cpu < slow_cpu,
        "ratio 10 IPC {fast_cpu:.3} should be below ratio 2 IPC {slow_cpu:.3}"
    );
}

#[test]
fn closure_trace_sources_work() {
    // The blanket FnMut impl of TraceSource composes with the builder.
    let mut line = 0u64;
    let trace = move || {
        line += 1;
        fqms_cpu::trace::TraceOp {
            work: 10,
            access: Some(fqms_cpu::trace::MemAccess {
                addr: (line % 1024) * 64,
                is_write: false,
                dependent: false,
            }),
        }
    };
    let boxed: Box<dyn TraceSource> = Box::new(trace);
    let mut sys = SystemBuilder::new()
        .seed(SEED)
        .workload_trace("closure", boxed, 0)
        .build()
        .unwrap();
    let m = sys.run(5_000, 1_000_000);
    assert!(m.threads[0].instructions >= 5_000);
}

#[test]
fn prefetch_bandwidth_is_charged_to_the_issuing_thread() {
    // A prefetching streamer shares with vpr under FQ-VFTF: the
    // prefetcher's extra traffic counts against its own share, so vpr's
    // QoS must be unaffected.
    let vpr = by_name("vpr").unwrap();
    let swim = by_name("swim").unwrap();
    let base = run_private_baseline(vpr, 2, LEN.instructions, LEN.max_dram_cycles * 2, SEED);
    let mut cfg = fqms_cpu::core::CoreConfig::paper();
    cfg.prefetch_degree = 4;
    let mut sys = SystemBuilder::new()
        .scheduler(SchedulerKind::FqVftf)
        .core_config(cfg)
        .seed(SEED)
        .workload(vpr)
        .workload(swim)
        .build()
        .unwrap();
    let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
    let norm = m.threads[0].ipc / base.ipc;
    assert!(
        norm >= 0.9,
        "vpr lost QoS to a prefetching neighbour: {norm:.3}"
    );
}

#[test]
fn shared_buffer_pool_degrades_qos() {
    // The paper's static partitions vs the shared-pool future-work
    // ablation: three aggressors oversubscribe a shared pool, NACK-starving
    // the subject at admission. Deterministic seed, so strict comparison.
    let subject = by_name("twolf").unwrap();
    let art = by_name("art").unwrap();
    let run_with = |sharing| {
        let mut sys = SystemBuilder::new()
            .scheduler(SchedulerKind::FqVftf)
            .buffer_sharing(sharing)
            .seed(SEED)
            .workload(subject)
            .workload(art)
            .workload(art)
            .workload(art)
            .build()
            .unwrap();
        let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
        let nacks = sys
            .controller()
            .thread_stats(fqms_memctrl::request::ThreadId::new(0))
            .nacks;
        (m.threads[0].ipc, nacks)
    };
    let (part_ipc, part_nacks) = run_with(BufferSharing::Partitioned);
    let (shared_ipc, shared_nacks) = run_with(BufferSharing::Shared);
    assert!(
        shared_nacks > part_nacks + 100,
        "shared pool should NACK-storm the subject: {part_nacks} -> {shared_nacks}"
    );
    // The IPC penalty is seed- and mix-dependent (the ablation binary
    // shows 4-9% at heavier mixes); the robust claim is that the shared
    // pool never helps the subject while storming it with NACKs.
    assert!(
        shared_ipc < part_ipc * 1.02,
        "shared pool should not help the subject: {shared_ipc} vs {part_ipc}"
    );
}

#[test]
fn shared_l2_breaks_isolation_that_fq_cannot_restore() {
    // The paper keeps caches private so memory is the only shared
    // resource. With one shared L2, a streaming neighbour thrashes the
    // subject's working set and the FQ *memory* scheduler cannot help —
    // cache-resident work now misses to memory.
    let subject = by_name("twolf").unwrap(); // 2 MB footprint: fits when private? (512K L2: partially)
    let art = by_name("art").unwrap();
    let run_with = |shared: bool| {
        let mut sys = SystemBuilder::new()
            .scheduler(SchedulerKind::FqVftf)
            .shared_l2(shared)
            .seed(SEED)
            .workload(subject)
            .workload(art)
            .build()
            .unwrap();
        let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
        (m.threads[0].ipc, m.threads[0].mem_reads)
    };
    let (private_ipc, private_misses) = run_with(false);
    let (shared_ipc, shared_misses) = run_with(true);
    assert!(
        shared_misses > private_misses,
        "sharing the L2 should add subject misses: {private_misses} -> {shared_misses}"
    );
    assert!(
        shared_ipc < private_ipc,
        "cache contention should cost the subject: {shared_ipc:.3} vs {private_ipc:.3}"
    );
}

#[test]
fn shared_l2_with_cache_resident_neighbour_is_harmless() {
    // Sharing the L2 with a tiny-footprint neighbour costs little: the
    // isolation loss above is contention, not the sharing itself.
    let subject = by_name("gzip").unwrap();
    let crafty = by_name("crafty").unwrap();
    let run_with = |shared: bool| {
        let mut sys = SystemBuilder::new()
            .scheduler(SchedulerKind::FqVftf)
            .shared_l2(shared)
            .seed(SEED)
            .workload(subject)
            .workload(crafty)
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles).threads[0].ipc
    };
    let private = run_with(false);
    let shared = run_with(true);
    assert!(
        shared > 0.85 * private,
        "a polite neighbour should barely dent the subject: {shared:.3} vs {private:.3}"
    );
}
