//! Sanity of the time-scaled private baselines (the VTMS yardstick): the
//! QoS definition only makes sense if a 1/phi-speed private memory behaves
//! like a proportionally slower memory.

use fqms::prelude::*;

const LEN: RunLength = RunLength::quick();
const SEED: u64 = 31;

#[test]
fn baseline_ipc_decreases_monotonically_with_scale() {
    let swim = by_name("swim").unwrap();
    let mut prev = f64::INFINITY;
    for factor in [1u64, 2, 4] {
        let m = run_private_baseline(
            swim,
            factor,
            LEN.instructions,
            LEN.max_dram_cycles * factor,
            SEED,
        );
        assert!(
            m.ipc < prev,
            "x{factor} baseline should be slower: {} >= {prev}",
            m.ipc
        );
        prev = m.ipc;
    }
}

#[test]
fn bandwidth_bound_thread_scales_roughly_inversely() {
    // A saturating stream's throughput is bandwidth-bound, so time-scaling
    // the memory by 2 should roughly halve IPC (within generous slack for
    // latency effects).
    let art = by_name("art").unwrap();
    let x1 = run_private_baseline(art, 1, LEN.instructions, LEN.max_dram_cycles, SEED);
    let x2 = run_private_baseline(art, 2, LEN.instructions, LEN.max_dram_cycles * 2, SEED);
    let ratio = x1.ipc / x2.ipc;
    assert!(
        (1.5..3.0).contains(&ratio),
        "x2 scaling changed art's IPC by {ratio:.2}x, expected ~2x"
    );
}

#[test]
fn compute_bound_thread_is_scale_insensitive() {
    let sixtrack = by_name("sixtrack").unwrap();
    let x1 = run_private_baseline(sixtrack, 1, LEN.instructions, LEN.max_dram_cycles, SEED);
    let x4 = run_private_baseline(sixtrack, 4, LEN.instructions, LEN.max_dram_cycles * 4, SEED);
    assert!(
        x4.ipc > 0.85 * x1.ipc,
        "sixtrack should barely notice memory speed: {} vs {}",
        x4.ipc,
        x1.ipc
    );
}

#[test]
fn scaled_baseline_latency_grows() {
    let mcf = by_name("mcf").unwrap();
    let x1 = run_private_baseline(mcf, 1, LEN.instructions, LEN.max_dram_cycles, SEED);
    let x4 = run_private_baseline(mcf, 4, LEN.instructions, LEN.max_dram_cycles * 4, SEED);
    assert!(
        x4.avg_read_latency > 1.5 * x1.avg_read_latency,
        "x4 memory should have much higher latency: {} vs {}",
        x4.avg_read_latency,
        x1.avg_read_latency
    );
}
