//! QoS and fairness invariants of the Fair Queuing scheduler — the
//! behavioural contracts the paper claims, asserted end to end.

use fqms::prelude::*;

const LEN: RunLength = RunLength::quick();
const SEED: u64 = 29;

/// The FQ scheduler's QoS objective on the two-core stress test: every
/// subject thread runs within tolerance of its half-speed private
/// baseline, even with art hammering the memory system. (The paper meets
/// QoS on 18/19 subjects, with vpr at 0.94; we allow the same slack.)
#[test]
fn fq_vftf_meets_qos_against_art() {
    let art = by_name("art").unwrap();
    // A representative spread: aggressive, moderate, light, low-MLP.
    for name in ["swim", "galgel", "ammp", "vpr", "gzip"] {
        let subject = by_name(name).unwrap();
        let base =
            run_private_baseline(subject, 2, LEN.instructions, LEN.max_dram_cycles * 2, SEED);
        let m = two_core_run(subject, art, SchedulerKind::FqVftf, LEN, SEED);
        let norm = m.threads[0].ipc / base.ipc;
        assert!(
            norm >= 0.90,
            "{name}: FQ-VFTF normalized IPC {norm:.3} misses the QoS objective"
        );
    }
}

/// FR-FCFS does *not* provide QoS: the light threads fall well below
/// their baselines in the same scenario.
#[test]
fn fr_fcfs_fails_qos_against_art() {
    let art = by_name("art").unwrap();
    let mut below = 0;
    for name in ["ammp", "vpr", "twolf", "gzip"] {
        let subject = by_name(name).unwrap();
        let base =
            run_private_baseline(subject, 2, LEN.instructions, LEN.max_dram_cycles * 2, SEED);
        let m = two_core_run(subject, art, SchedulerKind::FrFcfs, LEN, SEED);
        if m.threads[0].ipc / base.ipc < 0.85 {
            below += 1;
        }
    }
    assert!(
        below >= 3,
        "FR-FCFS should violate QoS for most light subjects, only {below}/4 did"
    );
}

/// Fairness: with two identical aggressive threads, FQ-VFTF splits the
/// bus almost exactly evenly.
#[test]
fn identical_threads_get_identical_service() {
    let swim = by_name("swim").unwrap();
    let m = two_core_run(swim, swim, SchedulerKind::FqVftf, LEN, SEED);
    let a = m.threads[0].bus_utilization;
    let b = m.threads[1].bus_utilization;
    let ratio = a.max(b) / a.min(b).max(1e-9);
    assert!(ratio < 1.15, "uneven split: {a:.3} vs {b:.3}");
}

/// Excess bandwidth goes to whoever can use it: art co-scheduled with a
/// cache-resident thread gets nearly the whole memory system under
/// FQ-VFTF (QoS does not mean rationing).
#[test]
fn excess_bandwidth_is_not_wasted() {
    let art = by_name("art").unwrap();
    let crafty = by_name("crafty").unwrap();
    let base = run_private_baseline(art, 2, LEN.instructions, LEN.max_dram_cycles * 2, SEED);
    let m = two_core_run(crafty, art, SchedulerKind::FqVftf, LEN, SEED);
    let norm_art = m.threads[1].ipc / base.ipc;
    assert!(
        norm_art > 1.5,
        "art should exceed its half-machine baseline when crafty leaves slack, got {norm_art:.2}"
    );
}

/// Unequal shares translate to proportionally unequal service (the
/// paper's "arbitrary fractions" capability).
#[test]
fn shares_control_bandwidth_split() {
    let swim = by_name("swim").unwrap();
    let mut sys = SystemBuilder::new()
        .scheduler(SchedulerKind::FqVftf)
        .shares(vec![0.75, 0.25])
        .seed(SEED)
        .workload(swim)
        .workload(swim)
        .build()
        .unwrap();
    let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
    let ratio = m.threads[0].bus_utilization / m.threads[1].bus_utilization;
    assert!(
        (2.0..4.5).contains(&ratio),
        "3:1 allocation produced ratio {ratio:.2}"
    );
}

/// The FQ bank scheduler (bounded priority inversion) is what protects
/// low-MLP threads: with the bound removed (Unbounded), vpr should do
/// no better than plain FR-VFTF.
#[test]
fn inversion_bound_matters_for_low_mlp_threads() {
    let vpr = by_name("vpr").unwrap();
    let art = by_name("art").unwrap();
    let run_with = |bound| {
        let mut sys = SystemBuilder::new()
            .scheduler(SchedulerKind::FqVftf)
            .inversion_bound(bound)
            .seed(SEED)
            .workload(vpr)
            .workload(art)
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles).threads[0].ipc
    };
    let bounded = run_with(InversionBound::TRas);
    let unbounded = run_with(InversionBound::Unbounded);
    assert!(
        bounded > unbounded * 1.05,
        "tRAS bound should help vpr: bounded {bounded:.3} vs unbounded {unbounded:.3}"
    );
}
