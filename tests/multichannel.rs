//! Multi-channel memory systems (the paper's future-work extension):
//! line-interleaved channels with independent schedulers and VTMS state.

use fqms::prelude::*;

const LEN: RunLength = RunLength::quick();
const SEED: u64 = 53;

#[test]
fn two_channels_help_bandwidth_bound_threads() {
    let run_with = |channels: usize| {
        let mut sys = SystemBuilder::new()
            .channels(channels)
            .seed(SEED)
            .workload(by_name("art").unwrap())
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles).threads[0].ipc
    };
    let one = run_with(1);
    let two = run_with(2);
    assert!(
        two > 1.3 * one,
        "a second channel should speed up art: {two:.3} vs {one:.3}"
    );
}

#[test]
fn channels_leave_latency_bound_threads_mostly_alone() {
    let run_with = |channels: usize| {
        let mut sys = SystemBuilder::new()
            .channels(channels)
            .seed(SEED)
            .workload(by_name("vpr").unwrap())
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles).threads[0].ipc
    };
    let one = run_with(1);
    let two = run_with(2);
    // vpr is latency-bound: extra bandwidth buys little.
    assert!(
        two < 1.25 * one,
        "vpr should be latency-bound: {two:.3} vs {one:.3}"
    );
}

#[test]
fn fq_qos_holds_on_two_channels() {
    // The QoS objective extends naturally: a thread with share 1/2 of a
    // two-channel system must beat its half-speed two-channel baseline.
    let subject = by_name("twolf").unwrap();
    let art = by_name("art").unwrap();
    let baseline = {
        let mut sys = SystemBuilder::new()
            .channels(2)
            .timing(fqms_dram::timing::TimingParams::ddr2_800().time_scaled(2))
            .seed(SEED)
            .workload(subject)
            .build()
            .unwrap();
        sys.run(LEN.instructions, LEN.max_dram_cycles * 2).threads[0].ipc
    };
    let mut sys = SystemBuilder::new()
        .channels(2)
        .scheduler(SchedulerKind::FqVftf)
        .seed(SEED)
        .workload(subject)
        .workload(art)
        .build()
        .unwrap();
    let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
    let norm = m.threads[0].ipc / baseline;
    assert!(
        norm >= 0.9,
        "two-channel FQ QoS violated: normalized IPC {norm:.3}"
    );
}

#[test]
fn aggregate_utilization_accounts_for_both_channels() {
    let mut sys = SystemBuilder::new()
        .channels(2)
        .seed(SEED)
        .workload(by_name("art").unwrap())
        .workload(by_name("swim").unwrap())
        .build()
        .unwrap();
    let m = sys.run(LEN.instructions, LEN.max_dram_cycles);
    // Utilization is a fraction of *combined* peak bandwidth.
    assert!(m.data_bus_utilization <= 1.0);
    assert!(m.data_bus_utilization > 0.3);
    let per_thread: f64 = m.threads.iter().map(|t| t.bus_utilization).sum();
    assert!((per_thread - m.data_bus_utilization).abs() < 0.05);
}
