//! End-to-end integration tests: full systems (cores + caches + controller
//! + DRAM) running the shipped workload profiles.

use fqms::prelude::*;

const LEN: RunLength = RunLength::quick();
const SEED: u64 = 17;

#[test]
fn every_profile_runs_solo_to_completion() {
    for p in &SPEC_PROFILES {
        let m = run_solo(*p, 10_000, 5_000_000, SEED);
        assert!(m.instructions >= 10_000, "{} stalled", p.name);
        assert!(m.ipc > 0.0 && m.ipc <= 8.0, "{} ipc {}", p.name, m.ipc);
    }
}

#[test]
fn solo_utilization_spread_matches_figure_4_shape() {
    let metrics = solo_sweep(LEN, SEED);
    let utils: Vec<f64> = metrics.iter().map(|m| m.bus_utilization).collect();
    // art is the most aggressive benchmark.
    let art = utils[0];
    assert!(
        utils.iter().skip(1).all(|&u| u <= art),
        "art must dominate: {utils:?}"
    );
    assert!(art > 0.7, "art should nearly saturate the bus, got {art}");
    // The spread is (weakly) decreasing within a tolerance for run noise.
    for w in utils.windows(2) {
        assert!(
            w[1] <= w[0] + 0.06,
            "utilization ordering violated: {utils:?}"
        );
    }
    // The excluded tail is cache-resident (< 2% as the paper states).
    for (m, u) in metrics.iter().zip(&utils).skip(17) {
        assert!(*u < 0.02, "{} should be cache-resident, got {u}", m.name);
    }
    // vpr uses a modest share (the paper's ~14%).
    let vpr = metrics.iter().find(|m| m.name == "vpr").unwrap();
    assert!(
        (0.05..0.3).contains(&vpr.bus_utilization),
        "vpr utilization {}",
        vpr.bus_utilization
    );
}

#[test]
fn all_four_schedulers_complete_a_heavy_mix() {
    let mix = four_core_workloads()[0];
    for sched in SchedulerKind::all() {
        let m = four_core_run(&mix, sched, LEN, SEED);
        assert_eq!(m.threads.len(), 4);
        for t in &m.threads {
            assert!(
                t.instructions >= LEN.instructions,
                "{sched}: {} starved",
                t.name
            );
        }
        assert!(m.data_bus_utilization > 0.5, "{sched}: bus idle");
    }
}

#[test]
fn unloaded_latency_matches_paper_calibration() {
    // The paper reports an unloaded read latency of ~180 processor cycles;
    // vpr's solo latency (low MLP, modest load) should be near that.
    let vpr = by_name("vpr").unwrap();
    let m = run_solo(vpr, 30_000, 10_000_000, SEED);
    assert!(
        (140.0..230.0).contains(&m.avg_read_latency),
        "vpr solo latency {} outside the calibrated window",
        m.avg_read_latency
    );
}

#[test]
fn loaded_latency_blowup_under_frfcfs_matches_figure_1() {
    // Figure 1: vpr's latency goes from ~150 to ~1070 cycles when
    // co-scheduled with art under FR-FCFS (a ~7x blowup), and IPC drops by
    // ~60%. Assert the *shape*: large latency blowup, large IPC loss.
    let vpr = by_name("vpr").unwrap();
    let art = by_name("art").unwrap();
    let crafty = by_name("crafty").unwrap();
    let solo = run_solo(vpr, LEN.instructions, LEN.max_dram_cycles, SEED);

    let with_crafty = two_core_run(vpr, crafty, SchedulerKind::FrFcfs, LEN, SEED);
    assert!(
        with_crafty.threads[0].ipc > 0.9 * solo.ipc,
        "crafty should not hurt vpr: {} vs {}",
        with_crafty.threads[0].ipc,
        solo.ipc
    );

    let with_art = two_core_run(vpr, art, SchedulerKind::FrFcfs, LEN, SEED);
    assert!(
        with_art.threads[0].avg_read_latency > 1.8 * solo.avg_read_latency,
        "art should blow up vpr's latency: {} vs solo {}",
        with_art.threads[0].avg_read_latency,
        solo.avg_read_latency
    );
    assert!(
        with_art.threads[0].ipc < 0.7 * solo.ipc,
        "art should crater vpr's IPC: {} vs solo {}",
        with_art.threads[0].ipc,
        solo.ipc
    );
}

#[test]
fn fair_share_targets_for_workload_one() {
    // Target utilizations for the heaviest mix must split the bus and
    // never exceed solo demand.
    let mix = four_core_workloads()[0];
    let solos: Vec<f64> = mix
        .iter()
        .map(|p| run_solo(*p, LEN.instructions, LEN.max_dram_cycles, SEED).bus_utilization)
        .collect();
    let targets = target_utilizations(&solos, &[0.25; 4]);
    for (t, s) in targets.iter().zip(&solos) {
        assert!(t <= s);
        assert!(*t >= 0.0);
    }
    let total: f64 = targets.iter().sum();
    assert!(total <= 1.0 + 1e-9);
}
