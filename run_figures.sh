#!/bin/bash
# Regenerates every paper table/figure and the extension studies into a
# results directory, with resilient orchestration: failing binaries are
# retried with capped backoff, failures are recorded in failures.tsv
# while the sweep carries on (partial results instead of an aborted run),
# and completed binaries are checkpointed in manifest.tsv so an
# interrupted sweep resumes exactly where it stopped.
#
#   FQMS_RUNLEN=quick|standard|full   per-run instruction budget
#   FQMS_SEED=<n>                     master seed (default 42)
#   FQMS_SKIP_CI=1                    skip the CI preflight (fmt+build+tests)
#   FQMS_RESULTS_DIR=<dir>            output directory (default results)
#   FQMS_BINS="fig1 fig4 ..."         subset of figure binaries to run
#   FQMS_MAX_ATTEMPTS=<n>             attempts per binary (default 2)
#   FQMS_TIMEOUT=<secs>               wall-clock budget per attempt (0 = none)
#   --resume                          keep the existing manifest and skip
#                                     binaries already completed with the
#                                     same seed/runlen; finished outputs are
#                                     left untouched (bit-identical)
set -u
cd "$(dirname "$0")"
export FQMS_RUNLEN="${FQMS_RUNLEN:-standard}" FQMS_SEED="${FQMS_SEED:-42}"
RES="${FQMS_RESULTS_DIR:-results}"
RESUME=0
usage() {
  cat <<'EOF'
usage: ./run_figures.sh [--resume]

Regenerates every paper table/figure and the extension studies into a
results directory (default: results/).

options:
  --resume      keep the existing manifest and skip binaries already
                completed with the same seed/runlen (bit-identical)
  --help, -h    this text

environment:
  FQMS_RUNLEN=quick|standard|full   per-run instruction budget
  FQMS_SEED=<n>                     master seed (default 42)
  FQMS_SKIP_CI=1                    skip the CI preflight (fmt+build+tests)
  FQMS_RESULTS_DIR=<dir>            output directory (default results)
  FQMS_BINS="fig1 fig4 ..."         subset of figure binaries to run
  FQMS_MAX_ATTEMPTS=<n>             attempts per binary (default 2)
  FQMS_TIMEOUT=<secs>               wall-clock budget per attempt (0 = none)

figure binaries (the default set, in run order):
  tables workloads fig1 fig4 fig5 fig6 fig7 fig8 fig9 headline
  ablation_inversion ablation_design ablation_buffers channels energy
  frequency timeline seeds faults speedup scaling frontier latency_cdf
  overload

schedulers swept where a binary takes the whole family (SchedulerKind):
  Fcfs FrFcfs FrVftf FqVftf Bliss SdVftf
EOF
}
for arg in "$@"; do
  case "$arg" in
    --resume) RESUME=1 ;;
    --help|-h) usage; exit 0 ;;
    *) echo "run_figures.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done
if [ "${FQMS_SKIP_CI:-0}" != "1" ]; then
  echo "=== preflight: ci.sh ==="
  ./ci.sh || exit 1
fi
mkdir -p "$RES"
MANIFEST="$RES/manifest.tsv"
FAILURES="$RES/failures.tsv"
if [ "$RESUME" != "1" ] || [ ! -f "$MANIFEST" ]; then
  : > "$MANIFEST"
fi
: > "$FAILURES"

DEFAULT_BINS="tables workloads fig1 fig4 fig5 fig6 fig7 fig8 fig9 headline \
      ablation_inversion ablation_design ablation_buffers channels energy frequency timeline seeds \
      faults speedup scaling frontier latency_cdf overload"
BINS="${FQMS_BINS:-$DEFAULT_BINS}"
MAX_ATTEMPTS="${FQMS_MAX_ATTEMPTS:-2}"
TIMEOUT_S="${FQMS_TIMEOUT:-0}"
# Header must match fqms_obs::TSV_HEADER (checked by tests/observability.rs).
SIDECAR_HEADER="$(printf '#label\tscheduler\tthread\treads\twrites\tnacks\tbytes\tread_lat_mean\tread_lat_p50\tread_lat_p95\tread_lat_max\twrite_lat_mean\tqdepth_mean\tqdepth_max\tvft_drift_mean\tvft_drift_max\tdrops\tstarved\trejected\tshed\tthrottled\talone_est\tshared\tslowdown\tread_lat_hist')"

# Build once up front so per-binary attempts measure the run, not the
# compile, and a broken build aborts before any output is disturbed.
cargo build --release -q -p fqms-bench || exit 1

# Appends one record to a checkpoint file atomically: the new content is
# assembled in a temp file and renamed into place, so a sweep killed
# mid-write leaves the previous complete manifest, never a torn line.
record() {
  file="$1"; shift
  { cat "$file" 2>/dev/null; printf "$@"; } > "$file.tmp.$$" \
    && mv "$file.tmp.$$" "$file"
}

# Writes a whole file atomically from a single printf.
write_atomic() {
  file="$1"; shift
  printf "$@" > "$file.tmp.$$" && mv "$file.tmp.$$" "$file"
}

# True if the manifest records this binary as completed under the current
# seed and run length (the checkpoint key for --resume).
completed() {
  awk -F'\t' -v b="$1" -v s="$FQMS_SEED" -v r="$FQMS_RUNLEN" \
    '$1=="ok" && $2==b && $3==s && $4==r {found=1} END {exit !found}' \
    "$MANIFEST" 2>/dev/null
}

# Long System runs checkpoint here (see DESIGN.md §14): a killed attempt
# resumes from its last snapshot instead of recomputing from cycle zero.
CKPT_DIR="$RES/checkpoints"
mkdir -p "$CKPT_DIR"

run_once() {
  if [ "$TIMEOUT_S" != "0" ] && command -v timeout >/dev/null 2>&1; then
    FQMS_SIDECAR="$RES/$1.metrics.tsv" FQMS_CHECKPOINT_DIR="$CKPT_DIR" \
      timeout "$TIMEOUT_S" \
      cargo run --release -q -p fqms-bench --bin "$1" \
      > "$RES/$1.tsv" 2> "$RES/$1.log"
  else
    FQMS_SIDECAR="$RES/$1.metrics.tsv" FQMS_CHECKPOINT_DIR="$CKPT_DIR" \
      cargo run --release -q -p fqms-bench --bin "$1" \
      > "$RES/$1.tsv" 2> "$RES/$1.log"
  fi
}

FAILED=0
for bin in $BINS; do
  if [ "$RESUME" = "1" ] && completed "$bin"; then
    echo "=== $bin (checkpointed, skipped) ==="
    continue
  fi
  echo "=== $bin ==="
  ok=0
  backoff=1
  for attempt in $(seq 1 "$MAX_ATTEMPTS"); do
    # Sidecars are append-only: each attempt starts from a clean file so
    # a retried run cannot double-append.
    rm -f "$RES/$bin.metrics.tsv"
    run_once "$bin"
    status=$?
    if [ "$status" -eq 0 ]; then
      ok=1
      break
    fi
    echo "attempt $attempt/$MAX_ATTEMPTS failed for $bin (exit $status)" >&2
    if [ "$attempt" -lt "$MAX_ATTEMPTS" ]; then
      sleep "$backoff"
      backoff=$((backoff * 2))
      [ "$backoff" -gt 8 ] && backoff=8
    fi
  done
  if [ "$ok" = "1" ]; then
    # Every figure run ships a machine-readable metrics sidecar; binaries
    # that simulate no system (static tables) get a header-only file.
    [ -f "$RES/$bin.metrics.tsv" ] || write_atomic "$RES/$bin.metrics.tsv" '%s\n' "$SIDECAR_HEADER"
    record "$MANIFEST" 'ok\t%s\t%s\t%s\n' "$bin" "$FQMS_SEED" "$FQMS_RUNLEN"
    echo "done $bin"
  else
    # No half-written figures: a failed binary leaves only its log.
    rm -f "$RES/$bin.tsv" "$RES/$bin.metrics.tsv"
    record "$FAILURES" 'failed\t%s\t%s\t%s\tattempts=%s\n' \
      "$bin" "$FQMS_SEED" "$FQMS_RUNLEN" "$MAX_ATTEMPTS"
    FAILED=$((FAILED + 1))
    echo "FAILED: $bin (see $RES/$bin.log)"
  fi
done

if [ "$FAILED" -gt 0 ]; then
  echo "PARTIAL: $FAILED binaries failed, $(grep -c '^ok' "$MANIFEST") checkpointed (see $FAILURES)"
  exit 1
fi
echo "ALL FIGURES DONE"
