#!/bin/bash
# Regenerates every paper table/figure and the extension studies into results/.
# FQMS_RUNLEN=quick|standard|full scales the per-run instruction budget.
# FQMS_SKIP_CI=1 skips the CI preflight (fmt + build + tests).
set -e
cd "$(dirname "$0")"
export FQMS_RUNLEN="${FQMS_RUNLEN:-standard}" FQMS_SEED="${FQMS_SEED:-42}"
if [ "${FQMS_SKIP_CI:-0}" != "1" ]; then
  echo "=== preflight: ci.sh ==="
  ./ci.sh
fi
mkdir -p results
BINS="tables workloads fig1 fig4 fig5 fig6 fig7 fig8 fig9 headline \
      ablation_inversion ablation_design ablation_buffers channels energy frequency timeline seeds \
      speedup"
for bin in $BINS; do
  echo "=== $bin ==="
  cargo run --release -q -p fqms-bench --bin "$bin" > "results/$bin.tsv" 2> "results/$bin.log" || echo "FAILED: $bin"
  echo "done $bin"
done
echo "ALL FIGURES DONE"
