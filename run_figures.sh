#!/bin/bash
# Regenerates every paper table/figure and the extension studies into results/.
# FQMS_RUNLEN=quick|standard|full scales the per-run instruction budget.
# FQMS_SKIP_CI=1 skips the CI preflight (fmt + build + tests).
set -e
cd "$(dirname "$0")"
export FQMS_RUNLEN="${FQMS_RUNLEN:-standard}" FQMS_SEED="${FQMS_SEED:-42}"
if [ "${FQMS_SKIP_CI:-0}" != "1" ]; then
  echo "=== preflight: ci.sh ==="
  ./ci.sh
fi
mkdir -p results
BINS="tables workloads fig1 fig4 fig5 fig6 fig7 fig8 fig9 headline \
      ablation_inversion ablation_design ablation_buffers channels energy frequency timeline seeds \
      speedup"
# Header must match fqms_obs::TSV_HEADER (checked by tests/observability.rs).
SIDECAR_HEADER="$(printf '#label\tscheduler\tthread\treads\twrites\tnacks\tbytes\tread_lat_mean\tread_lat_p50\tread_lat_p95\tread_lat_max\twrite_lat_mean\tqdepth_mean\tqdepth_max\tvft_drift_mean\tvft_drift_max\tread_lat_hist')"
for bin in $BINS; do
  echo "=== $bin ==="
  FQMS_SIDECAR="results/$bin.metrics.tsv" \
    cargo run --release -q -p fqms-bench --bin "$bin" > "results/$bin.tsv" 2> "results/$bin.log" || echo "FAILED: $bin"
  # Every figure run ships a machine-readable metrics sidecar; binaries
  # that simulate no system (static tables) get a header-only file.
  [ -f "results/$bin.metrics.tsv" ] || printf '%s\n' "$SIDECAR_HEADER" > "results/$bin.metrics.tsv"
  echo "done $bin"
done
echo "ALL FIGURES DONE"
