//! Observer overhead guard (ISSUE satellite): attaching observers must
//! never change simulation results, and the tracing path must stay within
//! a generous constant factor of the unobserved (NullObserver) path.
//!
//! The timing bound is deliberately loose — this is a tripwire against
//! accidentally putting allocation or formatting on the unguarded hot
//! path, not a performance benchmark (see `benches/obs_overhead.rs` for
//! real numbers). Min-of-N wall times keep it stable on noisy CI boxes.

use fqms_memctrl::engine::{simulate_parallel, simulate_serial, synthetic_workload, EngineSpec};
use std::time::{Duration, Instant};

fn spec(event_capacity: Option<usize>) -> EngineSpec {
    let mut spec = EngineSpec::paper(2, 4);
    spec.epoch_cycles = 512;
    spec.event_capacity = event_capacity;
    spec
}

fn min_wall<F: FnMut()>(mut f: F, reps: u32) -> Duration {
    f(); // warm-up
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
fn observation_never_changes_results() {
    let events = synthetic_workload(4, 4_000, 0.5, 2006);
    let plain = simulate_serial(&spec(None), &events).unwrap();
    let observed = simulate_serial(&spec(Some(1 << 20)), &events).unwrap();
    assert!(plain.observations.is_none());
    assert!(observed.observations.is_some());
    // Everything the unobserved run reports must be untouched.
    assert_eq!(plain.cycles, observed.cycles);
    assert_eq!(plain.per_thread, observed.per_thread);
    assert_eq!(plain.completions, observed.completions);
    assert_eq!(plain.bus_busy_cycles, observed.bus_busy_cycles);
    assert_eq!(plain.unsubmitted, observed.unsubmitted);
}

#[test]
fn observed_parallel_run_is_bit_identical_to_serial() {
    let events = synthetic_workload(4, 4_000, 0.5, 99);
    let spec = spec(Some(1 << 20));
    let serial = simulate_serial(&spec, &events).unwrap();
    for workers in [2, 5] {
        let parallel = simulate_parallel(&spec, &events, workers).unwrap();
        assert_eq!(serial, parallel, "{workers} workers diverged");
    }
}

#[test]
fn tracing_overhead_is_bounded() {
    let events = synthetic_workload(4, 8_000, 0.5, 7);
    let unobserved = spec(None);
    let traced = spec(Some(1 << 20));
    let base = min_wall(
        || {
            simulate_serial(&unobserved, &events).unwrap();
        },
        5,
    );
    let with_obs = min_wall(
        || {
            simulate_serial(&traced, &events).unwrap();
        },
        5,
    );
    // Tracing records ~6 events per request into a preallocated ring and
    // bumps integer counters; anything past 4x means something expensive
    // crept onto the hot path (or onto the unguarded no-op path, which
    // would show up here as a shrinking ratio denominator).
    assert!(
        with_obs < base * 4 + Duration::from_millis(50),
        "tracing run took {with_obs:?} vs unobserved {base:?}"
    );
}
