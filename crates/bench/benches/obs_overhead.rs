//! Observer overhead microbenchmarks (ISSUE satellite).
//!
//! The observability layer's contract is *zero overhead when off*: the
//! public `step`/`try_submit` entry points monomorphize with the no-op
//! [`fqms_memctrl::NullObserver`], so an unobserved engine run is exactly
//! the pre-observability code. This bench puts numbers next to the claim:
//!
//! - `engine_unobserved`  — `event_capacity: None` (NullObserver path);
//! - `engine_traced`      — full event ring + metrics sinks attached;
//! - `controller_step_null` — the raw controller hot loop driven through
//!   the observed entry points with an explicit [`NullObserver`], which
//!   must match the plain `step` path.
//!
//! Runs on the in-tree [`fqms_bench::timing::TimingHarness`] (the build
//! is hermetic, so no Criterion); output is TSV on stdout. The pass/fail
//! guard lives in `crates/bench/tests/obs_guard.rs`; this binary is for
//! eyeballs and profiling.

use fqms_bench::timing::TimingHarness;
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::engine::{simulate_serial, synthetic_workload, EngineSpec};
use fqms_memctrl::prelude::*;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::SimRng;
use std::hint::black_box;

fn spec(event_capacity: Option<usize>) -> EngineSpec {
    let mut spec = EngineSpec::paper(2, 4);
    spec.epoch_cycles = 512;
    spec.event_capacity = event_capacity;
    spec
}

fn bench_engine(h: &mut TimingHarness) {
    let events = synthetic_workload(4, 10_000, 0.5, 7);
    let unobserved = spec(None);
    h.bench("engine_unobserved", || {
        simulate_serial(black_box(&unobserved), black_box(&events))
            .unwrap()
            .total_completed()
    });
    let traced = spec(Some(1 << 20));
    h.bench("engine_traced", || {
        simulate_serial(black_box(&traced), black_box(&events))
            .unwrap()
            .total_completed()
    });
}

fn bench_controller_step(h: &mut TimingHarness) {
    h.bench("controller_step_null", || {
        let mut rng = SimRng::new(7);
        let mut mc = MemoryController::new(
            McConfig::paper(4, SchedulerKind::FqVftf),
            Geometry::paper(),
            TimingParams::ddr2_800(),
        )
        .unwrap();
        let mut obs = NullObserver;
        let mut completed = 0u64;
        for c in 1..=5_000u64 {
            let now = DramCycle::new(c);
            for t in 0..4 {
                let thread = ThreadId::new(t);
                if mc.can_accept(thread, RequestKind::Read) && rng.chance(0.6) {
                    let _ = mc.try_submit_observed(
                        thread,
                        RequestKind::Read,
                        rng.next_below(1 << 24) * 64,
                        now,
                        &mut obs,
                    );
                }
            }
            completed += mc.step_observed(now, &mut obs).len() as u64;
        }
        completed
    });
}

fn main() {
    let mut h = TimingHarness::new("obs_overhead");
    bench_engine(&mut h);
    bench_controller_step(&mut h);
}
