//! Criterion benchmarks of the figure pipelines themselves: short
//! (statistically down-scaled) versions of the paper's experiments, so
//! `cargo bench` exercises every experiment path end to end and tracks
//! simulator throughput regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqms::prelude::*;
use std::hint::black_box;

const LEN: RunLength = RunLength {
    instructions: 10_000,
    max_dram_cycles: 2_000_000,
};

fn bench_solo_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_solo_run");
    group.sample_size(10);
    for name in ["art", "apsi", "vpr", "crafty"] {
        let profile = by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &profile, |b, p| {
            b.iter(|| run_solo(black_box(*p), LEN.instructions, LEN.max_dram_cycles, 3));
        });
    }
    group.finish();
}

fn bench_two_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_two_core_vs_art");
    group.sample_size(10);
    let art = by_name("art").unwrap();
    let vpr = by_name("vpr").unwrap();
    for sched in [
        SchedulerKind::FrFcfs,
        SchedulerKind::FrVftf,
        SchedulerKind::FqVftf,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sched.name()),
            &sched,
            |b, &s| {
                b.iter(|| two_core_run(black_box(vpr), black_box(art), s, LEN, 3));
            },
        );
    }
    group.finish();
}

fn bench_four_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_four_core_workload1");
    group.sample_size(10);
    let mix = four_core_workloads()[0];
    for sched in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sched.name()),
            &sched,
            |b, &s| {
                b.iter(|| four_core_run(black_box(&mix), s, LEN, 3));
            },
        );
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_time_scaled");
    group.sample_size(10);
    let swim = by_name("swim").unwrap();
    for factor in [1u64, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            b.iter(|| {
                run_private_baseline(
                    black_box(swim),
                    f,
                    LEN.instructions,
                    LEN.max_dram_cycles * f,
                    3,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_solo_runs,
    bench_two_core,
    bench_four_core,
    bench_baseline
);
criterion_main!(benches);
