//! Benchmarks of the figure pipelines themselves: short (statistically
//! down-scaled) versions of the paper's experiments, so the bench run
//! exercises every experiment path end to end and tracks simulator
//! throughput regressions.
//!
//! Runs on the in-tree [`fqms_bench::timing::TimingHarness`] (the build is
//! hermetic, so no Criterion); output is TSV on stdout.

use fqms::prelude::*;
use fqms_bench::timing::TimingHarness;
use std::hint::black_box;

const LEN: RunLength = RunLength {
    instructions: 10_000,
    max_dram_cycles: 2_000_000,
};

fn bench_solo_runs(h: &mut TimingHarness) {
    for name in ["art", "apsi", "vpr", "crafty"] {
        let profile = by_name(name).unwrap();
        h.bench(&format!("fig4_solo_run/{name}"), || {
            run_solo(black_box(profile), LEN.instructions, LEN.max_dram_cycles, 3)
        });
    }
}

fn bench_two_core(h: &mut TimingHarness) {
    let art = by_name("art").unwrap();
    let vpr = by_name("vpr").unwrap();
    for sched in [
        SchedulerKind::FrFcfs,
        SchedulerKind::FrVftf,
        SchedulerKind::FqVftf,
    ] {
        h.bench(&format!("fig5_two_core_vs_art/{}", sched.name()), || {
            two_core_run(black_box(vpr), black_box(art), sched, LEN, 3)
        });
    }
}

fn bench_four_core(h: &mut TimingHarness) {
    let mix = four_core_workloads()[0];
    for sched in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        h.bench(
            &format!("fig8_four_core_workload1/{}", sched.name()),
            || four_core_run(black_box(&mix), sched, LEN, 3),
        );
    }
}

fn bench_baseline(h: &mut TimingHarness) {
    let swim = by_name("swim").unwrap();
    for factor in [1u64, 2, 4] {
        h.bench(&format!("baseline_time_scaled/x{factor}"), || {
            run_private_baseline(
                black_box(swim),
                factor,
                LEN.instructions,
                LEN.max_dram_cycles * factor,
                3,
            )
        });
    }
}

fn main() {
    let mut h = TimingHarness::new("figure_pipelines");
    bench_solo_runs(&mut h);
    bench_two_core(&mut h);
    bench_four_core(&mut h);
    bench_baseline(&mut h);
}
