//! Criterion microbenchmarks of the simulator's hot paths: the memory
//! controller's per-cycle scheduling decision under each policy, the DRAM
//! device's readiness checks, and VTMS updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqms_dram::device::{DramDevice, Geometry};
use fqms_dram::timing::TimingParams;
use fqms_memctrl::config::McConfig;
use fqms_memctrl::controller::MemoryController;
use fqms_memctrl::policy::SchedulerKind;
use fqms_memctrl::request::{RequestKind, ThreadId};
use fqms_memctrl::vtms::Vtms;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::SimRng;
use std::hint::black_box;

/// Steps a 4-thread controller under sustained random load for `cycles`.
fn drive_controller(kind: SchedulerKind, cycles: u64, seed: u64) -> u64 {
    let mut rng = SimRng::new(seed);
    let mut mc = MemoryController::new(
        McConfig::paper(4, kind),
        Geometry::paper(),
        TimingParams::ddr2_800(),
    )
    .unwrap();
    let mut completed = 0u64;
    for c in 1..=cycles {
        let now = DramCycle::new(c);
        // Keep the buffers pressurized.
        for t in 0..4 {
            let thread = ThreadId::new(t);
            if mc.can_accept(thread, RequestKind::Read) && rng.chance(0.6) {
                let _ = mc.try_submit(thread, RequestKind::Read, rng.next_below(1 << 24) * 64, now);
            }
        }
        completed += mc.step(now).len() as u64;
    }
    completed
}

fn bench_scheduler_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_step_per_cycle");
    for kind in SchedulerKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| drive_controller(black_box(kind), 5_000, 7));
            },
        );
    }
    group.finish();
}

fn bench_dram_readiness(c: &mut Criterion) {
    use fqms_dram::command::{BankId, ColId, Command, RankId, RowId};
    let mut dram = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
    dram.issue(
        &Command::Activate {
            rank: RankId::new(0),
            bank: BankId::new(0),
            row: RowId::new(1),
        },
        DramCycle::new(0),
    );
    let rd = Command::Read {
        rank: RankId::new(0),
        bank: BankId::new(0),
        col: ColId::new(0),
    };
    c.bench_function("dram_is_ready", |b| {
        b.iter(|| dram.is_ready(black_box(&rd), black_box(DramCycle::new(10))))
    });
}

fn bench_vtms_update(c: &mut Criterion) {
    let t = TimingParams::ddr2_800();
    c.bench_function("vtms_finish_time_and_update", |b| {
        let mut v = Vtms::new(0.25, 8).unwrap();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 10;
            let f = v.virtual_finish_time(DramCycle::new(cycle), 3, 10, 4);
            v.apply_command(
                fqms_dram::command::CommandKind::Read,
                DramCycle::new(cycle),
                3,
                &t,
            );
            black_box(f)
        })
    });
}

criterion_group!(
    benches,
    bench_scheduler_step,
    bench_dram_readiness,
    bench_vtms_update
);
criterion_main!(benches);
