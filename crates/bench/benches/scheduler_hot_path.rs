//! Microbenchmarks of the simulator's hot paths: the memory controller's
//! per-cycle scheduling decision under each policy, the DRAM device's
//! readiness checks, and VTMS updates.
//!
//! Runs on the in-tree [`fqms_bench::timing::TimingHarness`] (the build is
//! hermetic, so no Criterion); output is TSV on stdout.

use fqms_bench::timing::TimingHarness;
use fqms_dram::device::{DramDevice, Geometry};
use fqms_dram::timing::TimingParams;
use fqms_memctrl::config::McConfig;
use fqms_memctrl::controller::MemoryController;
use fqms_memctrl::policy::SchedulerKind;
use fqms_memctrl::request::{RequestKind, ThreadId};
use fqms_memctrl::vtms::Vtms;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::SimRng;
use std::hint::black_box;

/// Steps a 4-thread controller under sustained random load for `cycles`.
fn drive_controller(kind: SchedulerKind, cycles: u64, seed: u64) -> u64 {
    let mut rng = SimRng::new(seed);
    let mut mc = MemoryController::new(
        McConfig::paper(4, kind),
        Geometry::paper(),
        TimingParams::ddr2_800(),
    )
    .unwrap();
    let mut completed = 0u64;
    for c in 1..=cycles {
        let now = DramCycle::new(c);
        // Keep the buffers pressurized.
        for t in 0..4 {
            let thread = ThreadId::new(t);
            if mc.can_accept(thread, RequestKind::Read) && rng.chance(0.6) {
                let _ = mc.try_submit(thread, RequestKind::Read, rng.next_below(1 << 24) * 64, now);
            }
        }
        completed += mc.step(now).len() as u64;
    }
    completed
}

fn bench_scheduler_step(h: &mut TimingHarness) {
    for kind in SchedulerKind::all() {
        h.bench(&format!("controller_step/{}", kind.name()), || {
            drive_controller(black_box(kind), 5_000, 7)
        });
    }
}

fn bench_dram_readiness(h: &mut TimingHarness) {
    use fqms_dram::command::{BankId, ColId, Command, RankId, RowId};
    let mut dram = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
    dram.issue(
        &Command::Activate {
            rank: RankId::new(0),
            bank: BankId::new(0),
            row: RowId::new(1),
        },
        DramCycle::new(0),
    );
    let rd = Command::Read {
        rank: RankId::new(0),
        bank: BankId::new(0),
        col: ColId::new(0),
    };
    h.bench("dram_is_ready_x1M", || {
        let mut hits = 0u64;
        for _ in 0..1_000_000 {
            if dram.is_ready(black_box(&rd), black_box(DramCycle::new(10))) {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_vtms_update(h: &mut TimingHarness) {
    let t = TimingParams::ddr2_800();
    h.bench("vtms_finish_time_and_update_x1M", || {
        let mut v = Vtms::new(0.25, 8).unwrap();
        let mut cycle = 0u64;
        let mut acc = 0.0f64;
        for _ in 0..1_000_000 {
            cycle += 10;
            acc += v.virtual_finish_time(DramCycle::new(cycle), 3, 10, 4);
            v.apply_command(
                fqms_dram::command::CommandKind::Read,
                DramCycle::new(cycle),
                3,
                &t,
            );
        }
        acc
    });
}

fn main() {
    let mut h = TimingHarness::new("scheduler_hot_path");
    bench_scheduler_step(&mut h);
    bench_dram_readiness(&mut h);
    bench_vtms_update(&mut h);
}
