//! Minimal in-tree timing harness for `harness = false` benches.
//!
//! The workspace builds hermetically (no network, no registry), so the
//! benches cannot depend on Criterion. This module provides the small
//! subset actually needed: named benchmark groups, a measured warm-up,
//! a fixed number of timed iterations, and min/mean/max reporting in the
//! same TSV style as the figure binaries.
//!
//! Iteration counts honour `FQMS_BENCH_ITERS` (default 10) so CI can run
//! the benches quickly while local profiling uses more samples.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Reads the per-benchmark iteration count from `FQMS_BENCH_ITERS`.
pub fn bench_iters() -> u32 {
    std::env::var("FQMS_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// A named group of timed benchmarks, printed as TSV on stdout.
pub struct TimingHarness {
    group: String,
    iters: u32,
    header_printed: bool,
}

impl TimingHarness {
    /// Creates a harness for one benchmark group.
    pub fn new(group: &str) -> Self {
        TimingHarness {
            group: group.to_string(),
            iters: bench_iters(),
            header_printed: false,
        }
    }

    /// Times `f` for `self.iters` iterations after one untimed warm-up
    /// call, printing a TSV row. The closure's return value is passed
    /// through [`black_box`] so the work cannot be optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if !self.header_printed {
            println!("#group\tbench\titers\tmin_us\tmean_us\tmax_us");
            self.header_printed = true;
        }
        black_box(f()); // warm-up: page in code and data
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        let mean = total / self.iters;
        println!(
            "{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}",
            self.group,
            name,
            self.iters,
            min.as_secs_f64() * 1e6,
            mean.as_secs_f64() * 1e6,
            max.as_secs_f64() * 1e6,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_closure() {
        let mut h = TimingHarness::new("unit");
        let mut calls = 0u32;
        h.bench("count", || {
            calls += 1;
            calls
        });
        // one warm-up + iters timed calls
        assert_eq!(calls, 1 + bench_iters());
    }
}
