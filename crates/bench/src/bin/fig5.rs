//! Figure 5: the subject thread's normalized IPC (top), average memory
//! read latency (middle), and data-bus utilization (bottom) when
//! co-scheduled with the aggressive `art` background thread on a two-core
//! CMP, under FR-FCFS, FR-VFTF, and FQ-VFTF. IPC is normalized to the same
//! benchmark on a private memory system time-scaled ×2.

use fqms_bench::{f, header, paper_schedulers, row, run_length, seed, two_core_sweep};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let entries = two_core_sweep(&paper_schedulers(), len, seed);
    header(&[
        "subject",
        "scheduler",
        "subject_norm_ipc",
        "subject_avg_read_latency_cpu",
        "subject_bus_utilization",
    ]);
    for e in &entries {
        row(&[
            e.subject.clone(),
            e.scheduler.to_string(),
            f(e.subject_norm_ipc()),
            f(e.metrics.threads[0].avg_read_latency),
            f(e.metrics.threads[0].bus_utilization),
        ]);
    }
    // Summary lines (the paper's headline claims for this figure).
    for sched in paper_schedulers() {
        let norm: Vec<f64> = entries
            .iter()
            .filter(|e| e.scheduler == sched)
            .map(|e| e.subject_norm_ipc())
            .collect();
        let below_qos = norm.iter().filter(|&&x| x < 0.98).count();
        let mean = norm.iter().sum::<f64>() / norm.len() as f64;
        let min = norm.iter().copied().fold(f64::INFINITY, f64::min);
        eprintln!(
            "# {sched}: mean subject norm IPC {:.3}, min {:.3}, below QoS on {below_qos}/{} workloads",
            mean,
            min,
            norm.len()
        );
    }
}
