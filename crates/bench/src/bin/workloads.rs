//! Prints the twenty shipped workload profiles (the SPEC 2000 stand-ins)
//! with their tuned parameters, in Figure 4 order.

use fqms::prelude::*;
use fqms_bench::{header, row};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    header(&[
        "benchmark",
        "work_per_access",
        "footprint",
        "row_locality",
        "dependence",
        "write_fraction",
        "burstiness",
        "burst_len",
    ]);
    for p in &SPEC_PROFILES {
        let footprint = if p.footprint_bytes >= 1024 * 1024 {
            format!("{}M", p.footprint_bytes / (1024 * 1024))
        } else {
            format!("{}K", p.footprint_bytes / 1024)
        };
        row(&[
            p.name.to_string(),
            format!("{}", p.work_per_access),
            footprint,
            format!("{}", p.row_locality),
            format!("{}", p.dependence),
            format!("{}", p.write_fraction),
            format!("{}", p.burstiness),
            format!("{}", p.burst_len),
        ]);
    }
    eprintln!("# see fqms-workloads::spec for the tuning rationale (Figure 4 shape)");
}
