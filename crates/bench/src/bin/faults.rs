//! Fault-injection sweep: graceful degradation under deterministic
//! faults (extension study, ISSUE 4).
//!
//! For every fault class (plus a fault-free baseline) the starvation
//! adversarial mix is run under FR-FCFS and FQ-VFTF with the starvation
//! watchdog armed. The table reports how each scheduler's QoS behaviour
//! degrades: FQ-VFTF's victim latency stays bounded and the watchdog
//! stays dark, while FR-FCFS keeps starving its victim — surfaced as
//! watchdog trips through the observability layer, never as a hang.
//! Every faulted run is replayed to confirm the injection is
//! reproducible, and the fault-free baseline is checked bit-identical to
//! a run with an explicitly empty plan.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_dram::device::Geometry;
use fqms_memctrl::prelude::*;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};

/// Watchdog threshold in DRAM cycles (see the fault differential suite:
/// above FQ-VFTF's worst-case victim latency, below FR-FCFS's episodes).
const WATCHDOG: u64 = 300;

fn spec_for(kind: SchedulerKind) -> EngineSpec {
    let mut spec = EngineSpec::paper(1, 3);
    spec.config.set_scheduler(kind);
    spec.config.starvation_threshold = Some(WATCHDOG);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec
}

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    // Scale the adversarial schedule with the run budget.
    let gen_cycles = (len.instructions / 2).clamp(10_000, 200_000);
    let events = adversarial_workload(&Geometry::paper(), 3, gen_cycles, seed);

    header(&[
        "fault",
        "scheduler",
        "faults_injected",
        "victim_reads",
        "victim_lat_mean",
        "victim_lat_max",
        "victim_starvations",
        "dropped",
        "rejected",
        "nacks",
        "completed",
    ]);

    let classes: Vec<(&str, Option<FaultKind>)> = std::iter::once(("none", None))
        .chain(FaultKind::ALL.into_iter().map(|k| (k.name(), Some(k))))
        .collect();
    for (name, class) in classes {
        let plan = class.map(|kind| {
            let end = gen_cycles.saturating_sub(gen_cycles / 4).max(2);
            FaultPlan::new(seed).with(kind, FaultWindow::new(end / 8, end), 0.002, 150)
        });
        for sched in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
            let mut spec = spec_for(sched);
            spec.fault_plan = plan.clone();
            if class == Some(FaultKind::NackStorm) {
                // NACK storms are the one class that can wedge an
                // infinite-retry port; bound it (graceful degradation).
                spec.retry = RetryPolicy::bounded(16, 2, 64);
            }
            let report = simulate_serial(&spec, &events)
                .unwrap_or_else(|e| panic!("faults: invalid spec for {sched} under {name}: {e}"));
            let replay = simulate_serial(&spec, &events)
                .unwrap_or_else(|e| panic!("faults: invalid replay spec for {sched}: {e}"));
            assert_eq!(
                report, replay,
                "fault injection not reproducible ({sched} under {name}, seed {seed})"
            );
            if class.is_none() {
                // Fault-free acceptance: an explicitly empty plan must be
                // bit-identical to no plan at all.
                let mut none_spec = spec.clone();
                none_spec.fault_plan = Some(FaultPlan::none());
                let none_report = simulate_serial(&none_spec, &events)
                    .unwrap_or_else(|e| panic!("faults: invalid empty-plan spec: {e}"));
                assert_eq!(
                    report, none_report,
                    "empty fault plan perturbed the {sched} baseline (seed {seed})"
                );
            }
            fqms::telemetry::note_controller_cycles(report.stepped_cycles, report.skipped_cycles);
            let obs = report
                .observations
                .as_ref()
                .expect("faults: spec enables observation");
            let victim = obs.metrics.thread(0);
            let label = format!("faults-{name}");
            fqms::sidecar::append(&label, sched.name(), &obs.metrics);
            row(&[
                name.to_string(),
                sched.name().to_string(),
                obs.metrics.faults_injected.to_string(),
                victim.read_latency.count().to_string(),
                f(victim.read_latency.mean()),
                victim.read_latency.max().to_string(),
                report.per_thread[0].starvations.to_string(),
                report
                    .per_thread
                    .iter()
                    .map(|t| t.requests_dropped)
                    .sum::<u64>()
                    .to_string(),
                report
                    .rejected
                    .iter()
                    .map(Vec::len)
                    .sum::<usize>()
                    .to_string(),
                report
                    .per_thread
                    .iter()
                    .map(|t| t.nacks)
                    .sum::<u64>()
                    .to_string(),
                report.total_completed().to_string(),
            ]);
        }
    }
}
