//! Extension study: DRAM energy cost of QoS. Compares the schedulers'
//! energy breakdown and energy-per-access on the heavy four-core workload
//! — quantifying the paper's observation that providing QoS increases
//! bank activity (more activates/precharges per useful burst).

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_dram::power::{estimate_energy, PowerParams};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let mix = four_core_workloads()[0];
    let p = PowerParams::ddr2_800_typical();

    header(&[
        "scheduler",
        "energy_total_uJ",
        "act_pre_uJ",
        "burst_uJ",
        "background_uJ",
        "energy_per_access_nJ",
        "row_hit_rate",
    ]);
    for sched in [
        SchedulerKind::FrFcfs,
        SchedulerKind::FrVftf,
        SchedulerKind::FqVftf,
    ] {
        let mut sys = SystemBuilder::new()
            .scheduler(sched)
            .seed(seed)
            .workloads(mix.iter().copied())
            .build()
            .unwrap_or_else(|e| {
                panic!(
                    "energy: invalid system config for four-core workload 1 under {sched} \
                     (seed {seed}): {e}"
                )
            });
        let m = sys.run(len.instructions, len.max_dram_cycles);
        let mc = sys.controller();
        let mut total = fqms_dram::power::EnergyBreakdown::default();
        let mut reads = 0u64;
        let mut writes = 0u64;
        for ch in 0..mc.num_channels() {
            let dram = mc.channel(ch).dram();
            let e = estimate_energy(dram, m.elapsed_dram_cycles, &p);
            total.activate += e.activate;
            total.read += e.read;
            total.write += e.write;
            total.refresh += e.refresh;
            total.background += e.background;
            let (_, _, r, w, _) = dram.command_counts();
            reads += r;
            writes += w;
        }
        let hit_rate = {
            let agg: Vec<_> = m.threads.iter().map(|t| t.row_hit_rate).collect();
            agg.iter().sum::<f64>() / agg.len() as f64
        };
        row(&[
            sched.to_string(),
            f(total.total() / 1000.0),
            f(total.activate / 1000.0),
            f((total.read + total.write) / 1000.0),
            f(total.background / 1000.0),
            f(total.energy_per_access(reads, writes)),
            f(hit_rate),
        ]);
    }
    eprintln!("# expectation: FQ-VFTF pays more activate energy per access (lower row-hit rate) for its QoS");
}
