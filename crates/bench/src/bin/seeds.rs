//! Seed-sensitivity study: the headline two-core QoS metrics across
//! multiple random seeds, reporting mean and spread — the reproduction's
//! equivalent of error bars. The paper's conclusions should hold for
//! *every* seed, not just the default.

use fqms::prelude::*;
use fqms_bench::run_length;
use fqms_sim::stats::Summary;

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seeds: Vec<u64> = (1..=5).map(|k| k * 1000 + 7).collect();
    let subjects = ["swim", "galgel", "ammp", "vpr"];
    let art = by_name("art").unwrap_or_else(|| panic!("seeds: no workload profile named \"art\""));

    println!("#subject\tscheduler\tseeds\tnorm_ipc_mean\tnorm_ipc_min\tnorm_ipc_max");
    let mut fq_all = Summary::new();
    let mut fr_all = Summary::new();
    for name in subjects {
        let subject =
            by_name(name).unwrap_or_else(|| panic!("seeds: no workload profile named \"{name}\""));
        for sched in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
            let mut s = Summary::new();
            for &seed in &seeds {
                let base = run_private_baseline(
                    subject,
                    2,
                    len.instructions,
                    len.max_dram_cycles * 2,
                    seed,
                );
                let m = two_core_run(subject, art, sched, len, seed);
                let norm = m.threads[0].ipc / base.ipc;
                s.record(norm);
                match sched {
                    SchedulerKind::FqVftf => fq_all.record(norm),
                    _ => fr_all.record(norm),
                }
            }
            println!(
                "{name}\t{sched}\t{}\t{:.4}\t{:.4}\t{:.4}",
                s.count(),
                s.mean(),
                s.min(),
                s.max()
            );
        }
    }
    eprintln!(
        "# across all seeds/subjects: FR-FCFS norm IPC in [{:.2}, {:.2}], FQ-VFTF in [{:.2}, {:.2}]",
        fr_all.min(),
        fr_all.max(),
        fq_all.min(),
        fq_all.max()
    );
    if fq_all.min() >= 0.9 {
        eprintln!(
            "# QoS conclusion is seed-robust (FQ-VFTF min {:.2} >= 0.9)",
            fq_all.min()
        );
    } else {
        eprintln!(
            "# WARNING: QoS violated for some seed (min {:.2})",
            fq_all.min()
        );
    }
}
