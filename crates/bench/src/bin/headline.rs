//! The paper's headline numbers (abstract / Sections 1 and 5), all in one
//! report:
//!
//! * two-core: QoS on 18/19 workloads (the miss, vpr, within 6%), mean
//!   +31% (max +76%) system performance over FR-FCFS, ~92% data-bus
//!   utilization;
//! * four-core: QoS for all threads of all workloads, mean +14% (max
//!   +41%), normalized target-bandwidth variance 0.2 → 0.0058.

use fqms::prelude::*;
use fqms_bench::{paper_schedulers, run_length, seed, two_core_sweep};
use fqms_sim::stats::Summary;

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();

    println!("== Two-core headline (vs paper: QoS 18/19, +31% avg, +76% max, 92% bus) ==");
    let entries = two_core_sweep(&paper_schedulers(), len, seed);
    let fq: Vec<_> = entries
        .iter()
        .filter(|e| e.scheduler == SchedulerKind::FqVftf)
        .collect();
    let qos_met = fq.iter().filter(|e| e.subject_norm_ipc() >= 0.98).count();
    let worst = fq
        .iter()
        .map(|e| e.subject_norm_ipc())
        .fold(f64::INFINITY, f64::min);
    let mut improvements = Vec::new();
    let mut bus = 0.0;
    for e in &fq {
        let base = entries
            .iter()
            .find(|b| b.subject == e.subject && b.scheduler == SchedulerKind::FrFcfs)
            .unwrap_or_else(|| {
                panic!(
                    "headline: two-core sweep (seed {seed}) has no FR-FCFS baseline entry \
                     for subject \"{}\"",
                    e.subject
                )
            });
        improvements.push(e.hmean_norm_ipc() / base.hmean_norm_ipc() - 1.0);
        bus += e.metrics.data_bus_utilization;
    }
    let avg_imp = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max_imp = improvements
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "QoS met on {}/{} workloads (worst normalized IPC {:.2})",
        qos_met,
        fq.len(),
        worst
    );
    println!(
        "FQ-VFTF improvement over FR-FCFS: avg {:+.0}%, max {:+.0}%",
        100.0 * avg_imp,
        100.0 * max_imp
    );
    println!(
        "FQ-VFTF avg data-bus utilization: {:.0}%",
        100.0 * bus / fq.len() as f64
    );

    println!();
    println!("== Four-core headline (vs paper: QoS all, +14% avg, +41% max, var .2 -> .0058) ==");
    let workloads = four_core_workloads();
    let mut improvements = Vec::new();
    let mut qos_misses = 0usize;
    let mut var = [Summary::new(), Summary::new()];
    for mix in workloads.iter() {
        let baselines: Vec<f64> = mix
            .iter()
            .map(|p| {
                run_private_baseline(*p, 4, len.instructions, len.max_dram_cycles * 4, seed).ipc
            })
            .collect();
        let solos: Vec<ThreadMetrics> = mix
            .iter()
            .map(|p| run_solo(*p, len.instructions, len.max_dram_cycles, seed))
            .collect();
        let solo_utils: Vec<f64> = solos.iter().map(|s| s.bus_utilization).collect();
        let targets = target_utilizations(&solo_utils, &[0.25; 4]);
        let mut hm = [0.0f64; 2];
        for (si, sched) in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf]
            .iter()
            .enumerate()
        {
            let m = four_core_run(mix, *sched, len, seed);
            hm[si] = m.harmonic_mean_normalized_ipc(&baselines);
            for (t, tm) in m.threads.iter().enumerate() {
                if targets[t] > 0.0 {
                    var[si].record(tm.bus_utilization / targets[t]);
                }
                if *sched == SchedulerKind::FqVftf && tm.ipc / baselines[t] < 0.98 {
                    qos_misses += 1;
                }
            }
        }
        improvements.push(hm[1] / hm[0] - 1.0);
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max = improvements
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    println!("FQ-VFTF QoS misses across all 16 threads: {qos_misses}");
    println!(
        "FQ-VFTF improvement over FR-FCFS: avg {:+.0}%, max {:+.0}%",
        100.0 * avg,
        100.0 * max
    );
    println!(
        "normalized target-utilization variance: FR-FCFS {:.4}, FQ-VFTF {:.4}",
        var[0].population_variance(),
        var[1].population_variance()
    );
}
