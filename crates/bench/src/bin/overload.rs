//! Overload-control study (ISSUE 10 figure bin): a latency-sensitive
//! QoS thread against three streaming-flood aggressors, swept over
//! control modes {none, throttle, throttle+shed} × schedulers
//! {FQ-VFTF, FR-FCFS, BLISS}, with an unloaded baseline per scheduler.
//! The admission throttle (margin 1.0: every unprotected thread is
//! token-gated under flood) and the tiered shedder act in front of the
//! scheduler, so the QoS thread's queue — and therefore its tail
//! latency — stays close to the unloaded case even while the flood is
//! refused at the door.
//!
//! Emits one TSV row per (scheduler, mode) cell on stdout and
//! `BENCH_pr10.json` (override with `FQMS_BENCH_PR10`), written
//! atomically so a killed run never leaves a torn file. The binary
//! doubles as the release smoke gate and exits nonzero when:
//!
//! * `flood_tail_bounded` fails — with control on, the QoS thread's p99
//!   under flood exceeds `TAIL_FACTOR` × its unloaded p99, or the QoS
//!   thread completes nothing,
//! * `conservation` fails — any cell violates
//!   `completed + dropped + rejected + shed + unsubmitted == submitted`,
//! * `control_effective` fails — a control-on flood cell never
//!   throttled (or, with shedding armed, never shed): a vacuous sweep.

use fqms_bench::{header, row, run_length, seed};
use fqms_memctrl::prelude::*;
use fqms_sim::snapshot::write_atomic;

/// One QoS thread plus three streaming aggressors.
const THREADS: usize = 4;
/// Admission-throttle knobs: hogs get `TOKENS` admissions per `PERIOD`.
const PERIOD: u64 = 1_000;
const TOKENS: u64 = 8;
const MARGIN: f64 = 1.0;
/// Shed-detector knobs (window, occupancy enter/exit, NACK enter/exit).
const SHED: (u64, usize, usize, u64, u64) = (500, 24, 8, 48, 8);
/// The release gate: QoS p99 under flood with control on must stay
/// within this factor of the unloaded p99. The first throttle period is
/// necessarily uncontrolled (hogs are classified at the first replenish
/// boundary), so the QoS tail always carries a startup transient.
const TAIL_FACTOR: u64 = 12;

/// Overload-control modes swept per scheduler.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Unloaded,
    None,
    Throttle,
    ThrottleShed,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Unloaded => "unloaded",
            Mode::None => "none",
            Mode::Throttle => "throttle",
            Mode::ThrottleShed => "throttle+shed",
        }
    }

    fn overload(self) -> Option<OverloadConfig> {
        let throttled = OverloadConfig::new(THREADS)
            .throttled(PERIOD, TOKENS, MARGIN)
            .protect(0);
        match self {
            Mode::Unloaded | Mode::None => None,
            Mode::Throttle => Some(throttled),
            Mode::ThrottleShed => {
                let (w, oe, ox, ne, nx) = SHED;
                Some(throttled.shedding(w, oe, ox, ne, nx))
            }
        }
    }
}

/// Everything one (scheduler, mode) cell reports.
struct Cell {
    scheduler: &'static str,
    mode: Mode,
    qos_count: usize,
    qos_p50: u64,
    qos_p99: u64,
    qos_max: u64,
    completed: usize,
    dropped: u64,
    rejected: usize,
    shed: usize,
    throttled: u64,
    saturation_entries: u64,
    unsubmitted: usize,
    conserves: bool,
}

impl Cell {
    fn tsv(&self) -> Vec<String> {
        vec![
            self.scheduler.to_string(),
            self.mode.label().to_string(),
            self.qos_count.to_string(),
            self.qos_p50.to_string(),
            self.qos_p99.to_string(),
            self.qos_max.to_string(),
            self.completed.to_string(),
            self.dropped.to_string(),
            self.rejected.to_string(),
            self.shed.to_string(),
            self.throttled.to_string(),
            self.saturation_entries.to_string(),
            self.unsubmitted.to_string(),
        ]
    }

    fn json(&self) -> String {
        format!(
            "{{\"scheduler\":\"{}\",\"mode\":\"{}\",\"qos_count\":{},\
             \"qos_p50\":{},\"qos_p99\":{},\"qos_max\":{},\"completed\":{},\
             \"dropped\":{},\"rejected\":{},\"shed\":{},\"throttled\":{},\
             \"saturation_entries\":{},\"unsubmitted\":{}}}",
            self.scheduler,
            self.mode.label(),
            self.qos_count,
            self.qos_p50,
            self.qos_p99,
            self.qos_max,
            self.completed,
            self.dropped,
            self.rejected,
            self.shed,
            self.throttled,
            self.saturation_entries,
            self.unsubmitted,
        )
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one cell: builds the spec for (scheduler, mode), simulates the
/// matching workload, and summarises the QoS thread's latency plus the
/// full admission ledger.
fn run_cell(
    scheduler: SchedulerKind,
    name: &'static str,
    mode: Mode,
    events: &[SubmitEvent],
) -> Cell {
    let mut spec = EngineSpec::paper(1, THREADS);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec.max_cycles = 20_000_000;
    // One retry per head, honouring `retry_after`: gated heads wait out
    // one throttle period then abandon, so every mode fully drains.
    spec.retry = RetryPolicy::bounded(1, 1, 8);
    spec.config.set_scheduler(scheduler);
    if let Some(ov) = mode.overload() {
        spec.config = spec.config.with_overload(ov);
    }
    let report = simulate_serial(&spec, events)
        .unwrap_or_else(|e| panic!("overload: invalid spec for {name}/{}: {e}", mode.label()));
    fqms::telemetry::note_controller_cycles(report.stepped_cycles, report.skipped_cycles);
    let obs = report
        .observations
        .as_ref()
        .expect("overload: spec enables observation");
    fqms::sidecar::append(
        "overload",
        &format!("{name}/{}", mode.label()),
        &obs.metrics,
    );

    let mut qos: Vec<u64> = report
        .completions
        .iter()
        .flatten()
        .filter(|c| c.thread.as_u32() == 0)
        .map(|c| c.latency())
        .collect();
    qos.sort_unstable();
    let dropped: u64 = report.per_thread.iter().map(|t| t.requests_dropped).sum();
    let accounted = report.total_completed()
        + dropped as usize
        + report.total_rejected()
        + report.total_shed()
        + report.unsubmitted;
    Cell {
        scheduler: name,
        mode,
        qos_count: qos.len(),
        qos_p50: percentile(&qos, 50.0),
        qos_p99: percentile(&qos, 99.0),
        qos_max: qos.last().copied().unwrap_or(0),
        completed: report.total_completed(),
        dropped,
        rejected: report.total_rejected(),
        shed: report.total_shed(),
        throttled: report.per_thread.iter().map(|t| t.throttle_nacks).sum(),
        saturation_entries: obs.metrics.saturation_entries,
        unsubmitted: report.unsubmitted,
        conserves: accounted == events.len(),
    }
}

fn main() {
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let cycles = (len.instructions / 2).clamp(20_000, 200_000);

    // The same arrival statistics in every cell: thread 0 is a light,
    // row-local QoS reader; threads 1..3 stream at 0.5 requests/cycle
    // each (30% writes) — far beyond the channel's service rate. The
    // unloaded baseline silences the streamers.
    let flood = interference_workload(THREADS as u32, cycles, 0.05, 0.5, seed);
    let unloaded = interference_workload(THREADS as u32, cycles, 0.05, 0.0, seed);

    header(&[
        "scheduler",
        "mode",
        "qos_count",
        "qos_p50",
        "qos_p99",
        "qos_max",
        "completed",
        "dropped",
        "rejected",
        "shed",
        "throttled",
        "sat_entries",
        "unsubmitted",
    ]);

    let schedulers = [
        (SchedulerKind::FqVftf, "fq-vftf"),
        (SchedulerKind::FrFcfs, "fr-fcfs"),
        (SchedulerKind::Bliss, "bliss"),
    ];
    let mut gate_failures = Vec::new();
    let mut cells = Vec::new();
    for (kind, name) in schedulers {
        let mut unloaded_p99 = 0u64;
        let mut uncontrolled_p99 = 0u64;
        for mode in [
            Mode::Unloaded,
            Mode::None,
            Mode::Throttle,
            Mode::ThrottleShed,
        ] {
            let events = if mode == Mode::Unloaded {
                &unloaded
            } else {
                &flood
            };
            let cell = run_cell(kind, name, mode, events);
            if !cell.conserves {
                gate_failures.push(format!(
                    "{name}/{}: conservation violated ({} submitted)",
                    mode.label(),
                    events.len()
                ));
            }
            match mode {
                Mode::Unloaded => {
                    unloaded_p99 = cell.qos_p99;
                    if cell.qos_count == 0 {
                        gate_failures.push(format!("{name}: unloaded QoS completed nothing"));
                    }
                }
                Mode::None => uncontrolled_p99 = cell.qos_p99,
                Mode::Throttle | Mode::ThrottleShed => {
                    if cell.qos_count == 0 {
                        gate_failures.push(format!(
                            "{name}/{}: QoS thread completed nothing under flood",
                            mode.label()
                        ));
                    } else if cell.qos_p99 > TAIL_FACTOR * unloaded_p99.max(1) {
                        gate_failures.push(format!(
                            "{name}/{}: QoS p99 {} exceeds {TAIL_FACTOR}x unloaded p99 {}",
                            mode.label(),
                            cell.qos_p99,
                            unloaded_p99
                        ));
                    } else if cell.qos_p99 > uncontrolled_p99 {
                        gate_failures.push(format!(
                            "{name}/{}: QoS p99 {} worse than the uncontrolled flood's {}",
                            mode.label(),
                            cell.qos_p99,
                            uncontrolled_p99
                        ));
                    }
                    if cell.throttled == 0 {
                        gate_failures.push(format!(
                            "{name}/{}: throttle never fired — vacuous control cell",
                            mode.label()
                        ));
                    }
                    if mode == Mode::ThrottleShed && cell.shed == 0 {
                        gate_failures.push(format!(
                            "{name}/throttle+shed: shedder never fired — vacuous control cell"
                        ));
                    }
                }
            }
            row(&cell.tsv());
            cells.push(cell);
        }
    }

    let conservation = !gate_failures.iter().any(|g| g.contains("conservation"));
    let tail_bounded = !gate_failures
        .iter()
        .any(|g| g.contains("p99") || g.contains("completed nothing"));
    let effective = !gate_failures.iter().any(|g| g.contains("vacuous"));
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"runlen\": \"{}\",\n  \"cycles\": {cycles},\n  \
         \"threads\": {THREADS},\n  \"period\": {PERIOD},\n  \"tokens\": {TOKENS},\n  \
         \"margin\": {MARGIN},\n  \"tail_factor\": {TAIL_FACTOR},\n  \"cells\": [\n    {}\n  ],\n  \
         \"gates\": {{\n    \"flood_tail_bounded\": {tail_bounded},\n    \
         \"conservation\": {conservation},\n    \"control_effective\": {effective}\n  }}\n}}\n",
        std::env::var("FQMS_RUNLEN").unwrap_or_else(|_| "standard".into()),
        cells
            .iter()
            .map(Cell::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    let out = std::env::var("FQMS_BENCH_PR10").unwrap_or_else(|_| "BENCH_pr10.json".into());
    write_atomic(std::path::Path::new(&out), json.as_bytes())
        .unwrap_or_else(|e| panic!("overload: cannot write {out}: {e}"));
    eprintln!("# overload JSON written to {out}");

    if !gate_failures.is_empty() {
        for g in &gate_failures {
            eprintln!("GATE FAILED: {g}");
        }
        std::process::exit(1);
    }
}
