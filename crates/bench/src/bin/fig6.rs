//! Figure 6: normalized IPC of the `art` background thread in the
//! two-core sweep of Figure 5. Demanding subjects force an even bandwidth
//! split (background normalized IPC ≈ 1); light subjects leave excess
//! bandwidth that the fair scheduler hands to the background thread
//! (normalized IPC rises above 1).

use fqms_bench::{f, header, paper_schedulers, row, run_length, seed, two_core_sweep};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let entries = two_core_sweep(&paper_schedulers(), len, seed);
    header(&[
        "subject",
        "scheduler",
        "background_norm_ipc",
        "background_bus_utilization",
    ]);
    for e in &entries {
        row(&[
            e.subject.clone(),
            e.scheduler.to_string(),
            f(e.background_norm_ipc()),
            f(e.metrics.threads[1].bus_utilization),
        ]);
    }
}
