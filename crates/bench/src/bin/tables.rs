//! Tables 3-6: the static configuration tables of the paper, printed from
//! the live constants the simulator actually uses (so a drift between the
//! paper's values and the code is impossible to miss).

use fqms_cpu::core::CoreConfig;
use fqms_dram::bank::BankState;
use fqms_dram::command::{CommandKind, RowId};
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::vtms::{bank_service, update_service};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let t = TimingParams::ddr2_800();

    println!("== Table 3: bank service B.L by bank state ==");
    let row = RowId::new(7);
    println!(
        "open - bank conflict\ttRP+tRCD+tCL\t{}",
        bank_service(BankState::Open(RowId::new(9)), row, &t)
    );
    println!(
        "closed\ttRCD+tCL\t{}",
        bank_service(BankState::Closed, row, &t)
    );
    println!(
        "open - row buffer hit\ttCL\t{}",
        bank_service(BankState::Open(row), row, &t)
    );

    println!();
    println!("== Table 4: VTMS update service times per SDRAM command ==");
    for kind in [
        CommandKind::Precharge,
        CommandKind::Activate,
        CommandKind::Read,
        CommandKind::Write,
    ] {
        let (bank, chan) = update_service(kind, &t);
        println!(
            "{kind}\tB_cmd.L={bank}\tC_cmd.L={}",
            chan.map_or("n/a".to_string(), |c| c.to_string())
        );
    }

    println!();
    println!("== Table 5: processor / system configuration ==");
    let c = CoreConfig::paper();
    println!("issue width\t{}", c.issue_width);
    println!("reorder buffer\t{} entries", c.rob_size);
    println!(
        "D-cache\t{} KB, {}-way, {} B lines, {}-cycle, {} MSHRs",
        c.l1d.size_bytes / 1024,
        c.l1d.ways,
        c.l1d.line_bytes,
        c.l1d.latency,
        c.mshrs
    );
    println!(
        "L2\t{} KB private, {}-way, {} B lines, {}-cycle",
        c.l2.size_bytes / 1024,
        c.l2.ways,
        c.l2.line_bytes,
        c.l2.latency
    );
    println!(
        "memory controller\t16 transaction + 8 write buffer entries per thread, closed page policy"
    );
    let g = Geometry::paper();
    println!(
        "SDRAM\t{} channel(s), {} rank(s), {} banks",
        1, g.ranks, g.banks
    );

    println!();
    println!("== Table 6: Micron DDR2-800 timing constraints (DRAM cycles) ==");
    println!("tRCD\t{}", t.t_rcd);
    println!("tCL\t{}", t.t_cl);
    println!("tWL\t{}", t.t_wl);
    println!("tCCD\t{}", t.t_ccd);
    println!("tWTR\t{}", t.t_wtr);
    println!("tWR\t{}", t.t_wr);
    println!("tRTP\t{}", t.t_rtp);
    println!("tRP\t{}", t.t_rp);
    println!("tRRD\t{}", t.t_rrd);
    println!("tRAS\t{}", t.t_ras);
    println!("tRC\t{}", t.t_rc);
    println!("BL/2\t{}", t.burst);
    println!("tRFC\t{}", t.t_rfc);
    println!("tREFI\t{}", t.t_refi);
}
