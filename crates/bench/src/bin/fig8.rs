//! Figure 8: normalized IPC (top) and data-bus utilization (bottom) of the
//! individual threads in the four four-processor workloads, under FR-FCFS
//! and FQ-VFTF. IPC is normalized to the benchmark running alone on a
//! private memory system time-scaled ×4. Also prints the per-workload
//! performance improvement the paper quotes (41%, -2%, -2%, 14%-shaped).

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let workloads = four_core_workloads();
    header(&[
        "workload",
        "thread",
        "scheduler",
        "norm_ipc",
        "bus_utilization",
        "avg_read_latency_cpu",
    ]);
    let schedulers = [SchedulerKind::FrFcfs, SchedulerKind::FqVftf];
    let mut improvements = Vec::new();
    for (w, mix) in workloads.iter().enumerate() {
        let baselines: Vec<f64> = mix
            .iter()
            .map(|p| {
                run_private_baseline(*p, 4, len.instructions, len.max_dram_cycles * 4, seed).ipc
            })
            .collect();
        let mut hmeans = [0.0f64; 2];
        for (si, &sched) in schedulers.iter().enumerate() {
            let m = four_core_run(mix, sched, len, seed);
            for (t, tm) in m.threads.iter().enumerate() {
                row(&[
                    format!("WL{}", w + 1),
                    tm.name.clone(),
                    sched.to_string(),
                    f(tm.ipc / baselines[t]),
                    f(tm.bus_utilization),
                    f(tm.avg_read_latency),
                ]);
            }
            hmeans[si] = m.harmonic_mean_normalized_ipc(&baselines);
        }
        let imp = hmeans[1] / hmeans[0] - 1.0;
        improvements.push(imp);
        eprintln!(
            "# WL{}: FQ-VFTF improvement over FR-FCFS {:+.1}%",
            w + 1,
            100.0 * imp
        );
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max = improvements
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    eprintln!(
        "# overall: avg improvement {:+.1}%, max {:+.1}% (paper: +14% avg, +41% max)",
        100.0 * avg,
        100.0 * max
    );
}
