//! Figure 4: data-bus utilization of each benchmark running alone on a
//! single processor with the FR-FCFS memory scheduler, ordered
//! most-aggressive first.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed, solo_metrics};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    header(&[
        "benchmark",
        "bus_utilization",
        "ipc",
        "avg_read_latency_cpu",
        "mem_reads",
        "mem_writes",
    ]);
    for m in solo_metrics(&SPEC_PROFILES, len, seed) {
        row(&[
            m.name.clone(),
            f(m.bus_utilization),
            f(m.ipc),
            f(m.avg_read_latency),
            m.mem_reads.to_string(),
            m.mem_writes.to_string(),
        ]);
    }
}
