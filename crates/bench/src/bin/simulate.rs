//! Ad-hoc simulation driver: compose any mix of the shipped workloads
//! with any scheduler/share/channel configuration from the command line.
//!
//! ```text
//! cargo run --release -p fqms-bench --bin simulate -- \
//!     --scheduler fq-vftf --workloads art,vpr --shares 0.5,0.5 \
//!     --channels 1 --instructions 300000 [--seed 42] [--open-rows]
//! ```

use fqms::prelude::*;
use std::process::exit;

struct Args {
    scheduler: SchedulerKind,
    workloads: Vec<String>,
    shares: Option<Vec<f64>>,
    channels: usize,
    instructions: u64,
    seed: u64,
    open_rows: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate --workloads a,b,... [--scheduler fcfs|fr-fcfs|fr-vftf|fq-vftf]\n\
         \x20              [--shares f,f,...] [--channels N] [--instructions N]\n\
         \x20              [--seed N] [--open-rows]\n\
         workloads: {}",
        SPEC_PROFILES
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    exit(2)
}

fn parse_scheduler(s: &str) -> Option<SchedulerKind> {
    match s.to_ascii_lowercase().as_str() {
        "fcfs" => Some(SchedulerKind::Fcfs),
        "fr-fcfs" | "frfcfs" => Some(SchedulerKind::FrFcfs),
        "fr-vftf" | "frvftf" => Some(SchedulerKind::FrVftf),
        "fq-vftf" | "fqvftf" | "fq" => Some(SchedulerKind::FqVftf),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        scheduler: SchedulerKind::FqVftf,
        workloads: Vec::new(),
        shares: None,
        channels: 1,
        instructions: 300_000,
        seed: 42,
        open_rows: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> &str {
            *i += 1;
            argv.get(*i).map(String::as_str).unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--scheduler" => {
                args.scheduler = parse_scheduler(take(&mut i)).unwrap_or_else(|| usage());
            }
            "--workloads" => {
                args.workloads = take(&mut i).split(',').map(str::to_string).collect();
            }
            "--shares" => {
                args.shares = Some(
                    take(&mut i)
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--channels" => args.channels = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--instructions" => {
                args.instructions = take(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => args.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--open-rows" => args.open_rows = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }
    if args.workloads.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let mut builder = SystemBuilder::new()
        .scheduler(args.scheduler)
        .channels(args.channels)
        .seed(args.seed)
        .row_policy(if args.open_rows {
            RowPolicy::Open
        } else {
            RowPolicy::Closed
        });
    for name in &args.workloads {
        let Some(profile) = by_name(name) else {
            eprintln!("unknown workload: {name}");
            usage();
        };
        builder = builder.workload(profile);
    }
    if let Some(shares) = args.shares.clone() {
        builder = builder.shares(shares);
    }
    let mut system = match builder.build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("configuration error: {e}");
            exit(1);
        }
    };
    let metrics = system.run(
        args.instructions,
        args.instructions.saturating_mul(200).max(1_000_000),
    );
    println!(
        "# scheduler={} channels={} seed={} instructions={}",
        args.scheduler, args.channels, args.seed, args.instructions
    );
    println!("#thread\tname\tipc\tavg_read_latency\tp95_latency\tbus_share\tmem_reads\tmem_writes");
    for (i, t) in metrics.threads.iter().enumerate() {
        println!(
            "{i}\t{}\t{:.4}\t{:.1}\t{}\t{:.4}\t{}\t{}",
            t.name,
            t.ipc,
            t.avg_read_latency,
            t.p95_read_latency,
            t.bus_utilization,
            t.mem_reads,
            t.mem_writes
        );
    }
    println!(
        "# aggregate: data_bus {:.3}, banks {:.3}, {} dram-cycles",
        metrics.data_bus_utilization, metrics.bank_utilization, metrics.elapsed_dram_cycles
    );
}
