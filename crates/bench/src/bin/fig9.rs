//! Figure 9: normalized read latency versus normalized data-bus
//! utilization for every thread of the four-processor workloads (Figure
//! 8), under FR-FCFS and FQ-VFTF.
//!
//! Read latency is normalized to the benchmark's solo run; bus utilization
//! is normalized to the thread's *target* utilization — min(solo demand,
//! share + fair share of excess), computed by the paper's incremental
//! fair-share allocation. The paper's headline: FR-FCFS's normalized
//! utilization has variance 0.2; FQ-VFTF's clusters near 1 with variance
//! 0.0058.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_sim::stats::Summary;

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let workloads = four_core_workloads();
    header(&[
        "workload",
        "thread",
        "scheduler",
        "norm_bus_utilization",
        "norm_read_latency",
    ]);
    let schedulers = [SchedulerKind::FrFcfs, SchedulerKind::FqVftf];
    let mut summaries = vec![Summary::new(); schedulers.len()];
    for (w, mix) in workloads.iter().enumerate() {
        let solos: Vec<ThreadMetrics> = mix
            .iter()
            .map(|p| run_solo(*p, len.instructions, len.max_dram_cycles, seed))
            .collect();
        let solo_utils: Vec<f64> = solos.iter().map(|s| s.bus_utilization).collect();
        let targets = target_utilizations(&solo_utils, &[0.25; 4]);
        for (si, &sched) in schedulers.iter().enumerate() {
            let m = four_core_run(mix, sched, len, seed);
            for (t, tm) in m.threads.iter().enumerate() {
                let norm_util = if targets[t] > 0.0 {
                    tm.bus_utilization / targets[t]
                } else {
                    0.0
                };
                let norm_lat = if solos[t].avg_read_latency > 0.0 {
                    tm.avg_read_latency / solos[t].avg_read_latency
                } else {
                    0.0
                };
                summaries[si].record(norm_util);
                row(&[
                    format!("WL{}", w + 1),
                    tm.name.clone(),
                    sched.to_string(),
                    f(norm_util),
                    f(norm_lat),
                ]);
            }
        }
    }
    for (si, &sched) in schedulers.iter().enumerate() {
        let s = &summaries[si];
        eprintln!(
            "# {sched}: normalized bus utilization mean {:.3}, range [{:.2}, {:.2}], variance {:.4}",
            s.mean(),
            s.min(),
            s.max(),
            s.population_variance()
        );
    }
    eprintln!("# paper: FR-FCFS mean .88 range [.28, 2.1] variance .20; FQ-VFTF mean .88 range [.73, .98] variance .0058");
}
