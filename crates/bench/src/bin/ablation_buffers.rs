//! Ablation: buffer organisation (the paper's second future-work item).
//! The paper's static per-thread buffer partitions are compared against a
//! naive shared pool. With the pool, the aggressive background thread
//! occupies all admission slots, so the subject is starved *before* the
//! fair scheduler ever sees its requests — demonstrating that the paper's
//! per-thread back-pressure is a necessary ingredient of QoS, not an
//! implementation detail.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_memctrl::policy::BufferSharing;

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let art =
        by_name("art").unwrap_or_else(|| panic!("ablation_buffers: no workload profile \"art\""));
    // Four threads: the subject vs three aggressive streams. Three cores'
    // worth of in-flight demand (3 x 16 MSHRs + writebacks) oversubscribes
    // the pooled 64-entry transaction buffer, so shared-pool admission
    // becomes the bottleneck the scheduler cannot fix; with the paper's
    // partitions each aggressor saturates only its own 16 entries.
    header(&[
        "subject",
        "buffers",
        "subject_norm_ipc",
        "subject_nacks",
        "aggressors_bus",
    ]);
    for subject_name in ["vpr", "twolf", "galgel", "equake"] {
        let subject = by_name(subject_name)
            .unwrap_or_else(|| panic!("ablation_buffers: no workload profile \"{subject_name}\""));
        let base =
            run_private_baseline(subject, 4, len.instructions, len.max_dram_cycles * 4, seed);
        for (label, sharing) in [
            ("partitioned", BufferSharing::Partitioned),
            ("shared", BufferSharing::Shared),
        ] {
            let mut sys = SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .buffer_sharing(sharing)
                .seed(seed)
                .workload(subject)
                .workload(art)
                .workload(art)
                .workload(art)
                .build()
                .unwrap_or_else(|e| {
                    panic!(
                        "ablation_buffers: invalid system config for {subject_name} + 3x art, \
                         {label} buffers (seed {seed}): {e}"
                    )
                });
            let m = sys.run(len.instructions, len.max_dram_cycles);
            let nacks = sys
                .controller()
                .thread_stats(fqms_memctrl::request::ThreadId::new(0))
                .nacks;
            let aggressors: f64 = m.threads[1..].iter().map(|t| t.bus_utilization).sum();
            row(&[
                subject_name.to_string(),
                label.to_string(),
                f(m.threads[0].ipc / base.ipc),
                nacks.to_string(),
                f(aggressors),
            ]);
        }
    }
    eprintln!("# the shared pool moves contention to the admission path (NACK storms) where the scheduler cannot arbitrate");
}
