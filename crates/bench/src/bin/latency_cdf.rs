//! Per-class latency CDFs for the real-time mode (ISSUE 9 figure bin):
//! best-effort FQ-VFTF and FR-FCFS against the regulated mode (bank
//! partitioning + per-bank token-bucket budgets) on the same
//! budget-compliant workload, with the analytic WCET bound from
//! [`fqms_memctrl::wcet`] drawn alongside — plus a faulted regulated run
//! whose bound carries the fault allowance.
//!
//! Emits the CDFs as TSV on stdout and as `BENCH_pr9.json` (override the
//! path with `FQMS_BENCH_PR9`), written atomically so a killed run never
//! leaves a torn file. The binary doubles as the release smoke gate and
//! exits nonzero when:
//!
//! * `no_wcet_violation` fails — any regulated real-time completion
//!   exceeds its analytic bound, or the controller's own
//!   `bound_violations` counter is nonzero, or
//! * any run violates conservation
//!   (`completed + dropped + rejected + unsubmitted == submitted`).

use fqms_bench::{header, row, run_length, seed};
use fqms_memctrl::prelude::*;
use fqms_memctrl::wcet::bound_for;
use fqms_sim::fault::{FaultInjector, FaultKind, FaultPlan, FaultWindow};
use fqms_sim::snapshot::write_atomic;

/// Number of real-time / best-effort threads in the swept system.
const RT_THREADS: usize = 2;
const BE_THREADS: usize = 2;
/// Token-bucket knobs (DRAM cycles / services per period).
const PERIOD: u64 = 2_000;
const BUDGET: u64 = 6;

/// The percentiles each CDF is summarised at (plus the max).
const PERCENTILES: [f64; 5] = [50.0, 90.0, 95.0, 99.0, 99.9];

/// The regulation knob shared by every regulated run: `RT_THREADS`
/// budgeted classes, `BE_THREADS` unregulated aggressors, partitioning on.
fn regulation(bound: Option<u64>) -> RegulationConfig {
    let mut reg = RegulationConfig::new(PERIOD);
    for _ in 0..RT_THREADS {
        reg = reg.rt_class(BUDGET, bound);
    }
    for _ in 0..BE_THREADS {
        reg = reg.best_effort();
    }
    reg
}

/// Latency summary of one (mode, class) cell.
struct Cdf {
    mode: &'static str,
    class: &'static str,
    count: usize,
    percentiles: Vec<u64>,
    max: u64,
    bound: Option<u64>,
}

impl Cdf {
    fn from_latencies(
        mode: &'static str,
        class: &'static str,
        mut lat: Vec<u64>,
        bound: Option<u64>,
    ) -> Self {
        lat.sort_unstable();
        let at = |p: f64| {
            if lat.is_empty() {
                0
            } else {
                let idx = (p / 100.0 * (lat.len() - 1) as f64).round() as usize;
                lat[idx.min(lat.len() - 1)]
            }
        };
        Cdf {
            mode,
            class,
            count: lat.len(),
            percentiles: PERCENTILES.iter().map(|&p| at(p)).collect(),
            max: lat.last().copied().unwrap_or(0),
            bound,
        }
    }

    fn tsv(&self) -> Vec<String> {
        let mut cols = vec![
            self.mode.to_string(),
            self.class.to_string(),
            self.count.to_string(),
        ];
        cols.extend(self.percentiles.iter().map(u64::to_string));
        cols.push(self.max.to_string());
        cols.push(
            self.bound
                .map_or_else(|| "-".to_string(), |b| b.to_string()),
        );
        cols
    }

    fn json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"class\":\"{}\",\"count\":{},\"p50\":{},\
             \"p90\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"max\":{},\"bound\":{}}}",
            self.mode,
            self.class,
            self.count,
            self.percentiles[0],
            self.percentiles[1],
            self.percentiles[2],
            self.percentiles[3],
            self.percentiles[4],
            self.max,
            self.bound
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
        )
    }
}

/// Runs one mode over `events` and splits completion latencies by class.
/// Returns the two CDFs plus the conservation tally and the controller's
/// violation counter.
fn run_mode(
    mode: &'static str,
    spec: &EngineSpec,
    events: &[SubmitEvent],
    bound: Option<u64>,
) -> (Vec<Cdf>, usize, u64) {
    let report = simulate_serial(spec, events)
        .unwrap_or_else(|e| panic!("latency_cdf: invalid spec for {mode}: {e}"));
    fqms::telemetry::note_controller_cycles(report.stepped_cycles, report.skipped_cycles);
    let obs = report
        .observations
        .as_ref()
        .expect("latency_cdf: spec enables observation");
    fqms::sidecar::append("latency_cdf", mode, &obs.metrics);
    let (mut rt, mut be) = (Vec::new(), Vec::new());
    for completion in report.completions.iter().flatten() {
        if (completion.thread.as_u32() as usize) < RT_THREADS {
            rt.push(completion.latency());
        } else {
            be.push(completion.latency());
        }
    }
    let dropped: u64 = report.per_thread.iter().map(|t| t.requests_dropped).sum();
    let rejected: usize = report.rejected.iter().map(Vec::len).sum();
    let accounted = report.total_completed() + dropped as usize + rejected + report.unsubmitted;
    (
        vec![
            Cdf::from_latencies(mode, "rt", rt, bound),
            Cdf::from_latencies(mode, "be", be, None),
        ],
        accounted,
        obs.metrics.bound_violations,
    )
}

/// Conservative fault allowance matching `tests/rt_wcet.rs`: each
/// refresh-pressure episode charges its duration plus one trailing
/// urgent refresh.
fn extra_blocking(plan: &FaultPlan, timing: &fqms_dram::timing::TimingParams) -> u64 {
    let inj = FaultInjector::new(&plan.salted(0));
    plan.specs
        .iter()
        .map(|s| {
            let per = match s.kind {
                FaultKind::RefreshPressure => s
                    .duration
                    .saturating_add(timing.t_rfc)
                    .saturating_add(timing.t_rp),
                _ => 0,
            };
            (inj.scheduled(s.kind) as u64).saturating_mul(per)
        })
        .fold(0u64, |a, b| a.saturating_add(b))
}

fn main() {
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let cycles = (len.instructions / 2).clamp(20_000, 200_000);
    let threads = (RT_THREADS + BE_THREADS) as u32;

    let mut base = EngineSpec::paper(1, RT_THREADS + BE_THREADS);
    base.epoch_cycles = 512;
    base.event_capacity = Some(1 << 20);

    // The workload every mode sees: real-time threads submit at most
    // BUDGET requests per PERIOD (the bound's arrival-curve assumption),
    // best-effort threads flood.
    let plain_reg = regulation(None);
    let events = realtime_workload(&plain_reg, threads, cycles, 0.7, seed);

    // Analytic bounds (fault-free, and with the fault allowance).
    let bound = bound_for(&base.timing, &base.geometry, &plain_reg, 0, 0)
        .expect("latency_cdf: fault-free regulated config is schedulable");
    let plan = FaultPlan::new(seed).with(
        FaultKind::RefreshPressure,
        FaultWindow::new(1_000, cycles),
        0.0004,
        60,
    );
    let extra = extra_blocking(&plan, &base.timing);
    let faulted_bound = bound_for(&base.timing, &base.geometry, &plain_reg, 0, extra)
        .expect("latency_cdf: faulted regulated config is schedulable");

    // The four modes: two unregulated baselines, the regulated mode, and
    // the regulated mode under refresh pressure.
    let mut fr = base.clone();
    fr.config.set_scheduler(SchedulerKind::FrFcfs);
    let mut regulated = base.clone();
    regulated.config = regulated.config.with_regulation(regulation(Some(bound)));
    let mut faulted = base.clone();
    faulted.config = faulted
        .config
        .with_regulation(regulation(Some(faulted_bound)));
    faulted.fault_plan = Some(plan);

    header(&[
        "mode", "class", "count", "p50", "p90", "p95", "p99", "p999", "max", "bound",
    ]);

    let mut gate_failures = Vec::new();
    let mut cdfs = Vec::new();
    for (mode, spec, mode_bound) in [
        ("fq-vftf", &base, None),
        ("fr-fcfs", &fr, None),
        ("regulated", &regulated, Some(bound)),
        ("regulated-faulted", &faulted, Some(faulted_bound)),
    ] {
        let (mode_cdfs, accounted, violations) = run_mode(mode, spec, &events, mode_bound);
        if accounted != events.len() {
            gate_failures.push(format!(
                "{mode}: conservation violated — {accounted} accounted of {} submitted",
                events.len()
            ));
        }
        if violations != 0 {
            gate_failures.push(format!(
                "{mode}: controller counted {violations} WCET violations"
            ));
        }
        for cdf in mode_cdfs {
            if let Some(b) = cdf.bound {
                if cdf.count == 0 {
                    gate_failures.push(format!("{mode}/{}: no completions", cdf.class));
                } else if cdf.max > b {
                    gate_failures.push(format!(
                        "{mode}/{}: max latency {} exceeds analytic bound {b}",
                        cdf.class, cdf.max
                    ));
                }
            }
            row(&cdf.tsv());
            cdfs.push(cdf);
        }
    }

    let no_violation = !gate_failures
        .iter()
        .any(|g| g.contains("bound") || g.contains("WCET") || g.contains("completions"));
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"runlen\": \"{}\",\n  \"period\": {PERIOD},\n  \
         \"budget\": {BUDGET},\n  \"rt_threads\": {RT_THREADS},\n  \
         \"be_threads\": {BE_THREADS},\n  \"bound\": {bound},\n  \
         \"faulted_bound\": {faulted_bound},\n  \"cdfs\": [\n    {}\n  ],\n  \
         \"gates\": {{\n    \"no_wcet_violation\": {},\n    \"conservation\": {}\n  }}\n}}\n",
        std::env::var("FQMS_RUNLEN").unwrap_or_else(|_| "standard".into()),
        cdfs.iter()
            .map(Cdf::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        no_violation,
        gate_failures.iter().all(|g| !g.contains("conservation")),
    );
    let out = std::env::var("FQMS_BENCH_PR9").unwrap_or_else(|_| "BENCH_pr9.json".into());
    write_atomic(std::path::Path::new(&out), json.as_bytes())
        .unwrap_or_else(|e| panic!("latency_cdf: cannot write {out}: {e}"));
    eprintln!("# latency_cdf JSON written to {out}");

    if !gate_failures.is_empty() {
        for g in &gate_failures {
            eprintln!("GATE FAILED: {g}");
        }
        std::process::exit(1);
    }
}
