//! Extension study: channel scaling (the paper's future work). How do
//! bandwidth-bound and latency-bound threads respond to 1/2/4
//! line-interleaved channels, and does FQ-VFTF's QoS hold with multiple
//! channels?

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();

    println!("== Solo IPC vs channel count ==");
    header(&["benchmark", "channels", "ipc", "bus_utilization_of_total"]);
    for name in ["art", "swim", "mcf", "vpr", "crafty"] {
        for channels in [1usize, 2, 4] {
            let mut sys =
                SystemBuilder::new()
                    .channels(channels)
                    .seed(seed)
                    .workload(by_name(name).unwrap_or_else(|| {
                        panic!("channels: no workload profile named \"{name}\"")
                    }))
                    .build()
                    .unwrap_or_else(|e| {
                        panic!(
                            "channels: invalid solo config for {name} on {channels} channel(s) \
                         (seed {seed}): {e}"
                        )
                    });
            let m = sys.run(len.instructions, len.max_dram_cycles);
            row(&[
                name.to_string(),
                channels.to_string(),
                f(m.threads[0].ipc),
                f(m.threads[0].bus_utilization),
            ]);
        }
    }

    println!();
    println!("== Four-core workload 1 on 2 channels: FR-FCFS vs FQ-VFTF ==");
    header(&["scheduler", "thread", "ipc", "bus_share_of_total"]);
    let mix = four_core_workloads()[0];
    for sched in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        let mut sys = SystemBuilder::new()
            .channels(2)
            .scheduler(sched)
            .seed(seed)
            .workloads(mix.iter().copied())
            .build()
            .unwrap_or_else(|e| {
                panic!(
                    "channels: invalid four-core config on 2 channels under {sched} \
                     (seed {seed}): {e}"
                )
            });
        let m = sys.run(len.instructions, len.max_dram_cycles);
        for t in &m.threads {
            row(&[
                sched.to_string(),
                t.name.clone(),
                f(t.ipc),
                f(t.bus_utilization),
            ]);
        }
    }
}
