//! Serial-vs-parallel wall-clock study for the sharded multi-channel
//! engine and the parallel experiment runner.
//!
//! Every parallel measurement is checked bit-identical against its serial
//! counterpart before its speedup is reported, so the numbers below are
//! guaranteed to describe equivalent computations. The engine runs carry
//! tracing observers, so the equality covers event streams and metric
//! sinks too; with `FQMS_SIDECAR` set, the engine metrics are exported as
//! a TSV sidecar plus a JSONL twin next to it.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_memctrl::prelude::*;
use std::time::Instant;

fn secs<T>(work: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = work();
    (out, t0.elapsed().as_secs_f64())
}

fn main() {
    let len = run_length();
    let seed = seed();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Speedup is bounded by the host: on a single-CPU machine the
    // parallel runs only demonstrate equivalence, not acceleration.
    println!("#available_parallelism\t{hw}");

    println!("== Sharded engine: multi-channel DDR2 simulation ==");
    header(&[
        "channels",
        "threads",
        "requests",
        "sim_cycles",
        "serial_s",
        "parallel_s",
        "speedup",
    ]);
    // Scale the synthetic request stream with FQMS_RUNLEN so quick CI
    // runs stay fast while full runs saturate the workers.
    let gen_cycles = len.instructions.clamp(20_000, 500_000);
    let mut sidecar_json = Vec::new();
    for channels in [4usize, 8] {
        let mut spec = EngineSpec::paper(channels, 4);
        spec.max_cycles = 64 * gen_cycles;
        // Observability attached: the equivalence assertions below then
        // also cover the recorded event streams and metric sinks.
        spec.event_capacity = Some(1 << 12);
        let events = synthetic_workload(4, gen_cycles, 0.6, seed);
        let (serial, serial_s) = secs(|| simulate_serial(&spec, &events).expect("valid spec"));
        if let Some(obs) = &serial.observations {
            let label = format!("engine-{channels}ch");
            let kind = spec.config.scheduler.name();
            fqms::sidecar::append(&label, kind, &obs.metrics);
            sidecar_json.push(metrics_json(&label, kind, &obs.metrics));
        }
        for threads in [1usize, 2, 4, 8] {
            let (parallel, parallel_s) =
                secs(|| simulate_parallel(&spec, &events, threads).expect("valid spec"));
            assert_eq!(serial, parallel, "parallel run diverged from serial");
            row(&[
                channels.to_string(),
                threads.to_string(),
                events.len().to_string(),
                serial.cycles.to_string(),
                f(serial_s),
                f(parallel_s),
                f(serial_s / parallel_s),
            ]);
        }
    }

    // JSON twin of the TSV sidecar (one object per engine config, JSONL).
    if let Some(path) = fqms::sidecar::path() {
        if let Err(e) = std::fs::write(path.with_extension("json"), sidecar_json.join("\n") + "\n")
        {
            eprintln!("speedup: cannot write JSON sidecar: {e}");
        }
    }

    println!();
    println!("== Experiment runner: Figure 4 solo sweep (20 systems) ==");
    header(&["threads", "serial_s", "parallel_s", "speedup"]);
    let sweep_len = RunLength {
        instructions: len.instructions / 10,
        max_dram_cycles: len.max_dram_cycles / 10,
    };
    let (serial, serial_s) = secs(|| solo_sweep(sweep_len, seed));
    for threads in [2usize, 4, hw.clamp(2, 16)] {
        let (parallel, parallel_s) = secs(|| solo_sweep_parallel(sweep_len, seed, threads));
        assert_eq!(serial, parallel, "parallel sweep diverged from serial");
        row(&[
            threads.to_string(),
            f(serial_s),
            f(parallel_s),
            f(serial_s / parallel_s),
        ]);
    }
}
