//! Serial-vs-parallel wall-clock study for the sharded multi-channel
//! engine and the parallel experiment runner.
//!
//! Every parallel measurement is checked bit-identical against its serial
//! counterpart before its speedup is reported, so the numbers below are
//! guaranteed to describe equivalent computations. The engine runs carry
//! tracing observers, so the equality covers event streams and metric
//! sinks too; with `FQMS_SIDECAR` set, the engine metrics are exported as
//! a TSV sidecar plus a JSONL twin next to it.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_memctrl::prelude::*;
use std::time::Instant;

fn secs<T>(work: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = work();
    (out, t0.elapsed().as_secs_f64())
}

/// Asserts the event-driven run matches the cycle-by-cycle reference on
/// every semantic field. Only the `stepped_cycles` / `skipped_cycles`
/// diagnostics may differ — the fast run simulates fewer cycles, which is
/// the point.
fn assert_semantic_eq(fast: &EngineReport, slow: &EngineReport, label: &str) {
    assert_eq!(fast.cycles, slow.cycles, "{label}: cycles diverged");
    assert_eq!(fast.per_thread, slow.per_thread, "{label}: stats diverged");
    assert_eq!(
        fast.completions, slow.completions,
        "{label}: completions diverged"
    );
    assert_eq!(
        fast.command_logs, slow.command_logs,
        "{label}: command logs diverged"
    );
    assert_eq!(
        fast.bus_busy_cycles, slow.bus_busy_cycles,
        "{label}: bus occupancy diverged"
    );
    assert_eq!(
        fast.unsubmitted, slow.unsubmitted,
        "{label}: drain diverged"
    );
    assert_eq!(
        fast.observations, slow.observations,
        "{label}: observations diverged"
    );
}

/// The PR3 study: event-driven fast-forward vs cycle-by-cycle reference
/// on the paper's low-intensity QoS interference mix, per scheduler.
///
/// Emits `BENCH_pr3.json` (schema documented in README.md, overridable
/// via `FQMS_BENCH_PR3`) and acts as the perf smoke gate: exits nonzero
/// if the event-driven engine is ever *slower* than the cycle-by-cycle
/// reference on this mix.
fn fast_forward_study(gen_cycles: u64, seed: u64, hw: usize) {
    println!();
    println!("== Event-driven fast-forward vs cycle-by-cycle (reference mix) ==");
    header(&[
        "scheduler",
        "requests",
        "sim_cycles",
        "cycle_by_cycle_s",
        "event_driven_s",
        "event_driven_par_s",
        "speedup",
        "par_speedup",
        "skip_rate",
    ]);
    // The reference mix: one light high-locality QoS thread against three
    // moderate background threads. Aggregate intensity stays well below
    // the channels' service rate, leaving the dead cycles the fast path
    // exists to skip. Same generator as the differential suites.
    let (qos, heavy) = (0.005, 0.015);
    let events = interference_workload(4, gen_cycles, qos, heavy, seed);
    let par_threads = hw.clamp(2, 4);
    let mut entries = Vec::new();
    let mut smoke_failed = false;
    for kind in fqms_bench::paper_schedulers() {
        let mut spec = EngineSpec::paper(4, 4);
        spec.config.set_scheduler(kind);
        spec.max_cycles = 64 * gen_cycles;
        spec.event_capacity = Some(1 << 12);
        spec.fast_forward = false;
        let (slow, slow_s) = secs(|| {
            simulate_serial(&spec, &events).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid reference spec for {} (seed {seed}): {e}",
                    kind.name()
                )
            })
        });
        spec.fast_forward = true;
        let (fast, fast_s) = secs(|| {
            simulate_serial(&spec, &events).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid fast spec for {} (seed {seed}): {e}",
                    kind.name()
                )
            })
        });
        let (par, par_s) = secs(|| {
            simulate_parallel(&spec, &events, par_threads).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid parallel spec for {} with {par_threads} workers \
                     (seed {seed}): {e}",
                    kind.name()
                )
            })
        });
        assert_semantic_eq(&fast, &slow, kind.name());
        assert_eq!(fast, par, "{}: fast serial != fast parallel", kind.name());
        fqms::telemetry::note_controller_cycles(
            slow.stepped_cycles + fast.stepped_cycles + par.stepped_cycles,
            slow.skipped_cycles + fast.skipped_cycles + par.skipped_cycles,
        );
        if fast_s >= slow_s {
            eprintln!(
                "PERF SMOKE FAILED: {} event-driven run ({fast_s:.3}s) is no faster \
                 than cycle-by-cycle ({slow_s:.3}s) on the reference mix",
                kind.name()
            );
            smoke_failed = true;
        }
        row(&[
            kind.name().to_string(),
            events.len().to_string(),
            fast.cycles.to_string(),
            f(slow_s),
            f(fast_s),
            f(par_s),
            f(slow_s / fast_s),
            f(slow_s / par_s),
            f(fast.skip_rate()),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"scheduler\": \"{}\", \"requests\": {}, \"sim_cycles\": {}, ",
                "\"cycle_by_cycle_s\": {:.6}, \"event_driven_s\": {:.6}, ",
                "\"event_driven_parallel_s\": {:.6}, \"parallel_threads\": {}, ",
                "\"speedup_serial\": {:.3}, \"speedup_parallel\": {:.3}, ",
                "\"cycles_per_sec_serial\": {:.0}, \"cycles_per_sec_parallel\": {:.0}, ",
                "\"skip_rate\": {:.4}}}"
            ),
            kind.name(),
            events.len(),
            fast.cycles,
            slow_s,
            fast_s,
            par_s,
            par_threads,
            slow_s / fast_s,
            slow_s / par_s,
            fast.cycles as f64 / fast_s,
            fast.cycles as f64 / par_s,
            fast.skip_rate(),
        ));
    }
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"pr3_fast_forward\",\n  \"seed\": {},\n",
            "  \"workload\": {{\"generator\": \"interference\", \"threads\": 4, ",
            "\"gen_cycles\": {}, \"qos_intensity\": {}, \"heavy_intensity\": {}}},\n",
            "  \"engine\": {{\"channels\": 4, \"epoch_cycles\": {}}},\n",
            "  \"schedulers\": [\n{}\n  ]\n}}\n"
        ),
        seed,
        gen_cycles,
        qos,
        heavy,
        EngineSpec::paper(4, 4).epoch_cycles,
        entries.join(",\n")
    );
    let path = std::env::var("FQMS_BENCH_PR3").unwrap_or_else(|_| "BENCH_pr3.json".to_string());
    match fqms_sim::snapshot::write_atomic(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => eprintln!("#bench_pr3_json\t{path}"),
        Err(e) => eprintln!("speedup: cannot write {path}: {e}"),
    }
    if smoke_failed {
        std::process::exit(1);
    }
}

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Speedup is bounded by the host: on a single-CPU machine the
    // parallel runs only demonstrate equivalence, not acceleration.
    println!("#available_parallelism\t{hw}");

    println!("== Sharded engine: multi-channel DDR2 simulation ==");
    header(&[
        "channels",
        "threads",
        "requests",
        "sim_cycles",
        "serial_s",
        "parallel_s",
        "speedup",
    ]);
    // Scale the synthetic request stream with FQMS_RUNLEN so quick CI
    // runs stay fast while full runs saturate the workers.
    let gen_cycles = len.instructions.clamp(20_000, 500_000);
    let mut sidecar_json = Vec::new();
    for channels in [4usize, 8] {
        let mut spec = EngineSpec::paper(channels, 4);
        spec.max_cycles = 64 * gen_cycles;
        // Observability attached: the equivalence assertions below then
        // also cover the recorded event streams and metric sinks.
        spec.event_capacity = Some(1 << 12);
        let events = synthetic_workload(4, gen_cycles, 0.6, seed);
        let (serial, serial_s) = secs(|| {
            simulate_serial(&spec, &events).unwrap_or_else(|e| {
                panic!("speedup: invalid {channels}-channel engine spec (seed {seed}): {e}")
            })
        });
        if let Some(obs) = &serial.observations {
            let label = format!("engine-{channels}ch");
            let kind = spec.config.scheduler.name();
            fqms::sidecar::append(&label, kind, &obs.metrics);
            sidecar_json.push(metrics_json(&label, kind, &obs.metrics));
        }
        for threads in [1usize, 2, 4, 8] {
            let (parallel, parallel_s) = secs(|| {
                simulate_parallel(&spec, &events, threads).unwrap_or_else(|e| {
                    panic!(
                        "speedup: invalid {channels}-channel engine spec with {threads} \
                         workers (seed {seed}): {e}"
                    )
                })
            });
            assert_eq!(serial, parallel, "parallel run diverged from serial");
            row(&[
                channels.to_string(),
                threads.to_string(),
                events.len().to_string(),
                serial.cycles.to_string(),
                f(serial_s),
                f(parallel_s),
                f(serial_s / parallel_s),
            ]);
        }
    }

    // JSON twin of the TSV sidecar (one object per engine config, JSONL).
    if let Some(path) = fqms::sidecar::path() {
        let body = sidecar_json.join("\n") + "\n";
        if let Err(e) =
            fqms_sim::snapshot::write_atomic(&path.with_extension("json"), body.as_bytes())
        {
            eprintln!("speedup: cannot write JSON sidecar: {e}");
        }
    }

    fast_forward_study(gen_cycles, seed, hw);

    println!();
    println!("== Experiment runner: Figure 4 solo sweep (20 systems) ==");
    header(&["threads", "serial_s", "parallel_s", "speedup"]);
    let sweep_len = RunLength {
        instructions: len.instructions / 10,
        max_dram_cycles: len.max_dram_cycles / 10,
    };
    let (serial, serial_s) = secs(|| solo_sweep(sweep_len, seed));
    for threads in [2usize, 4, hw.clamp(2, 16)] {
        let (parallel, parallel_s) = secs(|| solo_sweep_parallel(sweep_len, seed, threads));
        assert_eq!(serial, parallel, "parallel sweep diverged from serial");
        row(&[
            threads.to_string(),
            f(serial_s),
            f(parallel_s),
            f(serial_s / parallel_s),
        ]);
    }
}
