//! Serial-vs-parallel wall-clock study for the sharded multi-channel
//! engine and the parallel experiment runner.
//!
//! Every parallel measurement is checked bit-identical against its serial
//! counterpart before its speedup is reported, so the numbers below are
//! guaranteed to describe equivalent computations. The engine runs carry
//! tracing observers, so the equality covers event streams and metric
//! sinks too; with `FQMS_SIDECAR` set, the engine metrics are exported as
//! a TSV sidecar plus a JSONL twin next to it.
//!
//! Two machine-readable artifacts are emitted (schemas in README.md):
//!
//! * `BENCH_pr3.json` — event-driven fast-forward vs cycle-by-cycle on
//!   the 4-channel QoS mix (override path via `FQMS_BENCH_PR3`),
//! * `BENCH_pr8.json` — the free-running executor study: a 4→64-channel
//!   × 1→8-thread sweep with `cycles_per_sec` at every point, plus the
//!   16-channel QoS mix where free-run parallel is gated at ≥5x over the
//!   cycle-by-cycle reference (override path via `FQMS_BENCH_PR8`).
//!
//! Both act as perf smoke gates: the process exits nonzero if the
//! event-driven engine is ever slower than cycle-by-cycle (PR 3), if
//! free-run parallel is slower than serial beyond tolerance at any
//! ≥4-channel / ≥2-thread sweep point, or if the QoS-mix speedup over
//! cycle-by-cycle falls below 5x (PR 8). On a single-CPU host the
//! sweep gate uses a relaxed tolerance — parallelism cannot accelerate
//! there, only avoid slowing down — and all timings are min-of-N.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_memctrl::prelude::*;
use std::time::Instant;

fn secs<T>(work: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = work();
    (out, t0.elapsed().as_secs_f64())
}

/// Runs `work` `reps` times and returns the (deterministic) result with
/// the **minimum** wall-clock over the repetitions. Min-of-N is the
/// standard noise filter for micro-timing gates: scheduler preemption
/// and cache pollution only ever add time, so the minimum is the best
/// estimate of the true cost.
fn min_secs<T>(reps: usize, mut work: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(work());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.expect("at least one rep"), best)
}

/// Asserts the event-driven run matches the cycle-by-cycle reference on
/// every semantic field. Only the `stepped_cycles` / `skipped_cycles`
/// diagnostics may differ — the fast run simulates fewer cycles, which is
/// the point.
fn assert_semantic_eq(fast: &EngineReport, slow: &EngineReport, label: &str) {
    assert_eq!(fast.cycles, slow.cycles, "{label}: cycles diverged");
    assert_eq!(fast.per_thread, slow.per_thread, "{label}: stats diverged");
    assert_eq!(
        fast.completions, slow.completions,
        "{label}: completions diverged"
    );
    assert_eq!(
        fast.command_logs, slow.command_logs,
        "{label}: command logs diverged"
    );
    assert_eq!(
        fast.bus_busy_cycles, slow.bus_busy_cycles,
        "{label}: bus occupancy diverged"
    );
    assert_eq!(
        fast.unsubmitted, slow.unsubmitted,
        "{label}: drain diverged"
    );
    assert_eq!(
        fast.observations, slow.observations,
        "{label}: observations diverged"
    );
}

/// The PR3 study: event-driven fast-forward vs cycle-by-cycle reference
/// on the paper's low-intensity QoS interference mix, per scheduler.
///
/// Emits `BENCH_pr3.json` (schema documented in README.md, overridable
/// via `FQMS_BENCH_PR3`) and acts as the perf smoke gate: exits nonzero
/// if the event-driven engine is ever *slower* than the cycle-by-cycle
/// reference on this mix.
fn fast_forward_study(gen_cycles: u64, seed: u64, hw: usize) {
    println!();
    println!("== Event-driven fast-forward vs cycle-by-cycle (reference mix) ==");
    header(&[
        "scheduler",
        "requests",
        "sim_cycles",
        "cycle_by_cycle_s",
        "event_driven_s",
        "event_driven_par_s",
        "speedup",
        "par_speedup",
        "skip_rate",
    ]);
    // The reference mix: one light high-locality QoS thread against three
    // moderate background threads. Aggregate intensity stays well below
    // the channels' service rate, leaving the dead cycles the fast path
    // exists to skip. Same generator as the differential suites.
    let (qos, heavy) = (0.005, 0.015);
    let events = interference_workload(4, gen_cycles, qos, heavy, seed);
    let par_threads = hw.clamp(2, 4);
    let mut entries = Vec::new();
    let mut smoke_failed = false;
    for kind in fqms_bench::paper_schedulers() {
        let mut spec = EngineSpec::paper(4, 4);
        spec.config.set_scheduler(kind);
        spec.max_cycles = 64 * gen_cycles;
        spec.event_capacity = Some(1 << 12);
        spec.fast_forward = false;
        let slow_spec = spec.clone();
        let run_slow = || {
            simulate_serial(&slow_spec, &events).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid reference spec for {} (seed {seed}): {e}",
                    kind.name()
                )
            })
        };
        let (slow, mut slow_s) = min_secs(3, run_slow);
        spec.fast_forward = true;
        let run_fast = || {
            simulate_serial(&spec, &events).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid fast spec for {} (seed {seed}): {e}",
                    kind.name()
                )
            })
        };
        let (fast, mut fast_s) = min_secs(3, run_fast);
        let (par, par_s) = min_secs(3, || {
            simulate_parallel(&spec, &events, par_threads).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid parallel spec for {} with {par_threads} workers \
                     (seed {seed}): {e}",
                    kind.name()
                )
            })
        });
        assert_semantic_eq(&fast, &slow, kind.name());
        assert_eq!(fast, par, "{}: fast serial != fast parallel", kind.name());
        fqms::telemetry::note_controller_cycles(
            slow.stepped_cycles + fast.stepped_cycles + par.stepped_cycles,
            slow.skipped_cycles + fast.skipped_cycles + par.skipped_cycles,
        );
        if fast_s >= slow_s {
            // A millisecond-scale timing on a loaded host can be pure
            // noise: re-measure both sides fresh before failing the gate.
            let (_, slow_s2) = min_secs(5, run_slow);
            let (_, fast_s2) = min_secs(5, run_fast);
            slow_s = slow_s.min(slow_s2);
            fast_s = fast_s.min(fast_s2);
        }
        if fast_s >= slow_s {
            eprintln!(
                "PERF SMOKE FAILED: {} event-driven run ({fast_s:.3}s) is no faster \
                 than cycle-by-cycle ({slow_s:.3}s) on the reference mix",
                kind.name()
            );
            smoke_failed = true;
        }
        row(&[
            kind.name().to_string(),
            events.len().to_string(),
            fast.cycles.to_string(),
            f(slow_s),
            f(fast_s),
            f(par_s),
            f(slow_s / fast_s),
            f(slow_s / par_s),
            f(fast.skip_rate()),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"scheduler\": \"{}\", \"requests\": {}, \"sim_cycles\": {}, ",
                "\"cycle_by_cycle_s\": {:.6}, \"event_driven_s\": {:.6}, ",
                "\"event_driven_parallel_s\": {:.6}, \"parallel_threads\": {}, ",
                "\"speedup_serial\": {:.3}, \"speedup_parallel\": {:.3}, ",
                "\"cycles_per_sec_serial\": {:.0}, \"cycles_per_sec_parallel\": {:.0}, ",
                "\"skip_rate\": {:.4}}}"
            ),
            kind.name(),
            events.len(),
            fast.cycles,
            slow_s,
            fast_s,
            par_s,
            par_threads,
            slow_s / fast_s,
            slow_s / par_s,
            fast.cycles as f64 / fast_s,
            fast.cycles as f64 / par_s,
            fast.skip_rate(),
        ));
    }
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"pr3_fast_forward\",\n  \"seed\": {},\n",
            "  \"workload\": {{\"generator\": \"interference\", \"threads\": 4, ",
            "\"gen_cycles\": {}, \"qos_intensity\": {}, \"heavy_intensity\": {}}},\n",
            "  \"engine\": {{\"channels\": 4, \"epoch_cycles\": {}}},\n",
            "  \"schedulers\": [\n{}\n  ]\n}}\n"
        ),
        seed,
        gen_cycles,
        qos,
        heavy,
        EngineSpec::paper(4, 4).epoch_cycles,
        entries.join(",\n")
    );
    let path = std::env::var("FQMS_BENCH_PR3").unwrap_or_else(|_| "BENCH_pr3.json".to_string());
    match fqms_sim::snapshot::write_atomic(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => eprintln!("#bench_pr3_json\t{path}"),
        Err(e) => eprintln!("speedup: cannot write {path}: {e}"),
    }
    if smoke_failed {
        std::process::exit(1);
    }
}

/// The PR8 engine sweep: free-running parallel vs serial across
/// 4→64 channels × 1→8 worker threads, `cycles_per_sec` at every point,
/// plus a lockstep-executor column so the cost the free-run executor
/// removed (two barrier crossings per epoch per worker) stays visible.
///
/// Gate: at every ≥2-thread point, min-of-`reps` parallel time must not
/// exceed min-of-`reps` serial time by more than `rel_tol`/`abs_tol_s`.
/// Returns the JSON fragment for `BENCH_pr8.json` and whether the gate
/// passed.
#[allow(clippy::too_many_arguments)]
fn engine_sweep(
    gen_cycles: u64,
    seed: u64,
    reps: usize,
    rel_tol: f64,
    abs_tol_s: f64,
    sidecar_json: &mut Vec<String>,
) -> (String, bool) {
    println!("== Sharded engine: free-running parallel vs serial ==");
    header(&[
        "channels",
        "threads",
        "requests",
        "sim_cycles",
        "serial_s",
        "lockstep_s",
        "parallel_s",
        "speedup",
        "cycles_per_sec_serial",
        "cycles_per_sec_parallel",
    ]);
    let intensity = 0.6;
    let events = synthetic_workload(4, gen_cycles, intensity, seed);
    let mut channel_entries = Vec::new();
    let mut gate_ok = true;
    for channels in [4usize, 8, 16, 64] {
        let mut spec = EngineSpec::paper(channels, 4);
        spec.max_cycles = 64 * gen_cycles;
        // Observability attached: the equivalence assertions below then
        // also cover the recorded event streams and metric sinks.
        spec.event_capacity = Some(1 << 12);
        let (serial, serial_s) = min_secs(reps, || {
            simulate_serial(&spec, &events).unwrap_or_else(|e| {
                panic!("speedup: invalid {channels}-channel engine spec (seed {seed}): {e}")
            })
        });
        if let Some(obs) = &serial.observations {
            let label = format!("engine-{channels}ch");
            let kind = spec.config.scheduler.name();
            fqms::sidecar::append(&label, kind, &obs.metrics);
            sidecar_json.push(metrics_json(&label, kind, &obs.metrics));
        }
        // The lockstep executor is the PR 1 reference: same shards, same
        // windows, but a two-phase barrier every epoch. Timed once (it is
        // diagnostic, not gated) and checked bit-identical.
        let (lockstep, lockstep_s) = secs(|| {
            simulate_parallel_lockstep(&spec, &events, 2).unwrap_or_else(|e| {
                panic!("speedup: invalid {channels}-channel lockstep spec (seed {seed}): {e}")
            })
        });
        assert_eq!(serial, lockstep, "lockstep run diverged from serial");
        let cps_serial = serial.cycles as f64 / serial_s;
        let mut thread_entries = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let run_par = || {
                simulate_parallel(&spec, &events, threads).unwrap_or_else(|e| {
                    panic!(
                        "speedup: invalid {channels}-channel engine spec with {threads} \
                         workers (seed {seed}): {e}"
                    )
                })
            };
            let (parallel, mut parallel_s) = min_secs(reps, run_par);
            assert_eq!(serial, parallel, "parallel run diverged from serial");
            let gated = threads >= 2;
            let mut gate_serial_s = serial_s;
            let mut point_ok = !gated || parallel_s <= gate_serial_s * rel_tol + abs_tol_s;
            if gated && !point_ok {
                // Transient noise check: a co-tenant burst on a shared
                // host can blow a whole min-of-N window. Re-measure in
                // serial/parallel *pairs* so drift hits both sides, and
                // pass if any contemporaneous pair is within tolerance.
                for _ in 0..5 {
                    let (_, serial_s2) = secs(|| {
                        simulate_serial(&spec, &events).unwrap_or_else(|e| {
                            panic!(
                                "speedup: invalid {channels}-channel engine spec \
                                 (seed {seed}): {e}"
                            )
                        })
                    });
                    let (p2, parallel_s2) = secs(run_par);
                    assert_eq!(serial, p2, "parallel run diverged from serial on retry");
                    parallel_s = parallel_s.min(parallel_s2);
                    gate_serial_s = gate_serial_s.min(serial_s2);
                    if parallel_s2 <= serial_s2 * rel_tol + abs_tol_s {
                        point_ok = true;
                        break;
                    }
                }
            }
            if !point_ok {
                eprintln!(
                    "PERF SWEEP GATE FAILED: {channels}ch/{threads}t free-run parallel \
                     ({parallel_s:.4}s) exceeds serial ({gate_serial_s:.4}s) beyond tolerance \
                     (rel {rel_tol}, abs {abs_tol_s}s)"
                );
                gate_ok = false;
            }
            let cps_parallel = parallel.cycles as f64 / parallel_s;
            row(&[
                channels.to_string(),
                threads.to_string(),
                events.len().to_string(),
                serial.cycles.to_string(),
                f(serial_s),
                if threads == 2 {
                    f(lockstep_s)
                } else {
                    "-".to_string()
                },
                f(parallel_s),
                f(serial_s / parallel_s),
                format!("{cps_serial:.0}"),
                format!("{cps_parallel:.0}"),
            ]);
            thread_entries.push(format!(
                concat!(
                    "        {{\"threads\": {}, \"parallel_s\": {:.6}, \"speedup\": {:.3}, ",
                    "\"cycles_per_sec\": {:.0}, \"gated\": {}, \"gate_ok\": {}}}"
                ),
                threads,
                parallel_s,
                serial_s / parallel_s,
                cps_parallel,
                gated,
                point_ok,
            ));
        }
        channel_entries.push(format!(
            concat!(
                "    {{\"channels\": {}, \"requests\": {}, \"sim_cycles\": {}, ",
                "\"serial_s\": {:.6}, \"cycles_per_sec_serial\": {:.0}, ",
                "\"lockstep_2t_s\": {:.6},\n      \"threads\": [\n{}\n      ]}}"
            ),
            channels,
            events.len(),
            serial.cycles,
            serial_s,
            cps_serial,
            lockstep_s,
            thread_entries.join(",\n"),
        ));
    }
    let json = format!(
        concat!(
            "  \"sweep\": {{\n",
            "    \"workload\": {{\"generator\": \"synthetic\", \"threads\": 4, ",
            "\"gen_cycles\": {}, \"intensity\": {}}},\n",
            "    \"reps\": {},\n",
            "    \"points\": [\n{}\n    ]\n  }}"
        ),
        gen_cycles,
        intensity,
        reps,
        channel_entries.join(",\n"),
    );
    (json, gate_ok)
}

/// The PR8 QoS study: free-running parallel engine (event-driven, all
/// worker threads) vs the cycle-by-cycle serial reference on the paper's
/// QoS interference mix, widened to 64 channels. Cycle-by-cycle cost
/// scales with channel count at fixed traffic, so this is exactly the
/// configuration where the free-run + fast-forward combination pays off.
///
/// Returns the JSON fragment for `BENCH_pr8.json` and the maximum
/// observed speedup over cycle-by-cycle (gated ≥ 5x by the caller).
fn free_run_qos_study(gen_cycles: u64, seed: u64, hw: usize) -> (String, f64) {
    println!();
    println!("== Free-running engine vs cycle-by-cycle (64-channel QoS mix) ==");
    header(&[
        "scheduler",
        "requests",
        "sim_cycles",
        "cycle_by_cycle_s",
        "free_run_par_s",
        "speedup",
        "skip_rate",
    ]);
    let (qos, heavy) = (0.005, 0.015);
    let events = interference_workload(4, gen_cycles, qos, heavy, seed);
    let channels = 64usize;
    let par_threads = hw.clamp(2, 8);
    let mut entries = Vec::new();
    let mut max_speedup = 0.0f64;
    for kind in fqms_bench::paper_schedulers() {
        let mut spec = EngineSpec::paper(channels, 4);
        spec.config.set_scheduler(kind);
        spec.max_cycles = 64 * gen_cycles;
        spec.event_capacity = Some(1 << 12);
        spec.fast_forward = false;
        let (slow, slow_s) = min_secs(2, || {
            simulate_serial(&spec, &events).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid {channels}-channel reference spec for {} (seed {seed}): {e}",
                    kind.name()
                )
            })
        });
        spec.fast_forward = true;
        let (fast, fast_s) = min_secs(3, || {
            simulate_serial(&spec, &events).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid {channels}-channel fast spec for {} (seed {seed}): {e}",
                    kind.name()
                )
            })
        });
        let (par, par_s) = min_secs(3, || {
            simulate_parallel(&spec, &events, par_threads).unwrap_or_else(|e| {
                panic!(
                    "speedup: invalid {channels}-channel parallel spec for {} with \
                     {par_threads} workers (seed {seed}): {e}",
                    kind.name()
                )
            })
        });
        assert_semantic_eq(&fast, &slow, kind.name());
        assert_eq!(
            fast,
            par,
            "{}: fast serial != free-run parallel",
            kind.name()
        );
        fqms::telemetry::note_controller_cycles(
            slow.stepped_cycles + fast.stepped_cycles + par.stepped_cycles,
            slow.skipped_cycles + fast.skipped_cycles + par.skipped_cycles,
        );
        let speedup = slow_s / par_s;
        max_speedup = max_speedup.max(speedup);
        row(&[
            kind.name().to_string(),
            events.len().to_string(),
            fast.cycles.to_string(),
            f(slow_s),
            f(par_s),
            f(speedup),
            f(fast.skip_rate()),
        ]);
        entries.push(format!(
            concat!(
                "      {{\"scheduler\": \"{}\", \"requests\": {}, \"sim_cycles\": {}, ",
                "\"cycle_by_cycle_s\": {:.6}, \"event_driven_serial_s\": {:.6}, ",
                "\"free_run_parallel_s\": {:.6}, \"speedup_vs_cycle_by_cycle\": {:.3}, ",
                "\"cycles_per_sec_cycle_by_cycle\": {:.0}, ",
                "\"cycles_per_sec_free_run\": {:.0}, \"skip_rate\": {:.4}}}"
            ),
            kind.name(),
            events.len(),
            fast.cycles,
            slow_s,
            fast_s,
            par_s,
            speedup,
            fast.cycles as f64 / slow_s,
            fast.cycles as f64 / par_s,
            fast.skip_rate(),
        ));
    }
    let json = format!(
        concat!(
            "  \"qos\": {{\n",
            "    \"workload\": {{\"generator\": \"interference\", \"threads\": 4, ",
            "\"gen_cycles\": {}, \"qos_intensity\": {}, \"heavy_intensity\": {}}},\n",
            "    \"channels\": {}, \"parallel_threads\": {},\n",
            "    \"schedulers\": [\n{}\n    ],\n",
            "    \"max_speedup_vs_cycle_by_cycle\": {:.3}\n  }}"
        ),
        gen_cycles,
        qos,
        heavy,
        channels,
        par_threads,
        entries.join(",\n"),
        max_speedup,
    );
    (json, max_speedup)
}

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Speedup is bounded by the host: on a single-CPU machine the
    // parallel runs only demonstrate equivalence, not acceleration, so
    // the sweep gate relaxes to "not slower beyond tolerance" there.
    println!("#available_parallelism\t{hw}");
    let reps = 3usize;
    let (rel_tol, abs_tol_s) = if hw == 1 {
        (1.10, 0.025)
    } else {
        (1.05, 0.010)
    };

    // Scale the synthetic request stream with FQMS_RUNLEN so quick CI
    // runs stay fast while full runs saturate the workers.
    let gen_cycles = len.instructions.clamp(20_000, 500_000);
    let mut sidecar_json = Vec::new();
    let (sweep_json, sweep_gate_ok) = engine_sweep(
        gen_cycles,
        seed,
        reps,
        rel_tol,
        abs_tol_s,
        &mut sidecar_json,
    );

    // JSON twin of the TSV sidecar (one object per engine config, JSONL).
    if let Some(path) = fqms::sidecar::path() {
        let body = sidecar_json.join("\n") + "\n";
        if let Err(e) =
            fqms_sim::snapshot::write_atomic(&path.with_extension("json"), body.as_bytes())
        {
            eprintln!("speedup: cannot write JSON sidecar: {e}");
        }
    }

    fast_forward_study(gen_cycles, seed, hw);

    let (qos_json, max_speedup) = free_run_qos_study(gen_cycles, seed, hw);
    let qos_gate_ok = max_speedup >= 5.0;
    if !qos_gate_ok {
        eprintln!(
            "PERF SMOKE FAILED: free-run parallel peaks at {max_speedup:.2}x over \
             cycle-by-cycle on the 16-channel QoS mix (gate: >= 5x)"
        );
    }
    let pr8_json = format!(
        concat!(
            "{{\n  \"bench\": \"pr8_free_run\",\n  \"seed\": {},\n",
            "  \"available_parallelism\": {},\n",
            "  \"engine\": {{\"epoch_cycles\": {}, \"steal_quantum_epochs\": {}}},\n",
            "  \"tolerance\": {{\"rel\": {}, \"abs_s\": {}, \"reps\": {}}},\n",
            "{},\n{},\n",
            "  \"gates\": {{\"parallel_not_slower\": {}, \"qos_speedup_ge_5x\": {}}}\n}}\n"
        ),
        seed,
        hw,
        EngineSpec::paper(4, 4).epoch_cycles,
        fqms_sim::parallel::STEAL_QUANTUM_EPOCHS,
        rel_tol,
        abs_tol_s,
        reps,
        sweep_json,
        qos_json,
        sweep_gate_ok,
        qos_gate_ok,
    );
    let path = std::env::var("FQMS_BENCH_PR8").unwrap_or_else(|_| "BENCH_pr8.json".to_string());
    match fqms_sim::snapshot::write_atomic(std::path::Path::new(&path), pr8_json.as_bytes()) {
        Ok(()) => eprintln!("#bench_pr8_json\t{path}"),
        Err(e) => eprintln!("speedup: cannot write {path}: {e}"),
    }

    println!();
    println!("== Experiment runner: Figure 4 solo sweep (20 systems) ==");
    header(&["threads", "serial_s", "parallel_s", "speedup"]);
    let sweep_len = RunLength {
        instructions: len.instructions / 10,
        max_dram_cycles: len.max_dram_cycles / 10,
    };
    let (serial, serial_s) = secs(|| solo_sweep(sweep_len, seed));
    for threads in [2usize, 4, hw.clamp(2, 16)] {
        let (parallel, parallel_s) = secs(|| solo_sweep_parallel(sweep_len, seed, threads));
        assert_eq!(serial, parallel, "parallel sweep diverged from serial");
        row(&[
            threads.to_string(),
            f(serial_s),
            f(parallel_s),
            f(serial_s / parallel_s),
        ]);
    }

    if !sweep_gate_ok || !qos_gate_ok {
        std::process::exit(1);
    }
}
