//! Development probe: subject+art under all schedulers (not a paper
//! figure; kept for debugging scheduler behaviour).

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};

fn main() {
    let len = run_length();
    let seed = seed();
    let subject_name = std::env::args().nth(1).unwrap_or_else(|| "vpr".into());
    let subject = by_name(&subject_name)
        .unwrap_or_else(|| panic!("probe: no workload profile named \"{subject_name}\""));
    let art = by_name("art").unwrap_or_else(|| panic!("probe: no workload profile \"art\""));
    let base_subj =
        run_private_baseline(subject, 2, len.instructions, len.max_dram_cycles * 2, seed);
    let base_art = run_private_baseline(art, 2, len.instructions, len.max_dram_cycles * 2, seed);
    header(&[
        "scheduler",
        "subj_norm_ipc",
        "bg_norm_ipc",
        "subj_latency",
        "subj_bus",
        "bg_bus",
        "total_bus",
    ]);
    for sched in SchedulerKind::all() {
        let m = two_core_run(subject, art, sched, len, seed);
        row(&[
            sched.to_string(),
            f(m.threads[0].ipc / base_subj.ipc),
            f(m.threads[1].ipc / base_art.ipc),
            f(m.threads[0].avg_read_latency),
            f(m.threads[0].bus_utilization),
            f(m.threads[1].bus_utilization),
            f(m.data_bus_utilization),
        ]);
    }
    eprintln!(
        "baseline x2: subj ipc {} latency {}, art ipc {}",
        f(base_subj.ipc),
        f(base_subj.avg_read_latency),
        f(base_art.ipc)
    );
}
