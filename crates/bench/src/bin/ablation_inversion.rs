//! Ablation: the FQ bank scheduler's priority-inversion bound `x`
//! (Section 3.3). The paper picks `x = tRAS` as "a tight bound on priority
//! inversion blocking time, which offers better QoS, but may decrease data
//! bus utilization". This sweep quantifies that trade-off: subject QoS and
//! aggregate bus utilization as `x` varies from 0 (lock immediately after
//! activation) to unbounded (degenerates into FR-VFTF).

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let art =
        by_name("art").unwrap_or_else(|| panic!("ablation_inversion: no workload profile \"art\""));
    let t_ras = fqms_dram::timing::TimingParams::ddr2_800().t_ras;
    let bounds: Vec<(String, InversionBound)> = vec![
        ("0".into(), InversionBound::Cycles(0)),
        (
            format!("tRAS/2={}", t_ras / 2),
            InversionBound::Cycles(t_ras / 2),
        ),
        (format!("tRAS={t_ras}"), InversionBound::TRas),
        (
            format!("2tRAS={}", 2 * t_ras),
            InversionBound::Cycles(2 * t_ras),
        ),
        (
            format!("4tRAS={}", 4 * t_ras),
            InversionBound::Cycles(4 * t_ras),
        ),
        ("unbounded".into(), InversionBound::Unbounded),
    ];
    header(&[
        "subject",
        "inversion_bound_x",
        "subject_norm_ipc",
        "subject_latency_cpu",
        "data_bus_utilization",
    ]);
    for subject_name in ["vpr", "twolf", "ammp", "galgel"] {
        let subject = by_name(subject_name).unwrap_or_else(|| {
            panic!("ablation_inversion: no workload profile \"{subject_name}\"")
        });
        let base =
            run_private_baseline(subject, 2, len.instructions, len.max_dram_cycles * 2, seed);
        for (label, bound) in &bounds {
            let mut sys = SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .inversion_bound(*bound)
                .seed(seed)
                .workload(subject)
                .workload(art)
                .build()
                .unwrap_or_else(|e| {
                    panic!(
                        "ablation_inversion: invalid config for {subject_name} + art with \
                         bound x={label} (seed {seed}): {e}"
                    )
                });
            let m = sys.run(len.instructions, len.max_dram_cycles);
            row(&[
                subject_name.to_string(),
                label.clone(),
                f(m.threads[0].ipc / base.ipc),
                f(m.threads[0].avg_read_latency),
                f(m.data_bus_utilization),
            ]);
        }
    }
}
