//! Extension study: memory speed grades. The same workloads on DDR2-800 /
//! -667 / -533 (each with the matching CPU:DRAM clock ratio for a ~2 GHz
//! core): bandwidth-bound threads scale with the data-rate, and FQ-VFTF's
//! QoS holds at every speed grade.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_dram::timing::TimingParams;

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let grades: [(&str, TimingParams, u64); 3] = [
        ("DDR2-800", TimingParams::ddr2_800(), 5),
        ("DDR2-667", TimingParams::ddr2_667(), 6),
        ("DDR2-533", TimingParams::ddr2_533(), 8),
    ];

    println!("== Solo IPC by speed grade ==");
    header(&["benchmark", "grade", "ipc", "bus_utilization"]);
    for name in ["swim", "mcf", "vpr"] {
        for (label, timing, ratio) in grades {
            let mut sys =
                SystemBuilder::new()
                    .timing(timing)
                    .cpu_ratio(ratio)
                    .seed(seed)
                    .workload(by_name(name).unwrap_or_else(|| {
                        panic!("frequency: no workload profile named \"{name}\"")
                    }))
                    .build()
                    .unwrap_or_else(|e| {
                        panic!(
                        "frequency: invalid solo config for {name} at {label} (seed {seed}): {e}"
                    )
                    });
            let m = sys.run(len.instructions, len.max_dram_cycles);
            row(&[
                name.to_string(),
                label.to_string(),
                f(m.threads[0].ipc),
                f(m.threads[0].bus_utilization),
            ]);
        }
    }

    println!();
    println!("== vpr + art QoS by speed grade (FQ-VFTF) ==");
    header(&["grade", "vpr_norm_ipc"]);
    for (label, timing, ratio) in grades {
        let vpr =
            by_name("vpr").unwrap_or_else(|| panic!("frequency: no workload profile \"vpr\""));
        let art =
            by_name("art").unwrap_or_else(|| panic!("frequency: no workload profile \"art\""));
        let base = {
            let mut sys = SystemBuilder::new()
                .timing(timing.time_scaled(2))
                .cpu_ratio(ratio)
                .seed(seed)
                .workload(vpr)
                .build()
                .unwrap_or_else(|e| {
                    panic!("frequency: invalid vpr baseline config at {label} (seed {seed}): {e}")
                });
            sys.run(len.instructions, len.max_dram_cycles * 2).threads[0].ipc
        };
        let mut sys = SystemBuilder::new()
            .timing(timing)
            .cpu_ratio(ratio)
            .scheduler(SchedulerKind::FqVftf)
            .seed(seed)
            .workload(vpr)
            .workload(art)
            .build()
            .unwrap_or_else(|e| {
                panic!("frequency: invalid vpr + art config at {label} (seed {seed}): {e}")
            });
        let m = sys.run(len.instructions, len.max_dram_cycles);
        row(&[label.to_string(), f(m.threads[0].ipc / base)]);
    }
}
