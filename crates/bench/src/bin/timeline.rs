//! Extension study: dynamic bandwidth redistribution. A streaming thread
//! runs alone; an identical competitor "arrives" mid-run (a delayed-start
//! trace). The time series of per-thread bus utilization shows how each
//! scheduler reacts — and makes the paper's *real-clock* fairness policy
//! visible: while running alone the early thread consumed excess service
//! (more than its phi = 1/2), so its VTMS registers ran ahead of the real
//! clock; on arrival the newcomer's fresh virtual times win priority
//! until the early thread's excess is paid back (a bounded make-up
//! period of a few windows), after which the split settles at 50/50.
//! This is exactly Section 3's stated policy: "threads that have consumed
//! more memory system bandwidth in the past ... should not receive excess
//! bandwidth before threads that have received less excess bandwidth in
//! the past" — "unlike GPS virtual clock algorithms, a real clock
//! penalizes threads that have consumed more service in the past."
//! FR-FCFS, having no service memory, splits evenly immediately.

use fqms::prelude::*;
use fqms_bench::{f, header, row, seed};
use fqms_memctrl::request::ThreadId;
use fqms_workloads::generator::SyntheticTrace;
use fqms_workloads::patterns::DelayedStart;

const WINDOW: u64 = 20_000; // DRAM cycles per sample
const WINDOWS: u64 = 30;
const ARRIVAL_INSTRUCTIONS: u64 = 6_000_000;

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let seed = seed();
    header(&[
        "scheduler",
        "window",
        "thread0_bus",
        "thread1_bus",
        "total_bus",
    ]);
    for sched in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        let swim = by_name("swim")
            .unwrap_or_else(|| panic!("timeline: no workload profile named \"swim\""));
        let early = SyntheticTrace::for_thread(swim, seed, 0).unwrap_or_else(|e| {
            panic!("timeline: invalid trace for early swim thread (seed {seed}): {e}")
        });
        // Prewarm the late thread's caches *before* wrapping in the delay
        // (prewarming skips compute ops and would otherwise consume the
        // whole delay prefix).
        let late_inner = SyntheticTrace::for_thread(swim, seed, 1).unwrap_or_else(|e| {
            panic!("timeline: invalid trace for late swim thread (seed {seed}): {e}")
        });
        let late = DelayedStart::new(late_inner, ARRIVAL_INSTRUCTIONS);
        let mut sys = SystemBuilder::new()
            .scheduler(sched)
            .seed(seed)
            .workload_trace("early", Box::new(early), 50_000)
            .workload_trace("late", Box::new(late), 0)
            .build()
            .unwrap_or_else(|e| {
                panic!("timeline: invalid system config under {sched} (seed {seed}): {e}")
            });
        let mut prev = [0u64; 2];
        for w in 0..WINDOWS {
            for _ in 0..WINDOW {
                sys.step();
            }
            let cur: Vec<u64> = (0..2)
                .map(|i| {
                    sys.controller()
                        .thread_stats(ThreadId::new(i))
                        .bus_busy_cycles
                })
                .collect();
            let d0 = (cur[0] - prev[0]) as f64 / WINDOW as f64;
            let d1 = (cur[1] - prev[1]) as f64 / WINDOW as f64;
            prev = [cur[0], cur[1]];
            row(&[sched.to_string(), w.to_string(), f(d0), f(d1), f(d0 + d1)]);
        }
    }
    eprintln!("# thread1 arrives around window 7; FQ-VFTF shows a bounded make-up period (early thread repays its excess), then 50/50");
}
