//! Fairness-vs-throughput frontier across the full scheduler family
//! (ISSUE 7 tentpole): FCFS, FR-FCFS, FR-VFTF, FQ-VFTF, BLISS and
//! SD-VFTF, swept over the five four-core mixes covering all twenty
//! shipped workload profiles, the starvation-adversarial mix, and the
//! adversarial mix under a combined fault plan (NACK storms, bank
//! stalls, refresh pressure, request drops) with bounded retries.
//!
//! Emits the frontier as TSV on stdout and as `BENCH_pr7.json`
//! (override the path with `FQMS_BENCH_PR7`), written atomically so a
//! killed run never leaves a torn file. The binary doubles as a smoke
//! gate and exits nonzero when:
//!
//! * any engine run violates conservation
//!   (`completed + dropped + rejected + unsubmitted == submitted`), or
//! * FQ-VFTF, SD-VFTF or BLISS shows a *higher* max-slowdown than
//!   FR-FCFS on the fault-free adversarial mix (the fairness claim the
//!   frontier exists to demonstrate).

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};
use fqms_dram::device::Geometry;
use fqms_memctrl::prelude::*;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use fqms_sim::snapshot::write_atomic;

/// Watchdog threshold for the adversarial runs (matches `faults.rs`).
const WATCHDOG: u64 = 300;

/// One frontier point: a (workload, scheduler) cell.
struct Point {
    workload: String,
    scheduler: SchedulerKind,
    ipc_sum: f64,
    bus_utilization: f64,
    max_slowdown: f64,
    harmonic_speedup: f64,
    completed: u64,
    starvations: u64,
}

impl Point {
    fn tsv(&self, kind: &str) -> Vec<String> {
        vec![
            kind.to_string(),
            self.workload.clone(),
            self.scheduler.name().to_string(),
            f(self.ipc_sum),
            f(self.bus_utilization),
            f(self.max_slowdown),
            f(self.harmonic_speedup),
            self.completed.to_string(),
            self.starvations.to_string(),
        ]
    }

    fn json(&self) -> String {
        format!(
            "{{\"workload\":\"{}\",\"scheduler\":\"{}\",\"ipc_sum\":{:.6},\
             \"bus_utilization\":{:.6},\"max_slowdown\":{:.6},\
             \"harmonic_speedup\":{:.6},\"completed\":{},\"starvations\":{}}}",
            self.workload,
            self.scheduler.name(),
            self.ipc_sum,
            self.bus_utilization,
            self.max_slowdown,
            self.harmonic_speedup,
            self.completed,
            self.starvations
        )
    }
}

/// The five four-core mixes: the paper's four (profiles 0-15) plus the
/// low-utilization tail (profiles 16-19) so all twenty profiles appear.
fn mixes() -> Vec<(String, [fqms_workloads::profile::WorkloadProfile; 4])> {
    let mut out: Vec<_> = four_core_workloads()
        .into_iter()
        .map(|mix| (mix_label(&mix), mix))
        .collect();
    let p = &SPEC_PROFILES;
    let tail = [p[16], p[17], p[18], p[19]];
    out.push((mix_label(&tail), tail));
    out
}

fn mix_label(mix: &[fqms_workloads::profile::WorkloadProfile; 4]) -> String {
    mix.iter().map(|p| p.name).collect::<Vec<_>>().join("+")
}

/// Runs one four-core system with observation enabled and collects a
/// frontier point from the merged metric sink.
fn workload_point(
    label: &str,
    mix: &[fqms_workloads::profile::WorkloadProfile; 4],
    scheduler: SchedulerKind,
    len: RunLength,
    seed: u64,
) -> Point {
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workloads(mix.iter().copied())
        .observe_events(1 << 12)
        .build()
        .expect("four-core frontier configuration is valid");
    let metrics = sys.run(len.instructions, len.max_dram_cycles);
    let sink = sys
        .observed_metrics()
        .expect("frontier systems run observed");
    fqms::sidecar::append(&format!("frontier-{label}"), scheduler.name(), &sink);
    Point {
        workload: label.to_string(),
        scheduler,
        ipc_sum: metrics.threads.iter().map(|t| t.ipc).sum(),
        bus_utilization: metrics.data_bus_utilization,
        max_slowdown: sink.max_slowdown(),
        harmonic_speedup: sink.harmonic_speedup(),
        completed: (0..sink.num_threads() as u32)
            .map(|t| {
                let t = sink.thread(t);
                t.reads_completed + t.writes_completed
            })
            .sum(),
        starvations: (0..sink.num_threads() as u32)
            .map(|t| sink.thread(t).starvations)
            .sum(),
    }
}

/// The combined fault plan exercised by the faulted adversarial sweep.
fn fault_plan(seed: u64, cycles: u64) -> FaultPlan {
    let end = cycles.saturating_sub(cycles / 4).max(2);
    let w = FaultWindow::new(end / 8, end);
    FaultPlan::new(seed)
        .with(FaultKind::NackStorm, w, 0.002, 90)
        .with(FaultKind::BankStall, w, 0.002, 110)
        .with(FaultKind::RefreshPressure, w, 0.001, 70)
        .with(FaultKind::RequestDrop, w, 0.003, 1)
}

/// Runs the adversarial engine workload and returns the point plus the
/// conservation tally (completed + dropped + rejected + unsubmitted,
/// which must equal the submitted schedule length).
fn adversarial_point(
    scheduler: SchedulerKind,
    events: &[SubmitEvent],
    plan: Option<FaultPlan>,
    label: &str,
) -> (Point, usize) {
    let mut spec = EngineSpec::paper(1, 3);
    spec.config.set_scheduler(scheduler);
    spec.config.starvation_threshold = Some(WATCHDOG);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec.fault_plan = plan.clone();
    if plan.is_some() {
        // NACK storms can wedge an infinite-retry port; bound it.
        spec.retry = RetryPolicy::bounded(6, 2, 64);
    }
    let report = simulate_serial(&spec, events)
        .unwrap_or_else(|e| panic!("frontier: invalid spec for {scheduler} ({label}): {e}"));
    fqms::telemetry::note_controller_cycles(report.stepped_cycles, report.skipped_cycles);
    let obs = report
        .observations
        .as_ref()
        .expect("frontier: spec enables observation");
    fqms::sidecar::append(&format!("frontier-{label}"), scheduler.name(), &obs.metrics);
    let dropped: u64 = report.per_thread.iter().map(|t| t.requests_dropped).sum();
    let rejected: usize = report.rejected.iter().map(Vec::len).sum();
    let accounted = report.total_completed() + dropped as usize + rejected + report.unsubmitted;
    let point = Point {
        workload: label.to_string(),
        scheduler,
        // The raw engine has no cores; cycles-per-completion stands in as
        // the throughput axis (lower is better, inverted for the JSON).
        ipc_sum: report.total_completed() as f64 / report.cycles.max(1) as f64,
        bus_utilization: report.bus_busy_cycles as f64 / report.cycles.max(1) as f64,
        max_slowdown: obs.metrics.max_slowdown(),
        harmonic_speedup: obs.metrics.harmonic_speedup(),
        completed: report.total_completed() as u64,
        starvations: report.per_thread.iter().map(|t| t.starvations).sum(),
    };
    (point, accounted)
}

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let schedulers = SchedulerKind::all();

    header(&[
        "kind",
        "workload",
        "scheduler",
        "throughput",
        "bus_util",
        "max_slowdown",
        "harmonic_speedup",
        "completed",
        "starvations",
    ]);

    let mut workload_points = Vec::new();
    for (label, mix) in mixes() {
        for &scheduler in &schedulers {
            let p = workload_point(&label, &mix, scheduler, len, seed);
            row(&p.tsv("workload"));
            workload_points.push(p);
        }
    }

    let gen_cycles = (len.instructions / 2).clamp(10_000, 200_000);
    let events = adversarial_workload(&Geometry::paper(), 3, gen_cycles, seed);
    let mut gate_failures = Vec::new();
    let mut adversarial_points = Vec::new();
    let mut faulted_points = Vec::new();
    for &scheduler in &schedulers {
        for (plan, label, bucket) in [
            (None, "adversarial", &mut adversarial_points),
            (
                Some(fault_plan(seed, gen_cycles)),
                "adversarial-faulted",
                &mut faulted_points,
            ),
        ] {
            let (point, accounted) = adversarial_point(scheduler, &events, plan, label);
            if accounted != events.len() {
                gate_failures.push(format!(
                    "{scheduler} ({label}): conservation violated — {accounted} accounted \
                     of {} submitted",
                    events.len()
                ));
            }
            row(&point.tsv(label));
            bucket.push(point);
        }
    }

    // The fairness gate: the slowdown-aware schedulers must not be LESS
    // fair than FR-FCFS on the mix built to starve FR-FCFS's victim.
    let adversarial_sd = |kind: SchedulerKind| {
        adversarial_points
            .iter()
            .find(|p| p.scheduler == kind)
            .expect("all schedulers swept")
            .max_slowdown
    };
    let fr = adversarial_sd(SchedulerKind::FrFcfs);
    for kind in [
        SchedulerKind::FqVftf,
        SchedulerKind::SdVftf,
        SchedulerKind::Bliss,
    ] {
        let sd = adversarial_sd(kind);
        if sd > fr {
            gate_failures.push(format!(
                "{kind}: adversarial max-slowdown {sd:.3} exceeds FR-FCFS's {fr:.3}"
            ));
        }
    }

    let json_points = |pts: &[Point]| {
        pts.iter()
            .map(Point::json)
            .collect::<Vec<_>>()
            .join(",\n    ")
    };
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"runlen\": \"{}\",\n  \"schedulers\": [{}],\n  \
         \"workloads\": [\n    {}\n  ],\n  \"adversarial\": [\n    {}\n  ],\n  \
         \"adversarial_faulted\": [\n    {}\n  ],\n  \"gates\": {{\n    \
         \"conservation\": {},\n    \"fq_vftf_max_slowdown_le_frfcfs\": {},\n    \
         \"sd_vftf_max_slowdown_le_frfcfs\": {},\n    \
         \"bliss_max_slowdown_le_frfcfs\": {}\n  }}\n}}\n",
        std::env::var("FQMS_RUNLEN").unwrap_or_else(|_| "standard".into()),
        schedulers
            .iter()
            .map(|s| format!("\"{}\"", s.name()))
            .collect::<Vec<_>>()
            .join(","),
        json_points(&workload_points),
        json_points(&adversarial_points),
        json_points(&faulted_points),
        gate_failures.iter().all(|g| !g.contains("conservation")),
        adversarial_sd(SchedulerKind::FqVftf) <= fr,
        adversarial_sd(SchedulerKind::SdVftf) <= fr,
        adversarial_sd(SchedulerKind::Bliss) <= fr,
    );
    let out = std::env::var("FQMS_BENCH_PR7").unwrap_or_else(|_| "BENCH_pr7.json".into());
    write_atomic(std::path::Path::new(&out), json.as_bytes())
        .unwrap_or_else(|e| panic!("frontier: cannot write {out}: {e}"));
    eprintln!("# frontier JSON written to {out}");

    if !gate_failures.is_empty() {
        for g in &gate_failures {
            eprintln!("GATE FAILED: {g}");
        }
        std::process::exit(1);
    }
}
