//! Scheduler-scaling study (ISSUE 6 figure): per-request scheduler cost
//! and hierarchical fairness from 64 to 4096 threads.
//!
//! A single-channel FQ-VFTF controller is driven closed-loop — every
//! thread keeps a fixed window of reads outstanding, refilled on
//! completion, so the bank queues stay saturated and their depth grows
//! linearly with the thread count. Each scale runs twice: once with the
//! O(log n) tournament-heap index (`ScanKind::Indexed`, the default) and
//! once with the retained linear reference scan (`ScanKind::Linear`).
//! Both runs produce bit-identical schedules (enforced by the
//! `select_differential` release gate); this binary measures what they
//! *cost* and checks that hierarchical fairness holds at every scale.
//!
//! Emits `BENCH_pr6.json` (schema documented in README.md and
//! EXPERIMENTS.md, overridable via `FQMS_BENCH_PR6`) and acts as a perf
//! smoke gate: exits nonzero if the indexed per-request cost grows by
//! more than 2x from the smallest to the largest scale, or if the
//! per-tenant relative service error versus the phi allocation exceeds
//! 5% at any scale on the indexed path.

use fqms_bench::{f, header, row, seed};
use fqms_dram::command::{BankId, ColId, DramAddress, RankId, RowId};
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::prelude::*;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::SimRng;
use std::time::Instant;

/// Outstanding reads per thread. Small enough that the per-thread buffer
/// partition never NACKs, large enough that every bank queue is deep.
const WINDOW: u32 = 2;

/// Threads per tenant in the symmetric share tree (64 threads → 4
/// tenants, 4096 threads → 256 tenants).
const THREADS_PER_TENANT: usize = 16;

struct ScaleResult {
    wall_s: f64,
    completed: u64,
    cycles: u64,
    /// Per-request scheduler cost in microseconds of wall clock.
    cost_us: f64,
    /// max over tenants of |service/total − share| / share.
    max_rel_err: f64,
    /// Same error one level down (per thread vs effective phi). Reported
    /// for transparency, not gated: the lightest threads complete only a
    /// handful of requests per run, so this is quantization-bound.
    max_thread_err: f64,
}

/// The benchmark's share tree: heterogeneous tenant shares and thread
/// weights drawn from the golden-ratio low-discrepancy sequence, so every
/// thread's effective phi is globally distinct (spread ~[1, 2) before
/// normalization). Heterogeneity is what the hierarchy is *for*, and it
/// keeps the virtual-finish times of different threads desynchronized:
/// with uniform phi and the paper's closed-row policy every request
/// carries an identical virtual service quantum, so the schedule
/// degenerates into permanent cross-thread ties that the deterministic
/// id tiebreak resolves the same way every round — a measurement
/// artifact, not a fairness property.
fn scale_tree(threads: usize) -> ShareTree {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let spread = |i: usize| 1.0 + (i as f64 * PHI).fract();
    let tenants = threads / THREADS_PER_TENANT;
    let raw: Vec<f64> = (0..tenants).map(spread).collect();
    let total: f64 = raw.iter().sum();
    ShareTree {
        tenants: (0..tenants)
            .map(|t| TenantSpec {
                share: raw[t] / total,
                weights: (0..THREADS_PER_TENANT)
                    .map(|i| spread(t * THREADS_PER_TENANT + i + tenants))
                    .collect(),
            })
            .collect(),
    }
}

/// Drives one controller closed-loop until `target` requests have
/// completed (bounded by a generous cycle cap) and reports wall-clock,
/// completions, and the per-tenant service error.
///
/// The horizon is denominated in *completed requests*, not cycles: fair
/// queuing's intrinsic unfairness is one service round (every thread's
/// window once), so the measured relative error shrinks as 1/rounds.
/// Sizing the run as a fixed number of rounds makes the fairness gate
/// scale-invariant instead of drowning large scales in partial-round
/// quantization.
fn run_scale(threads: usize, target: u64, scan: ScanKind, master_seed: u64) -> ScaleResult {
    let tree = scale_tree(threads);
    let mut config = McConfig::hierarchical(SchedulerKind::FqVftf, tree.clone());
    config.scan = scan;
    let geometry = Geometry::paper();
    let mut mc = MemoryController::new(config, geometry, TimingParams::ddr2_800())
        .unwrap_or_else(|e| panic!("scaling: invalid config at {threads} threads: {e}"));
    let map = AddressMap::new(geometry, 64);
    let mut rng = SimRng::new(master_seed ^ threads as u64);
    // Each thread camps on one bank (thread mod banks) and touches a
    // random row per request. Camping keeps every thread *continuously
    // backlogged at its bank*, which is the regime where per-bank virtual
    // finish ordering delivers service proportional to phi; it also makes
    // each bank queue's depth grow linearly with the thread count, which
    // is exactly the load the linear scan degrades on. (Scattering
    // requests over random banks instead would leave each thread absent
    // from most banks most of the time, and a window of 2 cannot keep
    // per-bank backlog — service then compresses toward equal regardless
    // of phi, measuring the workload, not the scheduler.)
    let submit = |mc: &mut MemoryController, t: u32, now: DramCycle, rng: &mut SimRng| {
        let addr = DramAddress {
            rank: RankId::new(0),
            bank: BankId::new(t % geometry.banks),
            row: RowId::new(rng.next_below(u64::from(geometry.rows)) as u32),
            col: ColId::new(rng.next_below(u64::from(geometry.cols)) as u32),
        };
        mc.try_submit(ThreadId::new(t), RequestKind::Read, map.encode(addr), now)
            .expect("window below the buffer partition size");
    };

    let t0 = Instant::now();
    let now0 = DramCycle::new(0);
    for t in 0..threads as u32 {
        for _ in 0..WINDOW {
            submit(&mut mc, t, now0, &mut rng);
        }
    }
    let mut completed = 0u64;
    let cap = target.saturating_mul(16);
    let mut c = 0u64;
    while completed < target {
        c += 1;
        assert!(
            c <= cap,
            "scaling: {threads} threads wedged before {target} completions"
        );
        let now = DramCycle::new(c);
        for done in mc.step(now) {
            completed += 1;
            // Closed loop: replace each completion from the same thread.
            submit(&mut mc, done.thread.as_u32(), now, &mut rng);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let tenants = mc.stats().tenant_totals(&tree);
    let total: u64 = tenants.iter().map(|t| t.reads_completed).sum();
    let max_rel_err = tenants
        .iter()
        .zip(tree.tenants.iter())
        .map(|(t, spec)| {
            let served = t.reads_completed as f64 / total as f64;
            (served - spec.share).abs() / spec.share
        })
        .fold(0.0f64, f64::max);
    let max_thread_err = mc
        .stats()
        .iter()
        .zip(tree.effective_shares())
        .map(|((_, t), phi)| {
            let served = t.reads_completed as f64 / total as f64;
            (served - phi).abs() / phi
        })
        .fold(0.0f64, f64::max);
    ScaleResult {
        wall_s,
        completed,
        cycles: c,
        cost_us: wall_s * 1e6 / completed as f64,
        max_rel_err,
        max_thread_err,
    }
}

fn main() {
    let _run_log = fqms_bench::RunLog::new();
    let seed = seed();
    // Horizon in service rounds (window refills per thread). The
    // intrinsic FQ unfairness is one partial round, so the expected
    // relative error is ~0.5/rounds — comfortably under the 5% gate at
    // every setting below. The linear reference runs the identical
    // schedule; its cost is normalized per completed request, so shared
    // horizons keep the comparison honest while bounding the O(n)-scan
    // wall clock.
    let rounds: u64 = match std::env::var("FQMS_RUNLEN").as_deref() {
        Ok("quick") => 32,
        Ok("full") => 96,
        _ => 48,
    };

    println!("== FQ-VFTF scheduler scaling: indexed heap vs linear scan ==");
    header(&[
        "threads",
        "tenants",
        "cycles",
        "indexed_us_per_req",
        "linear_us_per_req",
        "linear_over_indexed",
        "indexed_rel_err",
        "linear_rel_err",
    ]);

    let scales = [64usize, 256, 1024, 4096];
    let mut entries = Vec::new();
    let mut indexed_costs = Vec::new();
    let mut fairness_failed = false;
    for &threads in &scales {
        let target = rounds * threads as u64 * u64::from(WINDOW);
        let indexed = run_scale(threads, target, ScanKind::Indexed, seed);
        let linear = run_scale(threads, target, ScanKind::Linear, seed);
        assert_eq!(
            (indexed.completed, indexed.cycles),
            (linear.completed, linear.cycles),
            "{threads} threads: scan kinds diverged on the serviced schedule"
        );
        if indexed.max_rel_err > 0.05 {
            eprintln!(
                "FAIRNESS GATE FAILED: {threads} threads: tenant service error \
                 {:.4} exceeds 5% on the indexed path",
                indexed.max_rel_err
            );
            fairness_failed = true;
        }
        row(&[
            threads.to_string(),
            (threads / THREADS_PER_TENANT).to_string(),
            indexed.cycles.to_string(),
            f(indexed.cost_us),
            f(linear.cost_us),
            f(linear.cost_us / indexed.cost_us),
            f(indexed.max_rel_err),
            f(linear.max_rel_err),
        ]);
        indexed_costs.push(indexed.cost_us);
        entries.push(format!(
            concat!(
                "    {{\"threads\": {}, \"tenants\": {}, \"cycles\": {}, ",
                "\"completed\": {}, ",
                "\"indexed\": {{\"wall_s\": {:.6}, \"us_per_request\": {:.4}, ",
                "\"max_rel_service_err\": {:.6}, \"max_rel_thread_err\": {:.6}}}, ",
                "\"linear\": {{\"wall_s\": {:.6}, \"us_per_request\": {:.4}, ",
                "\"max_rel_service_err\": {:.6}, \"max_rel_thread_err\": {:.6}}}}}"
            ),
            threads,
            threads / THREADS_PER_TENANT,
            indexed.cycles,
            indexed.completed,
            indexed.wall_s,
            indexed.cost_us,
            indexed.max_rel_err,
            indexed.max_thread_err,
            linear.wall_s,
            linear.cost_us,
            linear.max_rel_err,
            linear.max_thread_err,
        ));
    }

    let cost_ratio = indexed_costs.last().unwrap() / indexed_costs.first().unwrap();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"pr6_scaling\",\n  \"seed\": {},\n",
            "  \"workload\": {{\"generator\": \"closed_loop_bank_camping\", ",
            "\"window\": {}, \"kind\": \"read\"}},\n",
            "  \"controller\": {{\"scheduler\": \"FQ-VFTF\", \"channels\": 1, ",
            "\"geometry\": \"paper\", \"timing\": \"ddr2_800\", ",
            "\"threads_per_tenant\": {}}},\n",
            "  \"scales\": [\n{}\n  ],\n",
            "  \"gates\": {{\"indexed_cost_ratio\": {:.4}, ",
            "\"indexed_cost_ratio_max\": 2.0, ",
            "\"fairness_err_max\": 0.05}}\n}}\n"
        ),
        seed,
        WINDOW,
        THREADS_PER_TENANT,
        entries.join(",\n"),
        cost_ratio,
    );
    let path = std::env::var("FQMS_BENCH_PR6").unwrap_or_else(|_| "BENCH_pr6.json".to_string());
    match fqms_sim::snapshot::write_atomic(std::path::Path::new(&path), json.as_bytes()) {
        Ok(()) => eprintln!("#bench_pr6_json\t{path}"),
        Err(e) => eprintln!("scaling: cannot write {path}: {e}"),
    }

    if cost_ratio > 2.0 {
        eprintln!(
            "PERF SMOKE FAILED: indexed per-request cost grew {cost_ratio:.2}x \
             from {} to {} threads (gate: 2x)",
            scales[0],
            scales[scales.len() - 1]
        );
        std::process::exit(1);
    }
    if fairness_failed {
        std::process::exit(1);
    }
}
