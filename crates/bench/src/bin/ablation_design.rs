//! Ablation of the FQ scheduler's two secondary design choices the paper
//! discusses but does not plot:
//!
//! * **VFT binding** (Section 3.2): binding virtual finish times at
//!   arrival with an average service estimate (the "first solution")
//!   versus at first-ready with the actual bank state (the evaluated
//!   "second solution"). The paper predicts arrival binding "is likely to
//!   penalize threads ... with a large number of open row buffer hits".
//! * **Row policy** (Section 2.2): closed-row (the paper's choice, after
//!   Natarajan et al.) versus open-row, on multiprogrammed mixes.

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let art =
        by_name("art").unwrap_or_else(|| panic!("ablation_design: no workload profile \"art\""));

    println!("== VFT binding: at-arrival (average service) vs first-ready (actual) ==");
    header(&[
        "subject",
        "binding",
        "subject_norm_ipc",
        "background_norm_ipc",
        "data_bus_utilization",
    ]);
    let base_art = run_private_baseline(art, 2, len.instructions, len.max_dram_cycles * 2, seed);
    // mgrid/applu stream with high row locality (many row hits — the
    // threads arrival-binding should penalize); twolf/vpr are low-MLP.
    for subject_name in ["mgrid", "applu", "twolf", "vpr"] {
        let subject = by_name(subject_name)
            .unwrap_or_else(|| panic!("ablation_design: no workload profile \"{subject_name}\""));
        let base =
            run_private_baseline(subject, 2, len.instructions, len.max_dram_cycles * 2, seed);
        for (label, binding) in [
            ("first-ready", VftBinding::FirstReady),
            ("at-arrival", VftBinding::AtArrival),
        ] {
            let mut sys = SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .vft_binding(binding)
                .seed(seed)
                .workload(subject)
                .workload(art)
                .build()
                .unwrap_or_else(|e| {
                    panic!(
                        "ablation_design: invalid config for {subject_name} + art with \
                         {label} VFT binding (seed {seed}): {e}"
                    )
                });
            let m = sys.run(len.instructions, len.max_dram_cycles);
            row(&[
                subject_name.to_string(),
                label.to_string(),
                f(m.threads[0].ipc / base.ipc),
                f(m.threads[1].ipc / base_art.ipc),
                f(m.data_bus_utilization),
            ]);
        }
    }

    println!();
    println!("== Row policy: closed (paper) vs open, four-core workload 1 ==");
    header(&[
        "scheduler",
        "row_policy",
        "hmean_norm_ipc",
        "data_bus_utilization",
        "bank_utilization",
    ]);
    let mix = four_core_workloads()[0];
    let baselines: Vec<f64> = mix
        .iter()
        .map(|p| run_private_baseline(*p, 4, len.instructions, len.max_dram_cycles * 4, seed).ipc)
        .collect();
    for sched in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        for (label, policy) in [("closed", RowPolicy::Closed), ("open", RowPolicy::Open)] {
            let mut sys = SystemBuilder::new()
                .scheduler(sched)
                .row_policy(policy)
                .seed(seed)
                .workloads(mix.iter().copied())
                .build()
                .unwrap_or_else(|e| {
                    panic!(
                        "ablation_design: invalid four-core config under {sched} with \
                         {label} rows (seed {seed}): {e}"
                    )
                });
            let m = sys.run(len.instructions, len.max_dram_cycles);
            row(&[
                sched.to_string(),
                label.to_string(),
                f(m.harmonic_mean_normalized_ipc(&baselines)),
                f(m.data_bus_utilization),
                f(m.bank_utilization),
            ]);
        }
    }
}
