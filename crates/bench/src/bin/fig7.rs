//! Figure 7: aggregate results of the two-core sweep — performance
//! improvement over FR-FCFS (top; harmonic mean of the co-scheduled
//! threads' normalized IPCs), aggregate data-bus utilization (middle), and
//! aggregate bank utilization (bottom).

use fqms_bench::{f, header, paper_schedulers, row, run_length, seed, two_core_sweep};
use fqms_memctrl::policy::SchedulerKind;

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let entries = two_core_sweep(&paper_schedulers(), len, seed);
    header(&[
        "subject",
        "scheduler",
        "hmean_norm_ipc",
        "improvement_over_frfcfs",
        "data_bus_utilization",
        "bank_utilization",
    ]);
    let subjects: Vec<String> = entries
        .iter()
        .filter(|e| e.scheduler == SchedulerKind::FrFcfs)
        .map(|e| e.subject.clone())
        .collect();
    let mut sums = std::collections::BTreeMap::new();
    for subject in &subjects {
        let get = |sched: SchedulerKind| {
            entries
                .iter()
                .find(|e| &e.subject == subject && e.scheduler == sched)
                .unwrap_or_else(|| {
                    panic!(
                        "fig7: two-core sweep (seed {seed}) is missing the {sched} entry \
                         for subject \"{subject}\""
                    )
                })
        };
        let base = get(SchedulerKind::FrFcfs).hmean_norm_ipc();
        for sched in paper_schedulers() {
            let e = get(sched);
            let hm = e.hmean_norm_ipc();
            let imp = if base > 0.0 { hm / base - 1.0 } else { 0.0 };
            row(&[
                subject.clone(),
                sched.to_string(),
                f(hm),
                f(imp),
                f(e.metrics.data_bus_utilization),
                f(e.metrics.bank_utilization),
            ]);
            let s = sums
                .entry(sched.to_string())
                .or_insert((0.0, 0.0, 0.0, 0usize, 0.0f64));
            s.0 += imp;
            s.1 += e.metrics.data_bus_utilization;
            s.2 += e.metrics.bank_utilization;
            s.3 += 1;
            s.4 = s.4.max(imp);
        }
    }
    for (sched, (imp, bus, bank, n, max_imp)) in sums {
        eprintln!(
            "# {sched}: avg improvement over FR-FCFS {:+.1}% (max {:+.1}%), avg bus util {:.2}, avg bank util {:.2}",
            100.0 * imp / n as f64,
            100.0 * max_imp,
            bus / n as f64,
            bank / n as f64
        );
    }
}
