//! Figure 1: memory latency and IPC for benchmark `vpr` when it runs
//! alone, co-scheduled with `crafty`, and co-scheduled with `art`, all
//! under the FR-FCFS scheduler (the motivating experiment).

use fqms::prelude::*;
use fqms_bench::{f, header, row, run_length, seed};

fn main() {
    // Dropped on exit: prints wall-clock and skip-rate to the .log sidecar.
    let _run_log = fqms_bench::RunLog::new();
    let len = run_length();
    let seed = seed();
    let vpr = by_name("vpr").unwrap_or_else(|| panic!("fig1: no workload profile named \"vpr\""));

    header(&[
        "configuration",
        "vpr_ipc",
        "vpr_norm_ipc",
        "vpr_avg_read_latency_cpu",
        "vpr_bus_utilization",
    ]);

    let solo = run_solo(vpr, len.instructions, len.max_dram_cycles, seed);
    row(&[
        "vpr alone".into(),
        f(solo.ipc),
        f(1.0),
        f(solo.avg_read_latency),
        f(solo.bus_utilization),
    ]);

    for partner in ["crafty", "art"] {
        let m = two_core_run(
            vpr,
            by_name(partner).unwrap_or_else(|| {
                panic!("fig1: no workload profile named \"{partner}\" (seed {seed})")
            }),
            SchedulerKind::FrFcfs,
            len,
            seed,
        );
        row(&[
            format!("vpr + {partner}"),
            f(m.threads[0].ipc),
            f(m.threads[0].ipc / solo.ipc),
            f(m.threads[0].avg_read_latency),
            f(m.threads[0].bus_utilization),
        ]);
    }
}
