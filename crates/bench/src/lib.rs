//! Shared helpers for the FQMS figure/table regeneration harness.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper's evaluation. They all honour two environment variables:
//!
//! * `FQMS_RUNLEN` — `quick` | `standard` (default) | `full`: per-thread
//!   instruction budget per run,
//! * `FQMS_SEED` — master random seed (default 42).
//!
//! Output is tab-separated with a `#`-prefixed header so results can be
//! piped into plotting tools or diffed across runs.

use fqms::prelude::*;

pub mod timing;

/// Reads the run length from `FQMS_RUNLEN` (quick/standard/full).
pub fn run_length() -> RunLength {
    match std::env::var("FQMS_RUNLEN").as_deref() {
        Ok("quick") => RunLength::quick(),
        Ok("full") => RunLength::full(),
        _ => RunLength::standard(),
    }
}

/// Reads the master seed from `FQMS_SEED` (default 42).
pub fn seed() -> u64 {
    std::env::var("FQMS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Prints a `#`-prefixed header row.
pub fn header(cols: &[&str]) {
    println!("#{}", cols.join("\t"));
}

/// Prints one data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Formats a float to 4 decimal places.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// End-of-run diagnostics for a figure binary, printed to **stderr** so
/// `run_figures.sh` captures them in the binary's `results/<bin>.log`
/// sidecar: total wall-clock, controller cycles simulated, and the
/// fraction the event-driven fast path skipped (see
/// [`fqms::telemetry`]). Construct one at the top of `main` and let it
/// drop on exit.
pub struct RunLog {
    t0: std::time::Instant,
}

impl RunLog {
    /// Starts the wall clock for this process.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        RunLog {
            t0: std::time::Instant::now(),
        }
    }
}

impl Drop for RunLog {
    fn drop(&mut self) {
        let (stepped, skipped) = fqms::telemetry::controller_cycles();
        eprintln!("#wall_clock_s\t{:.3}", self.t0.elapsed().as_secs_f64());
        eprintln!("#controller_cycles_stepped\t{stepped}");
        eprintln!("#controller_cycles_skipped\t{skipped}");
        eprintln!("#skip_rate\t{:.4}", fqms::telemetry::skip_rate());
        let exec = fqms::telemetry::parallel_exec();
        eprintln!("#parallel_workers\t{}", exec.workers_peak);
        eprintln!("#parallel_steals\t{}", exec.steals);
        eprintln!("#parallel_free_run_spans\t{}", exec.free_run_spans);
        eprintln!("#parallel_barrier_waits\t{}", exec.barrier_waits);
    }
}

/// The three schedulers the paper's figures compare.
pub fn paper_schedulers() -> [SchedulerKind; 3] {
    [
        SchedulerKind::FrFcfs,
        SchedulerKind::FrVftf,
        SchedulerKind::FqVftf,
    ]
}

/// Baseline (private, time-scaled) IPCs for a set of profiles, computed
/// once per process. `factor` is the time-scale (2 for two-core baselines,
/// 4 for four-core).
pub fn baseline_ipcs(
    profiles: &[fqms_workloads::profile::WorkloadProfile],
    factor: u64,
    len: RunLength,
    seed: u64,
) -> Vec<f64> {
    profiles
        .iter()
        .map(|p| {
            run_private_baseline(
                *p,
                factor,
                len.instructions,
                len.max_dram_cycles.saturating_mul(factor),
                seed,
            )
            .ipc
        })
        .collect()
}

/// Solo metrics (unscaled private run) for a set of profiles.
pub fn solo_metrics(
    profiles: &[fqms_workloads::profile::WorkloadProfile],
    len: RunLength,
    seed: u64,
) -> Vec<ThreadMetrics> {
    profiles
        .iter()
        .map(|p| run_solo(*p, len.instructions, len.max_dram_cycles, seed))
        .collect()
}

/// One subject×scheduler cell of the two-core sweep behind Figures 5-7:
/// the subject on thread 0, the `art` background on thread 1.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Subject benchmark name.
    pub subject: String,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Shared-run metrics (thread 0 = subject, thread 1 = art).
    pub metrics: SystemMetrics,
    /// Subject's private ×2-time-scaled baseline IPC.
    pub subject_baseline_ipc: f64,
    /// art's private ×2-time-scaled baseline IPC.
    pub background_baseline_ipc: f64,
}

impl SweepEntry {
    /// Subject IPC normalized to its ×2 private baseline (the paper's QoS
    /// metric: >= 1 means the QoS objective is met).
    pub fn subject_norm_ipc(&self) -> f64 {
        self.metrics.threads[0].ipc / self.subject_baseline_ipc
    }

    /// Background (art) IPC normalized to its ×2 private baseline.
    pub fn background_norm_ipc(&self) -> f64 {
        self.metrics.threads[1].ipc / self.background_baseline_ipc
    }

    /// Harmonic mean of the two normalized IPCs (the paper's aggregate
    /// performance metric for Figure 7).
    pub fn hmean_norm_ipc(&self) -> f64 {
        harmonic_mean(&[self.subject_norm_ipc(), self.background_norm_ipc()])
    }
}

/// Runs the full two-core sweep: every benchmark except `art` as the
/// subject, `art` as the background, under each of `schedulers`.
pub fn two_core_sweep(schedulers: &[SchedulerKind], len: RunLength, seed: u64) -> Vec<SweepEntry> {
    let art = by_name("art").expect("art profile exists");
    let subjects: Vec<_> = SPEC_PROFILES
        .iter()
        .filter(|p| p.name != "art")
        .copied()
        .collect();
    let base_art =
        run_private_baseline(art, 2, len.instructions, len.max_dram_cycles * 2, seed).ipc;
    let mut out = Vec::new();
    for subject in &subjects {
        let base_subj =
            run_private_baseline(*subject, 2, len.instructions, len.max_dram_cycles * 2, seed).ipc;
        for &scheduler in schedulers {
            let metrics = two_core_run(*subject, art, scheduler, len, seed);
            out.push(SweepEntry {
                subject: subject.name.to_string(),
                scheduler,
                metrics,
                subject_baseline_ipc: base_subj,
                background_baseline_ipc: base_art,
            });
        }
    }
    out
}
