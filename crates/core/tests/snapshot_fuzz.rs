//! Corruption fuzz over full-system snapshots, driven by the in-tree
//! [`CaseRunner`]: random truncations and single-bit flips of a valid
//! snapshot must every one yield a typed [`SnapshotError`] — naming the
//! failing section when the damage is inside one — and must never panic
//! or restore successfully.

use fqms::prelude::System;
use fqms_memctrl::prelude::SchedulerKind;
use fqms_sim::rng::{CaseRunner, SimRng};
use fqms_sim::snapshot::SnapshotError;
use fqms_workloads::profile::WorkloadProfile;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn warm_system() -> System {
    let mut sys = System::builder()
        .scheduler(SchedulerKind::FqVftf)
        .workloads(vec![
            WorkloadProfile::stream("fuzz-a", 4.0),
            WorkloadProfile::pointer_chase("fuzz-b", 10.0),
        ])
        .seed(2006)
        .prewarm(false)
        .build()
        .expect("valid system");
    // Run long enough that every layer holds non-trivial state (caches,
    // MSHRs, scheduler, RNGs), so most of the snapshot is live payload.
    sys.run(2_000, 200_000);
    sys
}

/// One corruption applied to a pristine snapshot.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Keep only the first `len` bytes.
    Truncate(usize),
    /// Flip one bit at `(byte, bit)`.
    BitFlip(usize, u8),
}

impl Mutation {
    fn apply(self, pristine: &[u8]) -> Vec<u8> {
        let mut bytes = pristine.to_vec();
        match self {
            Mutation::Truncate(len) => bytes.truncate(len),
            Mutation::BitFlip(pos, bit) => bytes[pos] ^= 1 << bit,
        }
        bytes
    }
}

#[test]
fn corrupted_snapshots_fail_typed_and_never_panic() {
    // RefCell because CaseRunner's property closures are `Fn`.
    let victim = std::cell::RefCell::new(warm_system());
    let pristine = victim.borrow().save_snapshot().expect("snapshot");
    assert!(
        victim.borrow_mut().restore_snapshot(&pristine).is_ok(),
        "pristine snapshot must restore"
    );
    let n = pristine.len();
    assert!(n > 64, "snapshot implausibly small: {n} bytes");

    CaseRunner::new("snapshot-corruption").cases(64).run(
        |rng: &mut SimRng| {
            if rng.next_below(2) == 0 {
                Mutation::Truncate(rng.next_below(n as u64) as usize)
            } else {
                Mutation::BitFlip(rng.next_below(n as u64) as usize, rng.next_below(8) as u8)
            }
        },
        // Shrink toward the front of the buffer (header-adjacent damage
        // is the easiest counterexample to reason about).
        |&m| match m {
            Mutation::Truncate(len) if len > 0 => {
                vec![Mutation::Truncate(len / 2), Mutation::Truncate(len - 1)]
            }
            Mutation::Truncate(_) => Vec::new(),
            Mutation::BitFlip(pos, bit) => {
                let mut c = Vec::new();
                if pos > 0 {
                    c.push(Mutation::BitFlip(pos / 2, bit));
                    c.push(Mutation::BitFlip(pos - 1, bit));
                }
                if bit > 0 {
                    c.push(Mutation::BitFlip(pos, 0));
                }
                c
            }
        },
        |&m| {
            let corrupt = m.apply(&pristine);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                victim.borrow_mut().restore_snapshot(&corrupt)
            }));
            // Whatever a failed restore left behind, return the victim to
            // a known-good state before the next case.
            victim
                .borrow_mut()
                .restore_snapshot(&pristine)
                .map_err(|e| format!("{m:?}: victim unrecoverable after corrupt restore: {e}"))?;
            match outcome {
                Err(_) => Err(format!("{m:?}: restore panicked")),
                Ok(Ok(())) => Err(format!("{m:?}: corrupted snapshot restored successfully")),
                Ok(Err(err)) => {
                    // Damage inside the section stream must name the
                    // section; header-level damage has its own typed
                    // variants. Anything else (e.g. a stray Io) means the
                    // codec leaked an untyped failure.
                    let named = match &err {
                        SnapshotError::Truncated { section }
                        | SnapshotError::CorruptSection { section }
                        | SnapshotError::Malformed { section, .. } => !section.is_empty(),
                        SnapshotError::WrongSection { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::UnsupportedVersion { .. }
                        | SnapshotError::ConfigMismatch { .. }
                        | SnapshotError::TrailingData => true,
                        other => {
                            return Err(format!("{m:?}: unexpected error class: {other:?}"));
                        }
                    };
                    if named {
                        Ok(())
                    } else {
                        Err(format!("{m:?}: error names no section: {err:?}"))
                    }
                }
            }
        },
    );

    // The victim still works after the whole fuzz run.
    victim
        .borrow_mut()
        .restore_snapshot(&pristine)
        .expect("final restore");
}
