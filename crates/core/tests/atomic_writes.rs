//! Crash-safety test for the sidecar exporter: a process killed at an
//! arbitrary instant mid-export must leave either no sidecar or a
//! complete, parseable one — never a torn line or a missing header.
//!
//! The test re-executes its own test binary as a child (gated on the
//! `FQMS_ATOMIC_CHILD` environment variable) that appends sidecar blocks
//! in a tight loop, kills it with SIGKILL after a short delay, and then
//! validates whatever the child left on disk.

use fqms_obs::{Event, MetricsSink, TSV_HEADER};
use std::path::PathBuf;
use std::time::Duration;

/// A sink with enough threads and traffic that each exported block is
/// large, maximising the window in which a non-atomic write could tear.
fn fat_sink(threads: u32) -> MetricsSink {
    let mut sink = MetricsSink::new(threads as usize);
    for i in 0..threads * 8 {
        sink.observe(&Event::Completed {
            cycle: 100 + u64::from(i),
            thread: i % threads,
            id: u64::from(i),
            is_write: i % 3 == 0,
            latency: 10 + u64::from(i % 50),
            bytes: 64,
            alone_cycles: 14,
        });
    }
    sink
}

/// Child body: loop appending blocks to the path named by
/// `FQMS_ATOMIC_CHILD` until killed. When the variable is unset (a normal
/// test run), this test is a no-op.
#[test]
fn atomic_child_append_loop() {
    let Some(path) = std::env::var_os("FQMS_ATOMIC_CHILD") else {
        return;
    };
    let path = PathBuf::from(path);
    let sink = fat_sink(64);
    for i in 0..200_000u64 {
        fqms::sidecar::append_block(&path, &format!("block-{i}"), "FQ-VFTF", &sink)
            .expect("child append failed");
    }
}

/// Returns an error message if `text` is not a complete sidecar file.
fn validate_sidecar(text: &str) -> Result<usize, String> {
    if !text.ends_with('\n') {
        return Err("file does not end with a newline (torn final line)".into());
    }
    let cols = TSV_HEADER.split('\t').count();
    let mut lines = text.lines();
    if lines.next() != Some(TSV_HEADER) {
        return Err("first line is not the TSV header".into());
    }
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split('\t').collect();
        // Per-thread rows have exactly the header's columns; each block's
        // summary row appends one trailing "# ..." annotation field.
        let ok =
            fields.len() == cols || (fields.len() == cols + 1 && fields[cols].starts_with("# "));
        if !ok {
            return Err(format!(
                "row {i} has {} columns, expected {cols}: {line:?}",
                fields.len()
            ));
        }
        rows += 1;
    }
    // Blocks are (threads + 1 summary) rows each; a complete file holds
    // whole blocks only.
    if !rows.is_multiple_of(65) {
        return Err(format!(
            "{rows} rows is not a whole number of 65-row blocks"
        ));
    }
    Ok(rows)
}

#[cfg(unix)]
#[test]
fn sigkill_mid_export_leaves_complete_sidecar() {
    let exe = std::env::current_exe().expect("test binary path");
    for round in 0..3 {
        let path =
            std::env::temp_dir().join(format!("fqms-atomic-{}-{round}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut child = std::process::Command::new(&exe)
            .args(["atomic_child_append_loop", "--exact", "--nocapture"])
            .env("FQMS_ATOMIC_CHILD", &path)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn child test binary");
        // Let the child get into the append loop, then kill it hard
        // (SIGKILL: no destructors, no flush) mid-write.
        std::thread::sleep(Duration::from_millis(300 + 70 * round));
        child.kill().expect("kill child");
        let _ = child.wait();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let rows = validate_sidecar(&text).unwrap_or_else(|why| {
                    panic!("round {round}: torn sidecar at {}: {why}", path.display())
                });
                assert!(rows > 0, "round {round}: sidecar had header but no rows");
            }
            // Killed before the first rename: no file is a valid state.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("round {round}: cannot read {}: {e}", path.display()),
        }
        let _ = std::fs::remove_file(&path);
        // Temp files abandoned by the kill are expected; sweep them so
        // repeated test runs do not accumulate garbage.
        if let Some(dir) = path.parent() {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if name.contains(&format!("fqms-atomic-{}-{round}", std::process::id()))
                        && name.contains(".tmp")
                    {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
    }
}
