//! System assembly and the coupled simulation loop.
//!
//! A [`System`] is a CMP: one [`fqms_cpu::core::Core`] per workload, all
//! sharing a single [`MultiChannelController`] over DDR2 devices — the
//! paper's evaluation platform, where "the SDRAM memory system is the only
//! shared resource in the system".
//!
//! Build one with [`SystemBuilder`], then call [`System::run`] to simulate
//! until every thread has retired an instruction target (the paper's
//! per-benchmark trace length, scaled down for tractable runs).

use crate::metrics::{SystemMetrics, ThreadMetrics};
use fqms_cpu::cache::Cache;
use fqms_cpu::core::{Core, CoreConfig};
use fqms_cpu::trace::TraceSource;
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::config::McConfig;
use fqms_memctrl::multichannel::MultiChannelController;
use fqms_memctrl::policy::{BufferSharing, InversionBound, RowPolicy, SchedulerKind, VftBinding};
use fqms_memctrl::request::{RequestKind, ThreadId};
use fqms_sim::clock::{ClockDomains, CpuCycle, DramCycle};
use fqms_sim::snapshot::{
    self, Fingerprint, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use fqms_workloads::generator::SyntheticTrace;
use fqms_workloads::profile::WorkloadProfile;
use std::path::PathBuf;

/// Incrementally configures and builds a [`System`].
///
/// # Example
///
/// ```
/// use fqms::system::SystemBuilder;
/// use fqms_memctrl::policy::SchedulerKind;
/// use fqms_workloads::spec::by_name;
///
/// let mut system = SystemBuilder::new()
///     .scheduler(SchedulerKind::FqVftf)
///     .seed(7)
///     .workload(by_name("vpr").unwrap())
///     .workload(by_name("art").unwrap())
///     .build()?;
/// let metrics = system.run(20_000, 1_000_000);
/// assert_eq!(metrics.threads.len(), 2);
/// # Ok::<(), String>(())
/// ```
enum WorkloadEntry {
    /// A statistical profile: the trace is synthesized per thread.
    Profile(WorkloadProfile),
    /// A caller-supplied trace source with a display name and an explicit
    /// cache-prewarm access count.
    Custom {
        name: String,
        trace: Box<dyn TraceSource>,
        prewarm_accesses: u64,
    },
}

impl std::fmt::Debug for WorkloadEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadEntry::Profile(p) => write!(f, "Profile({})", p.name),
            WorkloadEntry::Custom { name, .. } => write!(f, "Custom({name})"),
        }
    }
}

/// Incrementally configures and builds a [`System`]; see the example
/// above.
#[derive(Debug)]
pub struct SystemBuilder {
    scheduler: SchedulerKind,
    shares: Option<Vec<f64>>,
    geometry: Geometry,
    timing: TimingParams,
    core: CoreConfig,
    cpu_ratio: u64,
    seed: u64,
    inversion_bound: InversionBound,
    row_policy: RowPolicy,
    vft_binding: VftBinding,
    buffer_sharing: BufferSharing,
    prewarm: bool,
    channels: usize,
    shared_l2: bool,
    observe_events: Option<usize>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    workloads: Vec<WorkloadEntry>,
}

/// Default checkpoint interval in DRAM cycles when a checkpoint directory
/// is configured without an explicit interval.
const DEFAULT_CHECKPOINT_EVERY: u64 = 500_000;

/// Where and how often a running [`System`] persists crash-recovery
/// checkpoints.
#[derive(Debug, Clone)]
struct CheckpointFile {
    path: PathBuf,
    every: u64,
}

/// Event-ring capacity per channel when observation is switched on only
/// by `FQMS_SIDECAR` (the sidecar needs the metric sinks, not a deep
/// event history, so keep the rings small).
const SIDECAR_EVENT_CAPACITY: usize = 4096;

impl SystemBuilder {
    /// Starts from the paper's configuration (Tables 5 and 6): DDR2-800,
    /// 1 rank × 8 banks, the Table 5 core, CPU:DRAM clock ratio 5,
    /// FR-FCFS scheduling, equal shares.
    pub fn new() -> Self {
        SystemBuilder {
            scheduler: SchedulerKind::FrFcfs,
            shares: None,
            geometry: Geometry::paper(),
            timing: TimingParams::ddr2_800(),
            core: CoreConfig::paper(),
            cpu_ratio: 5,
            seed: 1,
            inversion_bound: InversionBound::TRas,
            row_policy: RowPolicy::Closed,
            vft_binding: VftBinding::FirstReady,
            buffer_sharing: BufferSharing::Partitioned,
            prewarm: true,
            channels: 1,
            shared_l2: false,
            observe_events: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            workloads: Vec::new(),
        }
    }

    /// Enables crash-recovery checkpointing: during [`System::run`] the
    /// full simulation state is atomically persisted to `dir` (named by
    /// the configuration fingerprint), a later run of the same
    /// configuration resumes from the last valid checkpoint, and the file
    /// is removed on clean completion. Also switched on by the
    /// `FQMS_CHECKPOINT_DIR` environment variable at build time.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets the checkpoint interval in DRAM cycles (default 500k). Only
    /// effective together with [`SystemBuilder::checkpoint_dir`] (or
    /// `FQMS_CHECKPOINT_DIR`); also settable via `FQMS_CHECKPOINT_EVERY`.
    pub fn checkpoint_every(mut self, dram_cycles: u64) -> Self {
        self.checkpoint_every = Some(dram_cycles.max(1));
        self
    }

    /// Selects the memory scheduling algorithm.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets explicit per-thread shares (default: equal `1/n`).
    pub fn shares(mut self, shares: Vec<f64>) -> Self {
        self.shares = Some(shares);
        self
    }

    /// Overrides the DRAM timing parameters (e.g. a time-scaled private
    /// baseline memory).
    pub fn timing(mut self, timing: TimingParams) -> Self {
        self.timing = timing;
        self
    }

    /// Overrides the memory geometry.
    pub fn geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Overrides the core configuration.
    pub fn core_config(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Sets the CPU:DRAM clock ratio (default 5).
    pub fn cpu_ratio(mut self, ratio: u64) -> Self {
        self.cpu_ratio = ratio;
        self
    }

    /// Sets the master random seed (each thread's trace derives its own
    /// stream from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the FQ bank scheduler's priority-inversion bound.
    pub fn inversion_bound(mut self, bound: InversionBound) -> Self {
        self.inversion_bound = bound;
        self
    }

    /// Sets the number of line-interleaved memory channels (default: 1,
    /// the paper's configuration; more channels exercise the paper's
    /// multi-channel future-work extension).
    pub fn channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the row-buffer management policy (default: closed, per the
    /// paper).
    pub fn row_policy(mut self, policy: RowPolicy) -> Self {
        self.row_policy = policy;
        self
    }

    /// Sets when virtual finish times are bound (default: at first-ready,
    /// the paper's evaluated design).
    pub fn vft_binding(mut self, binding: VftBinding) -> Self {
        self.vft_binding = binding;
        self
    }

    /// Sets the buffer organisation (default: the paper's static
    /// per-thread partitions; `Shared` is the future-work ablation).
    pub fn buffer_sharing(mut self, sharing: BufferSharing) -> Self {
        self.buffer_sharing = sharing;
        self
    }

    /// Makes all cores share one L2 cache (of the core config's L2
    /// geometry) instead of the paper's private L2s. An extension used to
    /// demonstrate that memory-scheduler QoS does not survive cache
    /// contention — the paper's isolation argument assumes private caches.
    pub fn shared_l2(mut self, shared: bool) -> Self {
        self.shared_l2 = shared;
        self
    }

    /// Attaches a tracing observer (event ring of `capacity` per channel
    /// plus per-thread metric sinks) to the memory system. Observation is
    /// passive — results are bit-identical with or without it — and the
    /// collected sinks are read back with [`System::observed_metrics`].
    /// Off by default; setting `FQMS_SIDECAR` also switches it on at
    /// [`SystemBuilder::build`] time (with a small default ring).
    pub fn observe_events(mut self, capacity: usize) -> Self {
        self.observe_events = Some(capacity);
        self
    }

    /// Enables or disables functional cache prewarming before the run
    /// (default: enabled). Prewarming streams ~4 footprints of references
    /// through each core's caches with no timing, so measurement starts
    /// from warm caches — the paper's sampled traces are likewise
    /// statistically representative of steady state, not cold start.
    pub fn prewarm(mut self, enabled: bool) -> Self {
        self.prewarm = enabled;
        self
    }

    /// Adds one workload; each workload becomes a hardware thread on its
    /// own core.
    pub fn workload(mut self, profile: WorkloadProfile) -> Self {
        self.workloads.push(WorkloadEntry::Profile(profile));
        self
    }

    /// Adds several workloads at once.
    pub fn workloads<I: IntoIterator<Item = WorkloadProfile>>(mut self, profiles: I) -> Self {
        self.workloads
            .extend(profiles.into_iter().map(WorkloadEntry::Profile));
        self
    }

    /// Adds a thread driven by a caller-supplied trace source (e.g. one of
    /// the `fqms_workloads::patterns` generators or a recorded trace).
    /// `prewarm_accesses` references are streamed through the caches
    /// before measurement if prewarming is enabled.
    pub fn workload_trace(
        mut self,
        name: impl Into<String>,
        trace: Box<dyn TraceSource>,
        prewarm_accesses: u64,
    ) -> Self {
        self.workloads.push(WorkloadEntry::Custom {
            name: name.into(),
            trace,
            prewarm_accesses,
        });
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns a description if no workloads were added or any component
    /// configuration is invalid.
    pub fn build(self) -> Result<System, String> {
        if self.workloads.is_empty() {
            return Err("add at least one workload".into());
        }
        let n = self.workloads.len();
        let shares = self.shares.unwrap_or_else(|| vec![1.0 / n as f64; n]);
        if shares.len() != n {
            return Err(format!(
                "{} shares provided for {} workloads",
                shares.len(),
                n
            ));
        }
        // Everything that determines the simulation's trajectory goes into
        // the fingerprint, so a checkpoint can never be restored into a
        // system that would diverge from the run that wrote it.
        let fingerprint = {
            let mut fp = Fingerprint::new("fqms-system");
            fp.push_str(&format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
                self.scheduler,
                self.geometry,
                self.timing,
                self.core,
                self.inversion_bound,
                self.row_policy,
                self.vft_binding,
                self.buffer_sharing,
            ));
            fp.push_u64(self.cpu_ratio);
            fp.push_u64(self.seed);
            fp.push_u64(self.channels as u64);
            fp.push_u64(u64::from(self.shared_l2));
            fp.push_u64(u64::from(self.prewarm));
            for s in &shares {
                fp.push_f64(*s);
            }
            for entry in &self.workloads {
                match entry {
                    WorkloadEntry::Profile(p) => fp.push_str(&format!("{p:?}")),
                    WorkloadEntry::Custom { name, .. } => fp.push_str(name),
                };
            }
            fp.finish()
        };
        let checkpoint_dir = self.checkpoint_dir.or_else(|| {
            std::env::var_os("FQMS_CHECKPOINT_DIR")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from)
        });
        let checkpoint_every = self.checkpoint_every.or_else(|| {
            std::env::var("FQMS_CHECKPOINT_EVERY")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|n| *n > 0)
        });
        let checkpoint = checkpoint_dir.map(|dir| CheckpointFile {
            path: dir.join(format!("fqms-{fingerprint:016x}.ckpt")),
            every: checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY),
        });
        let mut mc_config = McConfig::with_shares(self.scheduler, shares);
        mc_config.inversion_bound = self.inversion_bound;
        mc_config.row_policy = self.row_policy;
        mc_config.vft_binding = self.vft_binding;
        mc_config.buffer_sharing = self.buffer_sharing;
        let mut mc =
            MultiChannelController::new(self.channels, mc_config, self.geometry, self.timing)?;
        let observe = self
            .observe_events
            .or_else(|| crate::sidecar::path().map(|_| SIDECAR_EVENT_CAPACITY));
        if let Some(capacity) = observe {
            mc.enable_observation(capacity);
        }
        let mut cores = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        let prewarm = self.prewarm;
        let core_cfg = self.core;
        let seed = self.seed;
        let shared_l2 = if self.shared_l2 {
            Some(std::rc::Rc::new(std::cell::RefCell::new(Cache::new(
                core_cfg.l2,
            )?)))
        } else {
            None
        };
        for (i, entry) in self.workloads.into_iter().enumerate() {
            let (name, trace, prewarm_accesses): (String, Box<dyn TraceSource>, u64) = match entry {
                WorkloadEntry::Profile(profile) => {
                    let trace = SyntheticTrace::for_thread(profile, seed, i as u32)?;
                    // ~4 passes over the footprint bounds the cold-miss share.
                    let lines = profile.footprint_bytes / core_cfg.l1d.line_bytes;
                    (
                        profile.name.to_string(),
                        Box::new(trace),
                        (4 * lines).min(4_000_000),
                    )
                }
                WorkloadEntry::Custom {
                    name,
                    trace,
                    prewarm_accesses,
                } => (name, trace, prewarm_accesses),
            };
            let mut core = match &shared_l2 {
                Some(l2) => Core::with_shared_l2(
                    core_cfg,
                    ThreadId::new(i as u32),
                    trace,
                    std::rc::Rc::clone(l2),
                )?,
                None => Core::new(core_cfg, ThreadId::new(i as u32), trace)?,
            };
            if prewarm {
                core.prewarm_caches(prewarm_accesses);
            }
            cores.push(core);
            names.push(name);
        }
        Ok(System {
            cores,
            names,
            mc,
            scheduler: self.scheduler,
            clocks: ClockDomains::new(self.cpu_ratio),
            overhead: self.core.memory_overhead,
            dram_now: DramCycle::ZERO,
            finish_cycles: vec![None; n],
            finish_insts: vec![0; n],
            completion_scratch: Vec::new(),
            fingerprint,
            checkpoint,
        })
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

/// A simulated CMP: cores + shared memory controller + DRAM.
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    names: Vec<String>,
    mc: MultiChannelController,
    scheduler: SchedulerKind,
    clocks: ClockDomains,
    overhead: u64,
    dram_now: DramCycle,
    /// CPU cycle at which each core crossed the instruction target.
    finish_cycles: Vec<Option<u64>>,
    /// Instructions retired when the target was crossed.
    finish_insts: Vec<u64>,
    /// Reused completion scratch buffer: the per-cycle controller drain
    /// appends here instead of allocating a fresh `Vec` every DRAM cycle.
    completion_scratch: Vec<fqms_memctrl::controller::Completion>,
    /// FNV-1a digest of every configuration input that determines the
    /// simulation trajectory; snapshots embed it so cross-configuration
    /// restores are rejected up front.
    fingerprint: u64,
    /// Crash-recovery checkpoint file, when enabled.
    checkpoint: Option<CheckpointFile>,
}

impl System {
    /// Starts building a system (same as [`SystemBuilder::new`]).
    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    /// Number of cores/threads.
    pub fn num_threads(&self) -> usize {
        self.cores.len()
    }

    /// The shared memory system (for inspection); single-channel systems
    /// have exactly one channel.
    pub fn controller(&self) -> &MultiChannelController {
        &self.mc
    }

    /// One core (for inspection).
    pub fn core(&self, idx: usize) -> &Core {
        &self.cores[idx]
    }

    /// Advances the whole system by one DRAM cycle (`cpu_ratio` CPU cycles
    /// per core, then one controller step, then completion routing).
    pub fn step(&mut self) {
        self.dram_now.tick();
        let ratio = self.clocks.cpu_ratio();
        let base_cpu = self.dram_now.as_u64() * ratio;
        for sub in 0..ratio {
            let now_cpu = CpuCycle::new(base_cpu + sub);
            for core in &mut self.cores {
                core.tick(now_cpu, self.dram_now, &mut self.mc);
            }
        }
        let mut done = std::mem::take(&mut self.completion_scratch);
        done.clear();
        self.mc.step_into(self.dram_now, &mut done);
        for c in &done {
            if c.kind == RequestKind::Read {
                let ready = CpuCycle::new(c.finish.as_u64() * ratio + self.overhead);
                self.cores[c.thread.as_usize()].on_completion(c, ready);
            }
        }
        self.completion_scratch = done;
    }

    /// Zeroes all measurement counters (core IPC accounting, controller and
    /// DRAM statistics) while preserving microarchitectural state: warm
    /// caches, queued requests, open rows, VTMS registers.
    pub fn reset_measurement(&mut self) {
        for core in &mut self.cores {
            core.reset_stats();
        }
        self.mc.reset_stats(self.dram_now);
        self.finish_cycles = vec![None; self.cores.len()];
        self.finish_insts = vec![0; self.cores.len()];
    }

    /// Runs a warmup phase of `instructions_per_thread` instructions whose
    /// statistics are discarded — the equivalent of the paper's sampled
    /// traces starting with warmed caches. Call before [`System::run`].
    pub fn warm_up(&mut self, instructions_per_thread: u64, max_dram_cycles: u64) {
        // Warmup must not pollute the metrics sidecar with a block of its
        // own, hence `export: false`.
        let _ = self.run_inner(instructions_per_thread, max_dram_cycles, false);
    }

    /// The merged per-thread metric sinks collected since the last
    /// measurement reset, when observation is enabled (see
    /// [`SystemBuilder::observe_events`]). Channels are merged in
    /// channel-index order, so repeated runs agree bit-for-bit.
    pub fn observed_metrics(&self) -> Option<fqms_obs::MetricsSink> {
        self.mc.merged_metrics()
    }

    /// Runs until **every** thread has retired at least
    /// `instructions_per_thread` further instructions, or `max_dram_cycles`
    /// have elapsed. Measurement counters are reset at entry; each thread's
    /// IPC is measured at its own finish line (the standard multiprogram
    /// methodology: faster threads keep running and keep contending, but
    /// their extra progress is not credited).
    ///
    /// Returns the run's metrics. If `FQMS_SIDECAR` is set, the run also
    /// appends its observability sinks to the sidecar file (see
    /// [`crate::sidecar`]).
    pub fn run(&mut self, instructions_per_thread: u64, max_dram_cycles: u64) -> SystemMetrics {
        self.run_inner(instructions_per_thread, max_dram_cycles, true)
    }

    /// The FNV-1a digest of this system's full configuration; snapshots
    /// carry it and refuse to restore across differing configurations.
    pub fn config_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Serializes the complete simulation state — every core (caches, ROB,
    /// outstanding misses, trace position), the memory controller
    /// (queues, buffers, virtual clocks, DRAM timing state), and the
    /// system clock — into a self-describing, CRC-protected snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] if a component cannot be captured
    /// (a shared L2, or a trace source without snapshot hooks).
    pub fn save_snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new(self.fingerprint);
        self.write_state(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Restores a [`System::save_snapshot`] image into this identically
    /// configured system; afterwards the simulation continues bit-for-bit
    /// as if never interrupted.
    ///
    /// # Errors
    ///
    /// Typed [`SnapshotError`]s for corrupted, truncated, or mismatched
    /// snapshots, naming the failing section — never a panic. On error the
    /// system state is unspecified and should not be resumed from.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, self.fingerprint)?;
        self.read_state(&mut r)?;
        r.finish()
    }

    fn write_state(&self, w: &mut SnapshotWriter) -> Result<(), SnapshotError> {
        w.section("system", |s| {
            s.put_u64(self.dram_now.as_u64());
            s.put_seq_len(self.finish_cycles.len());
            for f in &self.finish_cycles {
                s.put_opt_u64(*f);
            }
            s.put_seq_len(self.finish_insts.len());
            for f in &self.finish_insts {
                s.put_u64(*f);
            }
        });
        let mut res = Ok(());
        w.section("cores", |s| {
            s.put_seq_len(self.cores.len());
            for core in &self.cores {
                res = core.save_state(s);
                if res.is_err() {
                    return;
                }
            }
        });
        res?;
        w.section("mc", |s| self.mc.save(s));
        Ok(())
    }

    fn read_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = self.cores.len();
        let (dram_now, finish_cycles, finish_insts) = r.section("system", |s| {
            let now = s.get_u64()?;
            let nc = s.seq_len()?;
            if nc != n {
                return Err(s.malformed(format!("snapshot has {nc} threads, system has {n}")));
            }
            let mut fc = Vec::with_capacity(nc);
            for _ in 0..nc {
                fc.push(s.get_opt_u64()?);
            }
            let ni = s.seq_len()?;
            if ni != n {
                return Err(s.malformed(format!("snapshot has {ni} threads, system has {n}")));
            }
            let mut fi = Vec::with_capacity(ni);
            for _ in 0..ni {
                fi.push(s.get_u64()?);
            }
            Ok((now, fc, fi))
        })?;
        r.section("cores", |s| {
            let nc = s.seq_len()?;
            if nc != n {
                return Err(s.malformed(format!("snapshot has {nc} cores, system has {n}")));
            }
            for core in &mut self.cores {
                core.restore_state(s)?;
            }
            Ok(())
        })?;
        r.section("mc", |s| self.mc.restore(s))?;
        self.dram_now = DramCycle::new(dram_now);
        self.finish_cycles = finish_cycles;
        self.finish_insts = finish_insts;
        Ok(())
    }

    /// Attempts to resume `run_inner` from a persisted checkpoint of the
    /// same configuration and run parameters. Returns the measurement
    /// start cycle on success; on any failure (no file, corruption,
    /// different run) the run starts fresh — a rejected checkpoint can
    /// cost time, never correctness.
    fn try_resume(
        &mut self,
        instructions_per_thread: u64,
        max_dram_cycles: u64,
        export: bool,
    ) -> Option<DramCycle> {
        let path = self.checkpoint.as_ref()?.path.clone();
        if !path.exists() {
            return None;
        }
        let bytes = match snapshot::load_from_file(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "fqms: ignoring unreadable checkpoint {}: {e}",
                    path.display()
                );
                return None;
            }
        };
        match self.resume_from(&bytes, instructions_per_thread, max_dram_cycles, export) {
            Ok(start) => {
                eprintln!(
                    "fqms: resumed from checkpoint {} at DRAM cycle {}",
                    path.display(),
                    self.dram_now.as_u64()
                );
                Some(start)
            }
            Err(e) => {
                eprintln!("fqms: ignoring invalid checkpoint {}: {e}", path.display());
                None
            }
        }
    }

    fn resume_from(
        &mut self,
        bytes: &[u8],
        instructions_per_thread: u64,
        max_dram_cycles: u64,
        export: bool,
    ) -> Result<DramCycle, SnapshotError> {
        let mut r = SnapshotReader::new(bytes, self.fingerprint)?;
        let (start, ipt, mdc, exp) = r.section("run", |s| {
            Ok((s.get_u64()?, s.get_u64()?, s.get_u64()?, s.get_bool()?))
        })?;
        if ipt != instructions_per_thread || mdc != max_dram_cycles || exp != export {
            return Err(SnapshotError::Malformed {
                section: "run",
                what: format!(
                    "checkpoint is for a different run \
                     ({ipt} insts / {mdc} cycles / export {exp}, this run wants \
                     {instructions_per_thread} / {max_dram_cycles} / {export})"
                ),
            });
        }
        self.read_state(&mut r)?;
        r.finish()?;
        Ok(DramCycle::new(start))
    }

    /// Persists a checkpoint if one is due at the current cycle. Write
    /// failures only warn (the run stays correct without checkpoints); an
    /// unsnapshottable component disables checkpointing for the rest of
    /// the run.
    fn maybe_checkpoint(
        &mut self,
        start: DramCycle,
        instructions_per_thread: u64,
        max_dram_cycles: u64,
        export: bool,
    ) {
        let Some(ck) = &self.checkpoint else {
            return;
        };
        if !(self.dram_now - start).is_multiple_of(ck.every) {
            return;
        }
        let path = ck.path.clone();
        let mut w = SnapshotWriter::new(self.fingerprint);
        w.section("run", |s| {
            s.put_u64(start.as_u64());
            s.put_u64(instructions_per_thread);
            s.put_u64(max_dram_cycles);
            s.put_bool(export);
        });
        match self.write_state(&mut w) {
            Ok(()) => {
                if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = snapshot::save_to_file(&path, &w.into_bytes()) {
                    eprintln!("fqms: checkpoint write failed ({e}); continuing without");
                }
            }
            Err(e) => {
                eprintln!("fqms: checkpointing disabled for this run: {e}");
                self.checkpoint = None;
            }
        }
    }

    /// Removes the checkpoint file after a clean completion so the next
    /// run of this configuration starts fresh.
    fn discard_checkpoint(&self) {
        if let Some(ck) = &self.checkpoint {
            let _ = std::fs::remove_file(&ck.path);
        }
    }

    fn run_inner(
        &mut self,
        instructions_per_thread: u64,
        max_dram_cycles: u64,
        export: bool,
    ) -> SystemMetrics {
        let start = match self.try_resume(instructions_per_thread, max_dram_cycles, export) {
            Some(start) => start,
            None => {
                self.reset_measurement();
                self.dram_now
            }
        };
        loop {
            self.step();
            let mut all_done = true;
            for (i, core) in self.cores.iter().enumerate() {
                if self.finish_cycles[i].is_none() {
                    if core.retired() >= instructions_per_thread {
                        self.finish_cycles[i] = Some(core.cycles());
                        self.finish_insts[i] = core.retired();
                    } else {
                        all_done = false;
                    }
                }
            }
            if all_done {
                break;
            }
            if self.dram_now - start >= max_dram_cycles {
                // Record whatever progress the stragglers made.
                for (i, core) in self.cores.iter().enumerate() {
                    if self.finish_cycles[i].is_none() {
                        self.finish_cycles[i] = Some(core.cycles());
                        self.finish_insts[i] = core.retired();
                    }
                }
                break;
            }
            self.maybe_checkpoint(start, instructions_per_thread, max_dram_cycles, export);
        }
        self.discard_checkpoint();
        self.mc.finish(self.dram_now);
        crate::telemetry::note_controller_cycles(
            self.mc.stepped_cycles(),
            self.mc.skipped_cycles(),
        );
        if export {
            if let Some(sink) = self.mc.merged_metrics() {
                crate::sidecar::append(&self.names.join("+"), self.scheduler.name(), &sink);
            }
        }
        self.metrics(start)
    }

    /// Computes metrics for the window starting at `start`.
    fn metrics(&self, start: DramCycle) -> SystemMetrics {
        let elapsed = self.dram_now - start;
        let elapsed = elapsed.max(1);
        let threads = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let cycles = self.finish_cycles[i].unwrap_or(0).max(1);
                let insts = self.finish_insts[i];
                let mcs = self.mc.thread_stats(ThreadId::new(i as u32));
                ThreadMetrics {
                    name: self.names[i].clone(),
                    instructions: insts,
                    cpu_cycles: cycles,
                    ipc: insts as f64 / cycles as f64,
                    avg_read_latency: core.stats().avg_miss_latency(),
                    p95_read_latency: core.latency_histogram().percentile(0.95),
                    // Fraction of *total* peak bandwidth across channels.
                    bus_utilization: mcs.bus_utilization(elapsed * self.mc.num_channels() as u64),
                    row_hit_rate: mcs.row_hit_rate(),
                    mem_reads: mcs.reads_completed,
                    mem_writes: mcs.writes_completed,
                }
            })
            .collect();
        let total_banks = self.mc.total_banks() as u64;
        let channels = self.mc.num_channels() as u64;
        SystemMetrics {
            threads,
            elapsed_dram_cycles: elapsed,
            data_bus_utilization: self.mc.bus_busy_cycles() as f64 / (elapsed * channels) as f64,
            bank_utilization: self.mc.bank_busy_cycles() as f64 / (elapsed * total_banks) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_workloads::spec::by_name;

    #[test]
    fn build_requires_workloads() {
        assert!(SystemBuilder::new().build().is_err());
    }

    #[test]
    fn share_count_must_match() {
        let r = SystemBuilder::new()
            .workload(by_name("art").unwrap())
            .shares(vec![0.5, 0.5])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn single_thread_run_produces_metrics() {
        let mut sys = SystemBuilder::new()
            .workload(by_name("swim").unwrap())
            .seed(3)
            .build()
            .unwrap();
        let m = sys.run(20_000, 2_000_000);
        assert_eq!(m.threads.len(), 1);
        let t = &m.threads[0];
        assert!(t.instructions >= 20_000);
        assert!(t.ipc > 0.0);
        assert!(t.bus_utilization > 0.0);
        assert!(m.data_bus_utilization > 0.0);
        assert!(m.bank_utilization > 0.0);
        assert_eq!(t.name, "swim");
    }

    #[test]
    fn two_thread_run_is_deterministic() {
        let run = || {
            let mut sys = SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .workload(by_name("art").unwrap())
                .workload(by_name("vpr").unwrap())
                .seed(9)
                .build()
                .unwrap();
            sys.run(10_000, 2_000_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn observation_is_passive_and_sinks_match_metrics() {
        let build = |observe: bool| {
            let b = SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .workload(by_name("art").unwrap())
                .workload(by_name("vpr").unwrap())
                .seed(9);
            let b = if observe {
                b.observe_events(1 << 14)
            } else {
                b
            };
            b.build().unwrap()
        };
        let mut plain = build(false);
        let mut observed = build(true);
        let a = plain.run(10_000, 2_000_000);
        let b = observed.run(10_000, 2_000_000);
        assert_eq!(a, b, "attaching observers changed the simulation");
        assert!(plain.observed_metrics().is_none());
        let sink = observed.observed_metrics().unwrap();
        for (t, m) in b.threads.iter().enumerate() {
            let s = sink.thread(t as u32);
            assert_eq!(s.reads_completed, m.mem_reads, "thread {t} reads");
            assert_eq!(s.writes_completed, m.mem_writes, "thread {t} writes");
        }
    }

    #[test]
    fn max_cycles_bound_is_respected() {
        let mut sys = SystemBuilder::new()
            .workload(by_name("art").unwrap())
            .seed(3)
            .build()
            .unwrap();
        let m = sys.run(u64::MAX / 2, 5_000);
        assert!(m.elapsed_dram_cycles <= 5_001);
    }

    #[test]
    fn snapshot_roundtrip_continues_bit_identically() {
        let build = || {
            SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .workload(by_name("art").unwrap())
                .workload(by_name("vpr").unwrap())
                .seed(9)
                .build()
                .unwrap()
        };
        let mut reference = build();
        for _ in 0..5_000 {
            reference.step();
        }

        let mut sys = build();
        for _ in 0..3_000 {
            sys.step();
        }
        let bytes = sys.save_snapshot().unwrap();
        drop(sys);
        let mut resumed = build();
        resumed.restore_snapshot(&bytes).unwrap();
        for _ in 0..2_000 {
            resumed.step();
        }

        for i in 0..2 {
            assert_eq!(resumed.core(i).retired(), reference.core(i).retired());
            assert_eq!(resumed.core(i).cycles(), reference.core(i).cycles());
            assert_eq!(resumed.core(i).stats(), reference.core(i).stats());
            let a = resumed.controller().thread_stats(ThreadId::new(i as u32));
            let b = reference.controller().thread_stats(ThreadId::new(i as u32));
            assert_eq!(a, b, "thread {i} controller stats diverged");
        }
    }

    #[test]
    fn snapshot_rejects_corruption_and_config_mismatch() {
        let mut sys = SystemBuilder::new()
            .workload(by_name("art").unwrap())
            .seed(9)
            .build()
            .unwrap();
        for _ in 0..500 {
            sys.step();
        }
        let bytes = sys.save_snapshot().unwrap();

        // Truncation anywhere is a typed error, never a panic.
        let mut fresh = SystemBuilder::new()
            .workload(by_name("art").unwrap())
            .seed(9)
            .build()
            .unwrap();
        assert!(fresh.restore_snapshot(&bytes[..bytes.len() / 2]).is_err());

        // A different seed is a different trajectory: fingerprint mismatch.
        let mut other = SystemBuilder::new()
            .workload(by_name("art").unwrap())
            .seed(10)
            .build()
            .unwrap();
        let err = other.restore_snapshot(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                fqms_sim::snapshot::SnapshotError::ConfigMismatch { .. }
            ),
            "{err}"
        );
    }

    /// A deterministic trace that simulates a crash: panics once at a
    /// fixed op count while the global arm flag is set, then (after the
    /// "process restart" rebuilds it) behaves identically to the clean
    /// generator.
    #[derive(Debug)]
    struct CrashingTrace {
        inner: fqms_workloads::patterns::RandomScatter,
        ops: u64,
        crash_at: u64,
        armed: &'static std::sync::atomic::AtomicBool,
    }

    impl TraceSource for CrashingTrace {
        fn next_op(&mut self) -> fqms_cpu::trace::TraceOp {
            self.ops += 1;
            if self.ops == self.crash_at
                && self.armed.swap(false, std::sync::atomic::Ordering::SeqCst)
            {
                panic!("injected crash at op {}", self.ops);
            }
            self.inner.next_op()
        }

        fn save_state(
            &self,
            w: &mut fqms_sim::snapshot::SectionWriter,
        ) -> Result<(), fqms_sim::snapshot::SnapshotError> {
            self.inner.save_state(w)?;
            w.put_u64(self.ops);
            Ok(())
        }

        fn restore_state(
            &mut self,
            r: &mut fqms_sim::snapshot::SectionReader<'_>,
        ) -> Result<(), fqms_sim::snapshot::SnapshotError> {
            self.inner.restore_state(r)?;
            self.ops = r.get_u64()?;
            Ok(())
        }
    }

    #[test]
    fn crash_and_resume_matches_uninterrupted_run() {
        use std::sync::atomic::AtomicBool;
        static ARMED: AtomicBool = AtomicBool::new(false);
        let ckpt_dir = std::env::temp_dir().join(format!(
            "fqms-ckpt-test-{}-crash_and_resume",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&ckpt_dir);

        let build = |dir: Option<&std::path::Path>| {
            let trace = CrashingTrace {
                inner: fqms_workloads::patterns::RandomScatter::new(0, 1 << 22, 6, 77),
                ops: 0,
                crash_at: 1_000,
                armed: &ARMED,
            };
            let b = SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .seed(5)
                .prewarm(false)
                .workload_trace("scatter", Box::new(trace), 0)
                .checkpoint_every(500);
            match dir {
                Some(d) => b.checkpoint_dir(d),
                None => b,
            }
            .build()
            .unwrap()
        };

        // Reference: never crashes, no checkpointing.
        let reference = build(None).run(8_000, 400_000);

        // Crash run: the trace panics mid-simulation, leaving the
        // checkpoint file behind.
        ARMED.store(true, std::sync::atomic::Ordering::SeqCst);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            build(Some(&ckpt_dir)).run(8_000, 400_000)
        }));
        assert!(crashed.is_err(), "the injected crash should have fired");
        let ckpt_file = std::fs::read_dir(&ckpt_dir)
            .expect("checkpoint dir exists")
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "ckpt"));
        assert!(
            ckpt_file.is_some(),
            "at least one checkpoint must have been written before the crash"
        );

        // "Restart the process": a fresh, identically configured system
        // resumes from the checkpoint and must match the reference exactly.
        let resumed = build(Some(&ckpt_dir)).run(8_000, 400_000);
        assert_eq!(resumed, reference, "resumed run diverged from reference");

        // Clean completion removes the checkpoint.
        let leftover = std::fs::read_dir(&ckpt_dir)
            .map(|d| d.filter_map(Result::ok).count())
            .unwrap_or(0);
        assert_eq!(leftover, 0, "clean completion must remove the checkpoint");
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn cache_resident_workload_uses_no_bus() {
        let mut sys = SystemBuilder::new()
            .workload(by_name("crafty").unwrap())
            .seed(5)
            .build()
            .unwrap();
        let m = sys.run(50_000, 2_000_000);
        assert!(
            m.data_bus_utilization < 0.05,
            "crafty used {}",
            m.data_bus_utilization
        );
        assert!(m.threads[0].ipc > 2.0);
    }
}
