//! System assembly and the coupled simulation loop.
//!
//! A [`System`] is a CMP: one [`fqms_cpu::core::Core`] per workload, all
//! sharing a single [`MultiChannelController`] over DDR2 devices — the
//! paper's evaluation platform, where "the SDRAM memory system is the only
//! shared resource in the system".
//!
//! Build one with [`SystemBuilder`], then call [`System::run`] to simulate
//! until every thread has retired an instruction target (the paper's
//! per-benchmark trace length, scaled down for tractable runs).

use crate::metrics::{SystemMetrics, ThreadMetrics};
use fqms_cpu::cache::Cache;
use fqms_cpu::core::{Core, CoreConfig};
use fqms_cpu::trace::TraceSource;
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::config::McConfig;
use fqms_memctrl::multichannel::MultiChannelController;
use fqms_memctrl::policy::{BufferSharing, InversionBound, RowPolicy, SchedulerKind, VftBinding};
use fqms_memctrl::request::{RequestKind, ThreadId};
use fqms_sim::clock::{ClockDomains, CpuCycle, DramCycle};
use fqms_workloads::generator::SyntheticTrace;
use fqms_workloads::profile::WorkloadProfile;

/// Incrementally configures and builds a [`System`].
///
/// # Example
///
/// ```
/// use fqms::system::SystemBuilder;
/// use fqms_memctrl::policy::SchedulerKind;
/// use fqms_workloads::spec::by_name;
///
/// let mut system = SystemBuilder::new()
///     .scheduler(SchedulerKind::FqVftf)
///     .seed(7)
///     .workload(by_name("vpr").unwrap())
///     .workload(by_name("art").unwrap())
///     .build()?;
/// let metrics = system.run(20_000, 1_000_000);
/// assert_eq!(metrics.threads.len(), 2);
/// # Ok::<(), String>(())
/// ```
enum WorkloadEntry {
    /// A statistical profile: the trace is synthesized per thread.
    Profile(WorkloadProfile),
    /// A caller-supplied trace source with a display name and an explicit
    /// cache-prewarm access count.
    Custom {
        name: String,
        trace: Box<dyn TraceSource>,
        prewarm_accesses: u64,
    },
}

impl std::fmt::Debug for WorkloadEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadEntry::Profile(p) => write!(f, "Profile({})", p.name),
            WorkloadEntry::Custom { name, .. } => write!(f, "Custom({name})"),
        }
    }
}

/// Incrementally configures and builds a [`System`]; see the example
/// above.
#[derive(Debug)]
pub struct SystemBuilder {
    scheduler: SchedulerKind,
    shares: Option<Vec<f64>>,
    geometry: Geometry,
    timing: TimingParams,
    core: CoreConfig,
    cpu_ratio: u64,
    seed: u64,
    inversion_bound: InversionBound,
    row_policy: RowPolicy,
    vft_binding: VftBinding,
    buffer_sharing: BufferSharing,
    prewarm: bool,
    channels: usize,
    shared_l2: bool,
    observe_events: Option<usize>,
    workloads: Vec<WorkloadEntry>,
}

/// Event-ring capacity per channel when observation is switched on only
/// by `FQMS_SIDECAR` (the sidecar needs the metric sinks, not a deep
/// event history, so keep the rings small).
const SIDECAR_EVENT_CAPACITY: usize = 4096;

impl SystemBuilder {
    /// Starts from the paper's configuration (Tables 5 and 6): DDR2-800,
    /// 1 rank × 8 banks, the Table 5 core, CPU:DRAM clock ratio 5,
    /// FR-FCFS scheduling, equal shares.
    pub fn new() -> Self {
        SystemBuilder {
            scheduler: SchedulerKind::FrFcfs,
            shares: None,
            geometry: Geometry::paper(),
            timing: TimingParams::ddr2_800(),
            core: CoreConfig::paper(),
            cpu_ratio: 5,
            seed: 1,
            inversion_bound: InversionBound::TRas,
            row_policy: RowPolicy::Closed,
            vft_binding: VftBinding::FirstReady,
            buffer_sharing: BufferSharing::Partitioned,
            prewarm: true,
            channels: 1,
            shared_l2: false,
            observe_events: None,
            workloads: Vec::new(),
        }
    }

    /// Selects the memory scheduling algorithm.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets explicit per-thread shares (default: equal `1/n`).
    pub fn shares(mut self, shares: Vec<f64>) -> Self {
        self.shares = Some(shares);
        self
    }

    /// Overrides the DRAM timing parameters (e.g. a time-scaled private
    /// baseline memory).
    pub fn timing(mut self, timing: TimingParams) -> Self {
        self.timing = timing;
        self
    }

    /// Overrides the memory geometry.
    pub fn geometry(mut self, geometry: Geometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Overrides the core configuration.
    pub fn core_config(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Sets the CPU:DRAM clock ratio (default 5).
    pub fn cpu_ratio(mut self, ratio: u64) -> Self {
        self.cpu_ratio = ratio;
        self
    }

    /// Sets the master random seed (each thread's trace derives its own
    /// stream from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the FQ bank scheduler's priority-inversion bound.
    pub fn inversion_bound(mut self, bound: InversionBound) -> Self {
        self.inversion_bound = bound;
        self
    }

    /// Sets the number of line-interleaved memory channels (default: 1,
    /// the paper's configuration; more channels exercise the paper's
    /// multi-channel future-work extension).
    pub fn channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the row-buffer management policy (default: closed, per the
    /// paper).
    pub fn row_policy(mut self, policy: RowPolicy) -> Self {
        self.row_policy = policy;
        self
    }

    /// Sets when virtual finish times are bound (default: at first-ready,
    /// the paper's evaluated design).
    pub fn vft_binding(mut self, binding: VftBinding) -> Self {
        self.vft_binding = binding;
        self
    }

    /// Sets the buffer organisation (default: the paper's static
    /// per-thread partitions; `Shared` is the future-work ablation).
    pub fn buffer_sharing(mut self, sharing: BufferSharing) -> Self {
        self.buffer_sharing = sharing;
        self
    }

    /// Makes all cores share one L2 cache (of the core config's L2
    /// geometry) instead of the paper's private L2s. An extension used to
    /// demonstrate that memory-scheduler QoS does not survive cache
    /// contention — the paper's isolation argument assumes private caches.
    pub fn shared_l2(mut self, shared: bool) -> Self {
        self.shared_l2 = shared;
        self
    }

    /// Attaches a tracing observer (event ring of `capacity` per channel
    /// plus per-thread metric sinks) to the memory system. Observation is
    /// passive — results are bit-identical with or without it — and the
    /// collected sinks are read back with [`System::observed_metrics`].
    /// Off by default; setting `FQMS_SIDECAR` also switches it on at
    /// [`SystemBuilder::build`] time (with a small default ring).
    pub fn observe_events(mut self, capacity: usize) -> Self {
        self.observe_events = Some(capacity);
        self
    }

    /// Enables or disables functional cache prewarming before the run
    /// (default: enabled). Prewarming streams ~4 footprints of references
    /// through each core's caches with no timing, so measurement starts
    /// from warm caches — the paper's sampled traces are likewise
    /// statistically representative of steady state, not cold start.
    pub fn prewarm(mut self, enabled: bool) -> Self {
        self.prewarm = enabled;
        self
    }

    /// Adds one workload; each workload becomes a hardware thread on its
    /// own core.
    pub fn workload(mut self, profile: WorkloadProfile) -> Self {
        self.workloads.push(WorkloadEntry::Profile(profile));
        self
    }

    /// Adds several workloads at once.
    pub fn workloads<I: IntoIterator<Item = WorkloadProfile>>(mut self, profiles: I) -> Self {
        self.workloads
            .extend(profiles.into_iter().map(WorkloadEntry::Profile));
        self
    }

    /// Adds a thread driven by a caller-supplied trace source (e.g. one of
    /// the `fqms_workloads::patterns` generators or a recorded trace).
    /// `prewarm_accesses` references are streamed through the caches
    /// before measurement if prewarming is enabled.
    pub fn workload_trace(
        mut self,
        name: impl Into<String>,
        trace: Box<dyn TraceSource>,
        prewarm_accesses: u64,
    ) -> Self {
        self.workloads.push(WorkloadEntry::Custom {
            name: name.into(),
            trace,
            prewarm_accesses,
        });
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns a description if no workloads were added or any component
    /// configuration is invalid.
    pub fn build(self) -> Result<System, String> {
        if self.workloads.is_empty() {
            return Err("add at least one workload".into());
        }
        let n = self.workloads.len();
        let shares = self.shares.unwrap_or_else(|| vec![1.0 / n as f64; n]);
        if shares.len() != n {
            return Err(format!(
                "{} shares provided for {} workloads",
                shares.len(),
                n
            ));
        }
        let mut mc_config = McConfig::with_shares(self.scheduler, shares);
        mc_config.inversion_bound = self.inversion_bound;
        mc_config.row_policy = self.row_policy;
        mc_config.vft_binding = self.vft_binding;
        mc_config.buffer_sharing = self.buffer_sharing;
        let mut mc =
            MultiChannelController::new(self.channels, mc_config, self.geometry, self.timing)?;
        let observe = self
            .observe_events
            .or_else(|| crate::sidecar::path().map(|_| SIDECAR_EVENT_CAPACITY));
        if let Some(capacity) = observe {
            mc.enable_observation(capacity);
        }
        let mut cores = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        let prewarm = self.prewarm;
        let core_cfg = self.core;
        let seed = self.seed;
        let shared_l2 = if self.shared_l2 {
            Some(std::rc::Rc::new(std::cell::RefCell::new(Cache::new(
                core_cfg.l2,
            )?)))
        } else {
            None
        };
        for (i, entry) in self.workloads.into_iter().enumerate() {
            let (name, trace, prewarm_accesses): (String, Box<dyn TraceSource>, u64) = match entry {
                WorkloadEntry::Profile(profile) => {
                    let trace = SyntheticTrace::for_thread(profile, seed, i as u32)?;
                    // ~4 passes over the footprint bounds the cold-miss share.
                    let lines = profile.footprint_bytes / core_cfg.l1d.line_bytes;
                    (
                        profile.name.to_string(),
                        Box::new(trace),
                        (4 * lines).min(4_000_000),
                    )
                }
                WorkloadEntry::Custom {
                    name,
                    trace,
                    prewarm_accesses,
                } => (name, trace, prewarm_accesses),
            };
            let mut core = match &shared_l2 {
                Some(l2) => Core::with_shared_l2(
                    core_cfg,
                    ThreadId::new(i as u32),
                    trace,
                    std::rc::Rc::clone(l2),
                )?,
                None => Core::new(core_cfg, ThreadId::new(i as u32), trace)?,
            };
            if prewarm {
                core.prewarm_caches(prewarm_accesses);
            }
            cores.push(core);
            names.push(name);
        }
        Ok(System {
            cores,
            names,
            mc,
            scheduler: self.scheduler,
            clocks: ClockDomains::new(self.cpu_ratio),
            overhead: self.core.memory_overhead,
            dram_now: DramCycle::ZERO,
            finish_cycles: vec![None; n],
            finish_insts: vec![0; n],
            completion_scratch: Vec::new(),
        })
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

/// A simulated CMP: cores + shared memory controller + DRAM.
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    names: Vec<String>,
    mc: MultiChannelController,
    scheduler: SchedulerKind,
    clocks: ClockDomains,
    overhead: u64,
    dram_now: DramCycle,
    /// CPU cycle at which each core crossed the instruction target.
    finish_cycles: Vec<Option<u64>>,
    /// Instructions retired when the target was crossed.
    finish_insts: Vec<u64>,
    /// Reused completion scratch buffer: the per-cycle controller drain
    /// appends here instead of allocating a fresh `Vec` every DRAM cycle.
    completion_scratch: Vec<fqms_memctrl::controller::Completion>,
}

impl System {
    /// Starts building a system (same as [`SystemBuilder::new`]).
    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    /// Number of cores/threads.
    pub fn num_threads(&self) -> usize {
        self.cores.len()
    }

    /// The shared memory system (for inspection); single-channel systems
    /// have exactly one channel.
    pub fn controller(&self) -> &MultiChannelController {
        &self.mc
    }

    /// One core (for inspection).
    pub fn core(&self, idx: usize) -> &Core {
        &self.cores[idx]
    }

    /// Advances the whole system by one DRAM cycle (`cpu_ratio` CPU cycles
    /// per core, then one controller step, then completion routing).
    pub fn step(&mut self) {
        self.dram_now.tick();
        let ratio = self.clocks.cpu_ratio();
        let base_cpu = self.dram_now.as_u64() * ratio;
        for sub in 0..ratio {
            let now_cpu = CpuCycle::new(base_cpu + sub);
            for core in &mut self.cores {
                core.tick(now_cpu, self.dram_now, &mut self.mc);
            }
        }
        let mut done = std::mem::take(&mut self.completion_scratch);
        done.clear();
        self.mc.step_into(self.dram_now, &mut done);
        for c in &done {
            if c.kind == RequestKind::Read {
                let ready = CpuCycle::new(c.finish.as_u64() * ratio + self.overhead);
                self.cores[c.thread.as_usize()].on_completion(c, ready);
            }
        }
        self.completion_scratch = done;
    }

    /// Zeroes all measurement counters (core IPC accounting, controller and
    /// DRAM statistics) while preserving microarchitectural state: warm
    /// caches, queued requests, open rows, VTMS registers.
    pub fn reset_measurement(&mut self) {
        for core in &mut self.cores {
            core.reset_stats();
        }
        self.mc.reset_stats(self.dram_now);
        self.finish_cycles = vec![None; self.cores.len()];
        self.finish_insts = vec![0; self.cores.len()];
    }

    /// Runs a warmup phase of `instructions_per_thread` instructions whose
    /// statistics are discarded — the equivalent of the paper's sampled
    /// traces starting with warmed caches. Call before [`System::run`].
    pub fn warm_up(&mut self, instructions_per_thread: u64, max_dram_cycles: u64) {
        // Warmup must not pollute the metrics sidecar with a block of its
        // own, hence `export: false`.
        let _ = self.run_inner(instructions_per_thread, max_dram_cycles, false);
    }

    /// The merged per-thread metric sinks collected since the last
    /// measurement reset, when observation is enabled (see
    /// [`SystemBuilder::observe_events`]). Channels are merged in
    /// channel-index order, so repeated runs agree bit-for-bit.
    pub fn observed_metrics(&self) -> Option<fqms_obs::MetricsSink> {
        self.mc.merged_metrics()
    }

    /// Runs until **every** thread has retired at least
    /// `instructions_per_thread` further instructions, or `max_dram_cycles`
    /// have elapsed. Measurement counters are reset at entry; each thread's
    /// IPC is measured at its own finish line (the standard multiprogram
    /// methodology: faster threads keep running and keep contending, but
    /// their extra progress is not credited).
    ///
    /// Returns the run's metrics. If `FQMS_SIDECAR` is set, the run also
    /// appends its observability sinks to the sidecar file (see
    /// [`crate::sidecar`]).
    pub fn run(&mut self, instructions_per_thread: u64, max_dram_cycles: u64) -> SystemMetrics {
        self.run_inner(instructions_per_thread, max_dram_cycles, true)
    }

    fn run_inner(
        &mut self,
        instructions_per_thread: u64,
        max_dram_cycles: u64,
        export: bool,
    ) -> SystemMetrics {
        self.reset_measurement();
        let start = self.dram_now;
        loop {
            self.step();
            let mut all_done = true;
            for (i, core) in self.cores.iter().enumerate() {
                if self.finish_cycles[i].is_none() {
                    if core.retired() >= instructions_per_thread {
                        self.finish_cycles[i] = Some(core.cycles());
                        self.finish_insts[i] = core.retired();
                    } else {
                        all_done = false;
                    }
                }
            }
            if all_done {
                break;
            }
            if self.dram_now - start >= max_dram_cycles {
                // Record whatever progress the stragglers made.
                for (i, core) in self.cores.iter().enumerate() {
                    if self.finish_cycles[i].is_none() {
                        self.finish_cycles[i] = Some(core.cycles());
                        self.finish_insts[i] = core.retired();
                    }
                }
                break;
            }
        }
        self.mc.finish(self.dram_now);
        crate::telemetry::note_controller_cycles(
            self.mc.stepped_cycles(),
            self.mc.skipped_cycles(),
        );
        if export {
            if let Some(sink) = self.mc.merged_metrics() {
                crate::sidecar::append(&self.names.join("+"), self.scheduler.name(), &sink);
            }
        }
        self.metrics(start)
    }

    /// Computes metrics for the window starting at `start`.
    fn metrics(&self, start: DramCycle) -> SystemMetrics {
        let elapsed = self.dram_now - start;
        let elapsed = elapsed.max(1);
        let threads = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let cycles = self.finish_cycles[i].unwrap_or(0).max(1);
                let insts = self.finish_insts[i];
                let mcs = self.mc.thread_stats(ThreadId::new(i as u32));
                ThreadMetrics {
                    name: self.names[i].clone(),
                    instructions: insts,
                    cpu_cycles: cycles,
                    ipc: insts as f64 / cycles as f64,
                    avg_read_latency: core.stats().avg_miss_latency(),
                    p95_read_latency: core.latency_histogram().percentile(0.95),
                    // Fraction of *total* peak bandwidth across channels.
                    bus_utilization: mcs.bus_utilization(elapsed * self.mc.num_channels() as u64),
                    row_hit_rate: mcs.row_hit_rate(),
                    mem_reads: mcs.reads_completed,
                    mem_writes: mcs.writes_completed,
                }
            })
            .collect();
        let total_banks = self.mc.total_banks() as u64;
        let channels = self.mc.num_channels() as u64;
        SystemMetrics {
            threads,
            elapsed_dram_cycles: elapsed,
            data_bus_utilization: self.mc.bus_busy_cycles() as f64 / (elapsed * channels) as f64,
            bank_utilization: self.mc.bank_busy_cycles() as f64 / (elapsed * total_banks) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_workloads::spec::by_name;

    #[test]
    fn build_requires_workloads() {
        assert!(SystemBuilder::new().build().is_err());
    }

    #[test]
    fn share_count_must_match() {
        let r = SystemBuilder::new()
            .workload(by_name("art").unwrap())
            .shares(vec![0.5, 0.5])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn single_thread_run_produces_metrics() {
        let mut sys = SystemBuilder::new()
            .workload(by_name("swim").unwrap())
            .seed(3)
            .build()
            .unwrap();
        let m = sys.run(20_000, 2_000_000);
        assert_eq!(m.threads.len(), 1);
        let t = &m.threads[0];
        assert!(t.instructions >= 20_000);
        assert!(t.ipc > 0.0);
        assert!(t.bus_utilization > 0.0);
        assert!(m.data_bus_utilization > 0.0);
        assert!(m.bank_utilization > 0.0);
        assert_eq!(t.name, "swim");
    }

    #[test]
    fn two_thread_run_is_deterministic() {
        let run = || {
            let mut sys = SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .workload(by_name("art").unwrap())
                .workload(by_name("vpr").unwrap())
                .seed(9)
                .build()
                .unwrap();
            sys.run(10_000, 2_000_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn observation_is_passive_and_sinks_match_metrics() {
        let build = |observe: bool| {
            let b = SystemBuilder::new()
                .scheduler(SchedulerKind::FqVftf)
                .workload(by_name("art").unwrap())
                .workload(by_name("vpr").unwrap())
                .seed(9);
            let b = if observe {
                b.observe_events(1 << 14)
            } else {
                b
            };
            b.build().unwrap()
        };
        let mut plain = build(false);
        let mut observed = build(true);
        let a = plain.run(10_000, 2_000_000);
        let b = observed.run(10_000, 2_000_000);
        assert_eq!(a, b, "attaching observers changed the simulation");
        assert!(plain.observed_metrics().is_none());
        let sink = observed.observed_metrics().unwrap();
        for (t, m) in b.threads.iter().enumerate() {
            let s = sink.thread(t as u32);
            assert_eq!(s.reads_completed, m.mem_reads, "thread {t} reads");
            assert_eq!(s.writes_completed, m.mem_writes, "thread {t} writes");
        }
    }

    #[test]
    fn max_cycles_bound_is_respected() {
        let mut sys = SystemBuilder::new()
            .workload(by_name("art").unwrap())
            .seed(3)
            .build()
            .unwrap();
        let m = sys.run(u64::MAX / 2, 5_000);
        assert!(m.elapsed_dram_cycles <= 5_001);
    }

    #[test]
    fn cache_resident_workload_uses_no_bus() {
        let mut sys = SystemBuilder::new()
            .workload(by_name("crafty").unwrap())
            .seed(5)
            .build()
            .unwrap();
        let m = sys.run(50_000, 2_000_000);
        assert!(
            m.data_bus_utilization < 0.05,
            "crafty used {}",
            m.data_bus_utilization
        );
        assert!(m.threads[0].ipc > 2.0);
    }
}
