//! Process-wide simulation-effort counters.
//!
//! Every [`crate::system::System`] run adds its controller's
//! stepped/skipped cycle counts here when it finishes, so a figure binary
//! can report how much simulated time it covered and what fraction the
//! event-driven fast path skipped — without threading counters through
//! every experiment helper. Engine-level studies (which bypass `System`)
//! call [`note_controller_cycles`] themselves from their reports.
//!
//! The counters are monotone atomics: cheap, thread-safe (parallel sweeps
//! run systems on worker threads), and only ever read for end-of-process
//! diagnostics, so relaxed ordering suffices.

use std::sync::atomic::{AtomicU64, Ordering};

static STEPPED: AtomicU64 = AtomicU64::new(0);
static SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Adds one run's controller cycle counts to the process totals.
pub fn note_controller_cycles(stepped: u64, skipped: u64) {
    STEPPED.fetch_add(stepped, Ordering::Relaxed);
    SKIPPED.fetch_add(skipped, Ordering::Relaxed);
}

/// Returns `(stepped, skipped)` controller cycles accumulated so far.
pub fn controller_cycles() -> (u64, u64) {
    (
        STEPPED.load(Ordering::Relaxed),
        SKIPPED.load(Ordering::Relaxed),
    )
}

/// Fraction of accumulated controller time that was skipped (0.0 when
/// nothing has been simulated yet).
pub fn skip_rate() -> f64 {
    let (stepped, skipped) = controller_cycles();
    let total = stepped + skipped;
    if total == 0 {
        0.0
    } else {
        skipped as f64 / total as f64
    }
}

/// Cumulative parallel-executor activity for this process (worker peak,
/// steals, free-run spans, barrier waits), re-exported from the executor
/// itself: the counters live in [`fqms_sim::parallel`] because `fqms-sim`
/// sits below this crate, but figure binaries read them from here
/// alongside [`controller_cycles`]. Surfaced as `#parallel_*` lines in
/// `results/<bin>.log` so executor regressions (a steal storm, a
/// reappearing barrier) are diagnosable from sweep logs.
pub fn parallel_exec() -> fqms_sim::parallel::ExecCounters {
    fqms_sim::parallel::exec_counters()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let (s0, k0) = controller_cycles();
        note_controller_cycles(10, 30);
        let (s1, k1) = controller_cycles();
        assert_eq!(s1 - s0, 10);
        assert_eq!(k1 - k0, 30);
    }
}
