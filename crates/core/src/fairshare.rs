//! The paper's target-bus-utilization fair-share solver (Figure 9).
//!
//! "A thread's target data bus utilization is the smaller of 1) its data
//! bus utilization when running alone (solo) on the CMP and 2) the sum of
//! its allocated service share plus its fair share of excess memory
//! bandwidth. ... A thread's fair-share of excess bandwidth is determined
//! by incrementally adding equal portions of excess service to each thread
//! that demands service until all excess service is allocated or there are
//! no threads that demand more service."
//!
//! This is progressive water-filling over the data bus: satisfied threads
//! (target = solo demand) return their unused share to the pool, which is
//! split equally among still-unsatisfied threads, iterating to a fixed
//! point.

/// Computes each thread's target data-bus utilization given its solo
/// utilization and its allocated share.
///
/// `solo` and `shares` must be the same length; `shares` should sum to at
/// most 1. Returns one target per thread.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use fqms::fairshare::target_utilizations;
///
/// // Two saturating threads split the bus evenly.
/// let t = target_utilizations(&[0.9, 0.9], &[0.5, 0.5]);
/// assert!((t[0] - 0.5).abs() < 1e-9);
///
/// // A light thread keeps its demand; the heavy one gets the excess.
/// let t = target_utilizations(&[0.1, 0.9], &[0.5, 0.5]);
/// assert!((t[0] - 0.1).abs() < 1e-9);
/// assert!((t[1] - 0.9).abs() < 1e-9);
/// ```
pub fn target_utilizations(solo: &[f64], shares: &[f64]) -> Vec<f64> {
    assert_eq!(solo.len(), shares.len(), "one share per thread");
    assert!(!solo.is_empty(), "at least one thread");
    let n = solo.len();
    let mut target: Vec<f64> = shares.to_vec();
    // Iterate: clamp satisfied threads to their demand, redistribute the
    // freed bandwidth equally among unsatisfied threads.
    for _ in 0..64 {
        let mut freed = 0.0;
        let mut unsatisfied = 0usize;
        for i in 0..n {
            if target[i] >= solo[i] {
                freed += target[i] - solo[i];
            } else {
                unsatisfied += 1;
            }
        }
        if freed < 1e-12 || unsatisfied == 0 {
            break;
        }
        let bump = freed / unsatisfied as f64;
        for i in 0..n {
            if target[i] >= solo[i] {
                target[i] = solo[i];
            } else {
                target[i] += bump;
            }
        }
    }
    for i in 0..n {
        target[i] = target[i].min(solo[i]);
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-6, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn all_saturating_threads_get_their_share() {
        let t = target_utilizations(&[1.0, 1.0, 1.0, 1.0], &[0.25; 4]);
        assert_close(&t, &[0.25; 4]);
    }

    #[test]
    fn light_threads_cap_at_demand() {
        let t = target_utilizations(&[0.05, 0.05, 0.9, 0.9], &[0.25; 4]);
        // 0.4 of freed bandwidth split between the two heavy threads.
        assert_close(&t, &[0.05, 0.05, 0.45, 0.45]);
    }

    #[test]
    fn cascading_redistribution() {
        // Middle thread saturates at 0.3 only after receiving some excess.
        let t = target_utilizations(&[0.1, 0.3, 0.9], &[1.0 / 3.0; 3]);
        // Round 1: thread0 frees 0.2333 -> bump 0.1167 each to t1,t2.
        // t1 = 0.45 > 0.3 -> clamps, freeing again to t2.
        assert!((t[0] - 0.1).abs() < 1e-6);
        assert!((t[1] - 0.3).abs() < 1e-6);
        assert!((t[2] - 0.6).abs() < 1e-6);
        let total: f64 = t.iter().sum();
        assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn targets_never_exceed_solo_or_waste_bus() {
        let solo = [0.8, 0.6, 0.2, 0.05];
        let t = target_utilizations(&solo, &[0.25; 4]);
        for i in 0..4 {
            assert!(t[i] <= solo[i] + 1e-9);
        }
        let total: f64 = t.iter().sum();
        assert!(total <= 1.0 + 1e-9);
        // Demand exceeds capacity, so the bus should be fully allocated.
        assert!(total > 0.99, "total {total}");
    }

    #[test]
    fn unequal_shares_respected() {
        let t = target_utilizations(&[1.0, 1.0], &[0.75, 0.25]);
        assert_close(&t, &[0.75, 0.25]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        target_utilizations(&[0.5], &[0.25, 0.25]);
    }
}
