//! Metrics sidecar files: TSV export of observability sinks, controlled
//! by the `FQMS_SIDECAR` environment variable.
//!
//! When `FQMS_SIDECAR=<path>` is set, every measured [`crate::System`]
//! run appends its per-thread metric rows (one block per simulated
//! system) to `<path>`. The file is truncated and given the
//! [`fqms_obs::TSV_HEADER`] the first time this *process* writes it, so a
//! figure binary that simulates dozens of systems accumulates one
//! machine-readable sidecar per invocation. `run_figures.sh` points each
//! figure binary at `results/<bin>.metrics.tsv`.
//!
//! Blocks are appended in run-completion order, which under the parallel
//! experiment runners can differ between invocations; every row carries
//! its label and scheduler, so consumers should key on those rather than
//! on row order.
//!
//! Every write replaces the whole file atomically (temp file + rename,
//! via [`fqms_sim::snapshot::write_atomic`]): a process killed mid-export
//! leaves either the previous complete sidecar or the new one on disk,
//! never a torn line. The accumulated content lives in process memory,
//! which sidecar-sized exports (rows, not events) keep cheap.
//!
//! Export failures are reported to stderr and swallowed: observability
//! must never fail a run.

use fqms_obs::{metrics_tsv, MetricsSink, TSV_HEADER};
use fqms_sim::snapshot::write_atomic;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Accumulated sidecar content per file this process has written: the
/// full text (header + all blocks) most recently persisted.
static CONTENT: Mutex<BTreeMap<PathBuf, String>> = Mutex::new(BTreeMap::new());

/// The sidecar path requested via `FQMS_SIDECAR`, if any (unset or empty
/// disables sidecar export).
pub fn path() -> Option<PathBuf> {
    match std::env::var_os("FQMS_SIDECAR") {
        Some(p) if !p.is_empty() => Some(PathBuf::from(p)),
        _ => None,
    }
}

/// Appends one labelled block of metric rows to `path` (starting from the
/// header on the process's first write to it) and atomically replaces the
/// file with the full accumulated content — a kill at any instant leaves
/// a complete, parseable sidecar.
///
/// # Errors
///
/// Propagates I/O errors from writing or renaming the temp file.
pub fn append_block(
    path: &Path,
    label: &str,
    scheduler: &str,
    sink: &MetricsSink,
) -> std::io::Result<()> {
    // Absolutize so different spellings of the same file (relative vs
    // absolute, leading "./") share one CONTENT entry instead of
    // re-truncating each other's blocks.
    let path = std::path::absolute(path)?;
    let mut files = CONTENT.lock().unwrap_or_else(|e| e.into_inner());
    let buf = files
        .entry(path.clone())
        .or_insert_with(|| format!("{TSV_HEADER}\n"));
    let rollback = buf.len();
    buf.push_str(&metrics_tsv(label, scheduler, sink));
    let out = write_atomic(&path, buf.as_bytes());
    if out.is_err() {
        // Keep memory and disk agreed: a failed write is not accumulated.
        buf.truncate(rollback);
    }
    out
}

/// Appends a block to the `FQMS_SIDECAR` file. Returns whether a sidecar
/// was written; `false` when the variable is unset or the write failed
/// (failures are logged to stderr, never propagated).
pub fn append(label: &str, scheduler: &str, sink: &MetricsSink) -> bool {
    let Some(path) = path() else {
        return false;
    };
    match append_block(&path, label, scheduler, sink) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("fqms: cannot write sidecar {}: {e}", path.display());
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_obs::Event;

    fn sample_sink() -> MetricsSink {
        let mut sink = MetricsSink::new(2);
        sink.observe(&Event::Completed {
            cycle: 40,
            thread: 1,
            id: 7,
            is_write: false,
            latency: 12,
            bytes: 64,
            alone_cycles: 14,
        });
        sink
    }

    #[test]
    fn first_block_truncates_and_writes_header_then_appends() {
        let path = std::env::temp_dir().join(format!("fqms-sidecar-{}.tsv", std::process::id()));
        std::fs::write(&path, "stale contents from a previous run\n").unwrap();
        append_block(&path, "mix-a", "FQ-VFTF", &sample_sink()).unwrap();
        append_block(&path, "mix-b", "FR-FCFS", &sample_sink()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(!text.contains("stale"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], TSV_HEADER);
        // Two blocks of (2 threads + summary) rows, one header.
        assert_eq!(lines.len(), 1 + 2 * 3);
        assert!(lines[1].starts_with("mix-a\tFQ-VFTF\t0\t"));
        assert!(lines[4].starts_with("mix-b\tFR-FCFS\t0\t"));
    }
}
