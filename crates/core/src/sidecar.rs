//! Metrics sidecar files: TSV export of observability sinks, controlled
//! by the `FQMS_SIDECAR` environment variable.
//!
//! When `FQMS_SIDECAR=<path>` is set, every measured [`crate::System`]
//! run appends its per-thread metric rows (one block per simulated
//! system) to `<path>`. The file is truncated and given the
//! [`fqms_obs::TSV_HEADER`] the first time this *process* writes it, so a
//! figure binary that simulates dozens of systems accumulates one
//! machine-readable sidecar per invocation. `run_figures.sh` points each
//! figure binary at `results/<bin>.metrics.tsv`.
//!
//! Blocks are appended in run-completion order, which under the parallel
//! experiment runners can differ between invocations; every row carries
//! its label and scheduler, so consumers should key on those rather than
//! on row order.
//!
//! Export failures are reported to stderr and swallowed: observability
//! must never fail a run.

use fqms_obs::{metrics_tsv, MetricsSink, TSV_HEADER};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Sidecar files this process has already started (truncated + headered).
static STARTED: Mutex<Vec<PathBuf>> = Mutex::new(Vec::new());

/// The sidecar path requested via `FQMS_SIDECAR`, if any (unset or empty
/// disables sidecar export).
pub fn path() -> Option<PathBuf> {
    match std::env::var_os("FQMS_SIDECAR") {
        Some(p) if !p.is_empty() => Some(PathBuf::from(p)),
        _ => None,
    }
}

/// Appends one labelled block of metric rows to `path`, truncating and
/// writing the header if this is the process's first write to it.
///
/// # Errors
///
/// Propagates I/O errors from creating or appending to the file.
pub fn append_block(
    path: &Path,
    label: &str,
    scheduler: &str,
    sink: &MetricsSink,
) -> std::io::Result<()> {
    // Absolutize so different spellings of the same file (relative vs
    // absolute, leading "./") share one STARTED entry instead of
    // re-truncating each other's blocks.
    let path = std::path::absolute(path)?;
    let mut started = STARTED.lock().unwrap_or_else(|e| e.into_inner());
    let first = !started.contains(&path);
    let mut file = if first {
        OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?
    } else {
        OpenOptions::new().append(true).open(&path)?
    };
    if first {
        writeln!(file, "{TSV_HEADER}")?;
    }
    file.write_all(metrics_tsv(label, scheduler, sink).as_bytes())?;
    if first {
        started.push(path);
    }
    Ok(())
}

/// Appends a block to the `FQMS_SIDECAR` file. Returns whether a sidecar
/// was written; `false` when the variable is unset or the write failed
/// (failures are logged to stderr, never propagated).
pub fn append(label: &str, scheduler: &str, sink: &MetricsSink) -> bool {
    let Some(path) = path() else {
        return false;
    };
    match append_block(&path, label, scheduler, sink) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("fqms: cannot write sidecar {}: {e}", path.display());
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_obs::Event;

    fn sample_sink() -> MetricsSink {
        let mut sink = MetricsSink::new(2);
        sink.observe(&Event::Completed {
            cycle: 40,
            thread: 1,
            id: 7,
            is_write: false,
            latency: 12,
            bytes: 64,
        });
        sink
    }

    #[test]
    fn first_block_truncates_and_writes_header_then_appends() {
        let path = std::env::temp_dir().join(format!("fqms-sidecar-{}.tsv", std::process::id()));
        std::fs::write(&path, "stale contents from a previous run\n").unwrap();
        append_block(&path, "mix-a", "FQ-VFTF", &sample_sink()).unwrap();
        append_block(&path, "mix-b", "FR-FCFS", &sample_sink()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(!text.contains("stale"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], TSV_HEADER);
        // Two blocks of (2 threads + summary) rows, one header.
        assert_eq!(lines.len(), 1 + 2 * 3);
        assert!(lines[1].starts_with("mix-a\tFQ-VFTF\t0\t"));
        assert!(lines[4].starts_with("mix-b\tFR-FCFS\t0\t"));
    }
}
