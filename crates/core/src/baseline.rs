//! Private time-scaled baseline systems.
//!
//! The paper's QoS objective is defined against a *virtual private memory
//! system*: "a thread i that is allocated a fraction phi of the memory
//! system bandwidth will run no slower than the same thread on a private
//! memory system running at phi of the frequency of the shared physical
//! memory system". The evaluation therefore normalizes IPC to runs on a
//! single-processor system whose DRAM timing constraints are **time scaled
//! by 1/phi** (×2 for the two-core experiments, ×4 for the four-core
//! ones).

use crate::metrics::ThreadMetrics;
use crate::system::SystemBuilder;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::policy::SchedulerKind;
use fqms_workloads::profile::WorkloadProfile;

/// Runs `profile` alone on a private memory system time-scaled by
/// `factor` (1 = the real memory, 2 = the two-core baseline, 4 = the
/// four-core baseline), and returns its metrics.
///
/// The run retires `instructions` instructions (bounded by
/// `max_dram_cycles`); the scheduler is FR-FCFS, which for a single thread
/// is the paper's best-performing configuration.
pub fn run_private_baseline(
    profile: WorkloadProfile,
    factor: u64,
    instructions: u64,
    max_dram_cycles: u64,
    seed: u64,
) -> ThreadMetrics {
    let timing = TimingParams::ddr2_800().time_scaled(factor);
    let mut sys = SystemBuilder::new()
        .scheduler(SchedulerKind::FrFcfs)
        .timing(timing)
        .seed(seed)
        .workload(profile)
        .build()
        .expect("baseline system configuration is static and valid");
    let m = sys.run(instructions, max_dram_cycles);
    m.threads.into_iter().next().expect("one thread")
}

/// Runs `profile` alone on the unscaled memory system — the paper's "solo"
/// configuration used for Figure 4 and for latency/target-utilization
/// normalization in Figure 9.
pub fn run_solo(
    profile: WorkloadProfile,
    instructions: u64,
    max_dram_cycles: u64,
    seed: u64,
) -> ThreadMetrics {
    run_private_baseline(profile, 1, instructions, max_dram_cycles, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_workloads::spec::by_name;

    #[test]
    fn scaling_slows_memory_bound_threads() {
        let art = by_name("art").unwrap();
        let fast = run_solo(art, 20_000, 2_000_000, 3);
        let slow = run_private_baseline(art, 4, 20_000, 8_000_000, 3);
        assert!(
            slow.ipc < fast.ipc * 0.7,
            "x4 scaling barely changed IPC: {} vs {}",
            slow.ipc,
            fast.ipc
        );
    }

    #[test]
    fn scaling_barely_affects_cache_resident_threads() {
        let crafty = by_name("crafty").unwrap();
        let fast = run_solo(crafty, 50_000, 4_000_000, 3);
        let slow = run_private_baseline(crafty, 4, 50_000, 16_000_000, 3);
        assert!(
            slow.ipc > fast.ipc * 0.8,
            "crafty should be memory-insensitive: {} vs {}",
            slow.ipc,
            fast.ipc
        );
    }
}
