//! Shared experiment runners for the paper's evaluation (Section 4).
//!
//! These helpers are the building blocks the figure-regeneration binaries
//! (crate `fqms-bench`) and the integration tests compose: solo runs
//! (Figure 4), the two-core subject/background sweep (Figures 1 and 5-7),
//! and the four-core heterogeneous workloads (Figures 8-9).

use crate::metrics::{SystemMetrics, ThreadMetrics};
use crate::system::SystemBuilder;
use fqms_memctrl::policy::SchedulerKind;
use fqms_workloads::profile::WorkloadProfile;
use fqms_workloads::spec::SPEC_PROFILES;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long to simulate: the per-thread instruction target and a hard
/// cycle bound (so pathological configurations cannot hang a sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    /// Instructions each thread must retire.
    pub instructions: u64,
    /// Hard bound on simulated DRAM cycles.
    pub max_dram_cycles: u64,
}

impl RunLength {
    /// Short runs for unit/integration tests (~tens of ms each).
    pub const fn quick() -> Self {
        RunLength {
            instructions: 30_000,
            max_dram_cycles: 3_000_000,
        }
    }

    /// Standard figure-quality runs.
    pub const fn standard() -> Self {
        RunLength {
            instructions: 300_000,
            max_dram_cycles: 40_000_000,
        }
    }

    /// Long runs for final numbers.
    pub const fn full() -> Self {
        RunLength {
            instructions: 1_000_000,
            max_dram_cycles: 150_000_000,
        }
    }
}

impl Default for RunLength {
    fn default() -> Self {
        RunLength::standard()
    }
}

/// Runs every one of the twenty profiles alone on the unscaled memory
/// system (Figure 4). Results are in `SPEC_PROFILES` order.
pub fn solo_sweep(len: RunLength, seed: u64) -> Vec<ThreadMetrics> {
    SPEC_PROFILES
        .iter()
        .map(|p| crate::baseline::run_solo(*p, len.instructions, len.max_dram_cycles, seed))
        .collect()
}

/// Runs independent simulation jobs across `num_threads` OS threads and
/// returns their results in input order.
///
/// `System` is deliberately `!Send` (the shared L2 is reference-counted),
/// so each job is a closure that *constructs* its own system inside the
/// worker thread. Jobs are claimed from a shared counter, so scheduling
/// is work-stealing but the output order — and, because every job is
/// self-contained and internally deterministic, every result — is
/// independent of thread count and interleaving.
///
/// For sweeps that must survive a failing job, see
/// [`run_jobs_resilient`].
///
/// # Example
///
/// ```
/// use fqms::experiment::run_jobs;
///
/// let jobs: Vec<_> = (0u64..8).map(|i| move || i * i).collect();
/// let squares = run_jobs(jobs, 4);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// Panics if `num_threads` is zero or a job panics.
pub fn run_jobs<T, F>(jobs: Vec<F>, num_threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    assert!(num_threads > 0, "need at least one worker thread");
    let n = jobs.len();
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..num_threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i].lock().unwrap().take().expect("job claimed once");
                let out = job();
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job ran"))
        .collect()
}

/// Per-job retry/timeout policy for [`run_jobs_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPolicy {
    /// Total attempts per job (first try included); must be at least 1.
    pub attempts: u32,
    /// Wall-clock budget per attempt. `None` lets an attempt run forever
    /// (panic isolation only — no watchdog thread is spawned).
    pub timeout: Option<Duration>,
    /// Pause before the first retry; doubles per retry.
    pub backoff_start: Duration,
    /// Ceiling on the retry pause.
    pub backoff_cap: Duration,
}

impl JobPolicy {
    /// One attempt, no timeout: [`run_jobs`] semantics except that a
    /// panicking job yields an `Err` instead of poisoning the sweep.
    pub fn fail_fast() -> Self {
        JobPolicy {
            attempts: 1,
            timeout: None,
            backoff_start: Duration::from_millis(0),
            backoff_cap: Duration::from_millis(0),
        }
    }

    /// `attempts` tries per job, each bounded by `timeout`, with retries
    /// backing off from 100 ms up to 2 s.
    pub fn resilient(attempts: u32, timeout: Duration) -> Self {
        JobPolicy {
            attempts: attempts.max(1),
            timeout: Some(timeout),
            backoff_start: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
        }
    }

    /// Pause before retry number `retry` (1-based): capped exponential.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.backoff_start
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// Why a job in a resilient sweep produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// Every attempt panicked; carries the final panic message.
    Panicked {
        /// Attempts consumed (== the policy's `attempts`).
        attempts: u32,
        /// Panic payload of the last attempt, stringified.
        message: String,
    },
    /// Every attempt hit the per-attempt wall-clock budget.
    TimedOut {
        /// Attempts consumed (== the policy's `attempts`).
        attempts: u32,
        /// The per-attempt budget that was exceeded.
        timeout: Duration,
    },
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Panicked { attempts, message } => {
                write!(f, "panicked after {attempts} attempt(s): {message}")
            }
            JobFailure::TimedOut { attempts, timeout } => {
                write!(f, "timed out after {attempts} attempt(s) of {timeout:?}")
            }
        }
    }
}

/// One attempt's outcome, before the retry loop decides what to do next.
enum Attempt<T> {
    Ok(T),
    Panicked(String),
    TimedOut,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs job `i` once, catching panics; with a timeout the attempt runs on
/// a dedicated thread that is *detached* (leaked, never joined) if it
/// overruns — a wedged simulation must not wedge the sweep. The attempt
/// thread only touches its own `Arc` clone of the job list, so detaching
/// is safe; its eventual result (if any) is dropped with the channel.
fn run_attempt<T, F>(jobs: &Arc<Vec<F>>, i: usize, timeout: Option<Duration>) -> Attempt<T>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    match timeout {
        None => match catch_unwind(AssertUnwindSafe(|| jobs[i]())) {
            Ok(v) => Attempt::Ok(v),
            Err(p) => Attempt::Panicked(panic_message(p)),
        },
        Some(budget) => {
            let (tx, rx) = mpsc::channel();
            let jobs = Arc::clone(jobs);
            let spawned = std::thread::Builder::new()
                .name(format!("fqms-job-{i}"))
                .spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| jobs[i]()));
                    let _ = tx.send(out);
                });
            if spawned.is_err() {
                return Attempt::Panicked("failed to spawn attempt thread".into());
            }
            match rx.recv_timeout(budget) {
                Ok(Ok(v)) => Attempt::Ok(v),
                Ok(Err(p)) => Attempt::Panicked(panic_message(p)),
                Err(RecvTimeoutError::Timeout) => Attempt::TimedOut,
                Err(RecvTimeoutError::Disconnected) => {
                    Attempt::Panicked("attempt thread vanished".into())
                }
            }
        }
    }
}

/// Fault-tolerant [`run_jobs`]: every job is isolated with
/// [`std::panic::catch_unwind`], optionally bounded by a per-attempt
/// wall-clock timeout, and retried with capped exponential backoff. The
/// sweep always returns a full-length, input-ordered vector — failed jobs
/// yield `Err(`[`JobFailure`]`)` while every other result is reported
/// (partial results instead of an all-or-nothing panic).
///
/// Jobs must be `Fn` (not `FnOnce`) so they can be retried, and
/// `'static` because a timed-out attempt's thread is detached and may
/// outlive the sweep. Successful sweeps remain bit-identical to
/// [`run_jobs`] on the same inputs.
///
/// # Example
///
/// ```
/// use fqms::experiment::{run_jobs_resilient, JobPolicy};
///
/// let jobs: Vec<_> = (0u64..4)
///     .map(|i| move || if i == 2 { panic!("job {i} lost its config") } else { i * 10 })
///     .collect();
/// let out = run_jobs_resilient(jobs, 2, JobPolicy::fail_fast());
/// assert_eq!(out[0], Ok(0));
/// assert_eq!(out[1], Ok(10));
/// assert!(out[2].as_ref().is_err_and(|e| e.to_string().contains("lost its config")));
/// assert_eq!(out[3], Ok(30));
/// ```
///
/// # Panics
///
/// Panics if `num_threads` is zero or `policy.attempts` is zero — never
/// because a *job* panicked.
pub fn run_jobs_resilient<T, F>(
    jobs: Vec<F>,
    num_threads: usize,
    policy: JobPolicy,
) -> Vec<Result<T, JobFailure>>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    assert!(num_threads > 0, "need at least one worker thread");
    assert!(policy.attempts > 0, "need at least one attempt per job");
    let n = jobs.len();
    let jobs = Arc::new(jobs);
    let results: Vec<Mutex<Option<Result<T, JobFailure>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..num_threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut verdict = None;
                for attempt in 1..=policy.attempts {
                    match run_attempt(&jobs, i, policy.timeout) {
                        Attempt::Ok(v) => {
                            verdict = Some(Ok(v));
                            break;
                        }
                        Attempt::Panicked(message) => {
                            verdict = Some(Err(JobFailure::Panicked {
                                attempts: attempt,
                                message,
                            }));
                        }
                        Attempt::TimedOut => {
                            verdict = Some(Err(JobFailure::TimedOut {
                                attempts: attempt,
                                timeout: policy.timeout.unwrap_or_default(),
                            }));
                        }
                    }
                    if attempt < policy.attempts {
                        std::thread::sleep(policy.backoff(attempt));
                    }
                }
                *results[i].lock().unwrap() = verdict;
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job was decided"))
        .collect()
}

/// Parallel [`solo_sweep`]: the twenty Figure 4 solo runs distributed
/// across `num_threads` workers. Bit-identical to the serial sweep —
/// each run builds its own isolated system from `(profile, len, seed)`.
///
/// # Example
///
/// ```
/// use fqms::experiment::{solo_sweep, solo_sweep_parallel, RunLength};
///
/// let len = RunLength { instructions: 500, max_dram_cycles: 100_000 };
/// let parallel = solo_sweep_parallel(len, 7, 4);
/// assert_eq!(parallel.len(), 20); // one result per SPEC profile
/// assert_eq!(parallel, solo_sweep(len, 7));
/// ```
pub fn solo_sweep_parallel(len: RunLength, seed: u64, num_threads: usize) -> Vec<ThreadMetrics> {
    let jobs: Vec<_> = SPEC_PROFILES
        .iter()
        .map(|p| move || crate::baseline::run_solo(*p, len.instructions, len.max_dram_cycles, seed))
        .collect();
    run_jobs(jobs, num_threads)
}

/// Runs a two-core CMP: `subject` on thread 0, `background` on thread 1,
/// with equal shares under `scheduler` (the Figures 1/5/6/7 platform).
pub fn two_core_run(
    subject: WorkloadProfile,
    background: WorkloadProfile,
    scheduler: SchedulerKind,
    len: RunLength,
    seed: u64,
) -> SystemMetrics {
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workload(subject)
        .workload(background)
        .build()
        .expect("two-core configuration is valid");
    sys.run(len.instructions, len.max_dram_cycles)
}

/// Runs a four-core CMP with the given workload mix and equal shares
/// (the Figures 8/9 platform).
pub fn four_core_run(
    mix: &[WorkloadProfile; 4],
    scheduler: SchedulerKind,
    len: RunLength,
    seed: u64,
) -> SystemMetrics {
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workloads(mix.iter().copied())
        .build()
        .expect("four-core configuration is valid");
    sys.run(len.instructions, len.max_dram_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_workloads::spec::by_name;

    #[test]
    fn two_core_run_keeps_thread_order() {
        let m = two_core_run(
            by_name("vpr").unwrap(),
            by_name("art").unwrap(),
            SchedulerKind::FrFcfs,
            RunLength::quick(),
            3,
        );
        assert_eq!(m.threads[0].name, "vpr");
        assert_eq!(m.threads[1].name, "art");
    }

    #[test]
    fn four_core_run_covers_all_threads() {
        let mix = fqms_workloads::spec::four_core_workloads()[0];
        let m = four_core_run(&mix, SchedulerKind::FqVftf, RunLength::quick(), 3);
        assert_eq!(m.threads.len(), 4);
        assert!(m.threads.iter().all(|t| t.instructions > 0));
    }

    #[test]
    fn run_jobs_preserves_order_and_results() {
        let jobs: Vec<_> = (0u64..17).map(|i| move || i * i).collect();
        for threads in [1, 3, 8] {
            let jobs: Vec<_> = (0u64..17).map(|i| move || i * i).collect();
            assert_eq!(
                run_jobs(jobs, threads),
                (0u64..17).map(|i| i * i).collect::<Vec<_>>()
            );
        }
        assert_eq!(run_jobs(jobs, 4).len(), 17);
        assert!(run_jobs(Vec::<fn() -> u8>::new(), 2).is_empty());
    }

    #[test]
    fn parallel_solo_sweep_matches_serial() {
        let len = RunLength {
            instructions: 2_000,
            max_dram_cycles: 400_000,
        };
        let serial = solo_sweep(len, 11);
        for threads in [2, 4] {
            assert_eq!(solo_sweep_parallel(len, 11, threads), serial);
        }
    }

    #[test]
    fn resilient_sweep_reports_partial_results_on_panic() {
        // One poisoned job must not take the sweep (or its siblings) down:
        // every other slot still carries its result, in input order.
        let jobs: Vec<_> = (0u64..9)
            .map(|i| {
                move || {
                    assert!(i != 4, "job {i} exploded");
                    i * 3
                }
            })
            .collect();
        for threads in [1, 3, 8] {
            let jobs = jobs.clone();
            let out = run_jobs_resilient(jobs, threads, JobPolicy::fail_fast());
            assert_eq!(out.len(), 9);
            for (i, slot) in out.iter().enumerate() {
                if i == 4 {
                    let err = slot.as_ref().unwrap_err();
                    assert!(
                        matches!(
                            err,
                            JobFailure::Panicked { attempts: 1, message } if message.contains("job 4 exploded")
                        ),
                        "unexpected failure: {err}"
                    );
                } else {
                    assert_eq!(*slot, Ok(i as u64 * 3), "slot {i} out of order");
                }
            }
        }
    }

    #[test]
    fn resilient_sweep_times_out_wedged_jobs() {
        // Job 1 wedges (sleeps far past the budget); the sweep must carry
        // on, report the timeout, and still return the other results.
        let jobs: Vec<_> = (0u64..3)
            .map(|i| {
                move || {
                    if i == 1 {
                        std::thread::sleep(Duration::from_secs(30));
                    }
                    i + 100
                }
            })
            .collect();
        let policy = JobPolicy {
            attempts: 1,
            timeout: Some(Duration::from_millis(50)),
            backoff_start: Duration::from_millis(0),
            backoff_cap: Duration::from_millis(0),
        };
        let out = run_jobs_resilient(jobs, 2, policy);
        assert_eq!(out[0], Ok(100));
        assert!(matches!(
            out[1],
            Err(JobFailure::TimedOut { attempts: 1, .. })
        ));
        assert_eq!(out[2], Ok(102));
    }

    #[test]
    fn resilient_sweep_retries_transient_failures() {
        // A job that fails twice then succeeds: with three attempts the
        // sweep recovers; the capped backoff never reverses a success.
        let flaky_calls = Arc::new(AtomicUsize::new(0));
        let calls = Arc::clone(&flaky_calls);
        let jobs: Vec<Box<dyn Fn() -> u64 + Send + Sync>> = vec![
            Box::new(|| 7),
            Box::new(move || {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                assert!(n >= 2, "transient fault");
                99
            }),
        ];
        let mut policy = JobPolicy::resilient(3, Duration::from_secs(10));
        policy.backoff_start = Duration::from_millis(1);
        policy.backoff_cap = Duration::from_millis(2);
        let out = run_jobs_resilient(jobs, 2, policy);
        assert_eq!(out, vec![Ok(7), Ok(99)]);
        assert_eq!(flaky_calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = JobPolicy {
            attempts: 5,
            timeout: None,
            backoff_start: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(350),
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(100));
        assert_eq!(policy.backoff(2), Duration::from_millis(200));
        assert_eq!(policy.backoff(3), Duration::from_millis(350));
        assert_eq!(policy.backoff(4), Duration::from_millis(350));
    }

    #[test]
    fn resilient_sweep_matches_plain_sweep_when_healthy() {
        let mk = || (0u64..12).map(|i| move || i.pow(2)).collect::<Vec<_>>();
        let plain = run_jobs(mk(), 4);
        let resilient: Vec<u64> =
            run_jobs_resilient(mk(), 4, JobPolicy::resilient(2, Duration::from_secs(30)))
                .into_iter()
                .map(Result::unwrap)
                .collect();
        assert_eq!(plain, resilient);
    }

    #[test]
    fn run_length_presets_are_ordered() {
        assert!(RunLength::quick().instructions < RunLength::standard().instructions);
        assert!(RunLength::standard().instructions < RunLength::full().instructions);
    }
}
