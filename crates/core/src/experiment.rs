//! Shared experiment runners for the paper's evaluation (Section 4).
//!
//! These helpers are the building blocks the figure-regeneration binaries
//! (crate `fqms-bench`) and the integration tests compose: solo runs
//! (Figure 4), the two-core subject/background sweep (Figures 1 and 5-7),
//! and the four-core heterogeneous workloads (Figures 8-9).

use crate::metrics::{SystemMetrics, ThreadMetrics};
use crate::system::SystemBuilder;
use fqms_memctrl::policy::SchedulerKind;
use fqms_workloads::profile::WorkloadProfile;
use fqms_workloads::spec::SPEC_PROFILES;

/// How long to simulate: the per-thread instruction target and a hard
/// cycle bound (so pathological configurations cannot hang a sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    /// Instructions each thread must retire.
    pub instructions: u64,
    /// Hard bound on simulated DRAM cycles.
    pub max_dram_cycles: u64,
}

impl RunLength {
    /// Short runs for unit/integration tests (~tens of ms each).
    pub const fn quick() -> Self {
        RunLength {
            instructions: 30_000,
            max_dram_cycles: 3_000_000,
        }
    }

    /// Standard figure-quality runs.
    pub const fn standard() -> Self {
        RunLength {
            instructions: 300_000,
            max_dram_cycles: 40_000_000,
        }
    }

    /// Long runs for final numbers.
    pub const fn full() -> Self {
        RunLength {
            instructions: 1_000_000,
            max_dram_cycles: 150_000_000,
        }
    }
}

impl Default for RunLength {
    fn default() -> Self {
        RunLength::standard()
    }
}

/// Runs every one of the twenty profiles alone on the unscaled memory
/// system (Figure 4). Results are in `SPEC_PROFILES` order.
pub fn solo_sweep(len: RunLength, seed: u64) -> Vec<ThreadMetrics> {
    SPEC_PROFILES
        .iter()
        .map(|p| crate::baseline::run_solo(*p, len.instructions, len.max_dram_cycles, seed))
        .collect()
}

/// Runs a two-core CMP: `subject` on thread 0, `background` on thread 1,
/// with equal shares under `scheduler` (the Figures 1/5/6/7 platform).
pub fn two_core_run(
    subject: WorkloadProfile,
    background: WorkloadProfile,
    scheduler: SchedulerKind,
    len: RunLength,
    seed: u64,
) -> SystemMetrics {
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workload(subject)
        .workload(background)
        .build()
        .expect("two-core configuration is valid");
    sys.run(len.instructions, len.max_dram_cycles)
}

/// Runs a four-core CMP with the given workload mix and equal shares
/// (the Figures 8/9 platform).
pub fn four_core_run(
    mix: &[WorkloadProfile; 4],
    scheduler: SchedulerKind,
    len: RunLength,
    seed: u64,
) -> SystemMetrics {
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workloads(mix.iter().copied())
        .build()
        .expect("four-core configuration is valid");
    sys.run(len.instructions, len.max_dram_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_workloads::spec::by_name;

    #[test]
    fn two_core_run_keeps_thread_order() {
        let m = two_core_run(
            by_name("vpr").unwrap(),
            by_name("art").unwrap(),
            SchedulerKind::FrFcfs,
            RunLength::quick(),
            3,
        );
        assert_eq!(m.threads[0].name, "vpr");
        assert_eq!(m.threads[1].name, "art");
    }

    #[test]
    fn four_core_run_covers_all_threads() {
        let mix = fqms_workloads::spec::four_core_workloads()[0];
        let m = four_core_run(&mix, SchedulerKind::FqVftf, RunLength::quick(), 3);
        assert_eq!(m.threads.len(), 4);
        assert!(m.threads.iter().all(|t| t.instructions > 0));
    }

    #[test]
    fn run_length_presets_are_ordered() {
        assert!(RunLength::quick().instructions < RunLength::standard().instructions);
        assert!(RunLength::standard().instructions < RunLength::full().instructions);
    }
}
