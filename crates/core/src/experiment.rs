//! Shared experiment runners for the paper's evaluation (Section 4).
//!
//! These helpers are the building blocks the figure-regeneration binaries
//! (crate `fqms-bench`) and the integration tests compose: solo runs
//! (Figure 4), the two-core subject/background sweep (Figures 1 and 5-7),
//! and the four-core heterogeneous workloads (Figures 8-9).

use crate::metrics::{SystemMetrics, ThreadMetrics};
use crate::system::SystemBuilder;
use fqms_memctrl::policy::SchedulerKind;
use fqms_workloads::profile::WorkloadProfile;
use fqms_workloads::spec::SPEC_PROFILES;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How long to simulate: the per-thread instruction target and a hard
/// cycle bound (so pathological configurations cannot hang a sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLength {
    /// Instructions each thread must retire.
    pub instructions: u64,
    /// Hard bound on simulated DRAM cycles.
    pub max_dram_cycles: u64,
}

impl RunLength {
    /// Short runs for unit/integration tests (~tens of ms each).
    pub const fn quick() -> Self {
        RunLength {
            instructions: 30_000,
            max_dram_cycles: 3_000_000,
        }
    }

    /// Standard figure-quality runs.
    pub const fn standard() -> Self {
        RunLength {
            instructions: 300_000,
            max_dram_cycles: 40_000_000,
        }
    }

    /// Long runs for final numbers.
    pub const fn full() -> Self {
        RunLength {
            instructions: 1_000_000,
            max_dram_cycles: 150_000_000,
        }
    }
}

impl Default for RunLength {
    fn default() -> Self {
        RunLength::standard()
    }
}

/// Runs every one of the twenty profiles alone on the unscaled memory
/// system (Figure 4). Results are in `SPEC_PROFILES` order.
pub fn solo_sweep(len: RunLength, seed: u64) -> Vec<ThreadMetrics> {
    SPEC_PROFILES
        .iter()
        .map(|p| crate::baseline::run_solo(*p, len.instructions, len.max_dram_cycles, seed))
        .collect()
}

/// Runs independent simulation jobs across `num_threads` OS threads and
/// returns their results in input order.
///
/// `System` is deliberately `!Send` (the shared L2 is reference-counted),
/// so each job is a closure that *constructs* its own system inside the
/// worker thread. Jobs are claimed from a shared counter, so scheduling
/// is work-stealing but the output order — and, because every job is
/// self-contained and internally deterministic, every result — is
/// independent of thread count and interleaving.
///
/// # Panics
///
/// Panics if `num_threads` is zero or a job panics.
pub fn run_jobs<T, F>(jobs: Vec<F>, num_threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    assert!(num_threads > 0, "need at least one worker thread");
    let n = jobs.len();
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..num_threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i].lock().unwrap().take().expect("job claimed once");
                let out = job();
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job ran"))
        .collect()
}

/// Parallel [`solo_sweep`]: the twenty Figure 4 solo runs distributed
/// across `num_threads` workers. Bit-identical to the serial sweep —
/// each run builds its own isolated system from `(profile, len, seed)`.
pub fn solo_sweep_parallel(len: RunLength, seed: u64, num_threads: usize) -> Vec<ThreadMetrics> {
    let jobs: Vec<_> = SPEC_PROFILES
        .iter()
        .map(|p| move || crate::baseline::run_solo(*p, len.instructions, len.max_dram_cycles, seed))
        .collect();
    run_jobs(jobs, num_threads)
}

/// Runs a two-core CMP: `subject` on thread 0, `background` on thread 1,
/// with equal shares under `scheduler` (the Figures 1/5/6/7 platform).
pub fn two_core_run(
    subject: WorkloadProfile,
    background: WorkloadProfile,
    scheduler: SchedulerKind,
    len: RunLength,
    seed: u64,
) -> SystemMetrics {
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workload(subject)
        .workload(background)
        .build()
        .expect("two-core configuration is valid");
    sys.run(len.instructions, len.max_dram_cycles)
}

/// Runs a four-core CMP with the given workload mix and equal shares
/// (the Figures 8/9 platform).
pub fn four_core_run(
    mix: &[WorkloadProfile; 4],
    scheduler: SchedulerKind,
    len: RunLength,
    seed: u64,
) -> SystemMetrics {
    let mut sys = SystemBuilder::new()
        .scheduler(scheduler)
        .seed(seed)
        .workloads(mix.iter().copied())
        .build()
        .expect("four-core configuration is valid");
    sys.run(len.instructions, len.max_dram_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_workloads::spec::by_name;

    #[test]
    fn two_core_run_keeps_thread_order() {
        let m = two_core_run(
            by_name("vpr").unwrap(),
            by_name("art").unwrap(),
            SchedulerKind::FrFcfs,
            RunLength::quick(),
            3,
        );
        assert_eq!(m.threads[0].name, "vpr");
        assert_eq!(m.threads[1].name, "art");
    }

    #[test]
    fn four_core_run_covers_all_threads() {
        let mix = fqms_workloads::spec::four_core_workloads()[0];
        let m = four_core_run(&mix, SchedulerKind::FqVftf, RunLength::quick(), 3);
        assert_eq!(m.threads.len(), 4);
        assert!(m.threads.iter().all(|t| t.instructions > 0));
    }

    #[test]
    fn run_jobs_preserves_order_and_results() {
        let jobs: Vec<_> = (0u64..17).map(|i| move || i * i).collect();
        for threads in [1, 3, 8] {
            let jobs: Vec<_> = (0u64..17).map(|i| move || i * i).collect();
            assert_eq!(
                run_jobs(jobs, threads),
                (0u64..17).map(|i| i * i).collect::<Vec<_>>()
            );
        }
        assert_eq!(run_jobs(jobs, 4).len(), 17);
        assert!(run_jobs(Vec::<fn() -> u8>::new(), 2).is_empty());
    }

    #[test]
    fn parallel_solo_sweep_matches_serial() {
        let len = RunLength {
            instructions: 2_000,
            max_dram_cycles: 400_000,
        };
        let serial = solo_sweep(len, 11);
        for threads in [2, 4] {
            assert_eq!(solo_sweep_parallel(len, 11, threads), serial);
        }
    }

    #[test]
    fn run_length_presets_are_ordered() {
        assert!(RunLength::quick().instructions < RunLength::standard().instructions);
        assert!(RunLength::standard().instructions < RunLength::full().instructions);
    }
}
