//! # Fair Queuing Memory Systems
//!
//! A from-scratch Rust reproduction of *Fair Queuing Memory Systems*
//! (Nesbit, Aggarwal, Laudon, Smith — MICRO 2006): a QoS-providing,
//! fair multi-thread DRAM scheduler built on network fair-queuing theory,
//! together with the full simulation stack the paper evaluates it on.
//!
//! The workspace layers:
//!
//! * [`fqms_dram`] — cycle-accurate DDR2-800 device timing model,
//! * [`fqms_memctrl`] — the memory controller with FR-FCFS / FR-VFTF /
//!   FQ-VFTF schedulers and the Virtual Time Memory System registers,
//! * [`fqms_cpu`] — trace-driven cores with private caches and MSHRs,
//! * [`fqms_workloads`] — twenty synthetic SPEC-2000-like profiles,
//! * this crate — system assembly ([`system::SystemBuilder`]), baselines
//!   ([`baseline`]), metrics ([`metrics`]), the target-utilization solver
//!   ([`fairshare`]), and experiment runners ([`experiment`]).
//!
//! # Quickstart
//!
//! ```
//! use fqms::prelude::*;
//!
//! // Co-schedule latency-sensitive vpr with the aggressive art stream
//! // under the Fair Queuing scheduler, with equal bandwidth shares.
//! let mut system = SystemBuilder::new()
//!     .scheduler(SchedulerKind::FqVftf)
//!     .seed(42)
//!     .workload(by_name("vpr").unwrap())
//!     .workload(by_name("art").unwrap())
//!     .build()?;
//! let metrics = system.run(20_000, 2_000_000);
//! assert!(metrics.threads[0].ipc > 0.0);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiment;
pub mod fairshare;
pub mod metrics;
pub mod sidecar;
pub mod system;
pub mod telemetry;
pub mod theory;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::baseline::{run_private_baseline, run_solo};
    pub use crate::experiment::{
        four_core_run, run_jobs, solo_sweep, solo_sweep_parallel, two_core_run, RunLength,
    };
    pub use crate::fairshare::target_utilizations;
    pub use crate::metrics::{improvement, SystemMetrics, ThreadMetrics};
    pub use crate::system::{System, SystemBuilder};
    pub use crate::theory::ServiceLagTracker;
    pub use fqms_memctrl::policy::{
        BufferSharing, InversionBound, RowPolicy, SchedulerKind, VftBinding,
    };
    pub use fqms_obs::{metrics_json, metrics_tsv, MetricsSink, ThreadSink, TSV_HEADER};
    pub use fqms_sim::stats::harmonic_mean;
    pub use fqms_workloads::spec::{by_name, four_core_workloads, SPEC_PROFILES};
}

pub use prelude::*;
