//! Result metrics for simulation runs.

use fqms_sim::stats::harmonic_mean;

/// Per-thread results of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadMetrics {
    /// Workload name (profile identity).
    pub name: String,
    /// Instructions retired inside the measurement window.
    pub instructions: u64,
    /// CPU cycles the thread took to retire them (its finish line).
    pub cpu_cycles: u64,
    /// Instructions per CPU cycle.
    pub ipc: f64,
    /// Average load-miss (memory read) round-trip latency in CPU cycles,
    /// as observed by the core (includes the fixed memory overhead).
    pub avg_read_latency: f64,
    /// 95th-percentile load-miss latency in CPU cycles (tail behaviour —
    /// priority-inversion blocking shows up here first).
    pub p95_read_latency: u64,
    /// Fraction of peak data-bus bandwidth this thread consumed over the
    /// run window.
    pub bus_utilization: f64,
    /// Fraction of the thread's serviced CAS commands that were row-buffer
    /// hits.
    pub row_hit_rate: f64,
    /// Demand reads sent to memory.
    pub mem_reads: u64,
    /// Writebacks sent to memory.
    pub mem_writes: u64,
}

/// Whole-system results of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemMetrics {
    /// Per-thread metrics, in thread order.
    pub threads: Vec<ThreadMetrics>,
    /// DRAM command-clock cycles simulated.
    pub elapsed_dram_cycles: u64,
    /// Aggregate data-bus utilization (busy burst cycles / elapsed).
    pub data_bus_utilization: f64,
    /// Aggregate bank utilization (mean over banks of busy fraction).
    pub bank_utilization: f64,
}

impl SystemMetrics {
    /// Harmonic mean of the threads' IPCs normalized by `baselines` (one
    /// baseline IPC per thread) — the paper's aggregate performance metric.
    ///
    /// # Panics
    ///
    /// Panics if `baselines` has a different length than the thread list.
    pub fn harmonic_mean_normalized_ipc(&self, baselines: &[f64]) -> f64 {
        assert_eq!(
            baselines.len(),
            self.threads.len(),
            "one baseline IPC per thread required"
        );
        let normalized: Vec<f64> = self
            .threads
            .iter()
            .zip(baselines)
            .map(|(t, &b)| if b > 0.0 { t.ipc / b } else { 0.0 })
            .collect();
        harmonic_mean(&normalized)
    }

    /// The metrics of one thread by index.
    pub fn thread(&self, idx: usize) -> &ThreadMetrics {
        &self.threads[idx]
    }
}

/// Relative performance improvement of `new` over `base` (e.g. 0.31 for
/// "+31%").
///
/// # Example
///
/// ```
/// use fqms::metrics::improvement;
///
/// assert!((improvement(1.31, 1.0) - 0.31).abs() < 1e-12);
/// ```
pub fn improvement(new: f64, base: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        new / base - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tm(name: &str, ipc: f64) -> ThreadMetrics {
        ThreadMetrics {
            name: name.into(),
            instructions: 1000,
            cpu_cycles: 1000,
            ipc,
            avg_read_latency: 100.0,
            p95_read_latency: 200,
            bus_utilization: 0.2,
            row_hit_rate: 0.5,
            mem_reads: 10,
            mem_writes: 5,
        }
    }

    #[test]
    fn hmean_normalized_ipc() {
        let m = SystemMetrics {
            threads: vec![tm("a", 1.0), tm("b", 0.5)],
            elapsed_dram_cycles: 1000,
            data_bus_utilization: 0.5,
            bank_utilization: 0.4,
        };
        // Normalized: 1.0/1.0 = 1, 0.5/1.0 = 0.5 -> harmonic mean = 2/3.
        let h = m.harmonic_mean_normalized_ipc(&[1.0, 1.0]);
        assert!((h - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_baselines_panic() {
        let m = SystemMetrics {
            threads: vec![tm("a", 1.0)],
            elapsed_dram_cycles: 1,
            data_bus_utilization: 0.0,
            bank_utilization: 0.0,
        };
        m.harmonic_mean_normalized_ipc(&[1.0, 2.0]);
    }

    #[test]
    fn improvement_math() {
        assert!((improvement(1.5, 1.0) - 0.5).abs() < 1e-12);
        assert!((improvement(0.9, 1.0) + 0.1).abs() < 1e-12);
        assert_eq!(improvement(1.0, 0.0), 0.0);
    }
}
