//! Fair-queuing theory instrumentation: GPS service lag.
//!
//! The FQ memory scheduler approximates a *generalized processor sharing*
//! (GPS) server over the memory system (paper Section 2.3): during any
//! interval in which thread `i` is backlogged, GPS would give it at least
//! `phi_i` of the aggregate service. A real packet-by-packet (here:
//! burst-by-burst) scheduler can only approximate GPS; the quality of the
//! approximation is its **service lag** — how far a thread's received
//! service falls behind its GPS entitlement:
//!
//! ```text
//! lag_i(t) = service_i(t) − phi_i × total_service(t)
//! ```
//!
//! A scheduler provides QoS in the paper's sense exactly when every
//! backlogged thread's lag is bounded below by a constant (independent of
//! other threads' behaviour). [`ServiceLagTracker`] samples cumulative
//! per-thread data-bus service and records each thread's worst (most
//! negative) lag, so tests and studies can measure the bound directly —
//! and show that FR-FCFS has no such bound while FQ-VFTF does.

/// Tracks per-thread worst-case GPS service lag from periodic samples of
/// cumulative service.
///
/// # Example
///
/// ```
/// use fqms::theory::ServiceLagTracker;
///
/// let mut lag = ServiceLagTracker::new(vec![0.5, 0.5]).unwrap();
/// lag.observe(&[100, 100]); // even split: zero lag
/// lag.observe(&[150, 250]); // thread 0 fell 50 cycles behind its half
/// assert_eq!(lag.worst_lag(0), -50.0);
/// assert_eq!(lag.worst_lag(1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceLagTracker {
    shares: Vec<f64>,
    worst: Vec<f64>,
    samples: u64,
}

impl ServiceLagTracker {
    /// Creates a tracker for threads with the given shares.
    ///
    /// # Errors
    ///
    /// Returns an error if `shares` is empty or any share is outside
    /// `(0, 1]`.
    pub fn new(shares: Vec<f64>) -> Result<Self, String> {
        if shares.is_empty() {
            return Err("at least one share required".into());
        }
        for (i, &phi) in shares.iter().enumerate() {
            if !(phi > 0.0 && phi <= 1.0) {
                return Err(format!("share {i} must be in (0, 1], got {phi}"));
            }
        }
        let n = shares.len();
        Ok(ServiceLagTracker {
            shares,
            worst: vec![0.0; n],
            samples: 0,
        })
    }

    /// Number of threads tracked.
    pub fn num_threads(&self) -> usize {
        self.shares.len()
    }

    /// Number of samples observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Records one sample of *cumulative* per-thread service (e.g.
    /// data-bus busy cycles attributed to each thread since measurement
    /// start).
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the share count.
    pub fn observe(&mut self, cumulative_service: &[u64]) {
        assert_eq!(
            cumulative_service.len(),
            self.shares.len(),
            "one sample per thread"
        );
        let total: u64 = cumulative_service.iter().sum();
        for (i, &s) in cumulative_service.iter().enumerate() {
            let lag = s as f64 - self.shares[i] * total as f64;
            if lag < self.worst[i] {
                self.worst[i] = lag;
            }
        }
        self.samples += 1;
    }

    /// The worst (most negative) lag observed for `thread`, in service
    /// units (bus cycles). 0.0 if the thread never fell behind.
    pub fn worst_lag(&self, thread: usize) -> f64 {
        self.worst[thread]
    }

    /// The worst lag across all threads.
    pub fn worst_overall(&self) -> f64 {
        self.worst.iter().copied().fold(0.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_shares() {
        assert!(ServiceLagTracker::new(vec![]).is_err());
        assert!(ServiceLagTracker::new(vec![0.0]).is_err());
        assert!(ServiceLagTracker::new(vec![1.5]).is_err());
    }

    #[test]
    fn perfect_gps_has_zero_lag() {
        let mut t = ServiceLagTracker::new(vec![0.25; 4]).unwrap();
        for k in 1..100u64 {
            t.observe(&[k * 10; 4]);
        }
        assert_eq!(t.worst_overall(), 0.0);
        assert_eq!(t.samples(), 99);
    }

    #[test]
    fn starved_thread_accumulates_lag() {
        let mut t = ServiceLagTracker::new(vec![0.5, 0.5]).unwrap();
        // Thread 1 hogs everything.
        for k in 1..=10u64 {
            t.observe(&[0, k * 100]);
        }
        assert_eq!(t.worst_lag(0), -500.0);
        assert_eq!(t.worst_lag(1), 0.0);
    }

    #[test]
    fn asymmetric_shares_shift_the_entitlement() {
        let mut t = ServiceLagTracker::new(vec![0.75, 0.25]).unwrap();
        // An even split short-changes the 0.75 thread.
        t.observe(&[100, 100]);
        assert_eq!(t.worst_lag(0), -50.0);
        assert_eq!(t.worst_lag(1), 0.0);
    }

    #[test]
    fn lag_is_monotone_worst_case() {
        let mut t = ServiceLagTracker::new(vec![0.5, 0.5]).unwrap();
        t.observe(&[0, 100]); // lag0 = -50
        t.observe(&[100, 100]); // recovered, but worst stays
        assert_eq!(t.worst_lag(0), -50.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_sample_length_panics() {
        let mut t = ServiceLagTracker::new(vec![0.5, 0.5]).unwrap();
        t.observe(&[1, 2, 3]);
    }
}
