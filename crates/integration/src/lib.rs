#![forbid(unsafe_code)]
