//! Set-associative cache model with LRU replacement and write-back lines.
//!
//! The model is a *performance* model: it tracks which lines are present
//! and dirty, not their data. Both the private L1 data cache and the
//! private L2 of the paper's Table 5 are instances of this type.

use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in CPU cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// The paper's L1 D-cache: 32 KB, 4-way, 64-byte lines, 2-cycle.
    pub const fn paper_l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 2,
        }
    }

    /// The paper's private L2: 512 KB, 8-way, 64-byte lines, 12-cycle.
    pub const fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 12,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes)
    }

    /// Validates the configuration (power-of-two sets and line size,
    /// non-zero everything).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated requirement.
    pub fn validate(&self) -> Result<(), String> {
        if self.size_bytes == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err("cache dimensions must be non-zero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size {} must be a power of two",
                self.line_bytes
            ));
        }
        if !self
            .size_bytes
            .is_multiple_of(self.ways as u64 * self.line_bytes)
        {
            return Err("size must be divisible by ways * line".into());
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("set count {} must be a power of two", self.sets()));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line is present.
    Hit,
    /// The line is absent.
    Miss,
}

/// A set-associative, write-back cache (performance model).
///
/// # Example
///
/// ```
/// use fqms_cpu::cache::{Cache, CacheConfig, Lookup};
///
/// let mut c = Cache::new(CacheConfig::paper_l1d()).unwrap();
/// assert_eq!(c.probe(0x1000, false), Lookup::Miss);
/// c.fill(0x1000, false);
/// assert_eq!(c.probe(0x1000, false), Lookup::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Errors
    ///
    /// Returns a description if the configuration is invalid.
    pub fn new(config: CacheConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Cache {
            config,
            sets: vec![Vec::new(); config.sets() as usize],
            stamp: 0,
            hits: 0,
            misses: 0,
        })
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let set = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        (set, tag)
    }

    /// Looks up `addr`; on a hit updates LRU and, if `write`, marks the
    /// line dirty. Does **not** allocate on miss — use [`Cache::fill`].
    pub fn probe(&mut self, addr: u64, write: bool) -> Lookup {
        let (set, tag) = self.index_tag(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.tag == tag) {
            line.lru = stamp;
            if write {
                line.dirty = true;
            }
            self.hits += 1;
            Lookup::Hit
        } else {
            self.misses += 1;
            Lookup::Miss
        }
    }

    /// Inserts the line containing `addr` (marking it dirty if `write`),
    /// evicting the LRU line of the set if full.
    ///
    /// Returns the *byte address* of an evicted dirty line (a writeback the
    /// caller must propagate), if any.
    pub fn fill(&mut self, addr: u64, write: bool) -> Option<u64> {
        let (set, tag) = self.index_tag(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.config.ways as usize;
        let set_vec = &mut self.sets[set];
        if let Some(line) = set_vec.iter_mut().find(|l| l.tag == tag) {
            // Already present (e.g. racing fills); just refresh.
            line.lru = stamp;
            if write {
                line.dirty = true;
            }
            return None;
        }
        let mut evicted = None;
        if set_vec.len() >= ways {
            let victim = set_vec
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let v = set_vec.swap_remove(victim);
            if v.dirty {
                evicted = Some(self.line_addr(set, v.tag));
            }
        }
        self.sets[set].push(Line {
            tag,
            dirty: write,
            lru: stamp,
        });
        evicted
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.config.sets() + set as u64) * self.config.line_bytes
    }

    /// `(hits, misses)` counted so far.
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Geometry is configuration (validated against the restore target); the
/// line directory, LRU stamp, and hit/miss counters are state.
impl Snapshot for Cache {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.config.size_bytes);
        w.put_u32(self.config.ways);
        w.put_u64(self.config.line_bytes);
        w.put_seq_len(self.sets.len());
        for set in &self.sets {
            w.put_seq_len(set.len());
            for line in set {
                w.put_u64(line.tag);
                w.put_bool(line.dirty);
                w.put_u64(line.lru);
            }
        }
        w.put_u64(self.stamp);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let size = r.get_u64()?;
        let ways = r.get_u32()?;
        let line_bytes = r.get_u64()?;
        if size != self.config.size_bytes
            || ways != self.config.ways
            || line_bytes != self.config.line_bytes
        {
            return Err(r.malformed(format!(
                "cache geometry {size}B/{ways}-way/{line_bytes}B line != configured \
                 {}B/{}-way/{}B line",
                self.config.size_bytes, self.config.ways, self.config.line_bytes
            )));
        }
        let nsets = r.seq_len()?;
        if nsets != self.sets.len() {
            return Err(r.malformed(format!(
                "snapshot has {nsets} sets, cache has {}",
                self.sets.len()
            )));
        }
        for set in &mut self.sets {
            let n = r.seq_len()?;
            if n > self.config.ways as usize {
                return Err(r.malformed(format!(
                    "{n} lines in a set exceed {}-way associativity",
                    self.config.ways
                )));
            }
            set.clear();
            for _ in 0..n {
                set.push(Line {
                    tag: r.get_u64()?,
                    dirty: r.get_bool()?,
                    lru: r.get_u64()?,
                });
            }
        }
        self.stamp = r.get_u64()?;
        self.hits = r.get_u64()?;
        self.misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
        .unwrap()
    }

    #[test]
    fn paper_configs_are_valid() {
        CacheConfig::paper_l1d().validate().unwrap();
        CacheConfig::paper_l2().validate().unwrap();
        assert_eq!(CacheConfig::paper_l1d().sets(), 128);
        assert_eq!(CacheConfig::paper_l2().sets(), 1024);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(0, false), Lookup::Miss);
        assert_eq!(c.fill(0, false), None);
        assert_eq!(c.probe(0, false), Lookup::Hit);
        assert_eq!(c.hit_miss_counts(), (1, 1));
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.fill(0x40, false);
        assert_eq!(c.probe(0x7F, false), Lookup::Hit);
        assert_eq!(c.probe(0x80, false), Lookup::Miss);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 2 (line index even -> set 0).
        c.fill(0, false);
        c.fill(2 * 64, false);
        c.probe(0, false); // touch line 0: line 2 is now LRU
        let evicted = c.fill(4 * 64, false);
        assert_eq!(evicted, None); // clean eviction is silent
        assert_eq!(c.probe(0, false), Lookup::Hit);
        assert_eq!(c.probe(2 * 64, false), Lookup::Miss);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0, true); // dirty
        c.fill(2 * 64, false);
        let evicted = c.fill(4 * 64, false); // evicts line 0 (LRU, dirty)
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn write_probe_marks_dirty() {
        let mut c = tiny();
        c.fill(0, false);
        c.probe(0, true); // dirty via store hit
        c.fill(2 * 64, false);
        let evicted = c.fill(4 * 64, false);
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn refill_of_present_line_is_silent() {
        let mut c = tiny();
        c.fill(0, true);
        assert_eq!(c.fill(0, false), None);
        // Dirty bit preserved.
        c.fill(2 * 64, false);
        assert_eq!(c.fill(4 * 64, false), Some(0));
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            line_bytes: 64,
            latency: 1
        })
        .is_err());
    }
}
