//! The trace interface between workload generators and the core model.
//!
//! A trace is an infinite stream of [`TraceOp`]s: a burst of non-memory
//! instructions followed by at most one memory access. The paper drives its
//! cores with 100M-instruction SPEC 2000 sampled traces; our synthetic
//! generators (crate `fqms-workloads`) implement [`TraceSource`] with
//! statistically matched streams.

use fqms_sim::snapshot::{SectionReader, SectionWriter, SnapshotError};

/// One memory reference in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Virtual/physical byte address (the model does no translation).
    pub addr: u64,
    /// True for a store, false for a load.
    pub is_write: bool,
    /// True if this access's address depends on the most recent load
    /// (pointer chasing): the core cannot issue it until that load's data
    /// returns. This is how workloads express limited memory-level
    /// parallelism (the paper's `vpr` has "little memory parallelism").
    pub dependent: bool,
}

/// A trace element: `work` non-memory instructions, then optionally one
/// memory access (which counts as one further instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions preceding the access.
    pub work: u32,
    /// The memory access, if any.
    pub access: Option<MemAccess>,
}

impl TraceOp {
    /// A pure-compute block of `work` instructions.
    pub fn compute(work: u32) -> Self {
        TraceOp { work, access: None }
    }

    /// Total instructions this op contributes.
    pub fn instructions(&self) -> u64 {
        self.work as u64 + u64::from(self.access.is_some())
    }
}

/// An infinite instruction/reference stream feeding one core.
pub trait TraceSource {
    /// Produces the next trace element. Must never terminate (generators
    /// loop or re-seed internally).
    fn next_op(&mut self) -> TraceOp;

    /// Serializes the stream's position for checkpoint/restore
    /// ([`fqms_sim::snapshot`]).
    ///
    /// # Errors
    ///
    /// The default declines with [`SnapshotError::Unsupported`] — a system
    /// containing such a source cannot be checkpointed, but still runs.
    /// Deterministic generators should override both hooks so resumed
    /// runs replay the exact same stream.
    fn save_state(&self, _w: &mut SectionWriter) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported {
            what: "this trace source".into(),
        })
    }

    /// Restores a position written by [`TraceSource::save_state`] into an
    /// identically-constructed source.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] by default; implementations return
    /// decoding errors from the reader.
    fn restore_state(&mut self, _r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported {
            what: "this trace source".into(),
        })
    }
}

/// Blanket impl so closures can serve as quick trace sources in tests.
impl<F: FnMut() -> TraceOp> TraceSource for F {
    fn next_op(&mut self) -> TraceOp {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counting() {
        assert_eq!(TraceOp::compute(7).instructions(), 7);
        let op = TraceOp {
            work: 3,
            access: Some(MemAccess {
                addr: 0,
                is_write: false,
                dependent: false,
            }),
        };
        assert_eq!(op.instructions(), 4);
    }

    #[test]
    fn closures_are_trace_sources() {
        let mut src = || TraceOp::compute(1);
        assert_eq!(TraceSource::next_op(&mut src), TraceOp::compute(1));
    }
}
