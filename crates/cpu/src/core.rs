//! The trace-driven processor core model.
//!
//! A deliberately simplified out-of-order core that preserves exactly the
//! mechanisms this paper's results depend on:
//!
//! * **retirement-limited IPC** — up to `issue_width` instructions retire
//!   per cycle, in order; a load miss at the head of the ROB stalls
//!   retirement until its data returns, so memory latency costs IPC,
//! * **bounded memory-level parallelism** — dispatch may run at most
//!   `rob_size` instructions ahead of retirement and at most `mshrs` load
//!   misses may be outstanding, so latency can only be overlapped up to the
//!   workload's MLP (and `dependent` accesses serialize on the previous
//!   load, modelling pointer chasing),
//! * **private two-level caches** — misses filter through L1/L2 (Table 5
//!   geometry) before reaching the shared memory controller; dirty L2
//!   evictions generate writeback traffic,
//! * **back-pressure** — when the controller NACKs (per-thread buffer
//!   partitions full) dispatch stalls and retries, exactly the paper's
//!   per-thread flow control.
//!
//! Stores are idealized through the L2 store-merge buffer of Table 5: they
//! allocate directly into L2 without a read-for-ownership fetch, so write
//! memory traffic consists of dirty writebacks (documented substitution;
//! see DESIGN.md).

use crate::cache::{Cache, CacheConfig, Lookup};
use crate::trace::{TraceOp, TraceSource};
use fqms_memctrl::controller::Completion;
use fqms_memctrl::port::MemoryPort;
use fqms_memctrl::request::{RequestId, RequestKind, ThreadId};
use fqms_sim::clock::{CpuCycle, DramCycle};
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};
use fqms_sim::stats::Histogram;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Configuration of one core (paper Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Maximum instructions dispatched/retired per cycle.
    pub issue_width: u32,
    /// Reorder-buffer capacity in instructions.
    pub rob_size: u32,
    /// Maximum outstanding load misses (D-cache MSHRs).
    pub mshrs: u32,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Fixed CPU-cycle overhead added to every memory read round trip
    /// (interconnect crossing, controller front-end, return path);
    /// calibrated so the unloaded read latency lands near the paper's
    /// ~180 processor cycles.
    pub memory_overhead: u64,
    /// Writeback queue depth; dispatch of memory ops stalls when full.
    pub writeback_queue: usize,
    /// Next-line prefetch degree: on each demand L2 miss, also fetch the
    /// next `prefetch_degree` sequential lines (0 disables prefetching,
    /// the paper's configuration). Prefetches share the MSHR file and
    /// memory bandwidth with demand misses.
    pub prefetch_degree: u32,
}

impl CoreConfig {
    /// The paper's Table 5 processor configuration.
    pub const fn paper() -> Self {
        CoreConfig {
            issue_width: 8,
            rob_size: 128,
            mshrs: 16,
            l1d: CacheConfig::paper_l1d(),
            l2: CacheConfig::paper_l2(),
            memory_overhead: 96,
            writeback_queue: 16,
            prefetch_degree: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated requirement.
    pub fn validate(&self) -> Result<(), String> {
        if self.issue_width == 0 || self.rob_size == 0 || self.mshrs == 0 {
            return Err("issue width, ROB size, and MSHR count must be non-zero".into());
        }
        if self.writeback_queue == 0 {
            return Err("writeback queue must be non-zero".into());
        }
        self.l1d.validate()?;
        self.l2.validate()?;
        if self.l1d.line_bytes != self.l2.line_bytes {
            return Err("L1 and L2 line sizes must match".into());
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper()
    }
}

/// Execution statistics for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Loads that hit in L1.
    pub l1_hits: u64,
    /// Loads that hit in L2.
    pub l2_hits: u64,
    /// Demand load misses sent to memory (after MSHR coalescing).
    pub mem_reads: u64,
    /// Loads coalesced into an existing MSHR.
    pub coalesced: u64,
    /// Dirty-line writebacks sent to memory.
    pub writebacks: u64,
    /// Cycles dispatch stalled on a full MSHR file or a controller NACK.
    pub backpressure_stall_cycles: u64,
    /// Cycles dispatch stalled on an address dependence (pointer chase).
    pub dependence_stall_cycles: u64,
    /// Sum of load-miss round-trip latencies in CPU cycles.
    pub miss_latency_total: u64,
    /// Number of load-miss round trips measured.
    pub miss_latency_count: u64,
    /// Prefetch requests issued to memory.
    pub prefetches_issued: u64,
    /// Demand loads that hit a line brought in (or in flight) by a
    /// prefetch.
    pub prefetch_hits: u64,
}

impl CoreStats {
    /// Average memory read (load miss) latency in CPU cycles.
    pub fn avg_miss_latency(&self) -> f64 {
        if self.miss_latency_count == 0 {
            0.0
        } else {
            self.miss_latency_total as f64 / self.miss_latency_count as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    count: u32,
    ready_at: CpuCycle,
}

#[derive(Debug, Clone)]
struct OutstandingMiss {
    line: u64,
    entry_seqs: Vec<u64>,
    issued_at: CpuCycle,
    /// True if this request was initiated by the prefetcher (no ROB entry
    /// waits on it and it does not count toward latency statistics unless
    /// a demand load later coalesces onto it).
    is_prefetch: bool,
}

#[derive(Debug, Clone, Copy)]
struct CurrentOp {
    work_left: u32,
    access: Option<crate::trace::MemAccess>,
}

/// A core's second-level cache: private (the paper's configuration) or a
/// handle to a cache shared among cores (an extension used to demonstrate
/// that the FQ *memory* scheduler cannot isolate threads once the cache
/// itself is a contended resource — the paper deliberately gives each core
/// private caches so "the SDRAM memory system is the only shared
/// resource").
#[derive(Debug, Clone)]
pub enum L2Handle {
    /// A private per-core L2.
    Private(Box<Cache>),
    /// A cache shared by several cores (single-threaded simulation, so a
    /// plain `Rc<RefCell>` suffices).
    Shared(Rc<RefCell<Cache>>),
}

impl L2Handle {
    fn probe(&mut self, addr: u64, write: bool) -> Lookup {
        match self {
            L2Handle::Private(c) => c.probe(addr, write),
            L2Handle::Shared(c) => c.borrow_mut().probe(addr, write),
        }
    }

    fn fill(&mut self, addr: u64, write: bool) -> Option<u64> {
        match self {
            L2Handle::Private(c) => c.fill(addr, write),
            L2Handle::Shared(c) => c.borrow_mut().fill(addr, write),
        }
    }
}

/// A trace-driven core attached to a shared memory controller as one
/// hardware thread.
///
/// Drive it by calling [`Core::tick`] once per CPU cycle and routing read
/// [`Completion`]s from the controller back via [`Core::on_completion`].
pub struct Core {
    config: CoreConfig,
    thread: ThreadId,
    trace: Box<dyn TraceSource>,
    l1d: Cache,
    l2: L2Handle,
    rob: VecDeque<RobEntry>,
    rob_insts: u32,
    next_seq: u64,
    current: Option<CurrentOp>,
    outstanding: HashMap<RequestId, OutstandingMiss>,
    mshr_by_line: HashMap<u64, RequestId>,
    last_load_miss: Option<RequestId>,
    writeback_q: VecDeque<u64>,
    retired: u64,
    cycles: u64,
    stats: CoreStats,
    /// Load-miss round-trip latency distribution (CPU cycles; 32-cycle
    /// buckets out to ~8K cycles).
    latency_hist: Histogram,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("thread", &self.thread)
            .field("retired", &self.retired)
            .field("cycles", &self.cycles)
            .field("rob_insts", &self.rob_insts)
            .field("outstanding", &self.outstanding.len())
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core for hardware thread `thread` fed by `trace`.
    ///
    /// # Errors
    ///
    /// Returns a description if the configuration is invalid.
    pub fn new(
        config: CoreConfig,
        thread: ThreadId,
        trace: Box<dyn TraceSource>,
    ) -> Result<Self, String> {
        config.validate()?;
        Ok(Core {
            l1d: Cache::new(config.l1d)?,
            l2: L2Handle::Private(Box::new(Cache::new(config.l2)?)),
            config,
            thread,
            trace,
            rob: VecDeque::new(),
            rob_insts: 0,
            next_seq: 0,
            current: None,
            outstanding: HashMap::new(),
            mshr_by_line: HashMap::new(),
            last_load_miss: None,
            writeback_q: VecDeque::new(),
            retired: 0,
            cycles: 0,
            stats: CoreStats::default(),
            latency_hist: Histogram::new(32, 256),
        })
    }

    /// Creates a core whose L2 is `shared` (see [`L2Handle`]); the
    /// config's `l2` geometry is ignored in favour of the shared cache's.
    ///
    /// # Errors
    ///
    /// Returns a description if the configuration is invalid.
    pub fn with_shared_l2(
        config: CoreConfig,
        thread: ThreadId,
        trace: Box<dyn TraceSource>,
        shared: Rc<RefCell<Cache>>,
    ) -> Result<Self, String> {
        let mut core = Core::new(config, thread, trace)?;
        core.l2 = L2Handle::Shared(shared);
        Ok(core)
    }

    /// This core's hardware thread id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// CPU cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions per cycle so far (0.0 before the first cycle).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The distribution of load-miss round-trip latencies in CPU cycles.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Zeroes the measurement counters (retired instructions, cycles,
    /// statistics) while preserving all microarchitectural state — warm
    /// caches, ROB contents, outstanding misses. Used to exclude warmup
    /// from measurement.
    pub fn reset_stats(&mut self) {
        self.retired = 0;
        self.cycles = 0;
        self.stats = CoreStats::default();
        self.latency_hist = Histogram::new(32, 256);
    }

    /// Functionally warms the cache hierarchy by running `accesses` memory
    /// references from the trace through the caches with no timing — the
    /// equivalent of starting from a sampled trace with warm caches.
    /// Writeback traffic and timing are discarded; the trace simply
    /// advances past its warmup prefix.
    pub fn prewarm_caches(&mut self, accesses: u64) {
        for _ in 0..accesses {
            let acc = loop {
                if let Some(acc) = self.trace.next_op().access {
                    break acc;
                }
            };
            if acc.is_write {
                if self.l2.probe(acc.addr, true) == Lookup::Miss {
                    let _ = self.l2.fill(acc.addr, true);
                }
            } else if self.l1d.probe(acc.addr, false) == Lookup::Miss {
                if self.l2.probe(acc.addr, false) == Lookup::Miss {
                    let _ = self.l2.fill(acc.addr, false);
                }
                let _ = self.l1d.fill(acc.addr, false);
            }
        }
    }

    /// Advances the core by one CPU cycle: retire, drain one writeback,
    /// dispatch. `now_dram` is the DRAM cycle used to timestamp requests
    /// submitted to the controller this CPU cycle.
    pub fn tick<P: MemoryPort>(&mut self, now: CpuCycle, now_dram: DramCycle, mc: &mut P) {
        self.cycles += 1;
        self.retire(now);
        self.drain_writeback(now_dram, mc);
        self.dispatch(now, now_dram, mc);
    }

    /// Delivers a completed read. `data_ready` is the CPU cycle at which
    /// the data becomes usable (burst completion converted to the CPU
    /// domain plus the fixed memory overhead).
    ///
    /// # Panics
    ///
    /// Panics if the completion does not belong to this core or is not a
    /// read.
    pub fn on_completion(&mut self, c: &Completion, data_ready: CpuCycle) {
        assert_eq!(c.thread, self.thread, "completion routed to wrong core");
        assert_eq!(
            c.kind,
            RequestKind::Read,
            "cores only track read completions"
        );
        let miss = self
            .outstanding
            .remove(&c.id)
            .expect("completion for unknown request");
        self.mshr_by_line.remove(&miss.line);
        if self.last_load_miss == Some(c.id) {
            self.last_load_miss = None;
        }
        let demand = !miss.is_prefetch || !miss.entry_seqs.is_empty();
        if demand {
            let latency = data_ready.as_u64() - miss.issued_at.as_u64();
            self.stats.miss_latency_total += latency;
            self.stats.miss_latency_count += 1;
            self.latency_hist.record(latency);
        }
        // Fill the hierarchy; a dirty L2 eviction becomes writeback traffic.
        if let Some(victim) = self.l2.fill(miss.line, false) {
            self.writeback_q.push_back(victim);
            self.stats.writebacks += 1;
        }
        if demand {
            let _ = self.l1d.fill(miss.line, false); // L1 load lines are never dirty
        }
        for seq in &miss.entry_seqs {
            if let Some(e) = self.rob.iter_mut().find(|e| e.seq == *seq) {
                e.ready_at = data_ready;
            }
        }
    }

    fn retire(&mut self, now: CpuCycle) {
        let mut budget = self.config.issue_width;
        while budget > 0 {
            let Some(front) = self.rob.front_mut() else {
                break;
            };
            if front.ready_at > now {
                break;
            }
            let n = budget.min(front.count);
            front.count -= n;
            budget -= n;
            self.retired += n as u64;
            self.rob_insts -= n;
            if front.count == 0 {
                self.rob.pop_front();
            }
        }
    }

    fn drain_writeback<P: MemoryPort>(&mut self, now_dram: DramCycle, mc: &mut P) {
        if let Some(&addr) = self.writeback_q.front() {
            if mc
                .submit(self.thread, RequestKind::Write, addr, now_dram)
                .is_ok()
            {
                self.writeback_q.pop_front();
            }
        }
    }

    fn push_rob(&mut self, count: u32, ready_at: CpuCycle) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.rob.push_back(RobEntry {
            seq,
            count,
            ready_at,
        });
        self.rob_insts += count;
        seq
    }

    fn dispatch<P: MemoryPort>(&mut self, now: CpuCycle, now_dram: DramCycle, mc: &mut P) {
        let mut budget = self.config.issue_width;
        while budget > 0 && self.rob_insts < self.config.rob_size {
            if self.current.is_none() {
                let op: TraceOp = self.trace.next_op();
                self.current = Some(CurrentOp {
                    work_left: op.work,
                    access: op.access,
                });
            }
            let cur = self.current.expect("just ensured");
            if cur.work_left > 0 {
                let n = budget
                    .min(cur.work_left)
                    .min(self.config.rob_size - self.rob_insts);
                self.push_rob(n, now);
                budget -= n;
                self.current = Some(CurrentOp {
                    work_left: cur.work_left - n,
                    access: cur.access,
                });
                continue;
            }
            let Some(acc) = cur.access else {
                self.current = None;
                continue;
            };
            if acc.dependent {
                if let Some(prev) = self.last_load_miss {
                    if self.outstanding.contains_key(&prev) {
                        self.stats.dependence_stall_cycles += 1;
                        break; // pointer chase: wait for the previous load
                    }
                }
            }
            let dispatched = if acc.is_write {
                self.dispatch_store(acc.addr, now)
            } else {
                self.dispatch_load(acc.addr, now, now_dram, mc)
            };
            if !dispatched {
                self.stats.backpressure_stall_cycles += 1;
                break;
            }
            budget -= 1;
            self.current = None;
        }
    }

    /// Stores merge into the private L2 (idealized store-merge buffer):
    /// no read-for-ownership; dirty evictions become writebacks.
    fn dispatch_store(&mut self, addr: u64, now: CpuCycle) -> bool {
        if self.writeback_q.len() >= self.config.writeback_queue {
            return false;
        }
        self.stats.stores += 1;
        match self.l2.probe(addr, true) {
            Lookup::Hit => {}
            Lookup::Miss => {
                if let Some(victim) = self.l2.fill(addr, true) {
                    self.writeback_q.push_back(victim);
                    self.stats.writebacks += 1;
                }
            }
        }
        // Keep L1 coherent-ish: if the line is resident in L1, refresh it.
        let _ = self.l1d.probe(addr, false);
        self.push_rob(1, now);
        true
    }

    fn dispatch_load<P: MemoryPort>(
        &mut self,
        addr: u64,
        now: CpuCycle,
        now_dram: DramCycle,
        mc: &mut P,
    ) -> bool {
        let line = addr & !(self.config.l1d.line_bytes - 1);
        // Probe L1.
        if self.l1d.probe(addr, false) == Lookup::Hit {
            self.stats.loads += 1;
            self.stats.l1_hits += 1;
            self.push_rob(1, now + self.config.l1d.latency);
            return true;
        }
        // Probe L2.
        if self.l2.probe(addr, false) == Lookup::Hit {
            self.stats.loads += 1;
            self.stats.l2_hits += 1;
            let _ = self.l1d.fill(line, false);
            self.push_rob(1, now + self.config.l2.latency);
            return true;
        }
        // Memory. Coalesce into an existing MSHR if the line is in flight.
        if let Some(&req) = self.mshr_by_line.get(&line) {
            self.stats.loads += 1;
            self.stats.coalesced += 1;
            let seq = self.push_rob(1, CpuCycle::MAX);
            let miss = self.outstanding.get_mut(&req).expect("mshr map consistent");
            if miss.is_prefetch {
                self.stats.prefetch_hits += 1;
            }
            miss.entry_seqs.push(seq);
            self.last_load_miss = Some(req);
            return true;
        }
        if self.mshr_by_line.len() >= self.config.mshrs as usize {
            return false; // all MSHRs busy
        }
        match mc.submit(self.thread, RequestKind::Read, addr, now_dram) {
            Ok(req) => {
                self.stats.loads += 1;
                self.stats.mem_reads += 1;
                let seq = self.push_rob(1, CpuCycle::MAX);
                self.outstanding.insert(
                    req,
                    OutstandingMiss {
                        line,
                        entry_seqs: vec![seq],
                        issued_at: now,
                        is_prefetch: false,
                    },
                );
                self.mshr_by_line.insert(line, req);
                self.last_load_miss = Some(req);
                self.issue_prefetches(line, now, now_dram, mc);
                true
            }
            Err(_) => false, // NACK: retry next cycle
        }
    }

    /// Serializes the core's full microarchitectural state — caches, ROB,
    /// outstanding misses, writeback queue, counters, and the trace
    /// position — for checkpoint/restore ([`fqms_sim::snapshot`]).
    ///
    /// This is a fallible method rather than a [`Snapshot`] impl because
    /// the trace source may decline ([`TraceSource::save_state`]) and a
    /// shared L2 belongs to no single core.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] if the L2 is shared or the trace
    /// source does not implement state capture.
    pub fn save_state(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        w.put_u32(self.thread.as_u32());
        self.l1d.save(w);
        match &self.l2 {
            L2Handle::Private(c) => c.save(w),
            L2Handle::Shared(_) => {
                return Err(SnapshotError::Unsupported {
                    what: "a core with a shared L2".into(),
                })
            }
        }
        w.put_seq_len(self.rob.len());
        for e in &self.rob {
            w.put_u64(e.seq);
            w.put_u32(e.count);
            w.put_u64(e.ready_at.as_u64());
        }
        w.put_u64(self.next_seq);
        match self.current {
            None => w.put_bool(false),
            Some(cur) => {
                w.put_bool(true);
                w.put_u32(cur.work_left);
                match cur.access {
                    None => w.put_bool(false),
                    Some(a) => {
                        w.put_bool(true);
                        w.put_u64(a.addr);
                        w.put_bool(a.is_write);
                        w.put_bool(a.dependent);
                    }
                }
            }
        }
        // HashMap iteration order is nondeterministic; sort by request id so
        // identical states always produce identical bytes.
        let mut misses: Vec<(&RequestId, &OutstandingMiss)> = self.outstanding.iter().collect();
        misses.sort_by_key(|(id, _)| id.as_u64());
        w.put_seq_len(misses.len());
        for (id, m) in misses {
            w.put_u64(id.as_u64());
            w.put_u64(m.line);
            w.put_seq_len(m.entry_seqs.len());
            for s in &m.entry_seqs {
                w.put_u64(*s);
            }
            w.put_u64(m.issued_at.as_u64());
            w.put_bool(m.is_prefetch);
        }
        w.put_opt_u64(self.last_load_miss.map(|id| id.as_u64()));
        w.put_seq_len(self.writeback_q.len());
        for addr in &self.writeback_q {
            w.put_u64(*addr);
        }
        w.put_u64(self.retired);
        w.put_u64(self.cycles);
        let s = &self.stats;
        for v in [
            s.loads,
            s.stores,
            s.l1_hits,
            s.l2_hits,
            s.mem_reads,
            s.coalesced,
            s.writebacks,
            s.backpressure_stall_cycles,
            s.dependence_stall_cycles,
            s.miss_latency_total,
            s.miss_latency_count,
            s.prefetches_issued,
            s.prefetch_hits,
        ] {
            w.put_u64(v);
        }
        self.latency_hist.save(w);
        self.trace.save_state(w)
    }

    /// Restores state written by [`Core::save_state`] into an
    /// identically-configured core. `mshr_by_line` and `rob_insts` are
    /// derived from the restored structures rather than deserialized.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from decoding, including
    /// [`SnapshotError::Malformed`] when the snapshot disagrees with this
    /// core's configuration (thread id, cache geometry, capacities).
    pub fn restore_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let thread = r.get_u32()?;
        if thread != self.thread.as_u32() {
            return Err(r.malformed(format!(
                "snapshot is for thread {thread}, core is thread {}",
                self.thread.as_u32()
            )));
        }
        self.l1d.restore(r)?;
        match &mut self.l2 {
            L2Handle::Private(c) => c.restore(r)?,
            L2Handle::Shared(_) => {
                return Err(SnapshotError::Unsupported {
                    what: "a core with a shared L2".into(),
                })
            }
        }
        let nrob = r.seq_len()?;
        self.rob.clear();
        self.rob_insts = 0;
        for _ in 0..nrob {
            let entry = RobEntry {
                seq: r.get_u64()?,
                count: r.get_u32()?,
                ready_at: CpuCycle::new(r.get_u64()?),
            };
            self.rob_insts = self
                .rob_insts
                .checked_add(entry.count)
                .filter(|n| *n <= self.config.rob_size)
                .ok_or_else(|| r.malformed("ROB contents exceed configured capacity"))?;
            self.rob.push_back(entry);
        }
        self.next_seq = r.get_u64()?;
        self.current = if r.get_bool()? {
            let work_left = r.get_u32()?;
            let access = if r.get_bool()? {
                Some(crate::trace::MemAccess {
                    addr: r.get_u64()?,
                    is_write: r.get_bool()?,
                    dependent: r.get_bool()?,
                })
            } else {
                None
            };
            Some(CurrentOp { work_left, access })
        } else {
            None
        };
        let nmiss = r.seq_len()?;
        if nmiss > self.config.mshrs as usize {
            return Err(r.malformed(format!(
                "{nmiss} outstanding misses exceed {} MSHRs",
                self.config.mshrs
            )));
        }
        self.outstanding.clear();
        self.mshr_by_line.clear();
        for _ in 0..nmiss {
            let id = RequestId::new(r.get_u64()?);
            let line = r.get_u64()?;
            let nseq = r.seq_len()?;
            let mut entry_seqs = Vec::with_capacity(nseq);
            for _ in 0..nseq {
                entry_seqs.push(r.get_u64()?);
            }
            let issued_at = CpuCycle::new(r.get_u64()?);
            let is_prefetch = r.get_bool()?;
            if self.mshr_by_line.insert(line, id).is_some() {
                return Err(r.malformed(format!("duplicate MSHR for line {line:#x}")));
            }
            self.outstanding.insert(
                id,
                OutstandingMiss {
                    line,
                    entry_seqs,
                    issued_at,
                    is_prefetch,
                },
            );
        }
        self.last_load_miss = r.get_opt_u64()?.map(RequestId::new);
        let nwb = r.seq_len()?;
        if nwb > self.config.writeback_queue {
            return Err(r.malformed(format!(
                "{nwb} queued writebacks exceed depth {}",
                self.config.writeback_queue
            )));
        }
        self.writeback_q.clear();
        for _ in 0..nwb {
            self.writeback_q.push_back(r.get_u64()?);
        }
        self.retired = r.get_u64()?;
        self.cycles = r.get_u64()?;
        self.stats = CoreStats {
            loads: r.get_u64()?,
            stores: r.get_u64()?,
            l1_hits: r.get_u64()?,
            l2_hits: r.get_u64()?,
            mem_reads: r.get_u64()?,
            coalesced: r.get_u64()?,
            writebacks: r.get_u64()?,
            backpressure_stall_cycles: r.get_u64()?,
            dependence_stall_cycles: r.get_u64()?,
            miss_latency_total: r.get_u64()?,
            miss_latency_count: r.get_u64()?,
            prefetches_issued: r.get_u64()?,
            prefetch_hits: r.get_u64()?,
        };
        self.latency_hist.restore(r)?;
        self.trace.restore_state(r)
    }

    /// Next-line prefetcher: after a demand miss to `line`, speculatively
    /// fetch the following `prefetch_degree` lines. Best effort: stops at
    /// the first resource limit (present line, busy MSHRs, NACK).
    fn issue_prefetches<P: MemoryPort>(
        &mut self,
        line: u64,
        now: CpuCycle,
        now_dram: DramCycle,
        mc: &mut P,
    ) {
        for k in 1..=self.config.prefetch_degree as u64 {
            let target = line + k * self.config.l1d.line_bytes;
            if self.mshr_by_line.contains_key(&target)
                || self.l2.probe(target, false) == Lookup::Hit
            {
                continue;
            }
            if self.mshr_by_line.len() >= self.config.mshrs as usize {
                return;
            }
            let Ok(req) = mc.submit(self.thread, RequestKind::Read, target, now_dram) else {
                return;
            };
            self.stats.prefetches_issued += 1;
            self.outstanding.insert(
                req,
                OutstandingMiss {
                    line: target,
                    entry_seqs: Vec::new(),
                    issued_at: now,
                    is_prefetch: true,
                },
            );
            self.mshr_by_line.insert(target, req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemAccess;
    use fqms_dram::device::Geometry;
    use fqms_dram::timing::TimingParams;
    use fqms_memctrl::config::McConfig;
    use fqms_memctrl::policy::SchedulerKind;

    fn mc() -> fqms_memctrl::controller::MemoryController {
        fqms_memctrl::controller::MemoryController::new(
            McConfig::paper(1, SchedulerKind::FrFcfs),
            Geometry::paper(),
            TimingParams::ddr2_800(),
        )
        .unwrap()
    }

    /// Runs a core + controller for `cpu_cycles` at ratio 5.
    fn run(core: &mut Core, mc: &mut fqms_memctrl::controller::MemoryController, cpu_cycles: u64) {
        let ratio = 5;
        let overhead = core.config.memory_overhead;
        for dram_c in 1..=(cpu_cycles / ratio) {
            let now_dram = DramCycle::new(dram_c);
            for sub in 0..ratio {
                let now_cpu = CpuCycle::new(dram_c * ratio + sub);
                core.tick(now_cpu, now_dram, mc);
            }
            for c in mc.step(now_dram) {
                if c.kind == RequestKind::Read {
                    let ready = CpuCycle::new(c.finish.as_u64() * ratio + overhead);
                    core.on_completion(&c, ready);
                }
            }
        }
    }

    #[test]
    fn pure_compute_reaches_issue_width_ipc() {
        let mut core = Core::new(
            CoreConfig::paper(),
            ThreadId::new(0),
            Box::new(|| TraceOp::compute(64)),
        )
        .unwrap();
        let mut mc = mc();
        run(&mut core, &mut mc, 10_000);
        assert!(core.ipc() > 7.8, "ipc was {}", core.ipc());
    }

    #[test]
    fn cache_resident_loads_dont_touch_memory() {
        // A tiny working set: after warmup everything hits in L1.
        let mut i = 0u64;
        let trace = move || {
            i += 1;
            TraceOp {
                work: 3,
                access: Some(MemAccess {
                    addr: (i % 16) * 64,
                    is_write: false,
                    dependent: false,
                }),
            }
        };
        let mut core = Core::new(CoreConfig::paper(), ThreadId::new(0), Box::new(trace)).unwrap();
        let mut mc = mc();
        run(&mut core, &mut mc, 50_000);
        let s = *core.stats();
        assert!(s.l1_hits > 0);
        assert!(s.mem_reads <= 16, "only compulsory misses: {}", s.mem_reads);
        assert!(core.ipc() > 3.0, "ipc was {}", core.ipc());
    }

    #[test]
    fn streaming_misses_overlap_with_mlp() {
        // Independent sequential misses: IPC should stay reasonable because
        // misses overlap (MLP), despite every line coming from memory.
        let mut i = 0u64;
        let trace = move || {
            i += 1;
            TraceOp {
                work: 7,
                access: Some(MemAccess {
                    addr: i * 64,
                    is_write: false,
                    dependent: false,
                }),
            }
        };
        let mut core = Core::new(CoreConfig::paper(), ThreadId::new(0), Box::new(trace)).unwrap();
        let mut mc = mc();
        run(&mut core, &mut mc, 100_000);
        assert!(core.stats().mem_reads > 100);
        let mlp_ipc = core.ipc();

        // Same stream but fully dependent: IPC should collapse.
        let mut j = 0u64;
        let dep_trace = move || {
            j += 1;
            TraceOp {
                work: 7,
                access: Some(MemAccess {
                    addr: j * 64,
                    is_write: false,
                    dependent: true,
                }),
            }
        };
        let mut dep_core =
            Core::new(CoreConfig::paper(), ThreadId::new(0), Box::new(dep_trace)).unwrap();
        let mut mc2 = self::tests::mc();
        run(&mut dep_core, &mut mc2, 100_000);
        assert!(
            dep_core.ipc() < mlp_ipc / 2.0,
            "dependent {} vs mlp {}",
            dep_core.ipc(),
            mlp_ipc
        );
        assert!(dep_core.stats().dependence_stall_cycles > 0);
    }

    #[test]
    fn stores_generate_writeback_traffic() {
        // Stream of stores over a footprint larger than L2: dirty evictions
        // must reach memory as writes.
        let mut i = 0u64;
        let trace = move || {
            i += 1;
            TraceOp {
                work: 3,
                access: Some(MemAccess {
                    addr: (i * 64) % (4 * 1024 * 1024),
                    is_write: true,
                    dependent: false,
                }),
            }
        };
        let mut core = Core::new(CoreConfig::paper(), ThreadId::new(0), Box::new(trace)).unwrap();
        let mut mc = mc();
        run(&mut core, &mut mc, 200_000);
        assert!(
            core.stats().writebacks > 100,
            "writebacks: {}",
            core.stats().writebacks
        );
        assert!(mc.stats().thread(ThreadId::new(0)).writes_completed > 50);
    }

    #[test]
    fn mshr_coalescing_merges_same_line() {
        // Two loads to the same (missing) line back to back: one memory
        // read, two instructions completed.
        let mut n = 0;
        let trace = move || {
            n += 1;
            if n <= 2 {
                TraceOp {
                    work: 0,
                    access: Some(MemAccess {
                        addr: 0x100000 + (n % 2) * 8,
                        is_write: false,
                        dependent: false,
                    }),
                }
            } else {
                TraceOp::compute(1)
            }
        };
        let mut core = Core::new(CoreConfig::paper(), ThreadId::new(0), Box::new(trace)).unwrap();
        let mut mcc = mc();
        run(&mut core, &mut mcc, 5_000);
        assert_eq!(core.stats().mem_reads, 1);
        assert_eq!(core.stats().coalesced, 1);
    }

    #[test]
    fn next_line_prefetcher_helps_sequential_streams() {
        let run_with = |degree: u32| {
            let mut i = 0u64;
            let trace = move || {
                i += 1;
                TraceOp {
                    work: 7,
                    access: Some(MemAccess {
                        addr: i * 64,
                        is_write: false,
                        dependent: true, // serialize so latency dominates
                    }),
                }
            };
            let mut cfg = CoreConfig::paper();
            cfg.prefetch_degree = degree;
            let mut core = Core::new(cfg, ThreadId::new(0), Box::new(trace)).unwrap();
            let mut mcc = mc();
            run(&mut core, &mut mcc, 150_000);
            (core.ipc(), *core.stats())
        };
        let (ipc_off, s_off) = run_with(0);
        let (ipc_on, s_on) = run_with(2);
        assert_eq!(s_off.prefetches_issued, 0);
        assert!(s_on.prefetches_issued > 100, "{s_on:?}");
        assert!(s_on.prefetch_hits > 100, "{s_on:?}");
        assert!(
            ipc_on > 1.3 * ipc_off,
            "prefetching should help a dependent stream: {ipc_on} vs {ipc_off}"
        );
    }

    #[test]
    fn unloaded_latency_near_paper_value() {
        // Dependent pointer chase on an idle memory system: the measured
        // round-trip should land near the paper's ~180 processor cycles.
        let mut i = 0u64;
        let trace = move || {
            i += 1;
            TraceOp {
                work: 0,
                access: Some(MemAccess {
                    addr: i * 8192, // new row every time: closed-bank accesses
                    is_write: false,
                    dependent: true,
                }),
            }
        };
        let mut core = Core::new(CoreConfig::paper(), ThreadId::new(0), Box::new(trace)).unwrap();
        let mut mcc = mc();
        run(&mut core, &mut mcc, 100_000);
        let lat = core.stats().avg_miss_latency();
        assert!(
            (150.0..220.0).contains(&lat),
            "unloaded latency {lat} outside the calibrated window"
        );
    }

    #[test]
    fn rob_never_exceeds_capacity() {
        let mut i = 0u64;
        let trace = move || {
            i += 1;
            TraceOp {
                work: 15,
                access: Some(MemAccess {
                    addr: i * 64,
                    is_write: false,
                    dependent: false,
                }),
            }
        };
        let mut core = Core::new(CoreConfig::paper(), ThreadId::new(0), Box::new(trace)).unwrap();
        let mut mcc = mc();
        let ratio = 5;
        for dram_c in 1..=2_000u64 {
            let now_dram = DramCycle::new(dram_c);
            for sub in 0..ratio {
                core.tick(CpuCycle::new(dram_c * ratio + sub), now_dram, &mut mcc);
                assert!(core.rob_insts <= core.config.rob_size);
            }
            for c in mcc.step(now_dram) {
                if c.kind == RequestKind::Read {
                    core.on_completion(&c, CpuCycle::new(c.finish.as_u64() * ratio + 96));
                }
            }
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = CoreConfig::paper();
        cfg.issue_width = 0;
        assert!(Core::new(cfg, ThreadId::new(0), Box::new(|| TraceOp::compute(1))).is_err());
    }

    /// A deterministic snapshottable trace for checkpoint tests: strided
    /// loads with every fourth access a store.
    #[derive(Debug, Clone)]
    struct StridedTrace {
        i: u64,
    }

    impl TraceSource for StridedTrace {
        fn next_op(&mut self) -> TraceOp {
            self.i += 1;
            TraceOp {
                work: (self.i % 11) as u32,
                access: Some(MemAccess {
                    addr: (self.i * 192) % (8 * 1024 * 1024),
                    is_write: self.i.is_multiple_of(4),
                    dependent: self.i.is_multiple_of(7),
                }),
            }
        }

        fn save_state(
            &self,
            w: &mut fqms_sim::snapshot::SectionWriter,
        ) -> Result<(), fqms_sim::snapshot::SnapshotError> {
            w.put_u64(self.i);
            Ok(())
        }

        fn restore_state(
            &mut self,
            r: &mut fqms_sim::snapshot::SectionReader<'_>,
        ) -> Result<(), fqms_sim::snapshot::SnapshotError> {
            self.i = r.get_u64()?;
            Ok(())
        }
    }

    /// Like `run`, but over an explicit DRAM-cycle window so a restored
    /// pair can continue exactly where the snapshot was taken.
    fn run_range(
        core: &mut Core,
        mc: &mut fqms_memctrl::controller::MemoryController,
        from_dram: u64,
        to_dram: u64,
    ) {
        let ratio = 5;
        let overhead = core.config.memory_overhead;
        for dram_c in (from_dram + 1)..=to_dram {
            let now_dram = DramCycle::new(dram_c);
            for sub in 0..ratio {
                core.tick(CpuCycle::new(dram_c * ratio + sub), now_dram, mc);
            }
            for c in mc.step(now_dram) {
                if c.kind == RequestKind::Read {
                    let ready = CpuCycle::new(c.finish.as_u64() * ratio + overhead);
                    core.on_completion(&c, ready);
                }
            }
        }
    }

    #[test]
    fn core_snapshot_roundtrip_is_bit_identical() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let build = || {
            let core = Core::new(
                CoreConfig::paper(),
                ThreadId::new(0),
                Box::new(StridedTrace { i: 0 }),
            )
            .unwrap();
            (core, mc())
        };

        // Reference: uninterrupted run over 8k DRAM cycles.
        let (mut ref_core, mut ref_mc) = build();
        run_range(&mut ref_core, &mut ref_mc, 0, 8_000);

        // Snapshot at 4k DRAM cycles, restore into fresh instances, finish.
        let (mut core, mut mcc) = build();
        run_range(&mut core, &mut mcc, 0, 4_000);
        let mut w = SnapshotWriter::new(5);
        let mut saved = Ok(());
        w.section("core", |s| saved = core.save_state(s));
        saved.unwrap();
        w.section("mc", |s| mcc.save(s));
        let bytes = w.into_bytes();
        drop((core, mcc));

        let (mut core2, mut mc2) = build();
        let mut r = SnapshotReader::new(&bytes, 5).unwrap();
        r.section("core", |s| core2.restore_state(s)).unwrap();
        r.section("mc", |s| mc2.restore(s)).unwrap();
        r.finish().unwrap();
        run_range(&mut core2, &mut mc2, 4_000, 8_000);

        assert_eq!(core2.retired(), ref_core.retired());
        assert_eq!(core2.cycles(), ref_core.cycles());
        assert_eq!(core2.stats(), ref_core.stats());
        assert_eq!(
            core2.latency_histogram().count(),
            ref_core.latency_histogram().count()
        );
        assert_eq!(
            core2.latency_histogram().sum(),
            ref_core.latency_histogram().sum()
        );
    }

    #[test]
    fn shared_l2_and_closure_traces_decline_snapshot() {
        use fqms_sim::snapshot::{SnapshotError, SnapshotWriter};
        let shared = Rc::new(RefCell::new(Cache::new(CacheConfig::paper_l2()).unwrap()));
        let core = Core::with_shared_l2(
            CoreConfig::paper(),
            ThreadId::new(0),
            Box::new(StridedTrace { i: 0 }),
            shared,
        )
        .unwrap();
        let mut w = SnapshotWriter::new(1);
        let mut res = Ok(());
        w.section("core", |s| res = core.save_state(s));
        assert!(matches!(res, Err(SnapshotError::Unsupported { .. })));

        let closure_core = Core::new(
            CoreConfig::paper(),
            ThreadId::new(0),
            Box::new(|| TraceOp::compute(1)),
        )
        .unwrap();
        let mut w2 = SnapshotWriter::new(1);
        let mut res2 = Ok(());
        w2.section("core", |s| res2 = closure_core.save_state(s));
        assert!(matches!(res2, Err(SnapshotError::Unsupported { .. })));
    }

    #[test]
    fn core_restore_rejects_wrong_thread() {
        use fqms_sim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
        let core = Core::new(
            CoreConfig::paper(),
            ThreadId::new(0),
            Box::new(StridedTrace { i: 0 }),
        )
        .unwrap();
        let mut w = SnapshotWriter::new(1);
        let mut saved = Ok(());
        w.section("core", |s| saved = core.save_state(s));
        saved.unwrap();
        let bytes = w.into_bytes();
        let mut other = Core::new(
            CoreConfig::paper(),
            ThreadId::new(1),
            Box::new(StridedTrace { i: 0 }),
        )
        .unwrap();
        let mut r = SnapshotReader::new(&bytes, 1).unwrap();
        let err = r.section("core", |s| other.restore_state(s)).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }
}
