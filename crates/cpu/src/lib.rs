//! Trace-driven processor model for the Fair Queuing Memory Systems
//! reproduction.
//!
//! Provides the paper's Table 5 processor substrate: an issue-width- and
//! ROB-limited core ([`core::Core`]) with private L1/L2 caches
//! ([`cache::Cache`]), MSHR-limited memory-level parallelism, and dirty
//! writeback traffic, fed by an abstract instruction/reference stream
//! ([`trace::TraceSource`]). Cores attach to a shared
//! [`fqms_memctrl::controller::MemoryController`] as hardware threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod core;
pub mod trace;

/// Convenient re-exports of the crate's primary types.
pub mod prelude {
    pub use crate::cache::{Cache, CacheConfig, Lookup};
    pub use crate::core::{Core, CoreConfig, CoreStats, L2Handle};
    pub use crate::trace::{MemAccess, TraceOp, TraceSource};
}

pub use prelude::*;
