//! Differential property tests for the cache model: the set-associative
//! LRU cache must agree with a naive reference implementation (per-set
//! ordered lists) on hit/miss outcomes and dirty-eviction addresses for
//! arbitrary access sequences.

use fqms_cpu::cache::{Cache, CacheConfig, Lookup};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A deliberately simple reference model: per set, an LRU-ordered deque of
/// (tag, dirty) with most-recently-used at the back.
struct RefCache {
    cfg: CacheConfig,
    sets: Vec<VecDeque<(u64, bool)>>,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![VecDeque::new(); cfg.sets() as usize],
            cfg,
        }
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        ((line % self.cfg.sets()) as usize, line / self.cfg.sets())
    }

    fn probe(&mut self, addr: u64, write: bool) -> bool {
        let (set, tag) = self.index_tag(addr);
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&(t, _)| t == tag) {
            let (t, d) = s.remove(pos).unwrap();
            s.push_back((t, d || write));
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64, write: bool) -> Option<u64> {
        let (set, tag) = self.index_tag(addr);
        let sets_count = self.cfg.sets();
        let line_bytes = self.cfg.line_bytes;
        let ways = self.cfg.ways as usize;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&(t, _)| t == tag) {
            let (t, d) = s.remove(pos).unwrap();
            s.push_back((t, d || write));
            return None;
        }
        let mut evicted = None;
        if s.len() >= ways {
            let (vt, vd) = s.pop_front().unwrap();
            if vd {
                evicted = Some((vt * sets_count + set as u64) * line_bytes);
            }
        }
        s.push_back((tag, write));
        evicted
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random probe/fill sequences produce identical hit/miss outcomes and
    /// identical dirty writebacks in both implementations.
    #[test]
    fn cache_matches_reference_model(
        ops in prop::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..400)
    ) {
        let cfg = CacheConfig {
            size_bytes: 1024, // 4 sets x 4 ways
            ways: 4,
            line_bytes: 64,
            latency: 1,
        };
        let mut cache = Cache::new(cfg).unwrap();
        let mut reference = RefCache::new(cfg);
        for (i, &(line, write, do_fill)) in ops.iter().enumerate() {
            let addr = line * 64;
            if do_fill {
                let a = cache.fill(addr, write);
                let b = reference.fill(addr, write);
                prop_assert_eq!(a, b, "fill divergence at op {}", i);
            } else {
                let a = cache.probe(addr, write) == Lookup::Hit;
                let b = reference.probe(addr, write);
                prop_assert_eq!(a, b, "probe divergence at op {}", i);
            }
        }
    }

    /// Capacity invariant: a footprint that fits is fully resident after
    /// one pass, whatever the access order.
    #[test]
    fn fitting_footprint_is_fully_resident(mut lines in prop::collection::vec(0u64..16, 16..64)) {
        let cfg = CacheConfig {
            size_bytes: 1024, // holds exactly 16 lines
            ways: 4,
            line_bytes: 64,
            latency: 1,
        };
        let mut cache = Cache::new(cfg).unwrap();
        lines.extend(0..16); // make sure every line appears at least once
        for &l in &lines {
            if cache.probe(l * 64, false) == Lookup::Miss {
                cache.fill(l * 64, false);
            }
        }
        for l in 0..16u64 {
            prop_assert_eq!(cache.probe(l * 64, false), Lookup::Hit, "line {} evicted", l);
        }
    }
}
