//! Differential tests for the cache model: the set-associative LRU cache
//! must agree with a naive reference implementation (per-set ordered
//! lists) on hit/miss outcomes and dirty-eviction addresses for random
//! access sequences.
//!
//! Randomness comes from the in-tree deterministic [`fqms_sim::rng::SimRng`]
//! with fixed seeds, so the build stays hermetic (no external `proptest`
//! dependency) and every run explores exactly the same cases.

use fqms_cpu::cache::{Cache, CacheConfig, Lookup};
use fqms_sim::rng::SimRng;
use std::collections::VecDeque;

/// A deliberately simple reference model: per set, an LRU-ordered deque of
/// (tag, dirty) with most-recently-used at the back.
struct RefCache {
    cfg: CacheConfig,
    sets: Vec<VecDeque<(u64, bool)>>,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![VecDeque::new(); cfg.sets() as usize],
            cfg,
        }
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        ((line % self.cfg.sets()) as usize, line / self.cfg.sets())
    }

    fn probe(&mut self, addr: u64, write: bool) -> bool {
        let (set, tag) = self.index_tag(addr);
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&(t, _)| t == tag) {
            let (t, d) = s.remove(pos).unwrap();
            s.push_back((t, d || write));
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64, write: bool) -> Option<u64> {
        let (set, tag) = self.index_tag(addr);
        let sets_count = self.cfg.sets();
        let line_bytes = self.cfg.line_bytes;
        let ways = self.cfg.ways as usize;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&(t, _)| t == tag) {
            let (t, d) = s.remove(pos).unwrap();
            s.push_back((t, d || write));
            return None;
        }
        let mut evicted = None;
        if s.len() >= ways {
            let (vt, vd) = s.pop_front().unwrap();
            if vd {
                evicted = Some((vt * sets_count + set as u64) * line_bytes);
            }
        }
        s.push_back((tag, write));
        evicted
    }
}

/// Random probe/fill sequences produce identical hit/miss outcomes and
/// identical dirty writebacks in both implementations.
#[test]
fn cache_matches_reference_model() {
    for case in 0..64u64 {
        let mut rng = SimRng::new(0xC_AC4E_0000 + case);
        let cfg = CacheConfig {
            size_bytes: 1024, // 4 sets x 4 ways
            ways: 4,
            line_bytes: 64,
            latency: 1,
        };
        let mut cache = Cache::new(cfg).unwrap();
        let mut reference = RefCache::new(cfg);
        let ops = 1 + rng.next_below(400) as usize;
        for i in 0..ops {
            let line = rng.next_below(64);
            let write = rng.chance(0.5);
            let do_fill = rng.chance(0.5);
            let addr = line * 64;
            if do_fill {
                let a = cache.fill(addr, write);
                let b = reference.fill(addr, write);
                assert_eq!(a, b, "fill divergence at case {case} op {i}");
            } else {
                let a = cache.probe(addr, write) == Lookup::Hit;
                let b = reference.probe(addr, write);
                assert_eq!(a, b, "probe divergence at case {case} op {i}");
            }
        }
    }
}

/// Capacity invariant: a footprint that fits is fully resident after one
/// pass, whatever the access order.
#[test]
fn fitting_footprint_is_fully_resident() {
    for case in 0..64u64 {
        let mut rng = SimRng::new(0xF007_0000 + case);
        let cfg = CacheConfig {
            size_bytes: 1024, // holds exactly 16 lines
            ways: 4,
            line_bytes: 64,
            latency: 1,
        };
        let mut cache = Cache::new(cfg).unwrap();
        let extra = 16 + rng.next_below(48) as usize;
        let mut lines: Vec<u64> = (0..extra).map(|_| rng.next_below(16)).collect();
        lines.extend(0..16); // make sure every line appears at least once
        for &l in &lines {
            if cache.probe(l * 64, false) == Lookup::Miss {
                cache.fill(l * 64, false);
            }
        }
        for l in 0..16u64 {
            assert_eq!(
                cache.probe(l * 64, false),
                Lookup::Hit,
                "case {case}: line {l} evicted"
            );
        }
    }
}
