//! Synthetic SPEC-2000-like workloads for the Fair Queuing Memory Systems
//! reproduction.
//!
//! The paper's evaluation drives its cores with twenty proprietary SPEC
//! 2000 sampled traces. This crate substitutes parametric synthetic
//! streams: [`profile::WorkloadProfile`] captures the statistics that
//! matter to a memory scheduler (intensity, footprint, row locality,
//! dependence/MLP, write fraction), [`generator::SyntheticTrace`] turns a
//! profile into a deterministic instruction/reference stream, and
//! [`spec::SPEC_PROFILES`] provides the twenty tuned, named profiles in
//! Figure 4 order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod patterns;
pub mod profile;
pub mod spec;
pub mod tracefile;

/// Convenient re-exports of the crate's primary types.
pub mod prelude {
    pub use crate::generator::{SyntheticTrace, THREAD_REGION_BYTES};
    pub use crate::patterns::{
        DelayedStart, PhaseMix, PointerChase, RandomScatter, RecordedTrace, SequentialStream,
    };
    pub use crate::profile::WorkloadProfile;
    pub use crate::spec::{by_name, four_core_workloads, SPEC_PROFILES};
    pub use crate::tracefile::{read_trace, write_trace};
}

pub use prelude::*;
