//! Composable access-pattern primitives.
//!
//! Besides the statistical profiles of [`crate::profile`], experiments
//! sometimes need *exact* access patterns — a pure sequential stream, a
//! uniform random scatter, a pointer chase, or a phase-alternating mix.
//! These generators implement [`TraceSource`] directly and are used by
//! microbenchmark-style tests and the scheduler stress harness.

use fqms_cpu::trace::{MemAccess, TraceOp, TraceSource};
use fqms_sim::rng::SimRng;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// A perfectly sequential read stream: one load every `work + 1`
/// instructions walking cache lines in order over `footprint_bytes`.
///
/// # Example
///
/// ```
/// use fqms_workloads::patterns::SequentialStream;
/// use fqms_cpu::trace::TraceSource;
///
/// let mut s = SequentialStream::new(0, 1 << 20, 3);
/// let a = s.next_op().access.unwrap().addr;
/// let b = s.next_op().access.unwrap().addr;
/// assert_eq!(b - a, 64);
/// ```
#[derive(Debug, Clone)]
pub struct SequentialStream {
    base: u64,
    lines: u64,
    cur: u64,
    work: u32,
}

impl SequentialStream {
    /// Creates a stream over `[base, base + footprint_bytes)` with `work`
    /// compute instructions between loads.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one cache line.
    pub fn new(base: u64, footprint_bytes: u64, work: u32) -> Self {
        assert!(
            footprint_bytes >= 64,
            "footprint must hold at least one line"
        );
        SequentialStream {
            base,
            lines: footprint_bytes / 64,
            cur: 0,
            work,
        }
    }
}

impl TraceSource for SequentialStream {
    fn next_op(&mut self) -> TraceOp {
        let addr = self.base + self.cur * 64;
        self.cur = (self.cur + 1) % self.lines;
        TraceOp {
            work: self.work,
            access: Some(MemAccess {
                addr,
                is_write: false,
                dependent: false,
            }),
        }
    }

    fn save_state(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        w.put_u64(self.cur);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let cur = r.get_u64()?;
        if cur >= self.lines {
            return Err(r.malformed(format!(
                "position {cur} outside footprint of {} lines",
                self.lines
            )));
        }
        self.cur = cur;
        Ok(())
    }
}

/// Uniform random loads over a footprint (bank- and row-hostile).
#[derive(Debug, Clone)]
pub struct RandomScatter {
    base: u64,
    lines: u64,
    work: u32,
    rng: SimRng,
}

impl RandomScatter {
    /// Creates a scatter stream over `[base, base + footprint_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one cache line.
    pub fn new(base: u64, footprint_bytes: u64, work: u32, seed: u64) -> Self {
        assert!(
            footprint_bytes >= 64,
            "footprint must hold at least one line"
        );
        RandomScatter {
            base,
            lines: footprint_bytes / 64,
            work,
            rng: SimRng::new(seed),
        }
    }
}

impl TraceSource for RandomScatter {
    fn next_op(&mut self) -> TraceOp {
        let line = self.rng.next_below(self.lines);
        TraceOp {
            work: self.work,
            access: Some(MemAccess {
                addr: self.base + line * 64,
                is_write: false,
                dependent: false,
            }),
        }
    }

    fn save_state(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        self.rng.save(w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.rng.restore(r)
    }
}

/// A strict pointer chase: every load depends on the previous one, so at
/// most one miss is outstanding (MLP = 1) — the worst case for memory
/// latency tolerance.
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    lines: u64,
    work: u32,
    rng: SimRng,
}

impl PointerChase {
    /// Creates a pointer chase over `[base, base + footprint_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one cache line.
    pub fn new(base: u64, footprint_bytes: u64, work: u32, seed: u64) -> Self {
        assert!(
            footprint_bytes >= 64,
            "footprint must hold at least one line"
        );
        PointerChase {
            base,
            lines: footprint_bytes / 64,
            work,
            rng: SimRng::new(seed),
        }
    }
}

impl TraceSource for PointerChase {
    fn next_op(&mut self) -> TraceOp {
        let line = self.rng.next_below(self.lines);
        TraceOp {
            work: self.work,
            access: Some(MemAccess {
                addr: self.base + line * 64,
                is_write: false,
                dependent: true,
            }),
        }
    }

    fn save_state(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        self.rng.save(w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.rng.restore(r)
    }
}

/// Alternates between two sources in fixed-length phases (e.g. a compute
/// phase and a streaming phase), modelling phase-structured applications.
pub struct PhaseMix<A, B> {
    a: A,
    b: B,
    phase_ops: u64,
    count: u64,
    in_a: bool,
}

impl<A: TraceSource, B: TraceSource> PhaseMix<A, B> {
    /// Creates a mix that emits `phase_ops` ops from `a`, then `phase_ops`
    /// from `b`, repeating.
    ///
    /// # Panics
    ///
    /// Panics if `phase_ops` is zero.
    pub fn new(a: A, b: B, phase_ops: u64) -> Self {
        assert!(phase_ops > 0, "phases must be non-empty");
        PhaseMix {
            a,
            b,
            phase_ops,
            count: 0,
            in_a: true,
        }
    }
}

impl<A: TraceSource, B: TraceSource> TraceSource for PhaseMix<A, B> {
    fn next_op(&mut self) -> TraceOp {
        if self.count == self.phase_ops {
            self.count = 0;
            self.in_a = !self.in_a;
        }
        self.count += 1;
        if self.in_a {
            self.a.next_op()
        } else {
            self.b.next_op()
        }
    }

    fn save_state(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        self.a.save_state(w)?;
        self.b.save_state(w)?;
        w.put_u64(self.count);
        w.put_bool(self.in_a);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.a.restore_state(r)?;
        self.b.restore_state(r)?;
        let count = r.get_u64()?;
        if count > self.phase_ops {
            return Err(r.malformed(format!(
                "phase position {count} exceeds phase length {}",
                self.phase_ops
            )));
        }
        self.count = count;
        self.in_a = r.get_bool()?;
        Ok(())
    }
}

/// Defers a source's activity: emits pure-compute ops until roughly
/// `delay_instructions` instructions have been issued, then delegates to
/// the inner source forever. Models a thread that arrives (or becomes
/// memory-intensive) mid-run — used to study how quickly a scheduler
/// redistributes bandwidth.
#[derive(Debug, Clone)]
pub struct DelayedStart<S> {
    inner: S,
    remaining: u64,
}

impl<S: TraceSource> DelayedStart<S> {
    /// Wraps `inner`, delaying it by approximately `delay_instructions`
    /// instructions of pure compute.
    pub fn new(inner: S, delay_instructions: u64) -> Self {
        DelayedStart {
            inner,
            remaining: delay_instructions,
        }
    }
}

impl<S: TraceSource> TraceSource for DelayedStart<S> {
    fn next_op(&mut self) -> TraceOp {
        if self.remaining > 0 {
            let block = self.remaining.min(64) as u32;
            self.remaining -= block as u64;
            TraceOp::compute(block)
        } else {
            self.inner.next_op()
        }
    }

    fn save_state(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        self.inner.save_state(w)?;
        w.put_u64(self.remaining);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.inner.restore_state(r)?;
        self.remaining = r.get_u64()?;
        Ok(())
    }
}

/// Replays a pre-recorded finite trace, looping forever. Useful for exact
/// regression scenarios and for feeding externally captured traces into
/// the simulator.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl RecordedTrace {
    /// Creates a looping replay of `ops`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "a recorded trace needs at least one op");
        RecordedTrace { ops, pos: 0 }
    }

    /// Records `n` ops from another source into a replayable trace.
    pub fn capture<S: TraceSource>(source: &mut S, n: usize) -> Self {
        assert!(n > 0, "capture at least one op");
        RecordedTrace::new((0..n).map(|_| source.next_op()).collect())
    }

    /// The recorded ops.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }
}

impl TraceSource for RecordedTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn save_state(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        w.put_usize(self.pos);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let pos = r.get_usize()?;
        if pos >= self.ops.len() {
            return Err(r.malformed(format!(
                "replay position {pos} outside the {}-op trace",
                self.ops.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps_at_footprint() {
        let mut s = SequentialStream::new(0, 128, 0);
        let addrs: Vec<u64> = (0..4).map(|_| s.next_op().access.unwrap().addr).collect();
        assert_eq!(addrs, vec![0, 64, 0, 64]);
    }

    #[test]
    fn scatter_stays_in_bounds() {
        let mut s = RandomScatter::new(4096, 1024, 0, 9);
        for _ in 0..1000 {
            let a = s.next_op().access.unwrap().addr;
            assert!((4096..4096 + 1024).contains(&a));
        }
    }

    #[test]
    fn pointer_chase_is_fully_dependent() {
        let mut s = PointerChase::new(0, 1 << 16, 2, 9);
        for _ in 0..100 {
            assert!(s.next_op().access.unwrap().dependent);
        }
    }

    #[test]
    fn phase_mix_alternates() {
        let a = SequentialStream::new(0, 1 << 12, 1);
        let b = SequentialStream::new(1 << 30, 1 << 12, 1);
        let mut mix = PhaseMix::new(a, b, 3);
        let sides: Vec<bool> = (0..9)
            .map(|_| mix.next_op().access.unwrap().addr < (1 << 29))
            .collect();
        assert_eq!(
            sides,
            vec![true, true, true, false, false, false, true, true, true]
        );
    }

    #[test]
    fn delayed_start_defers_memory_activity() {
        let inner = SequentialStream::new(0, 4096, 1);
        let mut d = DelayedStart::new(inner, 200);
        let mut instructions = 0u64;
        let mut ops = 0;
        loop {
            let op = d.next_op();
            if op.access.is_some() {
                break;
            }
            instructions += op.instructions();
            ops += 1;
            assert!(ops < 100, "never started");
        }
        assert!(instructions >= 200);
    }

    #[test]
    fn zero_delay_is_transparent() {
        let mut a = SequentialStream::new(0, 4096, 2);
        let mut b = DelayedStart::new(SequentialStream::new(0, 4096, 2), 0);
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn recorded_trace_replays_and_loops() {
        let mut src = SequentialStream::new(0, 4096, 5);
        let mut rec = RecordedTrace::capture(&mut src, 3);
        assert_eq!(rec.ops().len(), 3);
        let first: Vec<TraceOp> = (0..3).map(|_| rec.next_op()).collect();
        let second: Vec<TraceOp> = (0..3).map(|_| rec.next_op()).collect();
        assert_eq!(first, second);
    }

    /// Round-trips `src` through a snapshot after `warm` ops and checks the
    /// next `n` ops match an uninterrupted reference.
    fn assert_roundtrip<S: TraceSource + Clone>(mut src: S, warm: usize, n: usize) {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let mut fresh = src.clone();
        for _ in 0..warm {
            src.next_op();
        }
        let mut w = SnapshotWriter::new(2);
        let mut saved = Ok(());
        w.section("trace", |s| saved = src.save_state(s));
        saved.unwrap();
        let bytes = w.into_bytes();
        let reference: Vec<TraceOp> = (0..n).map(|_| src.next_op()).collect();

        let mut r = SnapshotReader::new(&bytes, 2).unwrap();
        r.section("trace", |s| fresh.restore_state(s)).unwrap();
        r.finish().unwrap();
        let replay: Vec<TraceOp> = (0..n).map(|_| fresh.next_op()).collect();
        assert_eq!(reference, replay);
    }

    #[test]
    fn pattern_snapshots_roundtrip() {
        assert_roundtrip(SequentialStream::new(0, 1 << 16, 3), 123, 200);
        assert_roundtrip(RandomScatter::new(0, 1 << 16, 3, 9), 123, 200);
        assert_roundtrip(PointerChase::new(0, 1 << 16, 3, 9), 123, 200);
        assert_roundtrip(
            DelayedStart::new(RandomScatter::new(0, 1 << 16, 3, 9), 500),
            40,
            200,
        );
        let mut seq = SequentialStream::new(0, 4096, 5);
        assert_roundtrip(RecordedTrace::capture(&mut seq, 17), 23, 60);
    }

    #[test]
    fn phase_mix_snapshot_roundtrips_mid_phase() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let make = || {
            PhaseMix::new(
                SequentialStream::new(0, 1 << 14, 1),
                RandomScatter::new(1 << 30, 1 << 14, 2, 5),
                37,
            )
        };
        let mut src = make();
        for _ in 0..100 {
            src.next_op();
        }
        let mut w = SnapshotWriter::new(2);
        let mut saved = Ok(());
        w.section("trace", |s| saved = src.save_state(s));
        saved.unwrap();
        let bytes = w.into_bytes();
        let reference: Vec<TraceOp> = (0..150).map(|_| src.next_op()).collect();

        let mut fresh = make();
        let mut r = SnapshotReader::new(&bytes, 2).unwrap();
        r.section("trace", |s| fresh.restore_state(s)).unwrap();
        r.finish().unwrap();
        let replay: Vec<TraceOp> = (0..150).map(|_| fresh.next_op()).collect();
        assert_eq!(reference, replay);
    }

    #[test]
    fn recorded_trace_restore_rejects_bad_position() {
        use fqms_sim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
        let long = RecordedTrace::new(vec![TraceOp::compute(1); 10]);
        let mut w = SnapshotWriter::new(2);
        let mut long_at_9 = long;
        long_at_9.pos = 9;
        let mut saved = Ok(());
        w.section("trace", |s| saved = long_at_9.save_state(s));
        saved.unwrap();
        let bytes = w.into_bytes();
        let mut short = RecordedTrace::new(vec![TraceOp::compute(1); 4]);
        let mut r = SnapshotReader::new(&bytes, 2).unwrap();
        let err = r.section("trace", |s| short.restore_state(s)).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }

    #[test]
    #[should_panic]
    fn empty_recorded_trace_panics() {
        let _ = RecordedTrace::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn tiny_footprint_panics() {
        let _ = SequentialStream::new(0, 32, 0);
    }
}
