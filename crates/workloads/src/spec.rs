//! The twenty SPEC-2000-like workload profiles.
//!
//! The paper evaluates twenty 100M-instruction SPEC 2000 sampled traces.
//! Those traces are proprietary, so this module defines twenty *synthetic*
//! profiles — named after the SPEC benchmarks they stand in for — whose
//! parameters are tuned so that their **solo data-bus utilizations
//! reproduce the spread of the paper's Figure 4**: `art` is by far the most
//! aggressive; the first six demand more than half of the memory bandwidth;
//! `vpr` uses a modest ~14% and has very little memory-level parallelism
//! (high `dependence`), making it the latency-sensitive canary of Figures 1
//! and 5; `sixtrack`/`perlbmk`/`crafty` are cache-resident and use < 2%.
//!
//! Profiles are listed in decreasing order of solo data-bus utilization
//! (the paper orders every figure this way).

use crate::profile::WorkloadProfile;

const MB: u64 = 1024 * 1024;
const KB: u64 = 1024;

/// The twenty profiles, ordered most-aggressive first (Figure 4 order).
pub const SPEC_PROFILES: [WorkloadProfile; 20] = [
    WorkloadProfile {
        name: "art",
        work_per_access: 1.0,
        footprint_bytes: 32 * MB,
        row_locality: 0.90,
        dependence: 0.02,
        write_fraction: 0.20,
        burstiness: 0.02,
        burst_len: 24.0,
    },
    WorkloadProfile {
        name: "swim",
        work_per_access: 4.0,
        footprint_bytes: 16 * MB,
        row_locality: 0.85,
        dependence: 0.0,
        write_fraction: 0.35,
        burstiness: 0.015,
        burst_len: 16.0,
    },
    WorkloadProfile {
        name: "mgrid",
        work_per_access: 9.0,
        footprint_bytes: 16 * MB,
        row_locality: 0.90,
        dependence: 0.0,
        write_fraction: 0.30,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "mcf",
        work_per_access: 1.5,
        footprint_bytes: 32 * MB,
        row_locality: 0.30,
        dependence: 0.15,
        write_fraction: 0.10,
        burstiness: 0.02,
        burst_len: 12.0,
    },
    WorkloadProfile {
        name: "lucas",
        work_per_access: 13.0,
        footprint_bytes: 16 * MB,
        row_locality: 0.80,
        dependence: 0.0,
        write_fraction: 0.25,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "applu",
        work_per_access: 15.0,
        footprint_bytes: 16 * MB,
        row_locality: 0.85,
        dependence: 0.0,
        write_fraction: 0.30,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "galgel",
        work_per_access: 24.0,
        footprint_bytes: 8 * MB,
        row_locality: 0.70,
        dependence: 0.05,
        write_fraction: 0.25,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "equake",
        work_per_access: 28.0,
        footprint_bytes: 16 * MB,
        row_locality: 0.50,
        dependence: 0.20,
        write_fraction: 0.15,
        burstiness: 0.01,
        burst_len: 8.0,
    },
    WorkloadProfile {
        name: "apsi",
        work_per_access: 40.0,
        footprint_bytes: 8 * MB,
        row_locality: 0.60,
        dependence: 0.10,
        write_fraction: 0.30,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "wupwise",
        work_per_access: 48.0,
        footprint_bytes: 16 * MB,
        row_locality: 0.75,
        dependence: 0.05,
        write_fraction: 0.25,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "facerec",
        work_per_access: 58.0,
        footprint_bytes: 8 * MB,
        row_locality: 0.70,
        dependence: 0.10,
        write_fraction: 0.20,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "gap",
        work_per_access: 60.0,
        footprint_bytes: 8 * MB,
        row_locality: 0.50,
        dependence: 0.20,
        write_fraction: 0.20,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "ammp",
        work_per_access: 68.0,
        footprint_bytes: 8 * MB,
        row_locality: 0.40,
        dependence: 0.30,
        write_fraction: 0.15,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "bzip2",
        work_per_access: 120.0,
        footprint_bytes: 4 * MB,
        row_locality: 0.60,
        dependence: 0.15,
        write_fraction: 0.30,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "twolf",
        work_per_access: 105.0,
        footprint_bytes: 2 * MB,
        row_locality: 0.30,
        dependence: 0.40,
        write_fraction: 0.15,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "vpr",
        work_per_access: 140.0,
        footprint_bytes: 2 * MB,
        row_locality: 0.25,
        dependence: 0.75,
        write_fraction: 0.10,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "gzip",
        work_per_access: 280.0,
        footprint_bytes: 4 * MB,
        row_locality: 0.70,
        dependence: 0.10,
        write_fraction: 0.30,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "sixtrack",
        work_per_access: 250.0,
        footprint_bytes: 384 * KB,
        row_locality: 0.80,
        dependence: 0.05,
        write_fraction: 0.30,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "perlbmk",
        work_per_access: 300.0,
        footprint_bytes: 320 * KB,
        row_locality: 0.60,
        dependence: 0.20,
        write_fraction: 0.30,
        burstiness: 0.0,
        burst_len: 0.0,
    },
    WorkloadProfile {
        name: "crafty",
        work_per_access: 350.0,
        footprint_bytes: 256 * KB,
        row_locality: 0.50,
        dependence: 0.20,
        write_fraction: 0.25,
        burstiness: 0.0,
        burst_len: 0.0,
    },
];

/// Looks up a profile by its SPEC-like name.
///
/// # Example
///
/// ```
/// use fqms_workloads::spec::by_name;
///
/// assert_eq!(by_name("art").unwrap().name, "art");
/// assert!(by_name("doom").is_none());
/// ```
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    SPEC_PROFILES.iter().copied().find(|p| p.name == name)
}

/// The paper's four-processor workloads: every fourth benchmark of the top
/// sixteen (the last four are excluded for their very low memory
/// utilization), so workload `k` holds benchmarks `k, k+4, k+8, k+12`.
/// The first workload is exactly the paper's `(art, lucas, apsi, ammp)`.
pub fn four_core_workloads() -> [[WorkloadProfile; 4]; 4] {
    let p = &SPEC_PROFILES;
    [
        [p[0], p[4], p[8], p[12]],
        [p[1], p[5], p[9], p[13]],
        [p[2], p[6], p[10], p[14]],
        [p[3], p[7], p[11], p[15]],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_valid_profiles() {
        assert_eq!(SPEC_PROFILES.len(), 20);
        for p in &SPEC_PROFILES {
            p.validate().unwrap();
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = SPEC_PROFILES.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn art_is_first_and_most_intense() {
        assert_eq!(SPEC_PROFILES[0].name, "art");
        for p in &SPEC_PROFILES[1..] {
            assert!(p.work_per_access >= SPEC_PROFILES[0].work_per_access);
        }
    }

    #[test]
    fn workload_one_matches_paper() {
        let wl = four_core_workloads();
        let names: Vec<_> = wl[0].iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["art", "lucas", "apsi", "ammp"]);
    }

    #[test]
    fn excluded_tail_is_cache_resident() {
        // sixtrack, perlbmk, crafty (and the rest of the tail) must fit in
        // or nearly fit in the 512 KB L2.
        for p in &SPEC_PROFILES[17..] {
            assert!(p.footprint_bytes <= 512 * KB, "{} too big", p.name);
        }
    }

    #[test]
    fn vpr_is_low_mlp() {
        let vpr = by_name("vpr").unwrap();
        assert!(vpr.dependence >= 0.7, "vpr must be latency-sensitive");
    }

    #[test]
    fn footprints_fit_thread_regions() {
        for p in &SPEC_PROFILES {
            assert!(
                p.footprint_bytes <= crate::generator::THREAD_REGION_BYTES,
                "{} exceeds the per-thread region",
                p.name
            );
        }
    }
}
