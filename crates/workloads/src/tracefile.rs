//! Plain-text trace files.
//!
//! A simple line-oriented format so traces can be captured, inspected,
//! diffed, version-controlled, and replayed — or produced by external
//! tools (e.g. converted from a real machine's memory trace):
//!
//! ```text
//! # fqms trace v1
//! 12 R 0x7f001040
//! 3 W 0x7f001080
//! 40 R 0x10000 d
//! 7
//! ```
//!
//! Each line is `<work>` (a compute-only block) or
//! `<work> <R|W> <address> [d]`, where `work` is the non-memory
//! instruction count before the access, the address is decimal or
//! `0x`-hex, and a trailing `d` marks a dependent (pointer-chasing) load.
//! `#`-lines and blank lines are ignored.

use crate::patterns::RecordedTrace;
use fqms_cpu::trace::{MemAccess, TraceOp};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Serializes ops into the text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use fqms_workloads::tracefile::{write_trace, read_trace};
/// use fqms_cpu::trace::TraceOp;
///
/// let ops = vec![TraceOp::compute(5)];
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &ops)?;
/// let back = read_trace(&buf[..])?;
/// assert_eq!(back.ops(), &ops[..]);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_trace<W: Write>(writer: W, ops: &[TraceOp]) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# fqms trace v1")?;
    for op in ops {
        match op.access {
            None => writeln!(w, "{}", op.work)?,
            Some(a) => {
                let kind = if a.is_write { 'W' } else { 'R' };
                if a.dependent {
                    writeln!(w, "{} {} {:#x} d", op.work, kind, a.addr)?;
                } else {
                    writeln!(w, "{} {} {:#x}", op.work, kind, a.addr)?;
                }
            }
        }
    }
    w.flush()
}

/// Parses the text format into a replayable [`RecordedTrace`].
///
/// # Errors
///
/// Returns `InvalidData` for malformed lines (with the line number) and
/// propagates reader I/O errors. An empty trace is an error (a trace
/// source must be infinite, and replay loops over the ops).
pub fn read_trace<R: Read>(reader: R) -> std::io::Result<RecordedTrace> {
    let mut ops = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |msg: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {msg}: {line:?}", lineno + 1),
            )
        };
        let mut parts = line.split_whitespace();
        let work: u32 = parts
            .next()
            .ok_or_else(|| bad("missing work count"))?
            .parse()
            .map_err(|_| bad("bad work count"))?;
        let access = match parts.next() {
            None => None,
            Some(kind) => {
                let is_write = match kind {
                    "R" | "r" => false,
                    "W" | "w" => true,
                    _ => return Err(bad("access kind must be R or W")),
                };
                let addr_str = parts.next().ok_or_else(|| bad("missing address"))?;
                let addr = if let Some(hex) = addr_str
                    .strip_prefix("0x")
                    .or_else(|| addr_str.strip_prefix("0X"))
                {
                    u64::from_str_radix(hex, 16).map_err(|_| bad("bad hex address"))?
                } else {
                    addr_str.parse().map_err(|_| bad("bad address"))?
                };
                let dependent = match parts.next() {
                    None => false,
                    Some("d") | Some("D") => true,
                    Some(_) => return Err(bad("trailing token must be 'd'")),
                };
                Some(MemAccess {
                    addr,
                    is_write,
                    dependent,
                })
            }
        };
        if parts.next().is_some() {
            return Err(bad("unexpected extra tokens"));
        }
        ops.push(TraceOp { work, access });
    }
    if ops.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "trace contains no operations",
        ));
    }
    Ok(RecordedTrace::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticTrace;
    use crate::profile::WorkloadProfile;
    use fqms_cpu::trace::TraceSource;

    #[test]
    fn round_trip_preserves_ops() {
        let mut gen = SyntheticTrace::new(WorkloadProfile::stream("s", 6.0), 3, 0).unwrap();
        let ops: Vec<TraceOp> = (0..500).map(|_| gen.next_op()).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.ops(), &ops[..]);
    }

    #[test]
    fn parses_all_line_forms() {
        let text = "# comment\n\n7\n3 R 0x40\n2 W 128\n9 r 0x80 d\n";
        let t = read_trace(text.as_bytes()).unwrap();
        let ops = t.ops();
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[0], TraceOp::compute(7));
        assert_eq!(ops[1].access.unwrap().addr, 0x40);
        assert!(ops[2].access.unwrap().is_write);
        assert_eq!(ops[2].access.unwrap().addr, 128);
        assert!(ops[3].access.unwrap().dependent);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "x R 0x40",       // bad work
            "3 Q 0x40",       // bad kind
            "3 R",            // missing address
            "3 R zz",         // bad address
            "3 R 0x40 q",     // bad trailing token
            "3 R 0x40 d huh", // extra tokens
        ] {
            let r = read_trace(bad.as_bytes());
            assert!(r.is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(read_trace("# nothing\n".as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fqms-tracefile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let ops = vec![
            TraceOp::compute(1),
            TraceOp {
                work: 2,
                access: Some(MemAccess {
                    addr: 0x1234,
                    is_write: false,
                    dependent: true,
                }),
            },
        ];
        write_trace(std::fs::File::create(&path).unwrap(), &ops).unwrap();
        let back = read_trace(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back.ops(), &ops[..]);
        let _ = std::fs::remove_file(&path);
    }
}
