//! Parametric workload profiles.
//!
//! A [`WorkloadProfile`] captures the handful of statistics of a
//! benchmark's memory behaviour that determine how it interacts with a
//! memory scheduler:
//!
//! * **intensity** — mean non-memory instructions between memory
//!   references (`work_per_access`), which (together with the footprint)
//!   sets the memory-bandwidth demand,
//! * **footprint** — bytes touched; footprints below the 512 KB private L2
//!   produce cache-resident behaviour (< 2% bus utilization, like
//!   sixtrack/perlbmk/crafty), larger footprints stream from memory,
//! * **row locality** — probability the next reference falls in the same
//!   DRAM row neighbourhood (sequential walk) rather than jumping,
//!   controlling the row-buffer hit rate the scheduler can exploit,
//! * **dependence** — probability a reference's address depends on the
//!   previous load (pointer chasing), which destroys memory-level
//!   parallelism and makes the thread latency-sensitive (the paper's
//!   `vpr`),
//! * **write fraction** — share of references that are stores, generating
//!   writeback traffic.

/// Statistical description of one benchmark-like workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Display name (SPEC-2000-like identity).
    pub name: &'static str,
    /// Mean non-memory instructions between memory references (geometric).
    pub work_per_access: f64,
    /// Bytes of address space the workload touches.
    pub footprint_bytes: u64,
    /// Probability the next reference continues a sequential walk.
    pub row_locality: f64,
    /// Probability a load's address depends on the previous load.
    pub dependence: f64,
    /// Fraction of references that are stores.
    pub write_fraction: f64,
    /// Probability per reference of *entering* a miss burst (a phase in
    /// which the work between references collapses toward zero — the
    /// paper's "frequent, long bursts of cache misses" that FCFS rewards).
    /// 0.0 disables bursts.
    pub burstiness: f64,
    /// Mean references per burst (geometric); ignored when `burstiness`
    /// is 0.
    pub burst_len: f64,
}

impl WorkloadProfile {
    /// Validates that every statistic is in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.work_per_access < 0.0 {
            return Err(format!("{}: work_per_access must be >= 0", self.name));
        }
        if self.footprint_bytes < 4096 {
            return Err(format!("{}: footprint must be at least 4 KiB", self.name));
        }
        for (field, v) in [
            ("row_locality", self.row_locality),
            ("dependence", self.dependence),
            ("write_fraction", self.write_fraction),
            ("burstiness", self.burstiness),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {field} must be in [0, 1], got {v}", self.name));
            }
        }
        if self.burstiness > 0.0 && self.burst_len < 1.0 {
            return Err(format!(
                "{}: burst_len must be >= 1 when bursts are enabled",
                self.name
            ));
        }
        Ok(())
    }

    /// A convenient streaming profile (high bandwidth, high row locality).
    pub fn stream(name: &'static str, work_per_access: f64) -> Self {
        WorkloadProfile {
            name,
            work_per_access,
            footprint_bytes: 16 * 1024 * 1024,
            row_locality: 0.85,
            dependence: 0.0,
            write_fraction: 0.25,
            burstiness: 0.0,
            burst_len: 0.0,
        }
    }

    /// A convenient pointer-chasing profile (latency-bound, low MLP).
    pub fn pointer_chase(name: &'static str, work_per_access: f64) -> Self {
        WorkloadProfile {
            name,
            work_per_access,
            footprint_bytes: 8 * 1024 * 1024,
            row_locality: 0.1,
            dependence: 0.9,
            write_fraction: 0.1,
            burstiness: 0.0,
            burst_len: 0.0,
        }
    }

    /// A cache-resident profile (negligible memory traffic).
    pub fn cache_resident(name: &'static str, work_per_access: f64) -> Self {
        WorkloadProfile {
            name,
            work_per_access,
            footprint_bytes: 256 * 1024,
            row_locality: 0.7,
            dependence: 0.1,
            write_fraction: 0.3,
            burstiness: 0.0,
            burst_len: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_profiles_are_valid() {
        WorkloadProfile::stream("s", 4.0).validate().unwrap();
        WorkloadProfile::pointer_chase("p", 10.0)
            .validate()
            .unwrap();
        WorkloadProfile::cache_resident("c", 100.0)
            .validate()
            .unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut p = WorkloadProfile::stream("s", 4.0);
        p.row_locality = 1.5;
        assert!(p.validate().is_err());
        let mut p = WorkloadProfile::stream("s", 4.0);
        p.work_per_access = -1.0;
        assert!(p.validate().is_err());
        let mut p = WorkloadProfile::stream("s", 4.0);
        p.footprint_bytes = 64;
        assert!(p.validate().is_err());
    }
}
