//! Synthetic trace generation from a [`WorkloadProfile`].

use crate::profile::WorkloadProfile;
use fqms_cpu::trace::{MemAccess, TraceOp, TraceSource};
use fqms_sim::rng::SimRng;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// An infinite synthetic instruction/reference stream with the statistics
/// of a [`WorkloadProfile`].
///
/// The generator walks the profile's footprint: with probability
/// `row_locality` the next reference is the sequentially next cache line
/// (wrapping inside the footprint), otherwise it jumps to a uniformly
/// random line. Work between references is geometric with the profile's
/// mean; store/dependence flags are Bernoulli draws.
///
/// All randomness comes from the seeded [`SimRng`], so identical seeds
/// reproduce identical traces.
///
/// # Example
///
/// ```
/// use fqms_workloads::generator::SyntheticTrace;
/// use fqms_workloads::profile::WorkloadProfile;
/// use fqms_cpu::trace::TraceSource;
///
/// let mut t = SyntheticTrace::new(WorkloadProfile::stream("s", 4.0), 42, 0).unwrap();
/// let op = t.next_op();
/// assert!(op.access.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    profile: WorkloadProfile,
    rng: SimRng,
    /// Base byte offset of this stream's address region (used to give each
    /// simulated thread a private image).
    base: u64,
    /// Current line index within the footprint.
    cur_line: u64,
    lines: u64,
    /// References remaining in the current miss burst (0 = not bursting).
    burst_left: u64,
}

/// Byte alignment of per-thread address regions: 64 MiB keeps four threads'
/// footprints disjoint on the paper's 256 MiB device.
pub const THREAD_REGION_BYTES: u64 = 64 * 1024 * 1024;

impl SyntheticTrace {
    /// Creates a generator for `profile` seeded with `seed`, with addresses
    /// offset by `base` bytes.
    ///
    /// # Errors
    ///
    /// Returns a description if the profile is invalid.
    pub fn new(profile: WorkloadProfile, seed: u64, base: u64) -> Result<Self, String> {
        profile.validate()?;
        let lines = profile.footprint_bytes / 64;
        let mut rng = SimRng::new(seed ^ 0xF0FA_57F0_0D5E_ED00);
        let cur_line = rng.next_below(lines);
        Ok(SyntheticTrace {
            profile,
            rng,
            base,
            cur_line,
            lines,
            burst_left: 0,
        })
    }

    /// Creates a generator whose address region is the `thread_index`-th
    /// [`THREAD_REGION_BYTES`] slice, the layout used by multi-core runs.
    ///
    /// # Errors
    ///
    /// Returns a description if the profile is invalid.
    pub fn for_thread(
        profile: WorkloadProfile,
        seed: u64,
        thread_index: u32,
    ) -> Result<Self, String> {
        Self::new(
            profile,
            seed.wrapping_add(thread_index as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                | 1,
            thread_index as u64 * THREAD_REGION_BYTES,
        )
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn next_addr(&mut self) -> u64 {
        if self.rng.chance(self.profile.row_locality) {
            self.cur_line = (self.cur_line + 1) % self.lines;
        } else {
            self.cur_line = self.rng.next_below(self.lines);
        }
        self.base + self.cur_line * 64
    }
}

impl TraceSource for SyntheticTrace {
    fn next_op(&mut self) -> TraceOp {
        // Burst phase: references arrive back to back (work ~ 0),
        // modelling the long miss bursts that FCFS scheduling rewards.
        if self.burst_left == 0
            && self.profile.burstiness > 0.0
            && self.rng.chance(self.profile.burstiness)
        {
            self.burst_left = 1 + self.rng.geometric(1.0 / self.profile.burst_len.max(1.0));
        }
        let mean = if self.burst_left > 0 {
            self.burst_left -= 1;
            0.5
        } else {
            self.profile.work_per_access
        };
        let work = if mean <= 0.0 {
            0
        } else {
            // Geometric with mean `mean`: success probability 1/(1+mean).
            self.rng.geometric(1.0 / (1.0 + mean)).min(u32::MAX as u64) as u32
        };
        let addr = self.next_addr();
        let is_write = self.rng.chance(self.profile.write_fraction);
        let dependent = !is_write && self.rng.chance(self.profile.dependence);
        TraceOp {
            work,
            access: Some(MemAccess {
                addr,
                is_write,
                dependent,
            }),
        }
    }

    fn save_state(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        self.rng.save(w);
        w.put_u64(self.cur_line);
        w.put_u64(self.burst_left);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.rng.restore(r)?;
        let cur_line = r.get_u64()?;
        if cur_line >= self.lines {
            return Err(r.malformed(format!(
                "current line {cur_line} outside footprint of {} lines",
                self.lines
            )));
        }
        self.cur_line = cur_line;
        self.burst_left = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(profile: WorkloadProfile, n: usize) -> Vec<TraceOp> {
        let mut t = SyntheticTrace::new(profile, 7, 0).unwrap();
        (0..n).map(|_| t.next_op()).collect()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = WorkloadProfile::stream("s", 4.0);
        let a = collect(p, 1000);
        let b = collect(p, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn work_mean_matches_profile() {
        let p = WorkloadProfile::stream("s", 10.0);
        let ops = collect(p, 20_000);
        let mean = ops.iter().map(|o| o.work as f64).sum::<f64>() / ops.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean work {mean}");
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let p = WorkloadProfile {
            footprint_bytes: 1024 * 1024,
            ..WorkloadProfile::stream("s", 4.0)
        };
        let mut t = SyntheticTrace::new(p, 3, 0).unwrap();
        for _ in 0..10_000 {
            let a = t.next_op().access.unwrap().addr;
            assert!(a < 1024 * 1024);
        }
    }

    #[test]
    fn base_offsets_addresses() {
        let p = WorkloadProfile::stream("s", 4.0);
        let mut t = SyntheticTrace::for_thread(p, 3, 2).unwrap();
        for _ in 0..1000 {
            let a = t.next_op().access.unwrap().addr;
            assert!(a >= 2 * THREAD_REGION_BYTES);
            assert!(a < 2 * THREAD_REGION_BYTES + p.footprint_bytes);
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let p = WorkloadProfile {
            write_fraction: 0.3,
            ..WorkloadProfile::stream("s", 2.0)
        };
        let ops = collect(p, 20_000);
        let writes = ops.iter().filter(|o| o.access.unwrap().is_write).count() as f64;
        let frac = writes / ops.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn sequential_locality_produces_adjacent_lines() {
        let p = WorkloadProfile {
            row_locality: 1.0,
            ..WorkloadProfile::stream("s", 1.0)
        };
        let mut t = SyntheticTrace::new(p, 11, 0).unwrap();
        let a0 = t.next_op().access.unwrap().addr;
        let a1 = t.next_op().access.unwrap().addr;
        if a1 != 0 {
            assert_eq!(a1 - a0, 64);
        }
    }

    #[test]
    fn dependence_applies_to_loads_only() {
        let p = WorkloadProfile {
            dependence: 1.0,
            write_fraction: 0.5,
            ..WorkloadProfile::stream("s", 2.0)
        };
        for op in collect(p, 5_000) {
            let a = op.access.unwrap();
            if a.is_write {
                assert!(!a.dependent);
            } else {
                assert!(a.dependent);
            }
        }
    }

    #[test]
    fn bursts_compress_work_between_references() {
        let quiet = WorkloadProfile::stream("s", 20.0);
        let bursty = WorkloadProfile {
            burstiness: 0.05,
            burst_len: 16.0,
            ..quiet
        };
        let mean = |p| {
            let ops = collect(p, 30_000);
            ops.iter().map(|o| o.work as f64).sum::<f64>() / ops.len() as f64
        };
        let mq = mean(quiet);
        let mb = mean(bursty);
        assert!(
            mb < 0.7 * mq,
            "bursts should compress mean work: {mb:.1} vs {mq:.1}"
        );
        // And produce long runs of near-zero work.
        let ops = collect(bursty, 30_000);
        let mut longest = 0;
        let mut run = 0;
        for o in &ops {
            if o.work <= 2 {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest >= 8, "longest burst run {longest}");
    }

    #[test]
    fn zero_burstiness_is_unchanged() {
        let p = WorkloadProfile::stream("s", 10.0);
        assert_eq!(p.burstiness, 0.0);
        let ops = collect(p, 1000);
        assert!(!ops.is_empty());
    }

    #[test]
    fn snapshot_roundtrip_resumes_identical_stream() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let p = WorkloadProfile {
            burstiness: 0.05,
            burst_len: 16.0,
            ..WorkloadProfile::stream("s", 8.0)
        };
        let mut t = SyntheticTrace::new(p, 13, 0).unwrap();
        for _ in 0..777 {
            t.next_op();
        }
        let mut w = SnapshotWriter::new(3);
        let mut saved = Ok(());
        w.section("trace", |s| saved = t.save_state(s));
        saved.unwrap();
        let bytes = w.into_bytes();

        let reference: Vec<TraceOp> = (0..500).map(|_| t.next_op()).collect();

        let mut resumed = SyntheticTrace::new(p, 13, 0).unwrap();
        let mut r = SnapshotReader::new(&bytes, 3).unwrap();
        r.section("trace", |s| resumed.restore_state(s)).unwrap();
        r.finish().unwrap();
        let replay: Vec<TraceOp> = (0..500).map(|_| resumed.next_op()).collect();
        assert_eq!(reference, replay);
    }

    #[test]
    fn restore_rejects_out_of_footprint_position() {
        use fqms_sim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
        let small = WorkloadProfile {
            footprint_bytes: 1024 * 1024,
            ..WorkloadProfile::stream("s", 4.0)
        };
        let big = WorkloadProfile::stream("s", 4.0);
        let mut t = SyntheticTrace::new(big, 13, 0).unwrap();
        // Park the walker beyond the small footprint's line count.
        t.cur_line = t.lines - 1;
        let mut w = SnapshotWriter::new(3);
        let mut saved = Ok(());
        w.section("trace", |s| saved = t.save_state(s));
        saved.unwrap();
        let bytes = w.into_bytes();
        let mut victim = SyntheticTrace::new(small, 13, 0).unwrap();
        let mut r = SnapshotReader::new(&bytes, 3).unwrap();
        let err = r.section("trace", |s| victim.restore_state(s)).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }

    #[test]
    fn different_threads_see_different_streams() {
        let p = WorkloadProfile::stream("s", 4.0);
        let mut a = SyntheticTrace::for_thread(p, 3, 0).unwrap();
        let mut b = SyntheticTrace::for_thread(p, 3, 1).unwrap();
        let wa: Vec<u32> = (0..100).map(|_| a.next_op().work).collect();
        let wb: Vec<u32> = (0..100).map(|_| b.next_op().work).collect();
        assert_ne!(wa, wb);
    }
}
