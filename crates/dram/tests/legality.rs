//! Property-style tests for the DRAM device: an adversarial "issue
//! whatever is ready" driver must never trip a timing assertion, and the
//! device's readiness answers must be internally consistent.
//!
//! Random interleavings come from the in-tree deterministic shrinking
//! case runner ([`fqms_sim::rng::CaseRunner`]), keeping the build
//! hermetic (no external `proptest` dependency) and each run identical;
//! failures shrink to a minimal seed/length before being reported. Set
//! `FQMS_CASES` or enable the `proptest` feature to widen the sweep.

use fqms_dram::prelude::*;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::{CaseRunner, SimRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Enumerate all commands that could conceivably be issued to the device
/// given the current bank states (bounded row/col space for test speed).
fn candidate_commands(dram: &DramDevice) -> Vec<Command> {
    let mut out = Vec::new();
    let g = *dram.geometry();
    for r in 0..g.ranks {
        let rank = RankId::new(r);
        out.push(Command::Refresh { rank });
        for b in 0..g.banks {
            let bank = BankId::new(b);
            match dram.bank_state(rank, bank) {
                BankState::Closed => {
                    for row in 0..4u32 {
                        out.push(Command::Activate {
                            rank,
                            bank,
                            row: RowId::new(row),
                        });
                    }
                }
                BankState::Open(_) => {
                    out.push(Command::Precharge { rank, bank });
                    for col in 0..4u32 {
                        out.push(Command::Read {
                            rank,
                            bank,
                            col: ColId::new(col),
                        });
                        out.push(Command::Write {
                            rank,
                            bank,
                            col: ColId::new(col),
                        });
                    }
                }
            }
        }
    }
    out
}

/// A random adversarial driver configuration: seed plus run length.
#[derive(Debug, Clone, Copy)]
struct DriverCase {
    seed: u64,
    cycles: u64,
}

fn gen_driver(rng: &mut SimRng) -> DriverCase {
    DriverCase {
        seed: rng.next_below(1 << 32),
        cycles: 500 + rng.next_below(1_500),
    }
}

fn shrink_driver(case: &DriverCase) -> Vec<DriverCase> {
    if case.cycles > 100 {
        vec![DriverCase {
            cycles: case.cycles / 2,
            ..*case
        }]
    } else {
        vec![]
    }
}

/// Issuing any ready command at any cycle never violates a constraint
/// (the device's assertions are the oracle), across random interleavings.
#[test]
fn random_ready_schedules_are_legal() {
    CaseRunner::new("ready-schedules-legal")
        .cases(100)
        .run(gen_driver, shrink_driver, |case| {
            // The device's internal assertions are the oracle: a timing
            // violation panics inside `issue`, which we convert into a
            // property failure so the runner can shrink it.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = SimRng::new(case.seed);
                let mut dram = DramDevice::new(
                    Geometry {
                        ranks: 2,
                        banks: 4,
                        rows: 8,
                        cols: 8,
                    },
                    TimingParams::ddr2_800(),
                );
                let mut now = DramCycle::ZERO;
                let mut issued = 0u32;
                // Drive for a bounded number of cycles, issuing a random
                // ready command (if any) each cycle.
                for _ in 0..case.cycles {
                    let ready: Vec<Command> = candidate_commands(&dram)
                        .into_iter()
                        .filter(|c| dram.is_ready(c, now))
                        .collect();
                    if !ready.is_empty() && rng.chance(0.7) {
                        let pick = rng.next_below(ready.len() as u64) as usize;
                        // `issue` panics if any constraint is violated.
                        dram.issue(&ready[pick], now);
                        issued += 1;
                    }
                    now.tick();
                }
                issued
            }));
            match outcome {
                Err(_) => Err("device timing assertion tripped".into()),
                Ok(0) => Err("driver never issued anything".into()),
                Ok(_) => Ok(()),
            }
        });
}

/// Readiness is monotonic for a quiescent device: once a command is ready
/// it stays ready until something else is issued.
#[test]
fn readiness_is_monotonic_without_issue() {
    for delay in 0..64u64 {
        for extra in [1u64, 2, 3, 5, 9, 17, 33, 63] {
            let mut dram = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
            let act = Command::Activate {
                rank: RankId::new(0),
                bank: BankId::new(0),
                row: RowId::new(1),
            };
            dram.issue(&act, DramCycle::ZERO);
            let rd = Command::Read {
                rank: RankId::new(0),
                bank: BankId::new(0),
                col: ColId::new(0),
            };
            let t1 = DramCycle::new(delay);
            let t2 = DramCycle::new(delay + extra);
            if dram.is_ready(&rd, t1) {
                assert!(dram.is_ready(&rd, t2), "delay {delay} extra {extra}");
            }
        }
    }
}

/// Time-scaled devices accept the same command sequence at scaled times: a
/// legal schedule on the fast device, when stretched by the scale factor,
/// is legal on the slow device.
#[test]
fn scaled_device_accepts_stretched_schedule() {
    /// A scaled-replay case: driver seed, stretch factor, run length.
    #[derive(Debug, Clone, Copy)]
    struct ScaleCase {
        seed: u64,
        factor: u64,
        cycles: u64,
    }

    CaseRunner::new("scaled-schedule").cases(100).run(
        |rng| ScaleCase {
            seed: rng.next_below(1 << 32),
            factor: 2 + rng.next_below(2),
            cycles: 100 + rng.next_below(400),
        },
        |case| {
            if case.cycles > 50 {
                vec![ScaleCase {
                    cycles: case.cycles / 2,
                    ..*case
                }]
            } else {
                vec![]
            }
        },
        |case| {
            let factor = case.factor;
            let mut rng = SimRng::new(case.seed);
            let geo = Geometry {
                ranks: 1,
                banks: 4,
                rows: 8,
                cols: 8,
            };
            let mut fast = DramDevice::new(geo, TimingParams::ddr2_800());
            let mut slow = DramDevice::new(geo, TimingParams::ddr2_800().time_scaled(factor));
            let mut now = DramCycle::ZERO;
            for _ in 0..case.cycles {
                let ready: Vec<Command> = candidate_commands(&fast)
                    .into_iter()
                    .filter(|c| !matches!(c, Command::Refresh { .. }))
                    .filter(|c| fast.is_ready(c, now))
                    .collect();
                if !ready.is_empty() && rng.chance(0.5) {
                    let pick = rng.next_below(ready.len() as u64) as usize;
                    let cmd = ready[pick];
                    fast.issue(&cmd, now);
                    let scaled_now = DramCycle::new(now.as_u64() * factor);
                    if !slow.is_ready(&cmd, scaled_now) {
                        return Err(format!(
                            "{cmd} legal at {now} on fast but not at {scaled_now} on x{factor}"
                        ));
                    }
                    slow.issue(&cmd, scaled_now);
                }
                now.tick();
            }
            Ok(())
        },
    );
}

#[test]
fn refresh_eventually_blocks_everything_until_serviced() {
    // If the controller keeps the rank busy past the refresh deadline the
    // device still *allows* it (refresh policy is the controller's job),
    // but refresh_urgent flags it.
    let dram = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
    assert!(!dram.refresh_urgent(RankId::new(0), DramCycle::new(0)));
    assert!(dram.refresh_urgent(RankId::new(0), DramCycle::new(280_000)));
}

#[test]
fn full_transaction_walkthrough() {
    // A read transaction on a closed bank: ACT @0, RD @5 (tRCD), data done
    // @14 (tCL+BL/2), PRE legal @18 (tRAS), next ACT @23 (tRP).
    let mut dram = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
    let rank = RankId::new(0);
    let bank = BankId::new(0);
    let act = Command::Activate {
        rank,
        bank,
        row: RowId::new(5),
    };
    let rd = Command::Read {
        rank,
        bank,
        col: ColId::new(1),
    };
    let pre = Command::Precharge { rank, bank };

    assert!(dram.is_ready(&act, DramCycle::new(0)));
    dram.issue(&act, DramCycle::new(0));

    assert!(!dram.is_ready(&rd, DramCycle::new(4)));
    assert!(dram.is_ready(&rd, DramCycle::new(5)));
    let done = dram.issue(&rd, DramCycle::new(5)).unwrap();
    assert_eq!(done, DramCycle::new(14));

    assert!(!dram.is_ready(&pre, DramCycle::new(17)));
    assert!(dram.is_ready(&pre, DramCycle::new(18)));
    dram.issue(&pre, DramCycle::new(18));

    assert!(!dram.is_ready(&act, DramCycle::new(22)));
    assert!(dram.is_ready(&act, DramCycle::new(23)));
}
