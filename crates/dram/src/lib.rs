//! Cycle-accurate DDR2 SDRAM device timing model.
//!
//! This crate implements the memory-device substrate of the Fair Queuing
//! Memory Systems reproduction: DDR2 timing constraints (the paper's
//! Table 6), per-bank row-buffer state machines, channel/rank-level
//! constraint tracking (data-bus occupancy, tCCD, tWTR, tRRD, refresh), and
//! an assembled [`device::DramDevice`] that a memory controller drives one
//! SDRAM command at a time.
//!
//! The model enforces *every* constraint as a hard assertion on issue: a
//! scheduler bug that issues an illegal command is a panic, not a silently
//! wrong result. Schedulers query [`device::DramDevice::is_ready`] — the
//! paper's "ready command" notion — before issuing.
//!
//! # Example
//!
//! ```
//! use fqms_dram::prelude::*;
//! use fqms_sim::clock::DramCycle;
//!
//! let mut dram = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
//! let addr = DramAddress {
//!     rank: RankId::new(0), bank: BankId::new(2),
//!     row: RowId::new(100), col: ColId::new(7),
//! };
//! let act = Command::Activate { rank: addr.rank, bank: addr.bank, row: addr.row };
//! dram.issue(&act, DramCycle::new(0));
//! let rd = Command::Read { rank: addr.rank, bank: addr.bank, col: addr.col };
//! assert!(dram.is_ready(&rd, DramCycle::new(5)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod channel;
pub mod checker;
pub mod command;
pub mod device;
pub mod power;
pub mod timing;

/// Convenient re-exports of the crate's primary types.
pub mod prelude {
    pub use crate::bank::{Bank, BankState};
    pub use crate::channel::ChannelTracker;
    pub use crate::checker::{ProtocolChecker, Violation};
    pub use crate::command::{BankId, ColId, Command, CommandKind, DramAddress, RankId, RowId};
    pub use crate::device::{DramDevice, Geometry};
    pub use crate::power::{estimate_energy, EnergyBreakdown, PowerParams};
    pub use crate::timing::TimingParams;
}

pub use prelude::*;
