//! SDRAM commands and device-geometry newtypes.
//!
//! The paper groups *read*/*write* as **CAS commands** and
//! *activate*/*precharge* as **RAS commands**; that distinction drives the
//! second level of every priority policy ("prioritize CAS commands over RAS
//! commands"), so it is a first-class predicate here.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// Returns the raw index as `usize` (for direct array indexing).
            #[inline]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_newtype!(
    /// Index of a rank on the memory channel.
    RankId
);
id_newtype!(
    /// Index of a bank within a rank.
    BankId
);
id_newtype!(
    /// Index of a row within a bank.
    RowId
);
id_newtype!(
    /// Index of a column (cache-line granule) within a row.
    ColId
);

/// A fully decoded DRAM location: rank, bank, row and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DramAddress {
    /// Rank on the channel.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Column (cache-line) within the row.
    pub col: ColId,
}

impl fmt::Display for DramAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{}b{}/row{}/col{}",
            self.rank, self.bank, self.row, self.col
        )
    }
}

/// The kind of an SDRAM command, without operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Open a row (RAS).
    Activate,
    /// Close the open row and precharge the bank (RAS).
    Precharge,
    /// Column read from the open row (CAS).
    Read,
    /// Column write to the open row (CAS).
    Write,
    /// Refresh a rank (all banks must be precharged).
    Refresh,
}

impl CommandKind {
    /// True for *read*/*write* — the paper's "CAS commands".
    #[inline]
    pub fn is_cas(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::Write)
    }

    /// True for *activate*/*precharge* — the paper's "RAS commands".
    #[inline]
    pub fn is_ras(self) -> bool {
        matches!(self, CommandKind::Activate | CommandKind::Precharge)
    }
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
            CommandKind::Refresh => "REF",
        };
        f.write_str(s)
    }
}

/// A concrete SDRAM command with its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Open `row` in bank `(rank, bank)`.
    Activate {
        /// Target rank.
        rank: RankId,
        /// Target bank.
        bank: BankId,
        /// Row to open.
        row: RowId,
    },
    /// Close the open row in bank `(rank, bank)`.
    Precharge {
        /// Target rank.
        rank: RankId,
        /// Target bank.
        bank: BankId,
    },
    /// Burst-read column `col` from the open row of `(rank, bank)`.
    Read {
        /// Target rank.
        rank: RankId,
        /// Target bank.
        bank: BankId,
        /// Column to read.
        col: ColId,
    },
    /// Burst-write column `col` into the open row of `(rank, bank)`.
    Write {
        /// Target rank.
        rank: RankId,
        /// Target bank.
        bank: BankId,
        /// Column to write.
        col: ColId,
    },
    /// Refresh all banks of `rank`.
    Refresh {
        /// Target rank.
        rank: RankId,
    },
}

impl Command {
    /// The command's kind (operand-free discriminant).
    #[inline]
    pub fn kind(&self) -> CommandKind {
        match self {
            Command::Activate { .. } => CommandKind::Activate,
            Command::Precharge { .. } => CommandKind::Precharge,
            Command::Read { .. } => CommandKind::Read,
            Command::Write { .. } => CommandKind::Write,
            Command::Refresh { .. } => CommandKind::Refresh,
        }
    }

    /// The rank this command targets.
    #[inline]
    pub fn rank(&self) -> RankId {
        match *self {
            Command::Activate { rank, .. }
            | Command::Precharge { rank, .. }
            | Command::Read { rank, .. }
            | Command::Write { rank, .. }
            | Command::Refresh { rank } => rank,
        }
    }

    /// The bank this command targets, if it is bank-directed (refresh is
    /// rank-wide).
    #[inline]
    pub fn bank(&self) -> Option<BankId> {
        match *self {
            Command::Activate { bank, .. }
            | Command::Precharge { bank, .. }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. } => Some(bank),
            Command::Refresh { .. } => None,
        }
    }

    /// True if this is a CAS (read/write) command.
    #[inline]
    pub fn is_cas(&self) -> bool {
        self.kind().is_cas()
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Command::Activate { rank, bank, row } => write!(f, "ACT r{rank}b{bank} row{row}"),
            Command::Precharge { rank, bank } => write!(f, "PRE r{rank}b{bank}"),
            Command::Read { rank, bank, col } => write!(f, "RD r{rank}b{bank} col{col}"),
            Command::Write { rank, bank, col } => write!(f, "WR r{rank}b{bank} col{col}"),
            Command::Refresh { rank } => write!(f, "REF r{rank}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_ras_classification() {
        assert!(CommandKind::Read.is_cas());
        assert!(CommandKind::Write.is_cas());
        assert!(!CommandKind::Activate.is_cas());
        assert!(CommandKind::Activate.is_ras());
        assert!(CommandKind::Precharge.is_ras());
        assert!(!CommandKind::Refresh.is_cas());
        assert!(!CommandKind::Refresh.is_ras());
    }

    #[test]
    fn command_accessors() {
        let cmd = Command::Read {
            rank: RankId::new(0),
            bank: BankId::new(3),
            col: ColId::new(17),
        };
        assert_eq!(cmd.kind(), CommandKind::Read);
        assert_eq!(cmd.rank(), RankId::new(0));
        assert_eq!(cmd.bank(), Some(BankId::new(3)));
        assert!(cmd.is_cas());
    }

    #[test]
    fn refresh_has_no_bank() {
        let cmd = Command::Refresh {
            rank: RankId::new(1),
        };
        assert_eq!(cmd.bank(), None);
        assert_eq!(cmd.rank(), RankId::new(1));
    }

    #[test]
    fn display_forms() {
        let cmd = Command::Activate {
            rank: RankId::new(0),
            bank: BankId::new(2),
            row: RowId::new(9),
        };
        assert_eq!(cmd.to_string(), "ACT r0b2 row9");
        assert_eq!(CommandKind::Precharge.to_string(), "PRE");
    }

    #[test]
    fn id_newtype_round_trip() {
        let b = BankId::from(5u32);
        assert_eq!(b.as_u32(), 5);
        assert_eq!(b.as_usize(), 5);
    }
}
