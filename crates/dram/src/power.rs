//! DRAM energy accounting (an extension beyond the paper).
//!
//! Production DRAM simulators ship an energy model alongside the timing
//! model; this one follows the standard Micron power-calculator
//! decomposition for DDR2: per-command energies (an activate/precharge
//! pair, a read burst, a write burst, a refresh) plus background power
//! split into active-standby (some row open) and precharge-standby (all
//! rows closed) components.
//!
//! Energy is computed *post hoc* from the device's command counts and
//! busy-cycle statistics — no per-cycle hooks in the hot path. Values are
//! in nanojoules, with defaults approximating a 1 Gb ×8 DDR2-800 part at
//! 1.8 V; treat absolute numbers as representative, relative comparisons
//! (e.g. scheduler energy ablations) as the meaningful output.

use crate::device::DramDevice;

/// Per-command energies and background powers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Energy of one activate + its eventual precharge (nJ).
    pub e_act_pre: f64,
    /// Energy of one read burst beyond background (nJ).
    pub e_read: f64,
    /// Energy of one write burst beyond background (nJ).
    pub e_write: f64,
    /// Energy of one refresh command (nJ).
    pub e_refresh: f64,
    /// Active-standby power: nJ per DRAM cycle per bank with a row open.
    pub p_active_standby: f64,
    /// Precharge-standby power: nJ per DRAM cycle per idle bank.
    pub p_precharge_standby: f64,
}

impl PowerParams {
    /// Representative values for a 1 Gb ×8 DDR2-800 device (Micron power
    /// calculator methodology, rounded).
    pub const fn ddr2_800_typical() -> Self {
        PowerParams {
            e_act_pre: 3.0,
            e_read: 1.6,
            e_write: 1.7,
            e_refresh: 25.0,
            p_active_standby: 0.012,
            p_precharge_standby: 0.006,
        }
    }

    /// Validates that all parameters are non-negative.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("e_act_pre", self.e_act_pre),
            ("e_read", self.e_read),
            ("e_write", self.e_write),
            ("e_refresh", self.e_refresh),
            ("p_active_standby", self.p_active_standby),
            ("p_precharge_standby", self.p_precharge_standby),
        ] {
            // NaN must be rejected too, hence not a plain `v < 0.0`.
            if v.is_nan() || v < 0.0 {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::ddr2_800_typical()
    }
}

/// An energy breakdown for a measurement window, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Activate/precharge energy.
    pub activate: f64,
    /// Read burst energy.
    pub read: f64,
    /// Write burst energy.
    pub write: f64,
    /// Refresh energy.
    pub refresh: f64,
    /// Background (standby) energy.
    pub background: f64,
}

impl EnergyBreakdown {
    /// Total energy (nJ).
    pub fn total(&self) -> f64 {
        self.activate + self.read + self.write + self.refresh + self.background
    }

    /// Energy per useful data burst (nJ per read+write), a scheduler
    /// efficiency metric; 0.0 when no bursts completed.
    pub fn energy_per_access(&self, reads: u64, writes: u64) -> f64 {
        let n = reads + writes;
        if n == 0 {
            0.0
        } else {
            self.total() / n as f64
        }
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {:.1} nJ (act/pre {:.1}, rd {:.1}, wr {:.1}, ref {:.1}, bg {:.1})",
            self.total(),
            self.activate,
            self.read,
            self.write,
            self.refresh,
            self.background
        )
    }
}

/// Computes the energy consumed by `device` over a window of `elapsed`
/// DRAM cycles (the window the device's statistics cover — reset the
/// device stats at the window start).
///
/// # Example
///
/// ```
/// use fqms_dram::power::{estimate_energy, PowerParams};
/// use fqms_dram::prelude::*;
/// use fqms_sim::clock::DramCycle;
///
/// let mut dram = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
/// dram.issue(&Command::Activate {
///     rank: RankId::new(0), bank: BankId::new(0), row: RowId::new(1),
/// }, DramCycle::new(0));
/// dram.issue(&Command::Read {
///     rank: RankId::new(0), bank: BankId::new(0), col: ColId::new(0),
/// }, DramCycle::new(5));
/// dram.advance_stats(DramCycle::new(100));
/// let e = estimate_energy(&dram, 100, &PowerParams::ddr2_800_typical());
/// assert!(e.activate > 0.0 && e.read > 0.0 && e.background > 0.0);
/// ```
pub fn estimate_energy(device: &DramDevice, elapsed: u64, p: &PowerParams) -> EnergyBreakdown {
    let (acts, _pres, reads, writes, refreshes) = device.command_counts();
    let total_banks = device.geometry().total_banks() as u64;
    let active_bank_cycles = device.bank_busy_cycles();
    let idle_bank_cycles = (elapsed * total_banks).saturating_sub(active_bank_cycles);
    EnergyBreakdown {
        activate: acts as f64 * p.e_act_pre,
        read: reads as f64 * p.e_read,
        write: writes as f64 * p.e_write,
        refresh: refreshes as f64 * p.e_refresh,
        background: active_bank_cycles as f64 * p.p_active_standby
            + idle_bank_cycles as f64 * p.p_precharge_standby,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{BankId, ColId, Command, RankId, RowId};
    use crate::device::Geometry;
    use crate::timing::TimingParams;
    use fqms_sim::clock::DramCycle;

    fn device_with_traffic() -> DramDevice {
        let mut d = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
        d.issue(
            &Command::Activate {
                rank: RankId::new(0),
                bank: BankId::new(0),
                row: RowId::new(1),
            },
            DramCycle::new(0),
        );
        d.issue(
            &Command::Read {
                rank: RankId::new(0),
                bank: BankId::new(0),
                col: ColId::new(0),
            },
            DramCycle::new(5),
        );
        d.issue(
            &Command::Write {
                rank: RankId::new(0),
                bank: BankId::new(0),
                col: ColId::new(1),
            },
            DramCycle::new(10),
        );
        d.advance_stats(DramCycle::new(1000));
        d
    }

    #[test]
    fn typical_params_validate() {
        PowerParams::ddr2_800_typical().validate().unwrap();
    }

    #[test]
    fn negative_params_rejected() {
        let mut p = PowerParams::ddr2_800_typical();
        p.e_read = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn breakdown_accounts_every_command() {
        let d = device_with_traffic();
        let p = PowerParams::ddr2_800_typical();
        let e = estimate_energy(&d, 1000, &p);
        assert!((e.activate - p.e_act_pre).abs() < 1e-9);
        assert!((e.read - p.e_read).abs() < 1e-9);
        assert!((e.write - p.e_write).abs() < 1e-9);
        assert_eq!(e.refresh, 0.0);
        assert!(e.background > 0.0);
        assert!(e.total() > e.background);
    }

    #[test]
    fn idle_device_burns_only_background() {
        let mut d = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
        d.advance_stats(DramCycle::new(500));
        let p = PowerParams::ddr2_800_typical();
        let e = estimate_energy(&d, 500, &p);
        assert_eq!(e.activate + e.read + e.write + e.refresh, 0.0);
        // 8 idle banks x 500 cycles x precharge standby.
        let expected = 8.0 * 500.0 * p.p_precharge_standby;
        assert!((e.background - expected).abs() < 1e-9);
    }

    #[test]
    fn open_rows_cost_more_background_than_idle() {
        let mut open_dev = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
        open_dev.issue(
            &Command::Activate {
                rank: RankId::new(0),
                bank: BankId::new(0),
                row: RowId::new(1),
            },
            DramCycle::new(0),
        );
        open_dev.advance_stats(DramCycle::new(1000));
        let mut idle_dev = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
        idle_dev.advance_stats(DramCycle::new(1000));
        let p = PowerParams::ddr2_800_typical();
        let open_bg = estimate_energy(&open_dev, 1000, &p).background;
        let idle_bg = estimate_energy(&idle_dev, 1000, &p).background;
        assert!(open_bg > idle_bg);
    }

    #[test]
    fn energy_per_access_math() {
        let e = EnergyBreakdown {
            activate: 6.0,
            read: 3.2,
            write: 0.0,
            refresh: 0.0,
            background: 0.8,
        };
        assert!((e.energy_per_access(2, 0) - 5.0).abs() < 1e-9);
        assert_eq!(e.energy_per_access(0, 0), 0.0);
    }
}
