//! DDR2 timing constraints (the paper's Table 6).
//!
//! All values are in DRAM command-clock cycles. The paper's Table 6 caption
//! says "processor cycles", but the values match the Micron DDR2-800
//! datasheet in *memory* clock cycles exactly (tRCD = 5, tCL = 5, tRAS = 18,
//! tRC = 22, …), so we interpret them as DRAM cycles and convert to CPU
//! cycles at the reporting boundary (see `fqms_sim::clock::ClockDomains`).
//!
//! The private-memory baseline systems of the evaluation "time scale" these
//! constraints by `1/phi` — e.g. the two-processor baseline runs each thread
//! against a private memory with every constraint doubled and half the burst
//! bandwidth. [`TimingParams::time_scaled`] implements exactly that.

use std::fmt;

/// The full set of DDR2 timing constraints used by the simulator.
///
/// Field names follow the paper's Table 6 (which in turn follows the Micron
/// DDR2-800 datasheet). All values are in DRAM command-clock cycles.
///
/// # Example
///
/// ```
/// use fqms_dram::timing::TimingParams;
///
/// let t = TimingParams::ddr2_800();
/// assert_eq!(t.t_rcd, 5);
/// assert_eq!(t.t_ras, 18);
/// let slow = t.time_scaled(2);
/// assert_eq!(slow.t_rcd, 10);
/// assert_eq!(slow.burst, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Activate to read/write (RAS-to-CAS delay).
    pub t_rcd: u64,
    /// Read command to data-bus valid (CAS latency).
    pub t_cl: u64,
    /// Write command to data-bus valid (write latency).
    pub t_wl: u64,
    /// CAS to CAS (read or write) command spacing.
    pub t_ccd: u64,
    /// End of write data burst to a subsequent read command (same rank).
    pub t_wtr: u64,
    /// End of write data burst (internal write) to precharge.
    pub t_wr: u64,
    /// Internal read to precharge.
    pub t_rtp: u64,
    /// Precharge to activate (row precharge time).
    pub t_rp: u64,
    /// Activate to activate, different banks of the same rank.
    pub t_rrd: u64,
    /// Activate to precharge, same bank (row active time).
    pub t_ras: u64,
    /// Activate to activate, same bank (row cycle time).
    pub t_rc: u64,
    /// Data-bus cycles per cache-line transfer (`BL/2` for DDR: the burst
    /// length in data-bus *clock* cycles; 64-byte line over a 64-bit bus).
    pub burst: u64,
    /// Refresh command to activate (refresh cycle time).
    pub t_rfc: u64,
    /// Maximum refresh-to-refresh interval (refresh period).
    pub t_refi: u64,
    /// Four-activate window (rolling limit of 4 activates per rank per
    /// `t_faw` cycles). Real DDR2-800 parts specify ~18 cycles; the
    /// paper's Table 6 omits it, so the paper-faithful default is 0
    /// (disabled). Enable it for device-fidelity studies.
    pub t_faw: u64,
}

impl TimingParams {
    /// Micron DDR2-800 timing constraints, exactly as listed in the paper's
    /// Table 6.
    pub const fn ddr2_800() -> Self {
        TimingParams {
            t_rcd: 5,
            t_cl: 5,
            t_wl: 4,
            t_ccd: 2,
            t_wtr: 3,
            t_wr: 6,
            t_rtp: 3,
            t_rp: 5,
            t_rrd: 3,
            t_ras: 18,
            t_rc: 22,
            burst: 4,
            t_rfc: 510,
            t_refi: 280_000,
            t_faw: 0,
        }
    }

    /// DDR2-800 with the datasheet's four-activate window enabled
    /// (tFAW = 18 command-clock cycles), which the paper's Table 6 omits.
    pub const fn ddr2_800_with_tfaw() -> Self {
        let mut t = Self::ddr2_800();
        t.t_faw = 18;
        t
    }

    /// Micron DDR2-667 (333 MHz command clock, 5-5-5), in its own
    /// command-clock cycles. Pair with a CPU ratio of ~6 for a 2 GHz core.
    pub const fn ddr2_667() -> Self {
        TimingParams {
            t_rcd: 5,
            t_cl: 5,
            t_wl: 4,
            t_ccd: 2,
            t_wtr: 3,
            t_wr: 5,
            t_rtp: 3,
            t_rp: 5,
            t_rrd: 3,
            t_ras: 15,
            t_rc: 20,
            burst: 4,
            t_rfc: 43,
            t_refi: 2_600,
            t_faw: 0,
        }
    }

    /// Micron DDR2-533 (266 MHz command clock, 4-4-4), in its own
    /// command-clock cycles. Pair with a CPU ratio of ~8 for a 2 GHz core.
    pub const fn ddr2_533() -> Self {
        TimingParams {
            t_rcd: 4,
            t_cl: 4,
            t_wl: 3,
            t_ccd: 2,
            t_wtr: 2,
            t_wr: 4,
            t_rtp: 2,
            t_rp: 4,
            t_rrd: 2,
            t_ras: 12,
            t_rc: 16,
            burst: 4,
            t_rfc: 34,
            t_refi: 2_080,
            t_faw: 0,
        }
    }

    /// Returns these constraints time-scaled by an integer `factor`,
    /// modelling a private memory system running at `1/factor` of the
    /// physical memory's frequency (the paper's VTMS baseline: every timing
    /// constraint and the burst occupancy are multiplied by the factor).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn time_scaled(&self, factor: u64) -> Self {
        assert!(factor > 0, "time scale factor must be at least 1");
        TimingParams {
            t_rcd: self.t_rcd * factor,
            t_cl: self.t_cl * factor,
            t_wl: self.t_wl * factor,
            t_ccd: self.t_ccd * factor,
            t_wtr: self.t_wtr * factor,
            t_wr: self.t_wr * factor,
            t_rtp: self.t_rtp * factor,
            t_rp: self.t_rp * factor,
            t_rrd: self.t_rrd * factor,
            t_ras: self.t_ras * factor,
            t_rc: self.t_rc * factor,
            burst: self.burst * factor,
            t_rfc: self.t_rfc * factor,
            t_faw: self.t_faw * factor,
            // The refresh *period* is a property of the cells, not the
            // clock: a slower virtual memory must refresh equally often in
            // wall-clock terms, so the interval in scaled cycles shrinks by
            // the same factor the cycle time grew. Keeping the product
            // constant preserves the refresh duty cycle.
            t_refi: self.t_refi,
        }
    }

    /// Bank service time of a request that hits an open row (`t_CL`), per
    /// the paper's Table 3.
    pub fn service_row_hit(&self) -> u64 {
        self.t_cl
    }

    /// Bank service time of a request to a closed (precharged) bank
    /// (`t_RCD + t_CL`), per Table 3.
    pub fn service_closed(&self) -> u64 {
        self.t_rcd + self.t_cl
    }

    /// Bank service time of a request that conflicts with an open row
    /// (`t_RP + t_RCD + t_CL`), per Table 3.
    pub fn service_conflict(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl
    }

    /// The VTMS *precharge* update service time from Table 4:
    /// `t_RP + (t_RAS − t_RCD − t_CL)`, the extra bank occupancy between an
    /// activate and its precharge not already charged to the activate/CAS
    /// commands.
    pub fn precharge_update_service(&self) -> u64 {
        self.t_rp + self.t_ras.saturating_sub(self.t_rcd + self.t_cl)
    }

    /// Validates internal consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated relation:
    /// `t_RC >= t_RAS + t_RP` (a row cycle must cover active + precharge)
    /// and `t_RAS >= t_RCD` (a row must be open at least long enough to
    /// issue a CAS), all latencies non-zero, and the refresh interval beyond
    /// the refresh cycle time.
    pub fn validate(&self) -> Result<(), String> {
        // Note: the paper's Table 6 lists t_RC = 22 with t_RAS + t_RP = 23;
        // the bank FSM enforces t_RC and t_RP as independent gates, so the
        // effective same-bank activate spacing is max(t_RC, pre + t_RP) and
        // only t_RC >= t_RAS is structurally required here.
        if self.t_rc < self.t_ras {
            return Err(format!(
                "t_RC ({}) must be >= t_RAS ({})",
                self.t_rc, self.t_ras
            ));
        }
        if self.t_ras < self.t_rcd {
            return Err(format!(
                "t_RAS ({}) must be >= t_RCD ({})",
                self.t_ras, self.t_rcd
            ));
        }
        let positive = [
            ("t_RCD", self.t_rcd),
            ("t_CL", self.t_cl),
            ("t_WL", self.t_wl),
            ("t_CCD", self.t_ccd),
            ("t_RP", self.t_rp),
            ("t_RAS", self.t_ras),
            ("t_RC", self.t_rc),
            ("BL/2", self.burst),
            ("t_RFC", self.t_rfc),
            ("t_REFI", self.t_refi),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        if self.t_refi <= self.t_rfc {
            return Err(format!(
                "t_REFI ({}) must exceed t_RFC ({})",
                self.t_refi, self.t_rfc
            ));
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr2_800()
    }
}

impl fmt::Display for TimingParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tRCD={} tCL={} tWL={} tCCD={} tWTR={} tWR={} tRTP={} tRP={} \
             tRRD={} tRAS={} tRC={} BL/2={} tRFC={} tREFI={}",
            self.t_rcd,
            self.t_cl,
            self.t_wl,
            self.t_ccd,
            self.t_wtr,
            self.t_wr,
            self.t_rtp,
            self.t_rp,
            self.t_rrd,
            self.t_ras,
            self.t_rc,
            self.burst,
            self.t_rfc,
            self.t_refi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr2_800_matches_table_6() {
        let t = TimingParams::ddr2_800();
        assert_eq!(t.t_rcd, 5);
        assert_eq!(t.t_cl, 5);
        assert_eq!(t.t_wl, 4);
        assert_eq!(t.t_ccd, 2);
        assert_eq!(t.t_wtr, 3);
        assert_eq!(t.t_wr, 6);
        assert_eq!(t.t_rtp, 3);
        assert_eq!(t.t_rp, 5);
        assert_eq!(t.t_rrd, 3);
        assert_eq!(t.t_ras, 18);
        assert_eq!(t.t_rc, 22);
        assert_eq!(t.burst, 4);
        assert_eq!(t.t_rfc, 510);
        assert_eq!(t.t_refi, 280_000);
        // The paper omits tFAW; the paper-faithful default disables it.
        assert_eq!(t.t_faw, 0);
        assert_eq!(TimingParams::ddr2_800_with_tfaw().t_faw, 18);
    }

    #[test]
    fn ddr2_800_is_valid() {
        TimingParams::ddr2_800().validate().unwrap();
    }

    #[test]
    fn slower_speed_grades_are_valid() {
        TimingParams::ddr2_667().validate().unwrap();
        TimingParams::ddr2_533().validate().unwrap();
        // Slower grades have shorter row cycles in their own clocks.
        assert!(TimingParams::ddr2_667().t_rc < TimingParams::ddr2_800().t_rc);
        assert!(TimingParams::ddr2_533().t_rc < TimingParams::ddr2_667().t_rc);
    }

    #[test]
    fn time_scaled_preserves_validity() {
        for factor in 1..=8 {
            TimingParams::ddr2_800()
                .time_scaled(factor)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn time_scaled_doubles_constraints() {
        let t = TimingParams::ddr2_800().time_scaled(2);
        assert_eq!(t.t_cl, 10);
        assert_eq!(t.t_ras, 36);
        assert_eq!(t.t_rc, 44);
        assert_eq!(t.burst, 8);
        // Refresh duty cycle preserved: interval unchanged while tRFC grew.
        assert_eq!(t.t_refi, 280_000);
        assert_eq!(t.t_rfc, 1020);
    }

    #[test]
    #[should_panic]
    fn time_scale_zero_panics() {
        let _ = TimingParams::ddr2_800().time_scaled(0);
    }

    #[test]
    fn table_3_service_times() {
        let t = TimingParams::ddr2_800();
        assert_eq!(t.service_row_hit(), 5);
        assert_eq!(t.service_closed(), 10);
        assert_eq!(t.service_conflict(), 15);
    }

    #[test]
    fn table_4_precharge_update_service() {
        let t = TimingParams::ddr2_800();
        // tRP + (tRAS - tRCD - tCL) = 5 + (18 - 5 - 5) = 13.
        assert_eq!(t.precharge_update_service(), 13);
    }

    #[test]
    fn validate_catches_bad_trc() {
        let mut t = TimingParams::ddr2_800();
        t.t_rc = 10;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_zero_latency() {
        let mut t = TimingParams::ddr2_800();
        t.t_cl = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_refresh_inversion() {
        let mut t = TimingParams::ddr2_800();
        t.t_refi = t.t_rfc;
        assert!(t.validate().is_err());
    }
}
