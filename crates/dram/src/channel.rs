//! Channel- and rank-level constraint tracking.
//!
//! The channel scheduler (paper Section 2.2) "tracks the state of the
//! address bus, data bus, and ranks to ensure there are no channel
//! scheduling conflicts and that no rank timing constraints (e.g. tRRD) are
//! violated". This module is that tracker:
//!
//! * **address bus** — at most one command per cycle (enforced by the caller
//!   issuing at most one command per cycle; the tracker asserts it),
//! * **data bus** — burst occupancy windows must not overlap; each CAS
//!   reserves `BL/2` data-bus cycles starting `tCL`/`tWL` after the command,
//! * **tCCD** — minimum spacing between CAS commands,
//! * **tWTR** — end of a write burst to the next read command (same rank),
//! * **read-to-write turnaround** — a write may not be commanded while an
//!   earlier read still owns the bus at the write's data time,
//! * **tRRD** — activate-to-activate spacing across banks of a rank.

use crate::command::RankId;
use crate::timing::TimingParams;
use fqms_sim::clock::{DramCycle, NextEvent};
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Per-rank constraint state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RankState {
    /// Earliest cycle the next activate may issue to any bank of this rank
    /// (tRRD from the previous activate to *any* bank of the rank).
    next_activate: DramCycle,
    /// Earliest cycle the next read command may issue to this rank
    /// (tWTR from the end of the last write burst).
    next_read: DramCycle,
    /// Earliest cycle the rank is free of an in-progress refresh.
    refresh_done: DramCycle,
    /// Ring of the last four activate times (tFAW window).
    act_history: [DramCycle; 4],
    act_pos: usize,
    /// Activates issued to this rank (tFAW warm-up guard).
    act_count: u64,
}

impl RankState {
    fn new() -> Self {
        RankState {
            next_activate: DramCycle::ZERO,
            next_read: DramCycle::ZERO,
            refresh_done: DramCycle::ZERO,
            act_history: [DramCycle::ZERO; 4],
            act_pos: 0,
            act_count: 0,
        }
    }

    /// True if a fifth activate at `now` would violate the four-activate
    /// window `t_faw` (0 disables the check). The oldest of the last four
    /// activates must be at least `t_faw` cycles in the past.
    fn faw_allows(&self, now: DramCycle, t_faw: u64) -> bool {
        if t_faw == 0 || self.act_count < 4 {
            return true;
        }
        let oldest = self.act_history[self.act_pos];
        now.as_u64() >= oldest.as_u64() + t_faw
    }

    fn record_activate(&mut self, now: DramCycle) {
        self.act_history[self.act_pos] = now;
        self.act_pos = (self.act_pos + 1) % 4;
        self.act_count += 1;
    }
}

/// Tracks channel-wide (data bus, tCCD) and per-rank (tRRD, tWTR, refresh)
/// constraints.
///
/// # Example
///
/// ```
/// use fqms_dram::channel::ChannelTracker;
/// use fqms_dram::command::RankId;
/// use fqms_dram::timing::TimingParams;
/// use fqms_sim::clock::DramCycle;
///
/// let t = TimingParams::ddr2_800();
/// let mut ch = ChannelTracker::new(1);
/// let r0 = RankId::new(0);
/// assert!(ch.can_read(r0, DramCycle::new(0), &t));
/// ch.issue_read(r0, DramCycle::new(0), &t);
/// // tCCD = 2 blocks cycle 1; the busy data bus blocks cycles 2-3; the
/// // earliest seamless follow-up read is at cycle 4 (= BL/2).
/// assert!(!ch.can_read(r0, DramCycle::new(1), &t));
/// assert!(ch.can_read(r0, DramCycle::new(4), &t));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelTracker {
    ranks: Vec<RankState>,
    /// Cycle at which the data bus becomes free (end of the latest reserved
    /// burst). Bursts are reserved back-to-back, so a single register
    /// suffices for non-overlap.
    bus_free_at: DramCycle,
    /// Earliest cycle the next CAS command (read or write) may issue
    /// channel-wide (tCCD from the previous CAS).
    next_cas: DramCycle,
    /// Last cycle on which a command was issued (address-bus conflict
    /// detection).
    last_command_at: Option<DramCycle>,
    /// Total data-bus busy cycles accumulated (for utilization stats).
    bus_busy_cycles: u64,
}

impl ChannelTracker {
    /// Creates a tracker for a channel with `num_ranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `num_ranks` is zero.
    pub fn new(num_ranks: usize) -> Self {
        assert!(num_ranks > 0, "a channel needs at least one rank");
        ChannelTracker {
            ranks: vec![RankState::new(); num_ranks],
            bus_free_at: DramCycle::ZERO,
            next_cas: DramCycle::ZERO,
            last_command_at: None,
            bus_busy_cycles: 0,
        }
    }

    /// Number of ranks on the channel.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total cycles the data bus has been reserved so far (utilization
    /// numerator).
    pub fn bus_busy_cycles(&self) -> u64 {
        self.bus_busy_cycles
    }

    /// Cycle at which the data bus becomes free.
    pub fn bus_free_at(&self) -> DramCycle {
        self.bus_free_at
    }

    /// Zeroes the accumulated bus-busy statistics (constraint state is
    /// untouched); used to exclude warmup from measurement.
    pub fn reset_stats(&mut self) {
        self.bus_busy_cycles = 0;
    }

    fn rank(&self, rank: RankId) -> &RankState {
        &self.ranks[rank.as_usize()]
    }

    fn rank_mut(&mut self, rank: RankId) -> &mut RankState {
        &mut self.ranks[rank.as_usize()]
    }

    /// True if the rank is currently refreshing at `now`.
    pub fn rank_refreshing(&self, rank: RankId, now: DramCycle) -> bool {
        now < self.rank(rank).refresh_done
    }

    /// True if an activate to any bank of `rank` is legal at `now` w.r.t.
    /// rank-level constraints (tRRD, the tFAW four-activate window when
    /// enabled, refresh in progress).
    pub fn can_activate_timed(&self, rank: RankId, now: DramCycle, t: &TimingParams) -> bool {
        let r = self.rank(rank);
        now >= r.next_activate && now >= r.refresh_done && r.faw_allows(now, t.t_faw)
    }

    /// [`ChannelTracker::can_activate_timed`] without the tFAW check
    /// (kept for callers that have no timing handy; tFAW-disabled
    /// semantics).
    pub fn can_activate(&self, rank: RankId, now: DramCycle) -> bool {
        let r = self.rank(rank);
        now >= r.next_activate && now >= r.refresh_done
    }

    /// True if a read command to `rank` is legal at `now` w.r.t. channel
    /// constraints: tCCD, tWTR, refresh, and data-bus availability at the
    /// burst's start (`now + tCL`).
    pub fn can_read(&self, rank: RankId, now: DramCycle, t: &TimingParams) -> bool {
        let r = self.rank(rank);
        now >= self.next_cas
            && now >= r.next_read
            && now >= r.refresh_done
            && now + t.t_cl >= self.bus_free_at
    }

    /// True if a write command to `rank` is legal at `now` w.r.t. channel
    /// constraints: tCCD, refresh, and data-bus availability at
    /// `now + tWL`.
    pub fn can_write(&self, rank: RankId, now: DramCycle, t: &TimingParams) -> bool {
        let r = self.rank(rank);
        now >= self.next_cas && now >= r.refresh_done && now + t.t_wl >= self.bus_free_at
    }

    /// True if a precharge to `rank` is legal at `now` w.r.t. channel
    /// constraints (only an in-progress refresh blocks it at this level).
    pub fn can_precharge(&self, rank: RankId, now: DramCycle) -> bool {
        now >= self.rank(rank).refresh_done
    }

    /// True if a refresh to `rank` may start at `now` (no other refresh in
    /// progress on the rank). Bank-precharged preconditions are checked by
    /// the device.
    pub fn can_refresh(&self, rank: RankId, now: DramCycle) -> bool {
        now >= self.rank(rank).refresh_done
    }

    /// Earliest *strictly future* cycle at which any channel-level
    /// readiness predicate can flip from false to true, or
    /// [`DramCycle::MAX`] if all constraints are already settled.
    ///
    /// Channel state mutates only when a command issues, so between issues
    /// every predicate is a monotone function of time with these flip
    /// points: per-rank `next_activate` (tRRD), `next_read` (tWTR),
    /// `refresh_done` (tRFC), the tFAW window expiry of the oldest of the
    /// last four activates, the channel-wide `next_cas` (tCCD), and the
    /// data-bus release as seen by a CAS command (`bus_free_at - tCL` for
    /// reads, `bus_free_at - tWL` for writes, since a CAS at `c` needs the
    /// bus only at `c + tCL`/`c + tWL`).
    pub fn next_event_cycle(&self, now: DramCycle, t: &TimingParams) -> DramCycle {
        let mut ev = NextEvent::after(now);
        ev.consider(self.next_cas);
        let bus = self.bus_free_at.as_u64();
        ev.consider(DramCycle::new(bus.saturating_sub(t.t_cl)));
        ev.consider(DramCycle::new(bus.saturating_sub(t.t_wl)));
        for r in &self.ranks {
            ev.consider(r.next_activate);
            ev.consider(r.next_read);
            ev.consider(r.refresh_done);
            if t.t_faw > 0 && r.act_count >= 4 {
                ev.consider(r.act_history[r.act_pos].saturating_add(t.t_faw));
            }
        }
        ev.earliest()
    }

    fn note_command(&mut self, now: DramCycle) {
        if let Some(last) = self.last_command_at {
            assert!(
                now > last || self.last_command_at.is_none(),
                "address-bus conflict: two commands at cycle {now}"
            );
        }
        self.last_command_at = Some(now);
    }

    /// Records an activate to `rank` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the activate violates rank constraints.
    pub fn issue_activate(&mut self, rank: RankId, now: DramCycle, t: &TimingParams) {
        assert!(
            self.can_activate_timed(rank, now, t),
            "illegal rank ACT at {now}"
        );
        self.note_command(now);
        let r = self.rank_mut(rank);
        r.next_activate = now + t.t_rrd;
        r.record_activate(now);
    }

    /// Records a read to `rank` at `now`; reserves the data bus for
    /// `[now + tCL, now + tCL + BL/2)`.
    ///
    /// # Panics
    ///
    /// Panics if the read violates channel constraints.
    pub fn issue_read(&mut self, rank: RankId, now: DramCycle, t: &TimingParams) {
        assert!(self.can_read(rank, now, t), "illegal channel RD at {now}");
        self.note_command(now);
        self.next_cas = now + t.t_ccd;
        self.reserve_bus(now + t.t_cl, t.burst);
    }

    /// Records a write to `rank` at `now`; reserves the data bus for
    /// `[now + tWL, now + tWL + BL/2)` and arms tWTR for subsequent reads
    /// on the rank.
    ///
    /// # Panics
    ///
    /// Panics if the write violates channel constraints.
    pub fn issue_write(&mut self, rank: RankId, now: DramCycle, t: &TimingParams) {
        assert!(self.can_write(rank, now, t), "illegal channel WR at {now}");
        self.note_command(now);
        self.next_cas = now + t.t_ccd;
        let burst_end = now + t.t_wl + t.burst;
        self.reserve_bus(now + t.t_wl, t.burst);
        let r = self.rank_mut(rank);
        r.next_read = r.next_read.max(burst_end + t.t_wtr);
    }

    /// Records a precharge command (address-bus accounting only).
    pub fn issue_precharge(&mut self, rank: RankId, now: DramCycle) {
        assert!(
            self.can_precharge(rank, now),
            "illegal channel PRE at {now}"
        );
        self.note_command(now);
    }

    /// Records a refresh to `rank` at `now`; the rank is unavailable for
    /// tRFC cycles.
    ///
    /// # Panics
    ///
    /// Panics if a refresh is already in progress on the rank.
    pub fn issue_refresh(&mut self, rank: RankId, now: DramCycle, t: &TimingParams) {
        assert!(self.can_refresh(rank, now), "illegal REF at {now}");
        self.note_command(now);
        self.rank_mut(rank).refresh_done = now + t.t_rfc;
    }

    fn reserve_bus(&mut self, start: DramCycle, cycles: u64) {
        debug_assert!(
            start >= self.bus_free_at,
            "data-bus overlap: burst at {start} but bus busy until {}",
            self.bus_free_at
        );
        self.bus_free_at = start + cycles;
        self.bus_busy_cycles += cycles;
    }
}

impl Snapshot for ChannelTracker {
    fn save(&self, w: &mut SectionWriter) {
        w.put_seq_len(self.ranks.len());
        for r in &self.ranks {
            w.put_u64(r.next_activate.as_u64());
            w.put_u64(r.next_read.as_u64());
            w.put_u64(r.refresh_done.as_u64());
            for act in r.act_history {
                w.put_u64(act.as_u64());
            }
            w.put_usize(r.act_pos);
            w.put_u64(r.act_count);
        }
        w.put_u64(self.bus_free_at.as_u64());
        w.put_u64(self.next_cas.as_u64());
        w.put_opt_u64(self.last_command_at.map(DramCycle::as_u64));
        w.put_u64(self.bus_busy_cycles);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let n = r.seq_len()?;
        if n != self.ranks.len() {
            return Err(r.malformed(format!(
                "snapshot has {n} ranks, channel has {}",
                self.ranks.len()
            )));
        }
        for rank in &mut self.ranks {
            rank.next_activate = DramCycle::new(r.get_u64()?);
            rank.next_read = DramCycle::new(r.get_u64()?);
            rank.refresh_done = DramCycle::new(r.get_u64()?);
            for act in &mut rank.act_history {
                *act = DramCycle::new(r.get_u64()?);
            }
            let pos = r.get_usize()?;
            if pos >= 4 {
                return Err(r.malformed(format!("tFAW ring position {pos} out of range")));
            }
            rank.act_pos = pos;
            rank.act_count = r.get_u64()?;
        }
        self.bus_free_at = DramCycle::new(r.get_u64()?);
        self.next_cas = DramCycle::new(r.get_u64()?);
        self.last_command_at = r.get_opt_u64()?.map(DramCycle::new);
        self.bus_busy_cycles = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr2_800()
    }

    fn r0() -> RankId {
        RankId::new(0)
    }

    #[test]
    fn fresh_channel_allows_everything() {
        let ch = ChannelTracker::new(2);
        assert_eq!(ch.num_ranks(), 2);
        assert!(ch.can_activate(r0(), DramCycle::ZERO));
        assert!(ch.can_read(r0(), DramCycle::ZERO, &t()));
        assert!(ch.can_write(r0(), DramCycle::ZERO, &t()));
        assert_eq!(ch.bus_busy_cycles(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = ChannelTracker::new(0);
    }

    #[test]
    fn trrd_spacing_between_activates() {
        let mut ch = ChannelTracker::new(1);
        ch.issue_activate(r0(), DramCycle::new(0), &t());
        assert!(!ch.can_activate(r0(), DramCycle::new(2)));
        assert!(ch.can_activate(r0(), DramCycle::new(3))); // tRRD = 3
    }

    #[test]
    fn tccd_spacing_between_cas() {
        let mut ch = ChannelTracker::new(1);
        ch.issue_read(r0(), DramCycle::new(0), &t());
        // Cycle 1: blocked by tCCD (= 2). Cycles 2-3: tCCD ok but the data
        // bus is busy until 9, so a read (data at now+tCL) must wait until
        // its burst starts exactly when the previous one ends.
        assert!(!ch.can_read(r0(), DramCycle::new(1), &t()));
        assert!(!ch.can_read(r0(), DramCycle::new(3), &t()));
        assert!(ch.can_read(r0(), DramCycle::new(4), &t()));
    }

    #[test]
    fn data_bus_overlap_blocks_cas() {
        let tp = t();
        let mut ch = ChannelTracker::new(1);
        // Read at 0 -> bus [5, 9).
        ch.issue_read(r0(), DramCycle::new(0), &tp);
        // Write at 3 -> data at 3 + tWL(4) = 7, overlaps [5,9) -> illegal.
        assert!(!ch.can_write(r0(), DramCycle::new(3), &tp));
        // Write at 5 -> data at 9, exactly back-to-back -> legal.
        assert!(ch.can_write(r0(), DramCycle::new(5), &tp));
    }

    #[test]
    fn twtr_blocks_read_after_write() {
        let tp = t();
        let mut ch = ChannelTracker::new(1);
        // Write at 0: burst [4, 8); tWTR=3 -> reads blocked until 11.
        ch.issue_write(r0(), DramCycle::new(0), &tp);
        assert!(!ch.can_read(r0(), DramCycle::new(10), &tp));
        assert!(ch.can_read(r0(), DramCycle::new(11), &tp));
    }

    #[test]
    fn twtr_is_per_rank() {
        let tp = t();
        let mut ch = ChannelTracker::new(2);
        ch.issue_write(r0(), DramCycle::new(0), &tp);
        let r1 = RankId::new(1);
        // Other rank is not tWTR-blocked, only bus/tCCD-blocked.
        // At cycle 4: tCCD ok (>=2), bus: read data at 4+5=9 >= bus_free 8 ok.
        assert!(ch.can_read(r1, DramCycle::new(4), &tp));
    }

    #[test]
    fn refresh_locks_rank_for_trfc() {
        let tp = t();
        let mut ch = ChannelTracker::new(1);
        ch.issue_refresh(r0(), DramCycle::new(0), &tp);
        assert!(ch.rank_refreshing(r0(), DramCycle::new(509)));
        assert!(!ch.can_activate(r0(), DramCycle::new(509)));
        assert!(!ch.can_read(r0(), DramCycle::new(509), &tp));
        assert!(ch.can_activate(r0(), DramCycle::new(510)));
    }

    #[test]
    fn bus_busy_accumulates() {
        let tp = t();
        let mut ch = ChannelTracker::new(1);
        ch.issue_read(r0(), DramCycle::new(0), &tp);
        ch.issue_read(r0(), DramCycle::new(4), &tp);
        assert_eq!(ch.bus_busy_cycles(), 8); // two 4-cycle bursts
    }

    #[test]
    fn tfaw_limits_activate_rate() {
        let tp = TimingParams::ddr2_800_with_tfaw(); // tFAW = 18
        let mut ch = ChannelTracker::new(1);
        // Four activates at the tRRD floor: 0, 3, 6, 9.
        for &c in &[0u64, 3, 6, 9] {
            assert!(ch.can_activate_timed(r0(), DramCycle::new(c), &tp));
            ch.issue_activate(r0(), DramCycle::new(c), &tp);
        }
        // A fifth must wait until the first leaves the window: 0 + 18.
        assert!(!ch.can_activate_timed(r0(), DramCycle::new(12), &tp));
        assert!(!ch.can_activate_timed(r0(), DramCycle::new(17), &tp));
        assert!(ch.can_activate_timed(r0(), DramCycle::new(18), &tp));
        // Disabled tFAW never blocks.
        let free = TimingParams::ddr2_800();
        let mut ch2 = ChannelTracker::new(1);
        for &c in &[0u64, 3, 6, 9, 12] {
            assert!(ch2.can_activate_timed(r0(), DramCycle::new(c), &free));
            ch2.issue_activate(r0(), DramCycle::new(c), &free);
        }
    }

    #[test]
    fn tfaw_is_per_rank() {
        let tp = TimingParams::ddr2_800_with_tfaw();
        let mut ch = ChannelTracker::new(2);
        for &c in &[0u64, 3, 6, 9] {
            ch.issue_activate(r0(), DramCycle::new(c), &tp);
        }
        // Rank 1 is unconstrained by rank 0's window.
        assert!(ch.can_activate_timed(RankId::new(1), DramCycle::new(12), &tp));
    }

    #[test]
    fn next_event_tracks_channel_thresholds() {
        let tp = t();
        let mut ch = ChannelTracker::new(1);
        // Idle channel: nothing scheduled.
        assert_eq!(ch.next_event_cycle(DramCycle::ZERO, &tp), DramCycle::MAX);
        // Read at 0: next_cas = 2 (tCCD), bus [5, 9) so a follow-up read is
        // bus-legal from 9 - tCL = 4, a write from 9 - tWL = 5.
        ch.issue_read(r0(), DramCycle::new(0), &tp);
        assert_eq!(
            ch.next_event_cycle(DramCycle::new(0), &tp),
            DramCycle::new(2)
        );
        assert_eq!(
            ch.next_event_cycle(DramCycle::new(2), &tp),
            DramCycle::new(4)
        );
        assert_eq!(
            ch.next_event_cycle(DramCycle::new(4), &tp),
            DramCycle::new(5)
        );
        assert_eq!(ch.next_event_cycle(DramCycle::new(5), &tp), DramCycle::MAX);
    }

    #[test]
    fn next_event_includes_refresh_and_tfaw() {
        let tp = TimingParams::ddr2_800_with_tfaw();
        let mut ch = ChannelTracker::new(1);
        for &c in &[0u64, 3, 6, 9] {
            ch.issue_activate(r0(), DramCycle::new(c), &tp);
        }
        // tRRD expires at 12, but tFAW holds the fifth ACT until 18.
        assert_eq!(
            ch.next_event_cycle(DramCycle::new(12), &tp),
            DramCycle::new(18)
        );
        let mut ch2 = ChannelTracker::new(1);
        ch2.issue_refresh(r0(), DramCycle::new(0), &tp);
        assert_eq!(
            ch2.next_event_cycle(DramCycle::new(0), &tp),
            DramCycle::new(tp.t_rfc)
        );
    }

    /// Property check: between `now` and the reported next event, no
    /// channel readiness predicate may flip — skipping those cycles is
    /// provably safe.
    #[test]
    fn next_event_never_skips_a_readiness_flip() {
        let tp = TimingParams::ddr2_800_with_tfaw();
        let mut ch = ChannelTracker::new(2);
        let r1 = RankId::new(1);
        ch.issue_activate(r0(), DramCycle::new(0), &tp);
        ch.issue_write(r0(), DramCycle::new(3), &tp);
        ch.issue_refresh(r1, DramCycle::new(5), &tp);
        let probe = |ch: &ChannelTracker, c: u64| {
            let now = DramCycle::new(c);
            let mut v = Vec::new();
            for r in [r0(), r1] {
                v.push(ch.can_activate_timed(r, now, &tp));
                v.push(ch.can_read(r, now, &tp));
                v.push(ch.can_write(r, now, &tp));
                v.push(ch.can_precharge(r, now));
                v.push(ch.can_refresh(r, now));
            }
            v
        };
        let horizon = tp.t_rfc + 16;
        let mut c = 6u64;
        while c < horizon {
            let next = ch.next_event_cycle(DramCycle::new(c), &tp).as_u64();
            let stop = next.min(horizon);
            let baseline = probe(&ch, c);
            for mid in c + 1..stop {
                assert_eq!(
                    probe(&ch, mid),
                    baseline,
                    "readiness flipped at {mid} inside skip window ({c}, {next})"
                );
            }
            if next >= horizon {
                break;
            }
            c = next;
        }
    }

    #[test]
    #[should_panic]
    fn two_commands_same_cycle_panics() {
        let tp = t();
        let mut ch = ChannelTracker::new(2);
        ch.issue_activate(RankId::new(0), DramCycle::new(5), &tp);
        ch.issue_activate(RankId::new(1), DramCycle::new(5), &tp);
    }
}
