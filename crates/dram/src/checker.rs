//! Independent DDR2 protocol conformance checker.
//!
//! [`ProtocolChecker`] re-validates an *issued command stream* against the
//! DDR2 timing rules using a deliberately different formulation from the
//! live [`crate::bank`]/[`crate::channel`] trackers: instead of
//! earliest-next-issue registers, it keeps the full per-bank command
//! history and checks every pairwise constraint by subtraction. This gives
//! the test suite a second, independently derived opinion — a scheduler or
//! device bug would have to be made twice, in two different forms, to slip
//! through differential testing.
//!
//! The checker is an offline/test facility: it favours clarity over speed.

use crate::command::Command;
use crate::timing::TimingParams;
use fqms_sim::clock::DramCycle;
use std::collections::HashMap;

/// A protocol violation detected by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle of the offending command.
    pub cycle: DramCycle,
    /// The offending command.
    pub cmd: Command,
    /// Human-readable rule description.
    pub rule: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}: {}", self.cmd, self.cycle, self.rule)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankHistory {
    open: bool,
    last_activate: Option<u64>,
    last_read: Option<u64>,
    last_write: Option<u64>,
    last_precharge: Option<u64>,
    last_refresh_end: Option<u64>,
}

/// Replays a command stream and reports every timing-rule violation.
///
/// # Example
///
/// ```
/// use fqms_dram::checker::ProtocolChecker;
/// use fqms_dram::command::{Command, RankId, BankId, RowId, ColId};
/// use fqms_dram::timing::TimingParams;
/// use fqms_sim::clock::DramCycle;
///
/// let mut chk = ProtocolChecker::new(TimingParams::ddr2_800());
/// let rank = RankId::new(0);
/// let bank = BankId::new(0);
/// chk.check(DramCycle::new(0), &Command::Activate { rank, bank, row: RowId::new(1) });
/// // A read 2 cycles later violates tRCD = 5:
/// chk.check(DramCycle::new(2), &Command::Read { rank, bank, col: ColId::new(0) });
/// assert_eq!(chk.violations().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    t: TimingParams,
    banks: HashMap<(u32, u32), BankHistory>,
    /// Per-rank activate history (newest first) for tRRD/tFAW.
    rank_activates: HashMap<u32, Vec<u64>>,
    /// All CAS issue times (newest last) for tCCD and bus occupancy.
    cas_times: Vec<(u64, bool)>, // (cycle, is_write)
    /// Per-rank last write burst end, for tWTR.
    write_burst_end: HashMap<u32, u64>,
    violations: Vec<Violation>,
    commands_checked: u64,
}

impl ProtocolChecker {
    /// Creates a checker for the given timing parameters.
    pub fn new(t: TimingParams) -> Self {
        ProtocolChecker {
            t,
            banks: HashMap::new(),
            rank_activates: HashMap::new(),
            cas_times: Vec::new(),
            write_burst_end: HashMap::new(),
            violations: Vec::new(),
            commands_checked: 0,
        }
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Commands checked so far.
    pub fn commands_checked(&self) -> u64 {
        self.commands_checked
    }

    /// True if no rule has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn flag(&mut self, cycle: DramCycle, cmd: &Command, rule: impl Into<String>) {
        self.violations.push(Violation {
            cycle,
            cmd: *cmd,
            rule: rule.into(),
        });
    }

    fn require(
        &mut self,
        cycle: DramCycle,
        cmd: &Command,
        earliest: Option<u64>,
        gap: u64,
        rule: &str,
    ) {
        if let Some(prev) = earliest {
            if cycle.as_u64() < prev + gap {
                self.flag(
                    cycle,
                    cmd,
                    format!("{rule}: needs {gap} cycles after {prev}, issued at {cycle}"),
                );
            }
        }
    }

    /// Validates and records one issued command.
    pub fn check(&mut self, cycle: DramCycle, cmd: &Command) {
        self.commands_checked += 1;
        let now = cycle.as_u64();
        let t = self.t;
        match *cmd {
            Command::Activate { rank, bank, .. } => {
                let key = (rank.as_u32(), bank.as_u32());
                let h = self.banks.get(&key).copied().unwrap_or_default();
                if h.open {
                    self.flag(cycle, cmd, "ACT to a bank with an open row");
                }
                self.require(cycle, cmd, h.last_activate, t.t_rc, "tRC");
                self.require(cycle, cmd, h.last_precharge, t.t_rp, "tRP");
                self.require(cycle, cmd, h.last_refresh_end, 0, "tRFC");
                // Rank-level: tRRD vs the most recent activate; tFAW vs the
                // 4th most recent.
                let acts = self
                    .rank_activates
                    .get(&rank.as_u32())
                    .cloned()
                    .unwrap_or_default();
                if let Some(&latest) = acts.last() {
                    if now < latest + t.t_rrd {
                        self.flag(cycle, cmd, format!("tRRD: ACT at {latest}"));
                    }
                }
                if t.t_faw > 0 && acts.len() >= 4 {
                    let fourth = acts[acts.len() - 4];
                    if now < fourth + t.t_faw {
                        self.flag(cycle, cmd, format!("tFAW: four ACTs since {fourth}"));
                    }
                }
                self.rank_activates
                    .entry(rank.as_u32())
                    .or_default()
                    .push(now);
                let h = self.banks.entry(key).or_default();
                h.open = true;
                h.last_activate = Some(now);
            }
            Command::Read { rank, bank, .. } | Command::Write { rank, bank, .. } => {
                let is_write = matches!(cmd, Command::Write { .. });
                let key = (rank.as_u32(), bank.as_u32());
                let h = self.banks.get(&key).copied().unwrap_or_default();
                if !h.open {
                    self.flag(cycle, cmd, "CAS to a bank with no open row");
                }
                self.require(cycle, cmd, h.last_activate, t.t_rcd, "tRCD");
                if let Some(&(prev, _)) = self.cas_times.last() {
                    if now < prev + t.t_ccd {
                        self.flag(cycle, cmd, format!("tCCD: CAS at {prev}"));
                    }
                }
                // Data bus: this burst must start at or after the previous
                // burst's end.
                let start = now + if is_write { t.t_wl } else { t.t_cl };
                if let Some(&(prev, prev_write)) = self.cas_times.last() {
                    let prev_start = prev + if prev_write { t.t_wl } else { t.t_cl };
                    let prev_end = prev_start + t.burst;
                    if start < prev_end {
                        self.flag(
                            cycle,
                            cmd,
                            format!(
                                "data-bus overlap: burst at {start}, bus busy until {prev_end}"
                            ),
                        );
                    }
                }
                // tWTR: read after a write burst on the same rank.
                if !is_write {
                    if let Some(&end) = self.write_burst_end.get(&rank.as_u32()) {
                        if now < end + t.t_wtr {
                            self.flag(cycle, cmd, format!("tWTR: write burst ended {end}"));
                        }
                    }
                }
                self.cas_times.push((now, is_write));
                let h = self.banks.entry(key).or_default();
                if is_write {
                    h.last_write = Some(now);
                    self.write_burst_end
                        .insert(rank.as_u32(), now + t.t_wl + t.burst);
                } else {
                    h.last_read = Some(now);
                }
            }
            Command::Precharge { rank, bank } => {
                let key = (rank.as_u32(), bank.as_u32());
                let h = self.banks.get(&key).copied().unwrap_or_default();
                if !h.open {
                    self.flag(cycle, cmd, "PRE on a closed bank");
                }
                self.require(cycle, cmd, h.last_activate, t.t_ras, "tRAS");
                self.require(cycle, cmd, h.last_read, t.t_rtp, "tRTP");
                // Write recovery: tWL + burst + tWR after the write command.
                self.require(
                    cycle,
                    cmd,
                    h.last_write,
                    t.t_wl + t.burst + t.t_wr,
                    "write recovery",
                );
                let h = self.banks.entry(key).or_default();
                h.open = false;
                h.last_precharge = Some(now);
            }
            Command::Refresh { rank } => {
                // Every bank of the rank must be precharged and past tRP.
                for ((r, _b), h) in self.banks.iter() {
                    if *r == rank.as_u32() && h.open {
                        self.flag(cycle, cmd, "REF with an open row");
                        break;
                    }
                }
                for b in 0..1024u32 {
                    // Only banks we have seen.
                    let key = (rank.as_u32(), b);
                    let Some(h) = self.banks.get(&key).copied() else {
                        continue;
                    };
                    if let Some(pre) = h.last_precharge {
                        if now < pre + self.t.t_rp {
                            self.flag(cycle, cmd, format!("REF before tRP of bank {b}"));
                            break;
                        }
                    }
                }
                let rank_u = rank.as_u32();
                let end = now + self.t.t_rfc;
                for b in 0..1024u32 {
                    let key = (rank_u, b);
                    if let Some(h) = self.banks.get_mut(&key) {
                        h.last_refresh_end = Some(end);
                    }
                }
            }
        }
    }

    /// Convenience: validate a whole `(cycle, command)` stream, e.g. a
    /// drained [`crate::prelude::Command`] log. Returns the violations.
    pub fn check_stream<'a, I>(&mut self, stream: I) -> &[Violation]
    where
        I: IntoIterator<Item = (DramCycle, &'a Command)>,
    {
        for (cycle, cmd) in stream {
            self.check(cycle, cmd);
        }
        self.violations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{BankId, ColId, RankId, RowId};

    fn act(bank: u32, row: u32) -> Command {
        Command::Activate {
            rank: RankId::new(0),
            bank: BankId::new(bank),
            row: RowId::new(row),
        }
    }

    fn rd(bank: u32) -> Command {
        Command::Read {
            rank: RankId::new(0),
            bank: BankId::new(bank),
            col: ColId::new(0),
        }
    }

    fn wr(bank: u32) -> Command {
        Command::Write {
            rank: RankId::new(0),
            bank: BankId::new(bank),
            col: ColId::new(0),
        }
    }

    fn pre(bank: u32) -> Command {
        Command::Precharge {
            rank: RankId::new(0),
            bank: BankId::new(bank),
        }
    }

    fn chk() -> ProtocolChecker {
        ProtocolChecker::new(TimingParams::ddr2_800())
    }

    #[test]
    fn legal_transaction_is_clean() {
        let mut c = chk();
        c.check(DramCycle::new(0), &act(0, 1));
        c.check(DramCycle::new(5), &rd(0));
        c.check(DramCycle::new(18), &pre(0));
        c.check(DramCycle::new(23), &act(0, 2));
        assert!(c.is_clean(), "{:?}", c.violations());
        assert_eq!(c.commands_checked(), 4);
    }

    #[test]
    fn trcd_violation_detected() {
        let mut c = chk();
        c.check(DramCycle::new(0), &act(0, 1));
        c.check(DramCycle::new(3), &rd(0));
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].rule.contains("tRCD"));
    }

    #[test]
    fn tras_violation_detected() {
        let mut c = chk();
        c.check(DramCycle::new(0), &act(0, 1));
        c.check(DramCycle::new(10), &pre(0));
        assert!(c.violations().iter().any(|v| v.rule.contains("tRAS")));
    }

    #[test]
    fn cas_without_open_row_detected() {
        let mut c = chk();
        c.check(DramCycle::new(0), &rd(0));
        assert!(c.violations()[0].rule.contains("no open row"));
    }

    #[test]
    fn double_activate_detected() {
        let mut c = chk();
        c.check(DramCycle::new(0), &act(0, 1));
        c.check(DramCycle::new(30), &act(0, 2));
        assert!(c.violations().iter().any(|v| v.rule.contains("open row")));
    }

    #[test]
    fn data_bus_overlap_detected() {
        let mut c = chk();
        c.check(DramCycle::new(0), &act(0, 1));
        c.check(DramCycle::new(3), &act(1, 1));
        c.check(DramCycle::new(8), &rd(0));
        // Read 2 cycles later: tCCD ok... no, tCCD = 2 so legal at 10, but
        // its burst at 15 overlaps the first burst [13, 17).
        c.check(DramCycle::new(10), &rd(1));
        assert!(c
            .violations()
            .iter()
            .any(|v| v.rule.contains("data-bus overlap")));
    }

    #[test]
    fn twtr_violation_detected() {
        let mut c = chk();
        c.check(DramCycle::new(0), &act(0, 1));
        c.check(DramCycle::new(5), &wr(0));
        // Write burst ends at 5 + 4 + 4 = 13; read before 13 + 3 = 16 is
        // illegal (also bus-legal at 12: 12+5=17 >= 13).
        c.check(DramCycle::new(14), &rd(0));
        assert!(c.violations().iter().any(|v| v.rule.contains("tWTR")));
    }

    #[test]
    fn write_recovery_violation_detected() {
        let mut c = chk();
        c.check(DramCycle::new(0), &act(0, 1));
        c.check(DramCycle::new(5), &wr(0));
        // Precharge before 5 + 4 + 4 + 6 = 19 is illegal.
        c.check(DramCycle::new(18), &pre(0));
        assert!(c
            .violations()
            .iter()
            .any(|v| v.rule.contains("write recovery")));
    }

    #[test]
    fn tfaw_violation_detected_when_enabled() {
        let mut c = ProtocolChecker::new(TimingParams::ddr2_800_with_tfaw());
        for (i, cyc) in [0u64, 3, 6, 9].iter().enumerate() {
            c.check(DramCycle::new(*cyc), &act(i as u32, 1));
        }
        c.check(DramCycle::new(12), &act(4, 1));
        assert!(c.violations().iter().any(|v| v.rule.contains("tFAW")));
    }
}
