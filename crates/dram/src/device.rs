//! The assembled DRAM device: ranks × banks behind one channel.
//!
//! [`DramDevice`] is the single point through which a memory controller
//! interacts with memory. It answers *readiness* queries ("could this
//! command legally issue this cycle?") by combining bank-level and
//! channel-level constraints, applies issued commands to both trackers, and
//! keeps the utilization statistics the paper's evaluation reports (data-bus
//! utilization, bank utilization).
//!
//! Refresh is handled here: once every `tREFI` cycles each rank must receive
//! a refresh command; the device exposes [`DramDevice::refresh_urgent`] and
//! the controller issues the refresh like any other command (all banks of
//! the rank must first be precharged).

use crate::bank::{Bank, BankState};
use crate::channel::ChannelTracker;
use crate::command::{BankId, Command, RankId, RowId};
use crate::timing::TimingParams;
use fqms_sim::bitset::DenseBitSet;
use fqms_sim::clock::{DramCycle, NextEvent};
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Geometry of the memory system: ranks per channel, banks per rank, rows
/// per bank, columns (cache lines) per row.
///
/// The paper's configuration (Table 5) is 1 channel × 1 rank × 8 banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Ranks on the channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line columns per row. With 64-byte lines, a 2 KiB row holds 32
    /// lines.
    pub cols: u32,
}

impl Geometry {
    /// The paper's Table 5 memory geometry: 1 rank, 8 banks, and a
    /// representative 1 Gb DDR2 part (16K rows × 32 cache lines per row).
    pub const fn paper() -> Self {
        Geometry {
            ranks: 1,
            banks: 8,
            rows: 16_384,
            cols: 32,
        }
    }

    /// Total banks across all ranks.
    pub fn total_banks(&self) -> u32 {
        self.ranks * self.banks
    }

    /// The contiguous global-bank slice owned by partition `part` when the
    /// bank space is split among `parts` partitions, as `(start, len)`.
    ///
    /// Used by the real-time regulation mode (ISSUE 9): each thread's
    /// decoded bank index is folded into its own slice so cross-thread row
    /// conflicts vanish. When there are more partitions than banks every
    /// slice degenerates to a single bank (`len == 1`) and slices wrap —
    /// the WCET analysis rejects that overlapping shape, but the mapping
    /// itself stays total and deterministic.
    ///
    /// # Example
    ///
    /// ```
    /// use fqms_dram::device::Geometry;
    ///
    /// let g = Geometry::paper(); // 8 banks
    /// assert_eq!(g.partition_slice(0, 4), (0, 2));
    /// assert_eq!(g.partition_slice(3, 4), (6, 2));
    /// // More partitions than banks: one wrapped bank each.
    /// assert_eq!(g.partition_slice(9, 16), (1, 1));
    /// ```
    pub fn partition_slice(&self, part: u32, parts: u32) -> (u32, u32) {
        let total = self.total_banks();
        let parts = parts.max(1);
        let len = (total / parts).max(1);
        let start = (part % parts).saturating_mul(len) % total;
        (start, len)
    }

    /// Validates that every dimension is non-zero and a power of two (the
    /// XOR address mapping requires power-of-two dimensions).
    ///
    /// # Errors
    ///
    /// Returns a description of the offending dimension.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("ranks", self.ranks),
            ("banks", self.banks),
            ("rows", self.rows),
            ("cols", self.cols),
        ] {
            if v == 0 {
                return Err(format!("{name} must be non-zero"));
            }
            if !v.is_power_of_two() {
                return Err(format!("{name} ({v}) must be a power of two"));
            }
        }
        Ok(())
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper()
    }
}

/// A cycle-accurate DRAM device model.
///
/// # Example
///
/// ```
/// use fqms_dram::device::{DramDevice, Geometry};
/// use fqms_dram::command::{Command, RankId, BankId, RowId, ColId};
/// use fqms_dram::timing::TimingParams;
/// use fqms_sim::clock::DramCycle;
///
/// let mut dram = DramDevice::new(Geometry::paper(), TimingParams::ddr2_800());
/// let act = Command::Activate {
///     rank: RankId::new(0), bank: BankId::new(0), row: RowId::new(42),
/// };
/// assert!(dram.is_ready(&act, DramCycle::ZERO));
/// dram.issue(&act, DramCycle::ZERO);
/// let rd = Command::Read {
///     rank: RankId::new(0), bank: BankId::new(0), col: ColId::new(3),
/// };
/// assert!(!dram.is_ready(&rd, DramCycle::new(4)));
/// assert!(dram.is_ready(&rd, DramCycle::new(5)));
/// let data_done = dram.issue(&rd, DramCycle::new(5));
/// assert_eq!(data_done, Some(DramCycle::new(5 + 5 + 4)));
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    geometry: Geometry,
    timing: TimingParams,
    /// Banks in rank-major order: `banks[rank * banks_per_rank + bank]`.
    banks: Vec<Bank>,
    /// Global indices of banks with an open row — maintained on the only
    /// two commands that change open state (Activate/Precharge) and
    /// rebuilt on restore, so it is derived state that never enters the
    /// snapshot. Lets hot loops visit open banks without touching every
    /// bank struct.
    open: DenseBitSet,
    channel: ChannelTracker,
    /// Next refresh deadline per rank.
    refresh_due: Vec<DramCycle>,
    /// Commands issued, by kind, for stats.
    acts: u64,
    pres: u64,
    reads: u64,
    writes: u64,
    refreshes: u64,
    /// Accumulated bank-busy cycle count (sum over banks), advanced by
    /// [`DramDevice::tick_stats`].
    bank_busy_cycles: u64,
    stats_last_tick: DramCycle,
}

impl DramDevice {
    /// Creates a device with the given geometry and timing.
    ///
    /// # Panics
    ///
    /// Panics if the geometry or timing parameters are invalid.
    pub fn new(geometry: Geometry, timing: TimingParams) -> Self {
        geometry.validate().expect("invalid geometry");
        timing.validate().expect("invalid timing parameters");
        DramDevice {
            geometry,
            timing,
            banks: vec![Bank::new(); geometry.total_banks() as usize],
            open: DenseBitSet::new(geometry.total_banks() as usize),
            channel: ChannelTracker::new(geometry.ranks as usize),
            refresh_due: vec![DramCycle::new(timing.t_refi); geometry.ranks as usize],
            acts: 0,
            pres: 0,
            reads: 0,
            writes: 0,
            refreshes: 0,
            bank_busy_cycles: 0,
            stats_last_tick: DramCycle::ZERO,
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    fn bank_index(&self, rank: RankId, bank: BankId) -> usize {
        debug_assert!(rank.as_u32() < self.geometry.ranks);
        debug_assert!(bank.as_u32() < self.geometry.banks);
        (rank.as_u32() * self.geometry.banks + bank.as_u32()) as usize
    }

    /// Immutable view of a bank.
    pub fn bank(&self, rank: RankId, bank: BankId) -> &Bank {
        &self.banks[self.bank_index(rank, bank)]
    }

    /// The bank's coarse state (for Table 3 service classification).
    pub fn bank_state(&self, rank: RankId, bank: BankId) -> BankState {
        self.bank(rank, bank).state()
    }

    /// The row currently open in a bank, if any.
    pub fn open_row(&self, rank: RankId, bank: BankId) -> Option<RowId> {
        self.bank(rank, bank).open_row()
    }

    /// The channel tracker (read-only; used by schedulers for bus state).
    pub fn channel(&self) -> &ChannelTracker {
        &self.channel
    }

    /// Global indices (rank-major, matching [`DramDevice::bank`]'s
    /// layout) of banks with an open row, as a packed mask. Always
    /// consistent with per-bank [`Bank::open_row`]: updated on
    /// activate/precharge issue, refreshed from the banks on restore.
    pub fn open_banks(&self) -> &DenseBitSet {
        &self.open
    }

    /// True if `cmd` satisfies its **bank-level** constraints at `now`
    /// (tRCD/tRAS/tRP/tRC/tRTP/write-recovery) regardless of channel
    /// state. This is what a *bank scheduler* sees: it tracks only its
    /// bank's timing, and presents its highest-priority bank-ready command
    /// to the channel scheduler — which may still reject it on bus/rank
    /// conflicts. The distinction matters: a stream of bank-ready row hits
    /// keeps occupying a bank scheduler's slot even in cycles where the
    /// data bus is busy, which is the priority-chaining mechanism of the
    /// paper's Section 3.3.
    pub fn bank_ready(&self, cmd: &Command, now: DramCycle) -> bool {
        match *cmd {
            Command::Activate { rank, bank, .. } => self.bank(rank, bank).can_activate(now),
            Command::Precharge { rank, bank } => self.bank(rank, bank).can_precharge(now),
            Command::Read { rank, bank, .. } => self.bank(rank, bank).can_read(now),
            Command::Write { rank, bank, .. } => self.bank(rank, bank).can_write(now),
            Command::Refresh { rank } => self
                .rank_banks(rank)
                .all(|b| b.open_row().is_none() && b.next_activate() <= now),
        }
    }

    /// True if `cmd` could legally issue at `now`, combining bank and
    /// channel constraints — the paper's notion of a **ready** command.
    pub fn is_ready(&self, cmd: &Command, now: DramCycle) -> bool {
        match *cmd {
            Command::Activate { rank, bank, .. } => {
                self.bank(rank, bank).can_activate(now)
                    && self.channel.can_activate_timed(rank, now, &self.timing)
            }
            Command::Precharge { rank, bank } => {
                self.bank(rank, bank).can_precharge(now) && self.channel.can_precharge(rank, now)
            }
            Command::Read { rank, bank, .. } => {
                self.bank(rank, bank).can_read(now)
                    && self.channel.can_read(rank, now, &self.timing)
            }
            Command::Write { rank, bank, .. } => {
                self.bank(rank, bank).can_write(now)
                    && self.channel.can_write(rank, now, &self.timing)
            }
            Command::Refresh { rank } => {
                self.channel.can_refresh(rank, now)
                    && self.rank_banks(rank).all(|b| {
                        b.open_row().is_none() && b.next_activate() <= now.saturating_add(0)
                    })
            }
        }
    }

    fn rank_banks(&self, rank: RankId) -> impl Iterator<Item = &Bank> {
        let start = (rank.as_u32() * self.geometry.banks) as usize;
        self.banks[start..start + self.geometry.banks as usize].iter()
    }

    /// Issues `cmd` at `now`, updating all constraint trackers.
    ///
    /// For CAS commands, returns `Some(cycle)` at which the data burst
    /// completes on the data bus; for RAS/refresh commands returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if the command is not ready at `now` (callers must check
    /// [`DramDevice::is_ready`] first — the scheduler contract).
    pub fn issue(&mut self, cmd: &Command, now: DramCycle) -> Option<DramCycle> {
        assert!(self.is_ready(cmd, now), "command {cmd} not ready at {now}");
        self.advance_stats(now);
        match *cmd {
            Command::Activate { rank, bank, row } => {
                let idx = self.bank_index(rank, bank);
                self.banks[idx].issue_activate(now, row, &self.timing);
                self.open.insert(idx);
                self.channel.issue_activate(rank, now, &self.timing);
                self.acts += 1;
                None
            }
            Command::Precharge { rank, bank } => {
                let idx = self.bank_index(rank, bank);
                self.banks[idx].issue_precharge(now, &self.timing);
                self.open.remove(idx);
                self.channel.issue_precharge(rank, now);
                self.pres += 1;
                None
            }
            Command::Read { rank, bank, .. } => {
                let idx = self.bank_index(rank, bank);
                let done = self.banks[idx].issue_read(now, &self.timing);
                self.channel.issue_read(rank, now, &self.timing);
                self.reads += 1;
                Some(done)
            }
            Command::Write { rank, bank, .. } => {
                let idx = self.bank_index(rank, bank);
                let done = self.banks[idx].issue_write(now, &self.timing);
                self.channel.issue_write(rank, now, &self.timing);
                self.writes += 1;
                Some(done)
            }
            Command::Refresh { rank } => {
                self.channel.issue_refresh(rank, now, &self.timing);
                let start = (rank.as_u32() * self.geometry.banks) as usize;
                for b in &mut self.banks[start..start + self.geometry.banks as usize] {
                    b.apply_refresh(now, &self.timing);
                }
                self.refresh_due[rank.as_usize()] = now + self.timing.t_refi;
                self.refreshes += 1;
                None
            }
        }
    }

    /// Earliest *strictly future* cycle at which any device-level readiness
    /// predicate can flip, or [`DramCycle::MAX`] if none is pending.
    ///
    /// Device state mutates only when a command issues, so between issues
    /// this is the minimum over every bank's
    /// [`Bank::next_event_cycle`], the channel tracker's
    /// [`ChannelTracker::next_event_cycle`], and each rank's refresh
    /// deadline (the cycle [`DramDevice::refresh_urgent`] flips). The bound
    /// is deliberately conservative: it may name a cycle at which nothing a
    /// scheduler cares about actually changes (e.g. a constraint of a bank
    /// with no queued work expiring), but it never *misses* a flip — the
    /// invariant event-driven fast-forward relies on.
    pub fn next_event_cycle(&self, now: DramCycle) -> DramCycle {
        let mut ev = NextEvent::after(now);
        for b in &self.banks {
            ev.consider(b.next_event_cycle(now));
        }
        ev.consider(self.channel.next_event_cycle(now, &self.timing));
        for &due in &self.refresh_due {
            ev.consider(due);
        }
        ev.earliest()
    }

    /// True if rank `rank` has reached (or passed) its refresh deadline.
    /// The controller should drain/block the rank, precharge all its banks,
    /// and issue [`Command::Refresh`].
    pub fn refresh_urgent(&self, rank: RankId, now: DramCycle) -> bool {
        now >= self.refresh_due[rank.as_usize()]
    }

    /// The next refresh deadline for `rank`.
    pub fn refresh_deadline(&self, rank: RankId) -> DramCycle {
        self.refresh_due[rank.as_usize()]
    }

    /// Advances the bank-busy statistics window to `now`. Called internally
    /// on every issue; the simulation loop should also call it once at the
    /// end of the run so trailing busy cycles are counted.
    pub fn advance_stats(&mut self, now: DramCycle) {
        if now <= self.stats_last_tick {
            return;
        }
        // Integrate bank busy-ness over (stats_last_tick, now]. Banks only
        // change state on command issue, so between issues each bank's
        // busy-ness changes at most once (a recovery window expiring); we
        // integrate per-bank by clamping each bank's busy horizon.
        let from = self.stats_last_tick;
        for b in &self.banks {
            let busy_until = if b.open_row().is_some() {
                now
            } else {
                b.next_activate().min(now)
            };
            if busy_until > from {
                self.bank_busy_cycles += busy_until - from;
            }
        }
        self.stats_last_tick = now;
    }

    /// Zeroes all accumulated statistics (bus/bank busy cycles, command
    /// counts) as of `now`, without touching any timing state. Used to
    /// exclude cache-warmup from measured utilization.
    pub fn reset_stats(&mut self, now: DramCycle) {
        self.advance_stats(now);
        self.stats_last_tick = now;
        self.bank_busy_cycles = 0;
        self.channel.reset_stats();
        self.acts = 0;
        self.pres = 0;
        self.reads = 0;
        self.writes = 0;
        self.refreshes = 0;
    }

    /// Data-bus busy cycles so far (utilization numerator).
    pub fn bus_busy_cycles(&self) -> u64 {
        self.channel.bus_busy_cycles()
    }

    /// Sum over banks of cycles each bank was busy (active or in recovery).
    /// Divide by `total_banks * elapsed` for the paper's aggregate bank
    /// utilization.
    pub fn bank_busy_cycles(&self) -> u64 {
        self.bank_busy_cycles
    }

    /// Command counts issued so far: (activates, precharges, reads, writes,
    /// refreshes).
    pub fn command_counts(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.acts,
            self.pres,
            self.reads,
            self.writes,
            self.refreshes,
        )
    }
}

/// Geometry and timing are configuration, not state: the snapshot carries a
/// config fingerprint at the envelope level, so the device serializes only
/// what mutates during a run — bank trackers, the channel tracker, refresh
/// deadlines, and statistics counters. Restore requires a device already
/// built with the same geometry (bank/rank counts are validated, not
/// resized).
impl Snapshot for DramDevice {
    fn save(&self, w: &mut SectionWriter) {
        w.put_seq_len(self.banks.len());
        for b in &self.banks {
            b.save(w);
        }
        self.channel.save(w);
        w.put_seq_len(self.refresh_due.len());
        for &due in &self.refresh_due {
            w.put_u64(due.as_u64());
        }
        w.put_u64(self.acts);
        w.put_u64(self.pres);
        w.put_u64(self.reads);
        w.put_u64(self.writes);
        w.put_u64(self.refreshes);
        w.put_u64(self.bank_busy_cycles);
        w.put_u64(self.stats_last_tick.as_u64());
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let n = r.seq_len()?;
        if n != self.banks.len() {
            return Err(r.malformed(format!(
                "snapshot has {n} banks, device has {}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.restore(r)?;
        }
        // The open-bank mask is derived state: rebuild it from the
        // restored banks (the snapshot byte format is unchanged).
        self.open.clear();
        for (idx, b) in self.banks.iter().enumerate() {
            if b.open_row().is_some() {
                self.open.insert(idx);
            }
        }
        self.channel.restore(r)?;
        let ranks = r.seq_len()?;
        if ranks != self.refresh_due.len() {
            return Err(r.malformed(format!(
                "snapshot has {ranks} refresh deadlines, device has {}",
                self.refresh_due.len()
            )));
        }
        for due in &mut self.refresh_due {
            *due = DramCycle::new(r.get_u64()?);
        }
        self.acts = r.get_u64()?;
        self.pres = r.get_u64()?;
        self.reads = r.get_u64()?;
        self.writes = r.get_u64()?;
        self.refreshes = r.get_u64()?;
        self.bank_busy_cycles = r.get_u64()?;
        self.stats_last_tick = DramCycle::new(r.get_u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::ColId;

    fn dev() -> DramDevice {
        DramDevice::new(Geometry::paper(), TimingParams::ddr2_800())
    }

    fn act(bank: u32, row: u32) -> Command {
        Command::Activate {
            rank: RankId::new(0),
            bank: BankId::new(bank),
            row: RowId::new(row),
        }
    }

    fn rd(bank: u32, col: u32) -> Command {
        Command::Read {
            rank: RankId::new(0),
            bank: BankId::new(bank),
            col: ColId::new(col),
        }
    }

    fn pre(bank: u32) -> Command {
        Command::Precharge {
            rank: RankId::new(0),
            bank: BankId::new(bank),
        }
    }

    #[test]
    fn paper_geometry() {
        let g = Geometry::paper();
        assert_eq!(g.ranks, 1);
        assert_eq!(g.banks, 8);
        assert_eq!(g.total_banks(), 8);
        g.validate().unwrap();
    }

    #[test]
    fn geometry_rejects_non_power_of_two() {
        let g = Geometry {
            ranks: 1,
            banks: 6,
            rows: 1024,
            cols: 32,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn read_flow_returns_burst_completion() {
        let mut d = dev();
        d.issue(&act(0, 1), DramCycle::new(0));
        let done = d.issue(&rd(0, 0), DramCycle::new(5));
        assert_eq!(done, Some(DramCycle::new(14))); // 5 + tCL 5 + BL/2 4
        assert_eq!(d.command_counts(), (1, 0, 1, 0, 0));
    }

    #[test]
    fn interleaved_banks_respect_trrd() {
        let mut d = dev();
        d.issue(&act(0, 1), DramCycle::new(0));
        assert!(!d.is_ready(&act(1, 1), DramCycle::new(2)));
        assert!(d.is_ready(&act(1, 1), DramCycle::new(3)));
    }

    #[test]
    fn refresh_requires_all_banks_precharged() {
        let mut d = dev();
        let refresh = Command::Refresh {
            rank: RankId::new(0),
        };
        d.issue(&act(3, 1), DramCycle::new(0));
        // Bank 3 open: refresh not ready even after the deadline.
        assert!(!d.is_ready(&refresh, DramCycle::new(300_000)));
        d.issue(&pre(3), DramCycle::new(18));
        // Bank 3 precharging until 23.
        assert!(!d.is_ready(&refresh, DramCycle::new(22)));
        assert!(d.is_ready(&refresh, DramCycle::new(23)));
        d.issue(&refresh, DramCycle::new(23));
        assert_eq!(d.refresh_deadline(RankId::new(0)), DramCycle::new(280_023));
        // All banks blocked for tRFC.
        assert!(!d.is_ready(&act(0, 1), DramCycle::new(23 + 509)));
        assert!(d.is_ready(&act(0, 1), DramCycle::new(23 + 510)));
    }

    #[test]
    fn refresh_urgency_tracks_trefi() {
        let d = dev();
        assert!(!d.refresh_urgent(RankId::new(0), DramCycle::new(279_999)));
        assert!(d.refresh_urgent(RankId::new(0), DramCycle::new(280_000)));
    }

    #[test]
    #[should_panic]
    fn issuing_unready_command_panics() {
        let mut d = dev();
        d.issue(&rd(0, 0), DramCycle::new(0)); // no row open
    }

    #[test]
    fn bank_busy_stats_integrate() {
        let mut d = dev();
        d.issue(&act(0, 1), DramCycle::new(0));
        d.advance_stats(DramCycle::new(10));
        // Bank 0 busy the whole 10 cycles; others idle.
        assert_eq!(d.bank_busy_cycles(), 10);
        d.issue(&pre(0), DramCycle::new(18));
        d.advance_stats(DramCycle::new(40));
        // Busy through precharge recovery (ends at 23): 18-10=8 more from
        // issue-time advance, then 23-18=5 during recovery.
        assert_eq!(d.bank_busy_cycles(), 23);
    }

    #[test]
    fn bus_utilization_counts_bursts() {
        let mut d = dev();
        d.issue(&act(0, 1), DramCycle::new(0));
        d.issue(&rd(0, 0), DramCycle::new(5));
        d.issue(&rd(0, 1), DramCycle::new(9));
        assert_eq!(d.bus_busy_cycles(), 8);
    }

    #[test]
    fn next_event_aggregates_banks_channel_and_refresh() {
        let mut d = dev();
        // Idle fresh device: the only pending event is the refresh deadline.
        assert_eq!(d.next_event_cycle(DramCycle::ZERO), DramCycle::new(280_000));
        d.issue(&act(0, 1), DramCycle::new(0));
        // ACT at 0: tRRD expires at 3 (channel), tRCD at 5 (bank).
        assert_eq!(d.next_event_cycle(DramCycle::new(0)), DramCycle::new(3));
        assert_eq!(d.next_event_cycle(DramCycle::new(3)), DramCycle::new(5));
        // After tRCD: the next bank event is tRAS expiry at 18.
        assert_eq!(d.next_event_cycle(DramCycle::new(5)), DramCycle::new(18));
        // Past all timing windows, only the refresh deadline remains.
        assert_eq!(
            d.next_event_cycle(DramCycle::new(30)),
            DramCycle::new(280_000)
        );
    }

    #[test]
    fn snapshot_round_trip_restores_timing_state() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let mut d = dev();
        d.issue(&act(0, 1), DramCycle::new(0));
        d.issue(&rd(0, 0), DramCycle::new(5));
        d.issue(&act(1, 7), DramCycle::new(9));

        let mut w = SnapshotWriter::new(42);
        w.section("dram", |s| d.save(s));
        let bytes = w.into_bytes();

        let mut restored = dev();
        let mut r = SnapshotReader::new(&bytes, 42).unwrap();
        r.section("dram", |s| restored.restore(s)).unwrap();
        r.finish().unwrap();

        assert_eq!(
            restored.open_row(RankId::new(0), BankId::new(0)),
            Some(RowId::new(1))
        );
        assert_eq!(
            restored.open_row(RankId::new(0), BankId::new(1)),
            Some(RowId::new(7))
        );
        assert_eq!(restored.command_counts(), d.command_counts());
        assert_eq!(restored.bus_busy_cycles(), d.bus_busy_cycles());
        for now in [10u64, 12, 14, 20, 30, 100] {
            assert_eq!(
                restored.next_event_cycle(DramCycle::new(now)),
                d.next_event_cycle(DramCycle::new(now)),
                "next_event mismatch at {now}"
            );
            assert_eq!(
                restored.is_ready(&rd(1, 0), DramCycle::new(now)),
                d.is_ready(&rd(1, 0), DramCycle::new(now)),
                "readiness mismatch at {now}"
            );
        }
    }

    #[test]
    fn snapshot_rejects_geometry_mismatch() {
        use fqms_sim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
        let d = dev();
        let mut w = SnapshotWriter::new(1);
        w.section("dram", |s| d.save(s));
        let bytes = w.into_bytes();

        let small = Geometry {
            ranks: 1,
            banks: 4,
            rows: 16_384,
            cols: 32,
        };
        let mut other = DramDevice::new(small, TimingParams::ddr2_800());
        let mut r = SnapshotReader::new(&bytes, 1).unwrap();
        let err = r.section("dram", |s| other.restore(s)).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Malformed {
                    section: "dram",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn seamless_reads_every_burst_time() {
        // Back-to-back row hits should sustain 100% bus utilization:
        // reads at 5, 9, 13, ... each occupying 4 bus cycles.
        let mut d = dev();
        d.issue(&act(0, 1), DramCycle::new(0));
        let mut now = 5u64;
        for i in 0..10 {
            let cmd = rd(0, i);
            assert!(d.is_ready(&cmd, DramCycle::new(now)), "read {i} at {now}");
            d.issue(&cmd, DramCycle::new(now));
            now += 4;
        }
        assert_eq!(d.bus_busy_cycles(), 40);
    }
}
