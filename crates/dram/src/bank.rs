//! Per-bank state machine and timing bookkeeping.
//!
//! Each bank tracks its open row (if any) and the earliest cycle at which
//! each command class may legally be issued to it. The bank enforces the
//! *intra-bank* constraints of Table 6 (tRCD, tRAS, tRC, tRP, tRTP,
//! write-recovery); *inter-bank* and bus-level constraints (tRRD, tCCD,
//! tWTR, data-bus occupancy, tRFC) live in [`crate::channel`].

use crate::command::RowId;
use crate::timing::TimingParams;
use fqms_sim::clock::{DramCycle, NextEvent};
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// The observable state of a bank, as seen by a scheduler deciding which
/// SDRAM command a memory request needs next (the paper's Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankState {
    /// No row is open; an activate is required before any CAS.
    Closed,
    /// `row` is open; a CAS to that row is a row-buffer hit, a CAS to any
    /// other row requires precharge + activate (a bank conflict).
    Open(RowId),
}

/// A single DRAM bank: open-row state plus earliest-issue-time registers.
///
/// # Example
///
/// ```
/// use fqms_dram::bank::Bank;
/// use fqms_dram::command::RowId;
/// use fqms_dram::timing::TimingParams;
/// use fqms_sim::clock::DramCycle;
///
/// let t = TimingParams::ddr2_800();
/// let mut bank = Bank::new();
/// let now = DramCycle::new(100);
/// assert!(bank.can_activate(now));
/// bank.issue_activate(now, RowId::new(7), &t);
/// assert_eq!(bank.open_row(), Some(RowId::new(7)));
/// // CAS must wait tRCD:
/// assert!(!bank.can_read(now));
/// assert!(bank.can_read(DramCycle::new(105)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    open_row: Option<RowId>,
    /// Earliest cycle an activate may issue (tRC from last activate, tRP
    /// from last precharge, tRFC from refresh).
    next_activate: DramCycle,
    /// Earliest cycle a read may issue (tRCD from activate).
    next_read: DramCycle,
    /// Earliest cycle a write may issue (tRCD from activate).
    next_write: DramCycle,
    /// Earliest cycle a precharge may issue (tRAS from activate, tRTP from
    /// read, write-recovery from write).
    next_precharge: DramCycle,
    /// Cycle of the most recent activate; `None` if never activated. Used
    /// by the FQ bank scheduler's priority-inversion bound and by tRAS
    /// accounting.
    active_since: Option<DramCycle>,
}

impl Bank {
    /// Creates a bank in the precharged (closed) state with no pending
    /// timing obligations.
    pub fn new() -> Self {
        Bank {
            open_row: None,
            next_activate: DramCycle::ZERO,
            next_read: DramCycle::ZERO,
            next_write: DramCycle::ZERO,
            next_precharge: DramCycle::ZERO,
            active_since: None,
        }
    }

    /// The currently open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<RowId> {
        self.open_row
    }

    /// The bank's coarse state (closed vs. open row) for Table 3 service
    /// classification.
    #[inline]
    pub fn state(&self) -> BankState {
        match self.open_row {
            Some(row) => BankState::Open(row),
            None => BankState::Closed,
        }
    }

    /// The cycle of the most recent activate, if the bank is open.
    ///
    /// The FQ bank scheduler (paper Section 3.3) switches from first-ready
    /// scheduling to strict earliest-virtual-finish-time scheduling once a
    /// bank has been active for `x` cycles; this register provides the
    /// "active for how long" input.
    #[inline]
    pub fn active_since(&self) -> Option<DramCycle> {
        if self.open_row.is_some() {
            self.active_since
        } else {
            None
        }
    }

    /// How many cycles the bank has been continuously active as of `now`,
    /// if it is active. This is the FQ bank scheduler's inversion-bound
    /// comparand and the value reported by inversion-trip trace events.
    #[inline]
    pub fn active_for(&self, now: DramCycle) -> Option<u64> {
        self.active_since()
            .map(|since| now.as_u64().saturating_sub(since.as_u64()))
    }

    /// Earliest cycle an activate may issue.
    #[inline]
    pub fn next_activate(&self) -> DramCycle {
        self.next_activate
    }

    /// Earliest cycle a precharge may issue.
    #[inline]
    pub fn next_precharge(&self) -> DramCycle {
        self.next_precharge
    }

    /// Earliest cycle a read may issue (tRCD from activate).
    #[inline]
    pub fn next_read(&self) -> DramCycle {
        self.next_read
    }

    /// Earliest cycle a write may issue (tRCD from activate).
    #[inline]
    pub fn next_write(&self) -> DramCycle {
        self.next_write
    }

    /// Earliest *strictly future* cycle at which any of this bank's own
    /// readiness predicates ([`Bank::can_activate`], [`Bank::can_read`],
    /// [`Bank::can_write`], [`Bank::can_precharge`]) can flip from false
    /// to true, or [`DramCycle::MAX`] if they are all already settled.
    ///
    /// Only the command classes reachable from the current row state are
    /// considered: a closed bank can only become activate-ready; an open
    /// bank can only become CAS- or precharge-ready. The row state itself
    /// changes only when a command *issues* — which the caller observes —
    /// so between issues this horizon is exact: no bank-level readiness
    /// changes strictly before it.
    pub fn next_event_cycle(&self, now: DramCycle) -> DramCycle {
        let mut ev = NextEvent::after(now);
        if self.open_row.is_some() {
            ev.consider(self.next_read);
            ev.consider(self.next_write);
            ev.consider(self.next_precharge);
        } else {
            ev.consider(self.next_activate);
        }
        ev.earliest()
    }

    /// True if an activate is legal at `now` with respect to this bank's
    /// constraints (the bank must be closed: we model explicit precharge,
    /// i.e. no activate to an open bank).
    #[inline]
    pub fn can_activate(&self, now: DramCycle) -> bool {
        self.open_row.is_none() && now >= self.next_activate
    }

    /// True if a read is legal at `now` (a row must be open and tRCD
    /// satisfied). Row-match is the *scheduler's* job; the bank only checks
    /// that some row is open.
    #[inline]
    pub fn can_read(&self, now: DramCycle) -> bool {
        self.open_row.is_some() && now >= self.next_read
    }

    /// True if a write is legal at `now`.
    #[inline]
    pub fn can_write(&self, now: DramCycle) -> bool {
        self.open_row.is_some() && now >= self.next_write
    }

    /// True if a precharge is legal at `now` (row open and tRAS/tRTP/tWR
    /// satisfied).
    #[inline]
    pub fn can_precharge(&self, now: DramCycle) -> bool {
        self.open_row.is_some() && now >= self.next_precharge
    }

    /// Issues an activate opening `row`.
    ///
    /// # Panics
    ///
    /// Panics if the activate is not legal at `now` (debug-level contract:
    /// the channel scheduler must have checked [`Bank::can_activate`]).
    pub fn issue_activate(&mut self, now: DramCycle, row: RowId, t: &TimingParams) {
        assert!(self.can_activate(now), "illegal ACT at {now}: {self:?}");
        self.open_row = Some(row);
        self.active_since = Some(now);
        self.next_read = now + t.t_rcd;
        self.next_write = now + t.t_rcd;
        self.next_precharge = now + t.t_ras;
        self.next_activate = now + t.t_rc;
    }

    /// Issues a read from the open row; returns the cycle at which the data
    /// burst completes on the data bus (`now + tCL + BL/2`).
    ///
    /// # Panics
    ///
    /// Panics if the read is not legal at `now`.
    pub fn issue_read(&mut self, now: DramCycle, t: &TimingParams) -> DramCycle {
        assert!(self.can_read(now), "illegal RD at {now}: {self:?}");
        // Internal read to precharge: tRTP from the read command.
        self.next_precharge = self.next_precharge.max(now + t.t_rtp);
        now + t.t_cl + t.burst
    }

    /// Issues a write to the open row; returns the cycle at which the data
    /// burst completes on the data bus (`now + tWL + BL/2`).
    ///
    /// # Panics
    ///
    /// Panics if the write is not legal at `now`.
    pub fn issue_write(&mut self, now: DramCycle, t: &TimingParams) -> DramCycle {
        assert!(self.can_write(now), "illegal WR at {now}: {self:?}");
        let burst_end = now + t.t_wl + t.burst;
        // Write recovery: precharge no earlier than end of data + tWR.
        self.next_precharge = self.next_precharge.max(burst_end + t.t_wr);
        burst_end
    }

    /// Issues a precharge, closing the open row.
    ///
    /// # Panics
    ///
    /// Panics if the precharge is not legal at `now`.
    pub fn issue_precharge(&mut self, now: DramCycle, t: &TimingParams) {
        assert!(self.can_precharge(now), "illegal PRE at {now}: {self:?}");
        self.open_row = None;
        self.next_activate = self.next_activate.max(now + t.t_rp);
    }

    /// Applies a refresh to this bank: the bank must be closed; after the
    /// refresh no activate may issue for tRFC.
    ///
    /// # Panics
    ///
    /// Panics if the bank has an open row.
    pub fn apply_refresh(&mut self, now: DramCycle, t: &TimingParams) {
        assert!(
            self.open_row.is_none(),
            "refresh issued to bank with open row"
        );
        self.next_activate = self.next_activate.max(now + t.t_rfc);
    }

    /// True if the bank is "busy" at `now` for utilization accounting: it
    /// has a row open, or is still within a precharge/activate recovery
    /// window that prevents a new activate.
    pub fn is_busy(&self, now: DramCycle) -> bool {
        self.open_row.is_some() || now < self.next_activate
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

impl Snapshot for Bank {
    fn save(&self, w: &mut SectionWriter) {
        w.put_opt_u64(self.open_row.map(|r| r.as_u32() as u64));
        w.put_u64(self.next_activate.as_u64());
        w.put_u64(self.next_read.as_u64());
        w.put_u64(self.next_write.as_u64());
        w.put_u64(self.next_precharge.as_u64());
        w.put_opt_u64(self.active_since.map(DramCycle::as_u64));
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let open_row = match r.get_opt_u64()? {
            Some(row) => {
                Some(RowId::new(u32::try_from(row).map_err(|_| {
                    r.malformed(format!("row id {row} overflows"))
                })?))
            }
            None => None,
        };
        self.open_row = open_row;
        self.next_activate = DramCycle::new(r.get_u64()?);
        self.next_read = DramCycle::new(r.get_u64()?);
        self.next_write = DramCycle::new(r.get_u64()?);
        self.next_precharge = DramCycle::new(r.get_u64()?);
        self.active_since = r.get_opt_u64()?.map(DramCycle::new);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr2_800()
    }

    #[test]
    fn fresh_bank_is_closed_and_ready() {
        let b = Bank::new();
        assert_eq!(b.state(), BankState::Closed);
        assert!(b.can_activate(DramCycle::ZERO));
        assert!(!b.can_read(DramCycle::ZERO));
        assert!(!b.can_write(DramCycle::ZERO));
        assert!(!b.can_precharge(DramCycle::ZERO));
        assert!(!b.is_busy(DramCycle::ZERO));
    }

    #[test]
    fn activate_opens_row_and_blocks_cas_for_trcd() {
        let mut b = Bank::new();
        let now = DramCycle::new(10);
        b.issue_activate(now, RowId::new(3), &t());
        assert_eq!(b.state(), BankState::Open(RowId::new(3)));
        assert_eq!(b.active_since(), Some(now));
        assert!(!b.can_read(DramCycle::new(14)));
        assert!(b.can_read(DramCycle::new(15))); // +tRCD=5
        assert!(b.can_write(DramCycle::new(15)));
    }

    #[test]
    fn precharge_blocked_until_tras() {
        let mut b = Bank::new();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t());
        assert!(!b.can_precharge(DramCycle::new(17)));
        assert!(b.can_precharge(DramCycle::new(18))); // tRAS = 18
    }

    #[test]
    fn read_pushes_precharge_by_trtp() {
        let mut b = Bank::new();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t());
        // Read late in the row-open window so tRTP dominates tRAS.
        let done = b.issue_read(DramCycle::new(20), &t());
        assert_eq!(done, DramCycle::new(20 + 5 + 4)); // tCL + BL/2
        assert!(!b.can_precharge(DramCycle::new(22)));
        assert!(b.can_precharge(DramCycle::new(23))); // 20 + tRTP=3
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut b = Bank::new();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t());
        let done = b.issue_write(DramCycle::new(5), &t());
        assert_eq!(done, DramCycle::new(5 + 4 + 4)); // tWL + BL/2
                                                     // Precharge: max(tRAS=18, burst_end 13 + tWR 6 = 19).
        assert!(!b.can_precharge(DramCycle::new(18)));
        assert!(b.can_precharge(DramCycle::new(19)));
    }

    #[test]
    fn precharge_closes_and_enforces_trp() {
        let mut b = Bank::new();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t());
        b.issue_precharge(DramCycle::new(18), &t());
        assert_eq!(b.state(), BankState::Closed);
        assert_eq!(b.active_since(), None);
        // tRC from activate (22) dominates tRP from precharge (23)... no:
        // max(tRC: 0+22, tRP: 18+5=23) = 23.
        assert!(!b.can_activate(DramCycle::new(22)));
        assert!(b.can_activate(DramCycle::new(23)));
    }

    #[test]
    fn trc_enforced_for_back_to_back_activates() {
        let mut b = Bank::new();
        let t = t();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t);
        // Precharge as early as possible (tRAS = 18), then tRP ends at 23,
        // but tRC (22) is already covered; activate legal at 23.
        b.issue_precharge(DramCycle::new(18), &t);
        assert!(!b.can_activate(DramCycle::new(21)));
        assert!(b.can_activate(DramCycle::new(23)));
    }

    #[test]
    #[should_panic]
    fn double_activate_panics() {
        let mut b = Bank::new();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t());
        b.issue_activate(DramCycle::new(30), RowId::new(2), &t());
    }

    #[test]
    #[should_panic]
    fn early_read_panics() {
        let mut b = Bank::new();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t());
        let _ = b.issue_read(DramCycle::new(2), &t());
    }

    #[test]
    #[should_panic]
    fn refresh_with_open_row_panics() {
        let mut b = Bank::new();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t());
        b.apply_refresh(DramCycle::new(30), &t());
    }

    #[test]
    fn refresh_blocks_activate_for_trfc() {
        let mut b = Bank::new();
        b.apply_refresh(DramCycle::new(100), &t());
        assert!(!b.can_activate(DramCycle::new(100 + 509)));
        assert!(b.can_activate(DramCycle::new(100 + 510)));
    }

    #[test]
    fn next_event_tracks_state_filtered_thresholds() {
        let mut b = Bank::new();
        let t = t();
        // Fresh closed bank: activate is already legal, nothing pending.
        assert_eq!(b.next_event_cycle(DramCycle::ZERO), DramCycle::MAX);
        b.issue_activate(DramCycle::new(10), RowId::new(1), &t);
        // Open bank at 10: CAS ready at 15 (tRCD), precharge at 28 (tRAS).
        assert_eq!(b.next_event_cycle(DramCycle::new(10)), DramCycle::new(15));
        assert_eq!(b.next_event_cycle(DramCycle::new(15)), DramCycle::new(28));
        // Everything settled: no future bank-level event.
        assert_eq!(b.next_event_cycle(DramCycle::new(28)), DramCycle::MAX);
        b.issue_precharge(DramCycle::new(28), &t);
        // Closed again: only the activate recovery (tRP -> 33) matters.
        assert_eq!(b.next_event_cycle(DramCycle::new(28)), DramCycle::new(33));
        assert!(b.can_activate(b.next_event_cycle(DramCycle::new(28))));
    }

    #[test]
    fn next_event_never_skips_a_readiness_flip() {
        // Exhaustively check the horizon's soundness on a busy window: for
        // every cycle strictly between `now` and the reported horizon, no
        // readiness predicate may differ from its value at `now`.
        let t = t();
        let mut b = Bank::new();
        b.issue_activate(DramCycle::new(3), RowId::new(7), &t);
        let _ = b.issue_write(DramCycle::new(8), &t);
        for now in 8..40u64 {
            let now = DramCycle::new(now);
            let horizon = b.next_event_cycle(now).min(DramCycle::new(64));
            let probe = |c: DramCycle| {
                (
                    b.can_activate(c),
                    b.can_read(c),
                    b.can_write(c),
                    b.can_precharge(c),
                )
            };
            let at_now = probe(now);
            let mut c = now;
            loop {
                c.tick();
                if c >= horizon {
                    break;
                }
                assert_eq!(probe(c), at_now, "flip at {c} inside ({now}, {horizon})");
            }
        }
    }

    #[test]
    fn busy_accounting() {
        let mut b = Bank::new();
        let t = t();
        b.issue_activate(DramCycle::new(0), RowId::new(1), &t);
        assert!(b.is_busy(DramCycle::new(10)));
        b.issue_precharge(DramCycle::new(18), &t);
        // During tRP recovery the bank still counts as busy.
        assert!(b.is_busy(DramCycle::new(20)));
        assert!(!b.is_busy(DramCycle::new(23)));
    }
}
