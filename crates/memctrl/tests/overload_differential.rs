//! Overload-control verification suite (ISSUE 10 tentpole): the
//! admission-side throttle + shedder layer must be *inert* when armed
//! but untripped (semantically identical to a controller without the
//! layer), *bit-identical* across the serial, free-running parallel,
//! lockstep, reference, and kill-and-resume execution paths when it
//! does trip, and *conservative* — every submitted request is accounted
//! for exactly once: `completed + dropped + rejected + shed ==
//! submitted`, fuzzed with shrinking over configurations × workloads ×
//! fault plans.
//!
//! Satellite coverage rides along: protected and real-time-regulated
//! threads are never throttled or shed even under a saturating flood;
//! the starvation watchdog's strict-progress semantics hold when a
//! throttled thread's port backlog is refused at admission (a thread
//! with nothing *admitted* is not starved, however long it is gated);
//! and a checkpoint taken with overload control armed refuses to resume
//! into a controller without it (and vice versa).

use fqms_memctrl::engine::{
    interference_workload, resume_serial, simulate_parallel, simulate_parallel_lockstep,
    simulate_serial, simulate_serial_checkpointed, synthetic_workload, EngineReport, EngineSpec,
    ResumeError, RetryPolicy, SubmitEvent,
};
use fqms_memctrl::prelude::*;
use fqms_sim::clock::DramCycle;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use fqms_sim::rng::{CaseRunner, SimRng};
use fqms_sim::snapshot::SnapshotError;

fn metrics(report: &EngineReport) -> &MetricsSink {
    &report.observations.as_ref().expect("observed run").metrics
}

fn total_dropped(report: &EngineReport) -> u64 {
    report.per_thread.iter().map(|t| t.requests_dropped).sum()
}

fn total_throttle_nacks(report: &EngineReport) -> u64 {
    report.per_thread.iter().map(|t| t.throttle_nacks).sum()
}

/// The three-way (plus shed) accounting identity every finished run must
/// satisfy. Only meaningful once the schedule fully drained.
fn assert_conserves(report: &EngineReport, submitted: usize, ctx: &str) {
    assert_eq!(report.unsubmitted, 0, "{ctx}: schedule failed to drain");
    assert_eq!(
        report.total_completed() as u64
            + total_dropped(report)
            + report.total_rejected() as u64
            + report.total_shed() as u64,
        submitted as u64,
        "{ctx}: completed + dropped + rejected + shed != submitted"
    );
    // The per-thread ledger and the per-channel event vectors must agree
    // on how much was shed.
    let shed_stats: u64 = report.per_thread.iter().map(|t| t.requests_shed).sum();
    assert_eq!(
        shed_stats,
        report.total_shed() as u64,
        "{ctx}: shed ledgers"
    );
}

/// A saturating four-thread flood spec with both mechanisms armed and
/// guaranteed to trip: thread 0 is a protected QoS thread; margin 1.0
/// classifies every unprotected streamer a hog at the first replenish
/// boundary, and the streamers' backlog walks the shed ladder. Bounded
/// retries keep the ports draining while hogs are gated.
fn flood_spec(channels: usize, cycles: u64) -> (EngineSpec, Vec<SubmitEvent>) {
    let mut spec = EngineSpec::paper(channels, 4);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec.retry = RetryPolicy::bounded(2, 1, 8);
    spec.config = spec.config.with_overload(
        OverloadConfig::new(4)
            .throttled(1_000, 4, 1.0)
            .shedding(500, 24, 8, 48, 8)
            .protect(0),
    );
    let events = interference_workload(4, cycles, 0.05, 0.5, 77);
    (spec, events)
}

/// Guards a flood run against vacuity: both mechanisms actually fired.
fn assert_tripped(report: &EngineReport, ctx: &str) {
    assert!(
        total_throttle_nacks(report) > 0,
        "{ctx}: throttle never fired — vacuous overload run"
    );
    assert!(
        report.total_shed() > 0,
        "{ctx}: shedder never fired — vacuous overload run"
    );
    assert!(
        metrics(report).saturation_entries > 0,
        "{ctx}: detector never escalated"
    );
}

/// Armed but untripped overload control changes scheduling semantics
/// not at all: with an astronomically large hog margin and unreachable
/// shed thresholds, per-thread statistics, completions, command logs,
/// and event streams match a controller without the layer exactly.
/// (`stepped`/`skipped` may differ: the boundary clocks cap
/// fast-forward windows.)
#[test]
fn untripped_overload_matches_plain_controller_semantically() {
    let mut plain = EngineSpec::paper(2, 3);
    plain.epoch_cycles = 512;
    plain.log_capacity = Some(100_000);
    plain.event_capacity = Some(1 << 20);
    let events = synthetic_workload(3, 6_000, 0.4, 59);
    let baseline = simulate_serial(&plain, &events).unwrap();

    let mut armed = plain.clone();
    armed.config =
        armed
            .config
            .with_overload(OverloadConfig::new(3).throttled(1_000, 0, 1e9).shedding(
                500,
                100_000,
                50_000,
                u64::MAX,
                1,
            ));
    let report = simulate_serial(&armed, &events).unwrap();

    assert_eq!(report.cycles, baseline.cycles);
    assert_eq!(report.per_thread, baseline.per_thread);
    assert_eq!(report.completions, baseline.completions);
    assert_eq!(report.command_logs, baseline.command_logs);
    assert_eq!(report.unsubmitted, baseline.unsubmitted);
    assert_eq!(report.rejected, baseline.rejected);
    assert!(
        report.shed.iter().all(Vec::is_empty),
        "untripped layer shed"
    );
    assert_eq!(report.observations, baseline.observations);
}

/// Tripped overload control replays bit-identically across the serial,
/// free-running parallel, lockstep, and cycle-by-cycle reference
/// engines — both boundary clocks feed `next_event_cycle`, so
/// fast-forward may never skip a reclassification or a detector window.
#[test]
fn overload_mode_is_bit_identical_across_engines() {
    let (mut spec, events) = flood_spec(2, 15_000);
    spec.max_cycles = 60_000;
    let serial = simulate_serial(&spec, &events).unwrap();
    assert_tripped(&serial, "cross-engine");
    for workers in [2, 3, 4] {
        let parallel = simulate_parallel(&spec, &events, workers).unwrap();
        assert_eq!(serial, parallel, "{workers} workers diverged");
    }
    let lockstep = simulate_parallel_lockstep(&spec, &events, 3).unwrap();
    assert_eq!(serial, lockstep, "lockstep engine diverged");

    let mut slow = spec.clone();
    slow.fast_forward = false;
    let reference = simulate_serial(&slow, &events).unwrap();
    assert_eq!(serial.cycles, reference.cycles);
    assert_eq!(serial.per_thread, reference.per_thread);
    assert_eq!(serial.completions, reference.completions);
    assert_eq!(serial.rejected, reference.rejected);
    assert_eq!(serial.shed, reference.shed);
    assert_eq!(
        serial.observations, reference.observations,
        "fast-forward skipped an overload boundary"
    );
}

/// Kill-and-resume with overload control tripping: checkpoints capture
/// the hog set, token buckets, detector level, and window NACK counter,
/// and resuming reproduces the uninterrupted run bit for bit — with
/// kill points on and around both boundary clocks (replenish period
/// 1000, detector window 500).
#[test]
fn overload_kill_and_resume_is_bit_identical() {
    let (mut spec, events) = flood_spec(1, 8_000);
    spec.event_capacity = Some(1 << 16);
    spec.max_cycles = 40_000;
    let reference = simulate_serial(&spec, &events).unwrap();
    assert_tripped(&reference, "kill-and-resume");
    for kill_at in [1, 499, 500, 501, 999, 1_000, 1_001, 2_500, 7_777] {
        let bytes = simulate_serial_checkpointed(&spec, &events, kill_at).unwrap();
        let resumed = resume_serial(&spec, &events, &bytes).unwrap();
        assert_eq!(resumed, reference, "kill at {kill_at} diverged");
    }
}

/// Cross-mode resume is rejected by the config fingerprint: a checkpoint
/// from an overload-controlled run cannot resume into a plain controller
/// (or one with different knobs), and vice versa.
#[test]
fn cross_mode_resume_is_rejected_by_fingerprint() {
    let (mut spec, events) = flood_spec(1, 6_000);
    spec.max_cycles = 40_000;
    let bytes = simulate_serial_checkpointed(&spec, &events, 3_000).unwrap();

    let mut plain = spec.clone();
    plain.config.overload = None;
    assert!(matches!(
        resume_serial(&plain, &events, &bytes),
        Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. }))
    ));
    // Same shape, different token budget: also a different fingerprint.
    let mut other = spec.clone();
    other.config.overload = Some(
        OverloadConfig::new(4)
            .throttled(1_000, 5, 1.0)
            .shedding(500, 24, 8, 48, 8)
            .protect(0),
    );
    assert!(matches!(
        resume_serial(&other, &events, &bytes),
        Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. }))
    ));
    // A plain checkpoint cannot resume into the overload-controlled mode.
    let plain_bytes = simulate_serial_checkpointed(&plain, &events, 3_000).unwrap();
    assert!(matches!(
        resume_serial(&spec, &events, &plain_bytes),
        Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. }))
    ));
}

/// Satellite 3a: a real-time regulated thread is implicitly protected —
/// under a flood that saturates the shedder and gates every streamer,
/// the premium thread is never throttled, never shed, and completes
/// every request it submitted.
#[test]
fn regulated_premium_thread_is_never_throttled_or_shed() {
    let mut spec = EngineSpec::paper(1, 4);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec.max_cycles = 200_000;
    // Zero retries: gated streamer heads are abandoned immediately, so
    // head-of-line blocking never starves the premium thread's port slot
    // and the schedule fully drains inside the horizon.
    spec.retry = RetryPolicy::bounded(0, 1, 1);
    let reg = RegulationConfig::new(2_000)
        .rt_class(1 << 40, None) // in-budget forever: always premium
        .best_effort()
        .best_effort()
        .best_effort();
    spec.config = spec.config.with_regulation(reg).with_overload(
        OverloadConfig::new(4)
            .throttled(1_000, 0, 1.0)
            .shedding(500, 24, 8, 48, 8),
    );
    let events = interference_workload(4, 12_000, 0.05, 0.5, 101);
    let report = simulate_serial(&spec, &events).unwrap();

    assert_tripped(&report, "premium-protection");
    assert_conserves(&report, events.len(), "premium-protection");
    let premium = &report.per_thread[0];
    assert_eq!(premium.throttle_nacks, 0, "premium thread throttled");
    assert_eq!(premium.requests_shed, 0, "premium thread shed");
    assert!(
        report
            .rejected
            .iter()
            .flatten()
            .all(|e| e.thread.as_u32() != 0),
        "a premium request was abandoned at the port"
    );
    let submitted_0 = events.iter().filter(|e| e.thread.as_u32() == 0).count();
    let completed_0 = report
        .completions
        .iter()
        .flatten()
        .filter(|c| c.thread.as_u32() == 0)
        .count();
    assert!(submitted_0 > 100, "vacuous premium workload");
    assert_eq!(
        completed_0, submitted_0,
        "premium thread lost requests under the flood"
    );
    // The refusals all landed on the best-effort streamers.
    for t in 1..4 {
        assert!(
            report.per_thread[t].throttle_nacks > 0,
            "streamer {t} was never gated: vacuous protection test"
        );
    }
}

/// Satellite 3b: the starvation watchdog's strict-progress semantics
/// under throttle NACKs. A gated hog whose *admitted* backlog has
/// drained holds no transaction entries, so however long its port is
/// refused at admission it must never be counted starved — starvation
/// means admitted-but-unserved, not refused-at-the-door. Retry
/// exhaustion on throttle NACKs surfaces as `rejected` (the
/// `Event::Rejected` path), honouring `retry_after` in the backoff.
#[test]
fn watchdog_never_counts_a_gated_thread_starved() {
    let mut spec = EngineSpec::paper(1, 2);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec.max_cycles = 300_000;
    spec.config.starvation_threshold = Some(400);
    // One retry per head: a gated head waits out `retry_after` once (the
    // backoff must honour it), is refused again at the boundary, and is
    // abandoned — exercising rejection while keeping the port draining.
    spec.retry = RetryPolicy::bounded(1, 1, 4);
    spec.config = spec.config.with_overload(
        // Margin 1.0 + zero tokens: thread 1 is gated outright from the
        // first replenish boundary (cycle 600) onward.
        OverloadConfig::new(2).throttled(600, 0, 1.0).protect(0),
    );
    // Thread 1: a burst admitted before the boundary (it must drain and
    // release every entry), then a trickle the throttle refuses for the
    // rest of the run — thousands of cycles with port traffic pending
    // but nothing admitted, exactly where a naive watchdog would fire.
    // Thread 0: light protected reads throughout.
    let mut events = Vec::new();
    for i in 0..12u64 {
        events.push(SubmitEvent {
            at: DramCycle::new(10 + i),
            thread: ThreadId::new(1),
            kind: RequestKind::Read,
            phys: (1 << 20) + i * 64,
        });
    }
    for c in (40..9_000u64).step_by(20) {
        events.push(SubmitEvent {
            at: DramCycle::new(c),
            thread: ThreadId::new(0),
            kind: RequestKind::Read,
            phys: (c % 1024) * 64,
        });
        if c % 100 == 0 {
            events.push(SubmitEvent {
                at: DramCycle::new(c),
                thread: ThreadId::new(1),
                kind: RequestKind::Read,
                phys: (1 << 20) + c * 64,
            });
        }
    }
    let report = simulate_serial(&spec, &events).unwrap();

    assert_conserves(&report, events.len(), "watchdog-gating");
    let gated = &report.per_thread[1];
    assert!(gated.throttle_nacks > 0, "hog never gated: vacuous test");
    assert!(
        report.total_rejected() > 0,
        "retries never exhausted on throttle NACKs: vacuous test"
    );
    assert_eq!(
        gated.starvations, 0,
        "watchdog counted a thread with no admitted work as starved"
    );
    assert_eq!(report.per_thread[0].starvations, 0, "protected starved");
    // Throttle refusals are NACKs; the ledger must nest.
    assert!(gated.throttle_nacks <= gated.nacks, "ledger inversion");
}

/// One generated fuzz case: an overload configuration (throttle and/or
/// shedder, sometimes protecting thread 0), a workload, a retry budget,
/// and sometimes an adversarial fault plan layered on top.
#[derive(Debug, Clone)]
struct OvCase {
    threads: usize,
    channels: usize,
    cycles: u64,
    intensity: f64,
    seed: u64,
    /// `(period, tokens, margin)`.
    throttle: Option<(u64, u64, f64)>,
    /// `(window, occ_enter, occ_exit, nack_enter, nack_exit)`.
    shed: Option<(u64, usize, usize, u64, u64)>,
    protect0: bool,
    max_retries: u32,
    plan: Option<FaultPlan>,
}

impl OvCase {
    fn generate(rng: &mut SimRng) -> Self {
        let threads = 2 + rng.next_below(3) as usize;
        let channels = 1 + rng.next_below(2) as usize;
        let cycles = 3_000 + rng.next_below(3) * 2_000;
        let intensity = 0.2 + 0.1 * rng.next_below(3) as f64;
        let seed = rng.next_u64();
        let mut throttle = rng.chance(0.8).then(|| {
            (
                300 + rng.next_below(5) * 150,
                rng.next_below(6),
                1.0 + 0.25 * rng.next_below(5) as f64,
            )
        });
        let shed = rng.chance(0.7).then(|| {
            let occ_enter = 6 + rng.next_below(12) as usize;
            let nack_enter = 8 + rng.next_below(40);
            (
                200 + rng.next_below(4) * 100,
                occ_enter,
                occ_enter / 2,
                nack_enter,
                nack_enter / 4,
            )
        });
        if throttle.is_none() && shed.is_none() {
            // The config must arm at least one mechanism to validate.
            throttle = Some((600, 2, 1.0));
        }
        let plan = rng.chance(0.4).then(|| {
            let mut plan = FaultPlan::new(rng.next_u64());
            if rng.chance(0.7) {
                plan = plan.with(
                    FaultKind::NackStorm,
                    FaultWindow::new(500, cycles),
                    0.002,
                    100 + rng.next_below(200),
                );
            }
            if rng.chance(0.5) {
                plan = plan.with(
                    FaultKind::RequestDrop,
                    FaultWindow::new(500, cycles),
                    0.002,
                    1,
                );
            }
            plan
        });
        OvCase {
            threads,
            channels,
            cycles,
            intensity,
            seed,
            throttle,
            shed,
            protect0: rng.chance(0.5),
            max_retries: rng.next_below(2) as u32,
            plan,
        }
    }

    /// Shrinks toward a shorter run, a quieter plan, and a simpler
    /// control layer — always leaving at least one mechanism armed.
    fn shrink(&self) -> Vec<OvCase> {
        let mut out = Vec::new();
        if self.plan.is_some() {
            let mut calm = self.clone();
            calm.plan = None;
            out.push(calm);
        }
        if self.cycles > 1_500 {
            let mut shorter = self.clone();
            shorter.cycles /= 2;
            if let Some(plan) = &mut shorter.plan {
                for spec in &mut plan.specs {
                    spec.window.end = spec
                        .window
                        .end
                        .min(shorter.cycles)
                        .max(spec.window.start + 1);
                }
            }
            out.push(shorter);
        }
        if self.shed.is_some() && self.throttle.is_some() {
            let mut no_shed = self.clone();
            no_shed.shed = None;
            out.push(no_shed);
            let mut no_throttle = self.clone();
            no_throttle.throttle = None;
            out.push(no_throttle);
        }
        if self.threads > 2 {
            let mut fewer = self.clone();
            fewer.threads -= 1;
            out.push(fewer);
        }
        out
    }

    fn check(&self) -> Result<(), String> {
        let mut spec = EngineSpec::paper(self.channels, self.threads);
        spec.epoch_cycles = 512;
        spec.event_capacity = Some(1 << 20);
        // Generous horizon: with one retry per head, a fully-gated port
        // drains one head per throttle period — worst case a few million
        // (mostly fast-forwarded) cycles.
        spec.max_cycles = 20_000_000;
        spec.retry = RetryPolicy::bounded(self.max_retries, 1, 4);
        spec.fault_plan = self.plan.clone();
        let mut ov = OverloadConfig::new(self.threads);
        if let Some((period, tokens, margin)) = self.throttle {
            ov = ov.throttled(period, tokens, margin);
        }
        if let Some((window, oe, ox, ne, nx)) = self.shed {
            ov = ov.shedding(window, oe, ox, ne, nx);
        }
        if self.protect0 {
            ov = ov.protect(0);
        }
        spec.config = spec.config.with_overload(ov);
        let events =
            synthetic_workload(self.threads as u32, self.cycles, self.intensity, self.seed);
        let report =
            simulate_serial(&spec, &events).map_err(|e| format!("engine rejected case: {e}"))?;

        if report.unsubmitted != 0 {
            return Err(format!("{} events never drained", report.unsubmitted));
        }
        let balance = report.total_completed() as u64
            + total_dropped(&report)
            + report.total_rejected() as u64
            + report.total_shed() as u64;
        if balance != events.len() as u64 {
            return Err(format!(
                "conservation broke: {balance} accounted, {} submitted",
                events.len()
            ));
        }
        let shed_stats: u64 = report.per_thread.iter().map(|t| t.requests_shed).sum();
        if shed_stats != report.total_shed() as u64 {
            return Err(format!(
                "shed ledgers disagree: stats {shed_stats}, report {}",
                report.total_shed()
            ));
        }
        for (t, ts) in report.per_thread.iter().enumerate() {
            if ts.throttle_nacks > ts.nacks {
                return Err(format!(
                    "thread {t}: throttle_nacks {} exceeds nacks {}",
                    ts.throttle_nacks, ts.nacks
                ));
            }
        }
        if self.protect0 {
            let p = &report.per_thread[0];
            if p.throttle_nacks != 0 || p.requests_shed != 0 {
                return Err(format!(
                    "protected thread gated: {} throttles, {} shed",
                    p.throttle_nacks, p.requests_shed
                ));
            }
        }
        // Each per-channel detector's level equals its entries minus its
        // exits, so the merged counters can differ by at most two ladder
        // rungs per channel.
        let m = metrics(&report);
        if m.saturation_exits > m.saturation_entries
            || m.saturation_entries - m.saturation_exits > 2 * self.channels as u64
        {
            return Err(format!(
                "detector transitions unbalanced: {} entries, {} exits",
                m.saturation_entries, m.saturation_exits
            ));
        }
        Ok(())
    }
}

/// The release gate: shrinking fuzz over overload configurations,
/// workloads, retry budgets, and fault plans. Conservation and the
/// protection invariant must hold on every drained run.
#[test]
fn fuzz_conservation_holds_under_overload_control() {
    let cases = if cfg!(debug_assertions) { 10 } else { 40 };
    CaseRunner::new("overload")
        .cases(cases)
        .run(OvCase::generate, OvCase::shrink, |case| case.check());
}

/// The flood spec itself conserves: with bounded retries every event
/// either completes, is rejected at the port, or is shed — nothing
/// leaks, even with both mechanisms cycling through their ladders.
#[test]
fn flood_run_conserves_and_drains() {
    let (mut spec, events) = flood_spec(2, 10_000);
    spec.max_cycles = 200_000;
    // Zero retries: gated heads abandon immediately instead of waiting
    // out `retry_after`, so the flood drains inside the horizon.
    spec.retry = RetryPolicy::bounded(0, 1, 1);
    let report = simulate_serial(&spec, &events).unwrap();
    assert_tripped(&report, "flood-conservation");
    assert_conserves(&report, events.len(), "flood-conservation");
    // Shed is terminal: shed requests never reappear as completions.
    let shed_total = report.total_shed();
    assert!(
        report.total_completed() + shed_total <= events.len(),
        "shed requests double-counted as completions"
    );
}
