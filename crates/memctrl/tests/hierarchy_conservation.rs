//! Hierarchy conservation suite (ISSUE 6 satellite): with a two-level
//! tenant → thread share tree, service accounting must conserve at every
//! level of the hierarchy and under every disposal path:
//!
//! * **parent = Σ children** — a tenant's rolled-up service equals the
//!   field-wise sum of its member threads' counters, and the sum over
//!   tenants equals the controller-wide totals;
//! * **submitted = completed + dropped + rejected** — per tenant node,
//!   every submitted request is accounted for exactly once even when
//!   fault injection drops admitted requests and bounded retry abandons
//!   NACKed ones;
//! * the observability sidecar's tenant rollup ([`group_totals`]) agrees
//!   with the controller's own statistics.
//!
//! Trees are drawn at random (uneven tenant sizes, uneven shares and
//! thread weights) by the in-tree [`CaseRunner`] with shrinking.
//!
//! [`group_totals`]: fqms_obs::metrics::MetricsSink::group_totals

use fqms_memctrl::engine::{simulate_serial, synthetic_workload, EngineSpec};
use fqms_memctrl::prelude::*;
use fqms_memctrl::stats::ThreadStats;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use fqms_sim::rng::{CaseRunner, SimRng};

/// A randomly drawn hierarchical scenario.
#[derive(Debug, Clone)]
struct Scenario {
    tree: ShareTree,
    /// Workload seed (also seeds the fault plan when enabled).
    seed: u64,
    faults: bool,
}

/// Draws a valid random tree: 1–4 tenants, 1–4 threads each, integer
/// share weights normalized to sum to 1, integer thread weights.
fn gen_scenario(rng: &mut SimRng) -> Scenario {
    let num_tenants = 1 + rng.next_below(4) as usize;
    let raw: Vec<u64> = (0..num_tenants).map(|_| 1 + rng.next_below(8)).collect();
    let total: u64 = raw.iter().sum();
    let tenants = raw
        .iter()
        .map(|&w| TenantSpec {
            share: w as f64 / total as f64,
            weights: (0..1 + rng.next_below(4))
                .map(|_| (1 + rng.next_below(4)) as f64)
                .collect(),
        })
        .collect();
    Scenario {
        tree: ShareTree { tenants },
        seed: rng.next_u64(),
        faults: rng.chance(0.5),
    }
}

fn shrink_scenario(s: &Scenario) -> Vec<Scenario> {
    let mut c = Vec::new();
    if s.faults {
        c.push(Scenario {
            faults: false,
            ..s.clone()
        });
    }
    if s.tree.num_tenants() > 1 {
        // Drop the last tenant, re-normalizing the remaining shares.
        let mut tenants = s.tree.tenants[..s.tree.num_tenants() - 1].to_vec();
        let total: f64 = tenants.iter().map(|t| t.share).sum();
        for t in &mut tenants {
            t.share /= total;
        }
        c.push(Scenario {
            tree: ShareTree { tenants },
            ..s.clone()
        });
    }
    c
}

fn check_scenario(s: &Scenario) -> Result<(), String> {
    s.tree
        .validate()
        .map_err(|e| format!("generator produced an invalid tree: {e}"))?;
    let threads = s.tree.num_threads();
    let mut spec = EngineSpec::paper(2, threads);
    spec.config.scheduler = SchedulerKind::FqVftf;
    spec.config.shares = s.tree.effective_shares();
    spec.config.share_tree = Some(s.tree.clone());
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    if s.faults {
        // Drops and NACK storms with bounded retry: both non-completion
        // disposal paths fire, so the conservation law is non-vacuous.
        spec.fault_plan = Some(
            FaultPlan::new(s.seed ^ 0xfa17)
                .with(
                    FaultKind::RequestDrop,
                    FaultWindow::new(100, 3_500),
                    0.01,
                    1,
                )
                .with(
                    FaultKind::NackStorm,
                    FaultWindow::new(100, 3_500),
                    0.004,
                    200,
                ),
        );
        spec.retry = fqms_memctrl::engine::RetryPolicy::bounded(4, 2, 64);
    }
    let events = synthetic_workload(threads as u32, 4_000, 0.35, s.seed);
    let report = simulate_serial(&spec, &events).map_err(|e| format!("run failed: {e}"))?;
    if report.unsubmitted != 0 {
        return Err(format!("{} submissions wedged", report.unsubmitted));
    }

    let num_tenants = s.tree.num_tenants();
    // Per-tenant ledger from the three independent sources.
    let mut submitted = vec![0u64; num_tenants];
    for e in &events {
        submitted[s.tree.tenant_of(e.thread.as_usize())] += 1;
    }
    let mut rejected = vec![0u64; num_tenants];
    for e in report.rejected.iter().flatten() {
        rejected[s.tree.tenant_of(e.thread.as_usize())] += 1;
    }
    // parent = Σ children, on every counter, via the stats rollup.
    let tenants: Vec<ThreadStats> = (0..num_tenants)
        .map(|tenant| {
            let mut total = ThreadStats::default();
            for t in s.tree.tenant_threads(tenant) {
                total.merge(&report.per_thread[t]);
            }
            total
        })
        .collect();

    for tenant in 0..num_tenants {
        let t = &tenants[tenant];
        let completed = t.reads_completed + t.writes_completed;
        let balance = completed + t.requests_dropped + rejected[tenant];
        if balance != submitted[tenant] {
            return Err(format!(
                "tenant {tenant}: completed {completed} + dropped {} + rejected {} \
                 != submitted {}",
                t.requests_dropped, rejected[tenant], submitted[tenant]
            ));
        }
    }

    // Σ tenants == controller-wide totals (service and every other
    // counter that the reports aggregate).
    let tenant_completed: u64 = tenants
        .iter()
        .map(|t| t.reads_completed + t.writes_completed)
        .sum();
    if tenant_completed != report.total_completed() as u64 {
        return Err(format!(
            "tenant service sum {tenant_completed} != total {}",
            report.total_completed()
        ));
    }
    let tenant_bus: u64 = tenants.iter().map(|t| t.bus_busy_cycles).sum();
    let thread_bus: u64 = report.per_thread.iter().map(|t| t.bus_busy_cycles).sum();
    if tenant_bus != thread_bus {
        return Err(format!("bus cycles leak: {tenant_bus} != {thread_bus}"));
    }

    // The observability sidecar's rollup agrees with the stats rollup.
    let sink = &report
        .observations
        .as_ref()
        .ok_or("run was not observed")?
        .metrics;
    let groups = sink.group_totals(num_tenants, |t| s.tree.tenant_of(t as usize));
    for (tenant, g) in groups.iter().enumerate() {
        let t = &tenants[tenant];
        if (g.reads_completed, g.writes_completed) != (t.reads_completed, t.writes_completed) {
            return Err(format!(
                "tenant {tenant}: sink ({}, {}) != stats ({}, {})",
                g.reads_completed, g.writes_completed, t.reads_completed, t.writes_completed
            ));
        }
    }
    Ok(())
}

#[test]
fn random_trees_conserve_service_at_every_level() {
    CaseRunner::new("hierarchy-conservation").cases(12).run(
        gen_scenario,
        shrink_scenario,
        check_scenario,
    );
}

#[test]
fn skewed_tree_conserves_under_faults() {
    // A deterministic, maximally uneven tree (one big tenant, one
    // single-thread QoS tenant with a large share) with both fault
    // classes enabled — the configuration the paper's QoS story cares
    // about most.
    let s = Scenario {
        tree: ShareTree {
            tenants: vec![TenantSpec::equal(0.5, 1), TenantSpec::equal(0.5, 5)],
        },
        seed: 2006,
        faults: true,
    };
    check_scenario(&s).unwrap();
}
