//! Heap-vs-linear differential suite (ISSUE 6 satellite, release gate):
//! the O(log n) indexed scheduler (`ScanKind::Indexed`) must be an
//! *optimisation*, never a semantic change. Every scheduler kind — and
//! the refresh / fault / binding / workload variants most likely to
//! expose a candidate-set divergence — is run twice over the same seeded
//! schedule, once with the retained linear reference scan and once with
//! the tournament-heap index, and the two [`EngineReport`]s must be
//! **fully** structurally equal: completions, per-thread stats, command
//! logs, observed event streams, and even the `stepped_cycles` /
//! `skipped_cycles` diagnostics (the scan kind shares the watchdog and
//! cycle-skip logic, so not a single simulated cycle may differ).
//!
//! The suite also covers the hierarchical share tree end to end: a
//! two-level tenant → thread allocation must kill-and-resume bit
//! identically on the indexed path, and corrupted checkpoint bytes must
//! fail with a typed [`SnapshotError`], never panic or resume silently
//! wrong.

use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::engine::{
    adversarial_workload, interference_workload, resume_serial, simulate_serial,
    simulate_serial_checkpointed, synthetic_workload, EngineReport, EngineSpec, ResumeError,
    RetryPolicy, SubmitEvent,
};
use fqms_memctrl::policy::{RefreshPolicy, RowPolicy, VftBinding};
use fqms_memctrl::prelude::*;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use fqms_sim::rng::{CaseRunner, SimRng};
use fqms_sim::snapshot::SnapshotError;

fn spec_with(kind: SchedulerKind, channels: usize, threads: usize) -> EngineSpec {
    let mut spec = EngineSpec::paper(channels, threads);
    spec.config.set_scheduler(kind);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec
}

/// Every fault class in one plan, so drops, NACK storms, bank stalls and
/// refresh pressure all cross the scan-kind boundary.
fn faults(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::NackStorm,
            FaultWindow::new(300, 5_000),
            0.002,
            90,
        )
        .with(
            FaultKind::BankStall,
            FaultWindow::new(300, 5_000),
            0.002,
            110,
        )
        .with(
            FaultKind::RefreshPressure,
            FaultWindow::new(300, 5_000),
            0.001,
            70,
        )
        .with(
            FaultKind::RequestDrop,
            FaultWindow::new(300, 5_000),
            0.003,
            1,
        )
}

/// Runs `spec` once per scan kind and demands full structural equality.
/// Returns the indexed report for extra assertions.
fn check(mut spec: EngineSpec, events: &[SubmitEvent], label: &str) -> EngineReport {
    spec.config.scan = ScanKind::Linear;
    let linear = simulate_serial(&spec, events).unwrap();
    spec.config.scan = ScanKind::Indexed;
    let indexed = simulate_serial(&spec, events).unwrap();
    assert_eq!(
        linear, indexed,
        "{label}: indexed scan diverged from linear reference"
    );
    indexed
}

#[test]
fn all_schedulers_agree_across_scan_kinds() {
    // Parameterized over the *whole* scheduler enum so a newly added
    // policy cannot silently bypass the Linear-vs-Indexed gate: every
    // scheduler either proves bit-identity across scan kinds or declares
    // itself linear-only (and then the indexed path must be a typed
    // config error, checked in `linear_only_schedulers_reject_indexed`).
    let events = synthetic_workload(4, 4_000, 0.3, 2006);
    let mut indexed_checked = 0;
    for kind in SchedulerKind::all() {
        if !kind.supports_indexed_scan() {
            continue;
        }
        indexed_checked += 1;
        let report = check(spec_with(kind, 2, 4), &events, kind.name());
        assert!(report.unsubmitted == 0, "{kind}: mix failed to drain");
        assert!(
            report.completions.iter().map(Vec::len).sum::<usize>() > 0,
            "{kind}: vacuous equivalence — nothing completed"
        );
    }
    assert!(
        indexed_checked >= 5,
        "expected at least 5 indexed-capable schedulers, found {indexed_checked}"
    );
}

#[test]
fn linear_only_schedulers_reject_indexed() {
    // The complement of the gate above: a scheduler that opts out of the
    // indexed path must fail loudly — a typed UnsupportedScanError from
    // config validation and a refused engine run — never run Indexed with
    // silently different semantics.
    let events = synthetic_workload(4, 1_000, 0.3, 2006);
    let mut linear_only = 0;
    for kind in SchedulerKind::all() {
        if kind.supports_indexed_scan() {
            continue;
        }
        linear_only += 1;
        let mut spec = spec_with(kind, 1, 4);
        assert_eq!(
            spec.config.scan,
            ScanKind::Linear,
            "{kind}: set_scheduler must downgrade"
        );
        spec.config.scan = ScanKind::Indexed;
        let err = spec
            .config
            .validate_scan()
            .expect_err("indexed BLISS accepted");
        assert_eq!(err.scheduler, kind);
        assert_eq!(err.scan, ScanKind::Indexed);
        let run = simulate_serial(&spec, &events);
        let msg = run.expect_err("engine ran a linear-only scheduler on the indexed path");
        assert!(
            msg.contains(kind.name()),
            "{kind}: error does not name the scheduler: {msg}"
        );
    }
    assert!(linear_only >= 1, "expected BLISS to be linear-only");
}

#[test]
fn refresh_and_fault_matrix_agrees_across_scan_kinds() {
    let events = synthetic_workload(4, 6_000, 0.25, 99);
    for refresh in [
        RefreshPolicy::Strict,
        RefreshPolicy::Deferred { max_postponed: 4 },
    ] {
        for plan in [None, Some(faults(11))] {
            for kind in [
                SchedulerKind::FrFcfs,
                SchedulerKind::FqVftf,
                SchedulerKind::SdVftf,
            ] {
                let mut spec = spec_with(kind, 2, 4);
                spec.timing = TimingParams::ddr2_667();
                spec.config.refresh_policy = refresh;
                spec.fault_plan = plan.clone();
                if plan.is_some() {
                    spec.retry = RetryPolicy::bounded(6, 2, 64);
                }
                let label = format!("{kind}/{refresh:?}/faults={}", plan.is_some());
                check(spec, &events, &label);
            }
        }
    }
}

#[test]
fn binding_and_row_policy_variants_agree_across_scan_kinds() {
    // At-arrival binding keys every entry at push (no bind pre-pass);
    // first-ready binding exercises the admission-ordered lazy pass.
    // Closed-row policy changes which tournament queries run per cycle.
    let events = synthetic_workload(4, 4_000, 0.2, 7);
    for (row, binding) in [
        (RowPolicy::Open, VftBinding::FirstReady),
        (RowPolicy::Closed, VftBinding::AtArrival),
        (RowPolicy::Open, VftBinding::AtArrival),
        (RowPolicy::Closed, VftBinding::FirstReady),
    ] {
        let mut spec = spec_with(SchedulerKind::FqVftf, 2, 4);
        spec.config.row_policy = row;
        spec.config.vft_binding = binding;
        check(spec, &events, &format!("{row:?}/{binding:?}"));
    }
}

#[test]
fn adversarial_inversion_lock_agrees_across_scan_kinds() {
    // The starvation-adversarial mix drives the priority-inversion lock
    // (locked-mode selection uses the global tournament min, the trickiest
    // indexed code path) and the watchdog.
    let events = adversarial_workload(&Geometry::paper(), 3, 20_000, 2006);
    for kind in [
        SchedulerKind::FrFcfs,
        SchedulerKind::FrVftf,
        SchedulerKind::FqVftf,
        SchedulerKind::SdVftf,
    ] {
        let mut spec = spec_with(kind, 1, 3);
        spec.config.starvation_threshold = Some(300);
        check(spec, &events, &format!("adversarial/{kind}"));
    }
}

#[test]
fn interference_mix_agrees_across_scan_kinds() {
    let events = interference_workload(4, 6_000, 0.05, 0.8, 2006);
    check(
        spec_with(SchedulerKind::FqVftf, 1, 4),
        &events,
        "interference",
    );
}

/// A two-level share tree equivalent to the paper's flat equal-share
/// setup on 4 threads: two tenants at 0.5, two equally-weighted threads
/// each.
fn two_tenant_spec(kind: SchedulerKind) -> EngineSpec {
    let mut spec = spec_with(kind, 2, 4);
    let tree = ShareTree::symmetric(2, 2);
    spec.config.shares = tree.effective_shares();
    spec.config.share_tree = Some(tree);
    spec
}

#[test]
fn hierarchical_share_tree_agrees_across_scan_kinds() {
    let events = synthetic_workload(4, 5_000, 0.3, 17);
    for kind in [
        SchedulerKind::FrVftf,
        SchedulerKind::FqVftf,
        SchedulerKind::SdVftf,
    ] {
        check(two_tenant_spec(kind), &events, &format!("tree/{kind}"));
    }
}

#[test]
fn hierarchical_indexed_kill_and_resume_is_bit_identical() {
    // Kill-and-resume on the indexed path with a share tree: the queue
    // snapshot stores only admission-ordered live entries; heaps, the
    // tournament, and the watchdog deadline cache are rebuilt or restored
    // such that the continuation is bit-exact, mid-epoch included.
    let events = synthetic_workload(4, 4_000, 0.4, 2006);
    for plan in [None, Some(faults(11))] {
        let mut spec = two_tenant_spec(SchedulerKind::FqVftf);
        spec.config.starvation_threshold = Some(300);
        spec.fault_plan = plan.clone();
        if plan.is_some() {
            spec.retry = RetryPolicy::bounded(6, 2, 64);
        }
        let reference = simulate_serial(&spec, &events).unwrap();
        let ctx = format!("tree/faults={}", plan.is_some());
        for kill_at in [97, 1_500, 2_048, reference.cycles - 311] {
            let bytes = simulate_serial_checkpointed(&spec, &events, kill_at)
                .unwrap_or_else(|e| panic!("{ctx}: checkpoint at {kill_at}: {e}"));
            let resumed = resume_serial(&spec, &events, &bytes)
                .unwrap_or_else(|e| panic!("{ctx}: resume from {kill_at}: {e}"));
            assert_eq!(
                reference, resumed,
                "{ctx}: kill at {kill_at} changed the run"
            );
        }
    }
}

#[test]
fn scan_kind_is_part_of_the_checkpoint_fingerprint() {
    // A checkpoint taken under one scan kind must not resume under the
    // other: rebuilt index state is scan-dependent, so the fingerprint
    // binds the bytes to the scan configuration too.
    let events = synthetic_workload(4, 3_000, 0.4, 7);
    let mut spec = spec_with(SchedulerKind::FqVftf, 2, 4);
    spec.config.scan = ScanKind::Indexed;
    let bytes = simulate_serial_checkpointed(&spec, &events, 1_000).unwrap();
    spec.config.scan = ScanKind::Linear;
    match resume_serial(&spec, &events, &bytes) {
        Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. })) => {}
        other => panic!("cross-scan-kind resume not rejected: {other:?}"),
    }
}

#[test]
fn corrupted_checkpoints_fail_typed_and_never_panic() {
    // Randomized truncations and bit flips over a mid-run checkpoint of
    // the indexed + share-tree configuration (so the damaged bytes cover
    // the queue, watchdog-deadline and stats sections). Every corruption
    // must yield a typed SnapshotError through resume — never a panic,
    // never a silent success.
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let events = synthetic_workload(4, 4_000, 0.4, 2006);
    let mut spec = two_tenant_spec(SchedulerKind::FqVftf);
    spec.config.starvation_threshold = Some(300);
    let pristine = simulate_serial_checkpointed(&spec, &events, 2_000).unwrap();
    resume_serial(&spec, &events, &pristine).expect("pristine checkpoint must resume");
    let n = pristine.len();
    assert!(n > 64, "checkpoint implausibly small: {n} bytes");

    #[derive(Debug, Clone, Copy)]
    enum Mutation {
        Truncate(usize),
        BitFlip(usize, u8),
    }

    CaseRunner::new("checkpoint-corruption").cases(48).run(
        |rng: &mut SimRng| {
            if rng.next_below(2) == 0 {
                Mutation::Truncate(rng.next_below(n as u64) as usize)
            } else {
                Mutation::BitFlip(rng.next_below(n as u64) as usize, rng.next_below(8) as u8)
            }
        },
        |&m| match m {
            Mutation::Truncate(len) if len > 0 => {
                vec![Mutation::Truncate(len / 2), Mutation::Truncate(len - 1)]
            }
            Mutation::Truncate(_) => Vec::new(),
            Mutation::BitFlip(pos, bit) => {
                let mut c = Vec::new();
                if pos > 0 {
                    c.push(Mutation::BitFlip(pos / 2, bit));
                    c.push(Mutation::BitFlip(pos - 1, bit));
                }
                if bit > 0 {
                    c.push(Mutation::BitFlip(pos, 0));
                }
                c
            }
        },
        |&m| {
            let mut corrupt = pristine.clone();
            match m {
                Mutation::Truncate(len) => corrupt.truncate(len),
                Mutation::BitFlip(pos, bit) => corrupt[pos] ^= 1 << bit,
            }
            let outcome =
                catch_unwind(AssertUnwindSafe(|| resume_serial(&spec, &events, &corrupt)));
            match outcome {
                Err(_) => Err(format!("{m:?}: resume panicked")),
                Ok(Ok(_)) => Err(format!("{m:?}: corrupted checkpoint resumed")),
                Ok(Err(ResumeError::Snapshot(_)) | Err(ResumeError::Spec(_))) => Ok(()),
            }
        },
    );
}
