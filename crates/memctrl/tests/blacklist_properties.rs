//! Property suite for the BLISS blacklist state machine and the online
//! slowdown estimator (ISSUE 7 satellite), on the in-tree shrinking
//! [`fqms_sim::rng::CaseRunner`].
//!
//! The incremental [`BlissState`] (one streak counter, lazy clearing) is
//! driven op-by-op against a naive recompute-from-scratch oracle that
//! retains every service since the last clearing boundary and rescans the
//! whole history per query — slow but obviously correct. Covered by
//! construction: streak reset on interleaved service, clearing-interval
//! expiry (including multi-interval fast-forward jumps and adversarial
//! clocks at `u64::MAX`), and the all-blacklisted degenerate case, which
//! is additionally exercised end-to-end through a real controller run.
//!
//! The [`SlowdownEstimator`] is checked against a closed-form wide-integer
//! oracle, including `u64`-saturating accumulator values, and against a
//! genuinely-alone controller trace where the estimated slowdown must stay
//! near unity.

use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::prelude::*;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::{CaseRunner, SimRng};

/// One step of a BLISS driving schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// A bank service observed for the thread.
    Service(u32),
    /// The clearing clock advances to this cycle (monotone per case).
    AdvanceTo(u64),
}

/// A generated BLISS schedule plus the knobs it runs under.
#[derive(Debug, Clone)]
struct BlissCase {
    threads: u32,
    threshold: u32,
    interval: u64,
    ops: Vec<Op>,
}

impl BlissCase {
    fn generate(rng: &mut SimRng) -> Self {
        let threads = 1 + rng.next_below(4) as u32;
        let interval = 1 + rng.next_below(500);
        let mut now = 0u64;
        let len = rng.next_below(80) as usize;
        let ops = (0..len)
            .map(|_| {
                if rng.chance(0.35) {
                    // Mostly small steps; occasionally a fast-forward-sized
                    // jump, rarely an adversarial leap to the end of time.
                    now = match rng.next_below(10) {
                        0 => u64::MAX - rng.next_below(3),
                        1..=3 => now.saturating_add(interval * (1 + rng.next_below(5))),
                        _ => now.saturating_add(rng.next_below(interval.max(2))),
                    };
                    Op::AdvanceTo(now)
                } else {
                    Op::Service(rng.next_below(u64::from(threads)) as u32)
                }
            })
            .collect();
        BlissCase {
            threads,
            threshold: 1 + rng.next_below(5) as u32,
            interval,
            ops,
        }
    }

    /// Shrinks toward fewer ops (any prefix or single-op deletion keeps
    /// the schedule monotone, so every shrink is a valid case).
    fn shrink(&self) -> Vec<BlissCase> {
        let mut out = Vec::new();
        if !self.ops.is_empty() {
            out.push(BlissCase {
                ops: self.ops[..self.ops.len() / 2].to_vec(),
                ..self.clone()
            });
            let mut drop_last = self.clone();
            drop_last.ops.pop();
            out.push(drop_last);
        }
        out
    }
}

/// The naive oracle: remembers every service since the last clearing
/// boundary and rescans the list per query. No incremental state beyond
/// the boundary clock — exactly the specification, none of the
/// optimisation.
struct Oracle {
    threshold: u32,
    interval: u64,
    services: Vec<u32>,
    next_clear: u64,
}

impl Oracle {
    fn new(threshold: u32, interval: u64) -> Self {
        Oracle {
            threshold,
            interval,
            services: Vec::new(),
            next_clear: interval,
        }
    }

    fn advance(&mut self, now: u64) {
        if now >= self.next_clear {
            self.services.clear();
            self.next_clear = (now / self.interval)
                .checked_add(1)
                .and_then(|n| n.checked_mul(self.interval))
                .unwrap_or(u64::MAX);
        }
    }

    /// Recomputes the blacklist by scanning the full post-clear history
    /// for any consecutive run reaching the threshold.
    fn blacklist(&self, threads: u32) -> Vec<bool> {
        let mut flags = vec![false; threads as usize];
        let mut run_thread = None;
        let mut run = 0u32;
        for &t in &self.services {
            if run_thread == Some(t) {
                run += 1;
            } else {
                run_thread = Some(t);
                run = 1;
            }
            if run >= self.threshold {
                flags[t as usize] = true;
            }
        }
        flags
    }

    /// The trailing consecutive-service run (thread, length).
    fn streak(&self) -> (Option<u32>, u32) {
        let Some(&last) = self.services.last() else {
            return (None, 0);
        };
        let run = self
            .services
            .iter()
            .rev()
            .take_while(|&&t| t == last)
            .count() as u32;
        (Some(last), run)
    }
}

/// The incremental state machine agrees with the recompute-from-scratch
/// oracle after every single op: blacklist flags, streak owner and
/// length, and the next clearing boundary.
#[test]
fn bliss_state_matches_recompute_oracle() {
    CaseRunner::new("bliss-oracle")
        .cases(64)
        .run(BlissCase::generate, BlissCase::shrink, |case| {
            let mut state = BlissState::new(case.threads as usize, case.threshold, case.interval);
            let mut oracle = Oracle::new(case.threshold, case.interval);
            for (i, &op) in case.ops.iter().enumerate() {
                match op {
                    Op::Service(t) => {
                        state.record_service(t);
                        oracle.services.push(t);
                    }
                    Op::AdvanceTo(now) => {
                        state.maybe_clear(now);
                        oracle.advance(now);
                    }
                }
                let expected = oracle.blacklist(case.threads);
                if state.blacklist() != expected {
                    return Err(format!(
                        "op {i} ({op:?}): blacklist {:?}, oracle says {expected:?}",
                        state.blacklist()
                    ));
                }
                let (othread, orun) = oracle.streak();
                if state.streak_thread() != othread || state.streak() != orun {
                    return Err(format!(
                        "op {i} ({op:?}): streak {:?}x{}, oracle says {othread:?}x{orun}",
                        state.streak_thread(),
                        state.streak()
                    ));
                }
                if state.next_clear() != oracle.next_clear {
                    return Err(format!(
                        "op {i} ({op:?}): next_clear {} vs oracle {}",
                        state.next_clear(),
                        oracle.next_clear
                    ));
                }
            }
            Ok(())
        });
}

/// Adversarial clocks terminate: a clearing clock at the end of time must
/// not hang the boundary advance, and the behaviour stays deterministic
/// once `next_clear` saturates.
#[test]
fn clearing_survives_clock_saturation() {
    let mut s = BlissState::new(2, 1, 7);
    assert!(s.record_service(1));
    assert!(s.maybe_clear(u64::MAX)); // must terminate, not step 2^64/7 times
    assert!(!s.is_blacklisted(1));
    assert_eq!(s.next_clear(), u64::MAX);
    // Idempotent at the same cycle: nothing left to clear.
    assert!(!s.maybe_clear(u64::MAX));
    // At saturation every subsequent service is cleared on the next tick —
    // degenerate but deterministic (and unreachable under the engine's
    // bounded clock).
    assert!(s.record_service(0));
    assert!(s.maybe_clear(u64::MAX));
    assert!(!s.is_blacklisted(0));
}

/// A random record schedule for the slowdown estimator, mixing realistic
/// per-request magnitudes with saturation-scale adversarial values.
#[derive(Debug, Clone)]
struct EstimatorCase {
    threads: u32,
    records: Vec<(u32, u64, u64)>,
}

impl EstimatorCase {
    fn generate(rng: &mut SimRng) -> Self {
        let threads = 1 + rng.next_below(4) as u32;
        let records = (0..rng.next_below(60) as usize)
            .map(|_| {
                let t = rng.next_below(u64::from(threads)) as u32;
                let huge = rng.chance(0.1);
                let alone = if huge {
                    u64::MAX - rng.next_below(100)
                } else {
                    1 + rng.next_below(100)
                };
                let shared = if huge {
                    u64::MAX - rng.next_below(100)
                } else {
                    1 + rng.next_below(2_000)
                };
                (t, alone, shared)
            })
            .collect();
        EstimatorCase { threads, records }
    }

    fn shrink(&self) -> Vec<EstimatorCase> {
        let mut out = Vec::new();
        if !self.records.is_empty() {
            out.push(EstimatorCase {
                records: self.records[..self.records.len() / 2].to_vec(),
                ..self.clone()
            });
            let mut drop_last = self.clone();
            drop_last.records.pop();
            out.push(drop_last);
        }
        out
    }
}

/// The estimator agrees with a closed-form wide-integer oracle after
/// every record: saturating sums in `u128` clamped to `u64::MAX`, ratio
/// clamped at 1.0, idle threads pinned to exactly 1.0.
#[test]
fn estimator_matches_closed_form_oracle() {
    CaseRunner::new("slowdown-oracle").cases(64).run(
        EstimatorCase::generate,
        EstimatorCase::shrink,
        |case| {
            let n = case.threads as usize;
            let mut est = SlowdownEstimator::new(n);
            let mut alone = vec![0u128; n];
            let mut shared = vec![0u128; n];
            for (i, &(t, a, s)) in case.records.iter().enumerate() {
                est.record(t, a, s);
                let t = t as usize;
                alone[t] = (alone[t] + u128::from(a)).min(u128::from(u64::MAX));
                shared[t] = (shared[t] + u128::from(s)).min(u128::from(u64::MAX));
                for th in 0..n {
                    let expected = if alone[th] == 0 {
                        1.0
                    } else {
                        (shared[th] as f64 / alone[th] as f64).max(1.0)
                    };
                    let got = est.slowdown(th as u32);
                    if got.to_bits() != expected.to_bits() {
                        return Err(format!(
                            "record {i}: thread {th} slowdown {got} vs closed form {expected}"
                        ));
                    }
                }
            }
            let expected_max = (0..n as u32).map(|t| est.slowdown(t)).fold(1.0, f64::max);
            if est.max_slowdown().to_bits() != expected_max.to_bits() {
                return Err(format!(
                    "max_slowdown {} vs folded {expected_max}",
                    est.max_slowdown()
                ));
            }
            Ok(())
        },
    );
}

/// Submits `count` widely-spaced single-bank reads from one thread and
/// returns the controller after draining.
fn alone_single_bank_run(kind: SchedulerKind, count: u64) -> MemoryController {
    let mut mc = MemoryController::new(
        McConfig::paper(1, kind),
        Geometry::paper(),
        TimingParams::ddr2_800(),
    )
    .unwrap();
    let thread = ThreadId::new(0);
    let mut c = 0u64;
    for i in 0..count {
        // One request every 500 cycles: the controller is fully drained
        // between arrivals, so the measured latency IS the alone latency.
        let at = 1 + i * 500;
        while c < at {
            c += 1;
            mc.step(DramCycle::new(c));
        }
        mc.try_submit(thread, RequestKind::Read, i * 64, DramCycle::new(at))
            .unwrap();
    }
    while !mc.is_idle() {
        c += 1;
        mc.step(DramCycle::new(c));
        assert!(c < count * 500 + 1_000_000, "alone run failed to drain");
    }
    mc.finish(DramCycle::new(c));
    mc
}

/// Calibration of the alone model on a genuinely-alone trace: a thread
/// with the memory system to itself must estimate a slowdown near unity
/// (clamped at exactly 1.0 when row hits beat the closed-bank charge),
/// never the >2x values contention produces.
#[test]
fn alone_thread_estimates_near_unity_slowdown() {
    for kind in [SchedulerKind::SdVftf, SchedulerKind::FqVftf] {
        let mc = alone_single_bank_run(kind, 64);
        let est = mc.slowdown_estimator();
        assert!(est.alone_cycles(0) > 0, "{kind}: estimator saw no traffic");
        let sd = est.slowdown(0);
        assert!(
            (1.0..1.5).contains(&sd),
            "{kind}: alone thread estimated {sd}x slowdown"
        );
    }
}

/// The all-blacklisted degenerate case, end to end: with threshold 1 and
/// a clearing interval longer than the run, every serviced thread lands
/// on the blacklist, the tier bit cancels out, and the controller must
/// keep draining under plain FR-FCFS order — conservation intact.
#[test]
fn all_blacklisted_degenerate_case_still_drains() {
    let threads = 4usize;
    let mut cfg = McConfig::paper(threads, SchedulerKind::Bliss);
    cfg.bliss_threshold = 1;
    cfg.bliss_clear_interval = 1 << 40;
    let mut mc = MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
    let mut rng = SimRng::new(2006);
    let mut accepted = 0u64;
    let mut completed = Vec::new();
    let mut c = 0u64;
    for _ in 0..6_000 {
        c += 1;
        let now = DramCycle::new(c);
        if rng.chance(0.4) {
            let t = ThreadId::new(rng.next_below(threads as u64) as u32);
            let phys = rng.next_below(1 << 20) * 64;
            if mc.try_submit(t, RequestKind::Read, phys, now).is_ok() {
                accepted += 1;
            }
        }
        completed.extend(mc.step(now));
    }
    while !mc.is_idle() {
        c += 1;
        completed.extend(mc.step(DramCycle::new(c)));
        assert!(c < 10_000_000, "degenerate BLISS run failed to drain");
    }
    mc.finish(DramCycle::new(c));
    let bliss = mc.bliss_state().expect("BLISS scheduler carries state");
    assert!(
        bliss.blacklist().iter().all(|&b| b),
        "threshold 1 should blacklist every serviced thread: {:?}",
        bliss.blacklist()
    );
    assert_eq!(completed.len() as u64, accepted, "conservation violated");
}
