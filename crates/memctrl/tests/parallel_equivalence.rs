//! Parallel-vs-serial engine equivalence (the ISSUE's acceptance test):
//! the same 4-channel, 4-thread mix must produce bit-identical per-thread
//! latency/bandwidth statistics and per-channel command logs whether the
//! channels run serially or sharded across worker threads — and every
//! logged command stream must be clean under the independent DDR2
//! protocol checker.

use fqms_dram::checker::ProtocolChecker;
use fqms_memctrl::engine::{
    simulate_parallel, simulate_parallel_lockstep, simulate_serial, synthetic_workload,
    EngineReport, EngineSpec,
};
use fqms_memctrl::policy::SchedulerKind;

fn four_channel_spec(kind: SchedulerKind) -> EngineSpec {
    let mut spec = EngineSpec::paper(4, 4);
    spec.config.set_scheduler(kind);
    spec.epoch_cycles = 512;
    spec.log_capacity = Some(1_000_000);
    // Observers attached: the bit-identity guarantee must extend to the
    // recorded event streams and merged metrics (ISSUE acceptance).
    spec.event_capacity = Some(1_000_000);
    spec
}

fn four_channel_mix(seed: u64) -> Vec<fqms_memctrl::engine::SubmitEvent> {
    synthetic_workload(4, 4_000, 0.5, seed)
}

fn assert_bit_identical(serial: &EngineReport, parallel: &EngineReport, label: &str) {
    // Field-by-field first for diagnosable failures, then the full struct.
    assert_eq!(serial.cycles, parallel.cycles, "{label}: cycles");
    for (t, (s, p)) in serial
        .per_thread
        .iter()
        .zip(&parallel.per_thread)
        .enumerate()
    {
        assert_eq!(s, p, "{label}: thread {t} stats diverged");
    }
    assert_eq!(
        serial.completions, parallel.completions,
        "{label}: completions"
    );
    assert_eq!(
        serial.command_logs, parallel.command_logs,
        "{label}: command logs"
    );
    let (s_obs, p_obs) = (
        serial.observations.as_ref().unwrap(),
        parallel.observations.as_ref().unwrap(),
    );
    for (ch, (s, p)) in s_obs
        .event_streams
        .iter()
        .zip(&p_obs.event_streams)
        .enumerate()
    {
        assert!(!s.overflowed(), "{label}: ch{ch} serial stream overflowed");
        for (i, (se, pe)) in s.iter().zip(p.iter()).enumerate() {
            assert_eq!(se, pe, "{label}: ch{ch} event {i} diverged");
        }
        assert_eq!(s.len(), p.len(), "{label}: ch{ch} stream lengths");
    }
    assert_eq!(s_obs.metrics, p_obs.metrics, "{label}: merged metrics");
    assert_eq!(serial, parallel, "{label}: full report");
}

#[test]
fn four_channel_four_thread_mix_is_bit_identical() {
    let spec = four_channel_spec(SchedulerKind::FqVftf);
    let events = four_channel_mix(2006);
    let serial = simulate_serial(&spec, &events).unwrap();
    assert_eq!(serial.unsubmitted, 0, "mix failed to drain");
    assert_eq!(serial.total_completed(), events.len());
    for workers in [2, 4, 7] {
        let parallel = simulate_parallel(&spec, &events, workers).unwrap();
        assert_bit_identical(&serial, &parallel, &format!("{workers} workers"));
    }
}

#[test]
fn equivalence_holds_for_every_scheduler() {
    for kind in SchedulerKind::all() {
        let spec = four_channel_spec(kind);
        let events = four_channel_mix(99);
        let serial = simulate_serial(&spec, &events).unwrap();
        let parallel = simulate_parallel(&spec, &events, 4).unwrap();
        assert_bit_identical(&serial, &parallel, kind.name());
    }
}

#[test]
fn lockstep_and_free_run_executors_are_interchangeable() {
    // The PR 8 free-running executor (behind `simulate_parallel`) and the
    // PR 1 epoch-barrier executor must be mutually bit-identical, not
    // just each identical to serial: any divergence between the two
    // parallel paths is an executor bug even if one of them happens to
    // match serial on this mix.
    for kind in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        let spec = four_channel_spec(kind);
        let events = four_channel_mix(1234);
        let serial = simulate_serial(&spec, &events).unwrap();
        for workers in [2, 3, 8] {
            let free = simulate_parallel(&spec, &events, workers).unwrap();
            let lockstep = simulate_parallel_lockstep(&spec, &events, workers).unwrap();
            assert_bit_identical(&serial, &free, &format!("{kind} free-run x{workers}"));
            assert_bit_identical(&serial, &lockstep, &format!("{kind} lockstep x{workers}"));
            assert_eq!(
                free, lockstep,
                "{kind}: executors diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn parallel_command_streams_are_protocol_clean() {
    // Satellite: DDR2 legality of what the sharded engine issues, per
    // channel, under all four schedulers, on seeded random workloads.
    for kind in SchedulerKind::all() {
        for seed in [1u64, 17, 4242] {
            let spec = four_channel_spec(kind);
            let events = synthetic_workload(4, 2_500, 0.6, seed);
            let report = simulate_parallel(&spec, &events, 4).unwrap();
            assert_eq!(report.command_logs.len(), 4);
            for (ch, log) in report.command_logs.iter().enumerate() {
                assert_eq!(
                    log.total_recorded(),
                    log.len() as u64,
                    "log overflowed; legality check would be partial"
                );
                let mut checker = ProtocolChecker::new(spec.timing);
                for rec in log.iter() {
                    checker.check(rec.cycle, &rec.cmd);
                }
                assert!(
                    checker.commands_checked() > 50,
                    "{kind} ch{ch}: thin stream"
                );
                assert!(
                    checker.is_clean(),
                    "{kind} seed {seed} ch{ch}: {:?}",
                    checker.violations().first()
                );
            }
        }
    }
}

#[test]
fn per_thread_latency_and_bandwidth_stats_survive_merge() {
    // The merged per-thread stats must equal the sum of the per-channel
    // contributions implicit in the completions: reads+writes completed
    // equals the number of events, and every thread saw service.
    let spec = four_channel_spec(SchedulerKind::FqVftf);
    let events = four_channel_mix(7);
    let report = simulate_parallel(&spec, &events, 4).unwrap();
    let completed: u64 = report
        .per_thread
        .iter()
        .map(|s| s.reads_completed + s.writes_completed)
        .sum();
    assert_eq!(completed as usize, events.len());
    for (t, s) in report.per_thread.iter().enumerate() {
        assert!(s.reads_completed > 0, "thread {t} completed no reads");
        assert!(s.read_latency_total > 0, "thread {t} has no latency mass");
        assert!(s.bus_busy_cycles > 0, "thread {t} moved no data");
    }
}
