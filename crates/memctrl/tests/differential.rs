//! Differential scheduler tests (ISSUE satellite): the same seeded
//! request mixes are pushed through FCFS / FR-FCFS / FR-VFTF / FQ-VFTF
//! and the runs are compared *against each other* through the new
//! observability metrics sinks:
//!
//! 1. every scheduler services the same total number of requests
//!    (scheduling reorders work, it never creates or loses it);
//! 2. under an interference mix, FQ-VFTF keeps the QoS thread's read
//!    latency no worse than FR-FCFS (the paper's headline claim);
//! 3. the FQ bank scheduler's priority-inversion bound `x = tRAS` is
//!    never exceeded — replayed from the recorded event stream, not from
//!    controller internals.

use fqms_memctrl::engine::{
    interference_workload, simulate_serial, synthetic_workload, EngineSpec, SubmitEvent,
};
use fqms_memctrl::prelude::*;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::SimRng;
use std::collections::HashMap;

fn spec_with(kind: SchedulerKind, channels: usize, threads: usize) -> EngineSpec {
    let mut spec = EngineSpec::paper(channels, threads);
    spec.config.set_scheduler(kind);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec
}

/// Completed requests according to the metrics sink (not the controller's
/// own stats): the differential comparisons below are deliberately driven
/// through the observability layer.
fn sink_completed(sink: &MetricsSink) -> u64 {
    sink.iter().map(|(_, t)| t.completed()).sum()
}

#[test]
fn every_scheduler_services_the_same_total() {
    let events = synthetic_workload(4, 3_000, 0.4, 2006);
    let mut totals = Vec::new();
    for kind in SchedulerKind::all() {
        let spec = spec_with(kind, 2, 4);
        let report = simulate_serial(&spec, &events).unwrap();
        assert_eq!(report.unsubmitted, 0, "{kind}: mix failed to drain");
        let sink = &report.observations.as_ref().unwrap().metrics;
        let completed = sink_completed(sink);
        assert_eq!(
            completed as usize,
            events.len(),
            "{kind}: sink disagrees with the submitted mix"
        );
        assert_eq!(
            completed as usize,
            report.total_completed(),
            "{kind}: sink disagrees with the engine report"
        );
        totals.push((kind, completed));
    }
    let (_, first) = totals[0];
    for (kind, n) in &totals {
        assert_eq!(*n, first, "{kind} serviced a different total");
    }
}

#[test]
fn fq_vftf_bounds_qos_thread_latency_under_interference() {
    // Thread 0 is a light, high-locality QoS thread; threads 1..3 are
    // bandwidth hogs. Under FR-FCFS the hogs' row hits chain ahead of the
    // QoS thread; FQ-VFTF's virtual-finish-time ranking plus the
    // inversion bound must keep its mean read latency no worse.
    let events = interference_workload(4, 6_000, 0.05, 0.8, 2006);
    let mut mean_by_kind = HashMap::new();
    for kind in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        let spec = spec_with(kind, 1, 4);
        let report = simulate_serial(&spec, &events).unwrap();
        assert_eq!(report.unsubmitted, 0, "{kind}: mix failed to drain");
        let sink = &report.observations.as_ref().unwrap().metrics;
        let qos = sink.thread(0);
        assert!(qos.read_latency.count() > 100, "{kind}: QoS thread starved");
        mean_by_kind.insert(kind.name(), qos.read_latency.mean());
    }
    let fr = mean_by_kind["FR-FCFS"];
    let fq = mean_by_kind["FQ-VFTF"];
    assert!(
        fq <= fr,
        "QoS thread read latency regressed under FQ-VFTF: {fq:.1} vs {fr:.1} cycles"
    );
}

/// A deliberately bank-contended mix: four threads over a tiny footprint
/// (256 lines), so row-hit chains form and activations regularly outlive
/// the inversion bound.
fn contended_workload(cycles: u64, seed: u64) -> Vec<SubmitEvent> {
    let mut rng = SimRng::new(seed);
    let mut events = Vec::new();
    for c in 1..=cycles {
        for t in 0..4u32 {
            if rng.chance(0.8) {
                let kind = if rng.chance(0.2) {
                    RequestKind::Write
                } else {
                    RequestKind::Read
                };
                events.push(SubmitEvent {
                    at: DramCycle::new(c),
                    thread: ThreadId::new(t),
                    kind,
                    phys: rng.next_below(256) * 64,
                });
            }
        }
    }
    events
}

/// A pending request reconstructed from the event stream.
#[derive(Clone, Copy)]
struct ReplayedRequest {
    bank: u32,
    vft: Option<f64>,
}

#[test]
fn inversion_bound_is_never_exceeded() {
    // Replay the recorded event stream and check the paper's bounded
    // priority-inversion property (Section 3.3) from the outside: once a
    // bank has been continuously active for `x = tRAS` cycles, any CAS it
    // issues must serve the earliest-virtual-finish-time request pending
    // on that bank — row hits may no longer chain ahead of it.
    let spec = spec_with(SchedulerKind::FqVftf, 1, 4);
    let x = spec
        .config
        .inversion_bound
        .resolve(spec.timing.t_ras)
        .expect("paper config bounds inversion");
    assert_eq!(x, 18, "paper bound is tRAS = 18 DRAM cycles");

    let events = contended_workload(4_000, 17);
    let report = simulate_serial(&spec, &events).unwrap();
    let obs = report.observations.as_ref().unwrap();
    assert!(
        obs.metrics.inversion_locks > 0,
        "bound never tripped: vacuous test"
    );

    for stream in &obs.event_streams {
        assert!(
            !stream.overflowed(),
            "ring too small: replay would be partial"
        );
        // Per-bank cycle of the most recent activate, while the bank is open.
        let mut active_since: HashMap<u32, u64> = HashMap::new();
        let mut pending: HashMap<u64, ReplayedRequest> = HashMap::new();
        let mut checked = 0u64;
        for ev in stream.iter() {
            match *ev {
                Event::Arrival { id, bank, .. } => {
                    pending.insert(id, ReplayedRequest { bank, vft: None });
                }
                Event::VftBound { id, vft, .. } => {
                    if let Some(r) = pending.get_mut(&id) {
                        r.vft = Some(vft);
                    }
                }
                Event::CommandIssued {
                    cycle,
                    kind,
                    bank,
                    id,
                    ..
                } => {
                    match kind {
                        fqms_dram::command::CommandKind::Activate => {
                            active_since.insert(bank.unwrap(), cycle);
                        }
                        fqms_dram::command::CommandKind::Precharge => {
                            active_since.remove(&bank.unwrap());
                        }
                        fqms_dram::command::CommandKind::Refresh => {
                            // Rank-wide: the event carries no bank, so
                            // conservatively forget every activation.
                            active_since.clear();
                        }
                        fqms_dram::command::CommandKind::Read
                        | fqms_dram::command::CommandKind::Write => {
                            let bank = bank.unwrap();
                            let id = id.expect("queued CAS has an owner");
                            let locked = active_since
                                .get(&bank)
                                .is_some_and(|&a| cycle.saturating_sub(a) >= x);
                            if locked {
                                let issued = pending[&id];
                                let issued_vft =
                                    issued.vft.expect("locked ranking binds every VFT");
                                for (&other_id, other) in &pending {
                                    if other_id == id || other.bank != bank {
                                        continue;
                                    }
                                    let other_vft =
                                        other.vft.expect("locked ranking binds every VFT");
                                    assert!(
                                        (other_vft, other_id) >= (issued_vft, id),
                                        "cycle {cycle}: bank {bank} active >= {x} cycles \
                                         issued CAS for request {id} (vft {issued_vft}) \
                                         past earlier-VFT request {other_id} (vft {other_vft})"
                                    );
                                }
                                checked += 1;
                            }
                            pending.remove(&id);
                        }
                    }
                }
                _ => {}
            }
        }
        assert!(checked > 0, "no CAS ever issued under lock: vacuous test");
    }
}
