//! Property tests for the O(log n) selection structures.
//!
//! Randomized operation sequences are replayed against naive linear-scan
//! oracles via the in-tree [`CaseRunner`], with greedy shrinking to a
//! minimal counterexample on failure. The key generator deliberately
//! produces duplicate virtual-finish keys (exercising the id tiebreak)
//! and u64-wraparound-adjacent clock values (exercising f64 rounding at
//! magnitudes where adjacent integers collapse to the same float).

use fqms_memctrl::select::{IndexedHeap, SelKey, TournamentTree, NO_POS};
use fqms_sim::rng::{CaseRunner, SimRng};

/// Slot universe for heap operations; small enough that collisions
/// (insert on live slot, remove on dead slot) happen constantly.
const SLOTS: u32 = 24;

#[derive(Debug, Clone, Copy)]
enum HeapOp {
    Insert { slot: u32, key: f64 },
    Update { slot: u32, key: f64 },
    Remove { slot: u32 },
}

/// Keys spanning the regimes the scheduler meets in practice: a tiny
/// duplicate-heavy palette, wraparound-adjacent u64 clock values whose
/// f64 images are equal or 2048 apart, and mid-range magnitudes.
fn gen_key(rng: &mut SimRng) -> f64 {
    match rng.next_below(4) {
        0 => rng.next_below(6) as f64,
        1 => (u64::MAX - rng.next_below(5000)) as f64,
        2 => rng.next_below(1 << 62) as f64,
        _ => 7.0,
    }
}

fn gen_heap_ops(rng: &mut SimRng) -> Vec<HeapOp> {
    let n = 4 + rng.next_below(96);
    (0..n)
        .map(|_| {
            let slot = rng.next_below(u64::from(SLOTS)) as u32;
            match rng.next_below(4) {
                0 | 1 => HeapOp::Insert {
                    slot,
                    key: gen_key(rng),
                },
                2 => HeapOp::Update {
                    slot,
                    key: gen_key(rng),
                },
                _ => HeapOp::Remove { slot },
            }
        })
        .collect()
}

/// Shrinker shared by the suites: halves first, then single-op drops.
/// (`&Vec` rather than `&[_]`: the signature must match what
/// `CaseRunner::run` hands the shrinker, a reference to the case type.)
#[allow(clippy::ptr_arg)]
fn shrink_ops<T: Clone>(ops: &Vec<T>) -> Vec<Vec<T>> {
    let mut c = Vec::new();
    if ops.len() > 1 {
        c.push(ops[..ops.len() / 2].to_vec());
        c.push(ops[ops.len() / 2..].to_vec());
    }
    for i in (0..ops.len()).rev().take(10) {
        let mut shorter = ops.clone();
        shorter.remove(i);
        c.push(shorter);
    }
    c
}

fn oracle_min(oracle: &[Option<SelKey>]) -> Option<(SelKey, u32)> {
    oracle
        .iter()
        .enumerate()
        .filter_map(|(slot, k)| k.map(|k| (k, slot as u32)))
        .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
}

fn check_heap(ops: &[HeapOp]) -> Result<(), String> {
    let mut heap = IndexedHeap::new();
    let mut pos = vec![NO_POS; SLOTS as usize];
    let mut oracle: Vec<Option<SelKey>> = vec![None; SLOTS as usize];
    for (step, &op) in ops.iter().enumerate() {
        match op {
            HeapOp::Insert { slot, key } => {
                // Inserting a live slot is a re-key in disguise; mirror
                // what BankQueue does and route it through update.
                let key = SelKey {
                    key,
                    id: u64::from(slot),
                };
                if oracle[slot as usize].is_some() {
                    heap.update(&mut pos, slot, key);
                } else {
                    heap.insert(&mut pos, slot, key);
                }
                oracle[slot as usize] = Some(key);
            }
            HeapOp::Update { slot, key } => {
                if oracle[slot as usize].is_none() {
                    continue;
                }
                let key = SelKey {
                    key,
                    id: u64::from(slot),
                };
                heap.update(&mut pos, slot, key);
                oracle[slot as usize] = Some(key);
            }
            HeapOp::Remove { slot } => {
                let removed = heap.remove(&mut pos, slot);
                if removed != oracle[slot as usize].is_some() {
                    return Err(format!(
                        "step {step}: remove({slot}) returned {removed}, oracle disagrees"
                    ));
                }
                oracle[slot as usize] = None;
            }
        }
        let live = oracle.iter().filter(|k| k.is_some()).count();
        if heap.len() != live {
            return Err(format!("step {step}: len {} != oracle {live}", heap.len()));
        }
        // The heap min must match the oracle min exactly. With the id
        // folded into SelKey the winner is unique, so no layout freedom.
        let got = heap.peek();
        let want = oracle_min(&oracle).map(|(k, _)| {
            let slot = (0..SLOTS).find(|&s| oracle[s as usize] == Some(k)).unwrap();
            (k, slot)
        });
        if got != want {
            return Err(format!("step {step}: peek {got:?} != oracle {want:?}"));
        }
        // Every live slot's position entry must point back at itself.
        for slot in 0..SLOTS {
            let p = pos[slot as usize];
            match (oracle[slot as usize], p) {
                (Some(_), NO_POS) => return Err(format!("step {step}: live slot {slot} unmapped")),
                (None, p) if p != NO_POS => {
                    return Err(format!("step {step}: dead slot {slot} maps to {p}"))
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[test]
fn indexed_heap_matches_linear_oracle() {
    CaseRunner::new("indexed-heap-vs-oracle").run(gen_heap_ops, shrink_ops, |ops| check_heap(ops));
}

#[derive(Debug, Clone, Copy)]
enum TreeOp {
    /// Set leaf `leaf % num_leaves` to `(key, payload)`.
    Set { leaf: u32, key: f64 },
    /// Clear leaf `leaf % num_leaves`.
    Clear { leaf: u32 },
    /// Append a fresh empty leaf (exercises the doubling rebuild).
    Grow,
}

fn gen_tree_ops(rng: &mut SimRng) -> Vec<TreeOp> {
    let n = 4 + rng.next_below(80);
    (0..n)
        .map(|_| match rng.next_below(6) {
            0..=2 => TreeOp::Set {
                leaf: rng.next_below(64) as u32,
                key: gen_key(rng),
            },
            3 => TreeOp::Clear {
                leaf: rng.next_below(64) as u32,
            },
            _ => TreeOp::Grow,
        })
        .collect()
}

fn check_tree(ops: &[TreeOp]) -> Result<(), String> {
    let mut tree = TournamentTree::new();
    let mut oracle: Vec<Option<(SelKey, u32)>> = Vec::new();
    // Seed one leaf so Set/Clear have a target before the first Grow.
    tree.push_leaf();
    oracle.push(None);
    for (step, &op) in ops.iter().enumerate() {
        match op {
            TreeOp::Set { leaf, key } => {
                let leaf = leaf % oracle.len() as u32;
                let val = (
                    SelKey {
                        key,
                        id: u64::from(leaf),
                    },
                    leaf,
                );
                tree.set(leaf, Some(val));
                oracle[leaf as usize] = Some(val);
            }
            TreeOp::Clear { leaf } => {
                let leaf = leaf % oracle.len() as u32;
                tree.set(leaf, None);
                oracle[leaf as usize] = None;
            }
            TreeOp::Grow => {
                let leaf = tree.push_leaf();
                if leaf as usize != oracle.len() {
                    return Err(format!(
                        "step {step}: push_leaf returned {leaf}, expected {}",
                        oracle.len()
                    ));
                }
                oracle.push(None);
            }
        }
        let want = oracle
            .iter()
            .flatten()
            .min_by(|a, b| a.0.cmp(&b.0))
            .copied();
        if tree.min() != want {
            return Err(format!(
                "step {step}: min {:?} != oracle {want:?}",
                tree.min()
            ));
        }
        // min_excluding must agree with a scan that masks one leaf —
        // this is the precharge-candidate query (best entry outside the
        // open row's group).
        for leaf in 0..oracle.len() as u32 {
            let want = oracle
                .iter()
                .enumerate()
                .filter(|&(l, _)| l as u32 != leaf)
                .filter_map(|(_, v)| *v)
                .min_by(|a, b| a.0.cmp(&b.0));
            if tree.min_excluding(leaf) != want {
                return Err(format!(
                    "step {step}: min_excluding({leaf}) {:?} != oracle {want:?}",
                    tree.min_excluding(leaf)
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn tournament_tree_matches_linear_oracle() {
    CaseRunner::new("tournament-vs-oracle").run(gen_tree_ops, shrink_ops, |ops| check_tree(ops));
}

/// Duplicate keys must resolve purely by id, and equal-f64 images of
/// distinct u64 clocks (wraparound regime) must still order total-ly.
#[test]
fn duplicate_and_wraparound_keys_order_by_id() {
    let near_max = u64::MAX as f64; // 2^64; many u64s round to this
    let a = SelKey {
        key: near_max,
        id: 3,
    };
    let b = SelKey {
        key: (u64::MAX - 500) as f64, // same f64 image as u64::MAX
        id: 7,
    };
    assert_eq!(a.key.to_bits(), b.key.to_bits());
    assert!(a < b, "equal keys must fall back to id order");

    let mut heap = IndexedHeap::new();
    let mut pos = vec![NO_POS; 4];
    heap.insert(&mut pos, 0, b);
    heap.insert(&mut pos, 1, a);
    assert_eq!(heap.peek(), Some((a, 1)), "lower id wins on duplicate key");
    assert!(heap.remove(&mut pos, 1));
    assert_eq!(heap.peek(), Some((b, 0)));
}
