//! Property-style tests for the memory controller: conservation (every
//! accepted request completes exactly once), work conservation, VTMS
//! monotonicity, and QoS-flavoured sanity under adversarial random
//! traffic, across the full `SchedulerKind::all()` enum (each policy
//! under its default scan kind, so BLISS runs linear and the VFT
//! schedulers run indexed).
//!
//! Generative properties run on the in-tree shrinking
//! [`fqms_sim::rng::CaseRunner`] (hermetic — no external `proptest`
//! dependency, reproducible bit-for-bit; set `FQMS_CASES` or enable the
//! `proptest` feature to widen the case count). On failure the runner
//! reports a shrunk minimal counterexample.

use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::prelude::*;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::{CaseRunner, SimRng};
use std::collections::HashSet;

fn all_kinds() -> Vec<SchedulerKind> {
    SchedulerKind::all().to_vec()
}

/// A randomly generated open-loop traffic pattern for one controller.
#[derive(Debug, Clone)]
struct TrafficCase {
    kind: SchedulerKind,
    seed: u64,
    threads: usize,
    cycles: u64,
    submit_prob: f64,
}

impl TrafficCase {
    fn generate(rng: &mut SimRng) -> Self {
        let kinds = all_kinds();
        TrafficCase {
            kind: kinds[rng.next_below(kinds.len() as u64) as usize],
            seed: rng.next_below(1 << 32),
            threads: 1 + rng.next_below(4) as usize,
            cycles: 500 + rng.next_below(3_000),
            submit_prob: 0.1 + 0.1 * rng.next_below(5) as f64,
        }
    }

    /// Shrinks toward shorter, calmer runs (the failure usually survives
    /// and the repro gets much cheaper to stare at).
    fn shrink(&self) -> Vec<TrafficCase> {
        let mut out = Vec::new();
        if self.cycles > 250 {
            out.push(TrafficCase {
                cycles: self.cycles / 2,
                ..self.clone()
            });
        }
        if self.threads > 1 {
            out.push(TrafficCase {
                threads: self.threads - 1,
                ..self.clone()
            });
        }
        if self.submit_prob > 0.15 {
            out.push(TrafficCase {
                submit_prob: self.submit_prob / 2.0,
                ..self.clone()
            });
        }
        out
    }
}

/// Drives a controller with random traffic from `threads` threads for
/// `cycles` cycles, then drains. Returns (accepted ids, completed ids).
fn random_run(
    kind: SchedulerKind,
    threads: usize,
    seed: u64,
    cycles: u64,
    submit_prob: f64,
) -> (MemoryController, Vec<RequestId>, Vec<Completion>) {
    let mut rng = SimRng::new(seed);
    let mut mc = MemoryController::new(
        McConfig::paper(threads, kind),
        Geometry::paper(),
        TimingParams::ddr2_800(),
    )
    .unwrap();
    let mut accepted = Vec::new();
    let mut completed = Vec::new();
    let mut c = 0u64;
    for _ in 0..cycles {
        c += 1;
        let now = DramCycle::new(c);
        if rng.chance(submit_prob) {
            let thread = ThreadId::new(rng.next_below(threads as u64) as u32);
            let kind_r = if rng.chance(0.3) {
                RequestKind::Write
            } else {
                RequestKind::Read
            };
            let phys = rng.next_below(1 << 24) * 64;
            if let Ok(id) = mc.try_submit(thread, kind_r, phys, now) {
                accepted.push(id);
            }
        }
        completed.extend(mc.step(now));
    }
    // Drain.
    while !mc.is_idle() {
        c += 1;
        completed.extend(mc.step(DramCycle::new(c)));
        assert!(c < cycles + 1_000_000, "controller failed to drain");
    }
    mc.finish(DramCycle::new(c));
    (mc, accepted, completed)
}

/// Conservation: every accepted request completes exactly once, under
/// every scheduler.
#[test]
fn every_accepted_request_completes_once() {
    CaseRunner::new("conservation").cases(24).run(
        TrafficCase::generate,
        TrafficCase::shrink,
        |case| {
            let (_, accepted, completed) = random_run(
                case.kind,
                case.threads,
                case.seed,
                case.cycles,
                case.submit_prob,
            );
            let accepted_set: HashSet<_> = accepted.iter().copied().collect();
            let mut completed_set = HashSet::new();
            for c in &completed {
                if !completed_set.insert(c.id) {
                    return Err(format!("{}: {} completed twice", case.kind, c.id));
                }
            }
            if accepted_set != completed_set {
                return Err(format!("{} lost or invented requests", case.kind));
            }
            Ok(())
        },
    );
}

/// Latency sanity: no read finishes before it could physically be
/// serviced (closed-bank unloaded latency) and none is lost forever.
#[test]
fn read_latency_lower_bound() {
    let t = TimingParams::ddr2_800();
    let min_latency = t.t_cl + t.burst; // best case: row hit CAS at arrival
    CaseRunner::new("read-latency-lower-bound").cases(24).run(
        TrafficCase::generate,
        TrafficCase::shrink,
        |case| {
            let (_, _, completed) = random_run(
                case.kind,
                case.threads,
                case.seed,
                case.cycles,
                case.submit_prob,
            );
            for c in completed.iter().filter(|c| c.kind == RequestKind::Read) {
                if c.latency() < min_latency {
                    return Err(format!(
                        "{}: impossible latency {} (< {min_latency})",
                        case.kind,
                        c.latency()
                    ));
                }
            }
            Ok(())
        },
    );
}

/// VTMS bank and channel registers never decrease.
#[test]
fn vtms_registers_are_monotonic() {
    CaseRunner::new("vtms-monotonic").run(TrafficCase::generate, TrafficCase::shrink, |case| {
        let mut rng = SimRng::new(case.seed);
        let threads = case.threads as u32;
        let mut mc = MemoryController::new(
            McConfig::paper(case.threads, SchedulerKind::FqVftf),
            Geometry::paper(),
            TimingParams::ddr2_800(),
        )
        .unwrap();
        let mut prev: Vec<(Vec<f64>, f64)> = (0..threads)
            .map(|i| {
                let v = mc.vtms(ThreadId::new(i));
                ((0..8).map(|b| v.bank_reg(b)).collect(), v.channel_reg())
            })
            .collect();
        for c in 1..case.cycles {
            let now = DramCycle::new(c);
            if rng.chance(case.submit_prob) {
                let thread = ThreadId::new(rng.next_below(threads as u64) as u32);
                let phys = rng.next_below(1 << 20) * 64;
                let _ = mc.try_submit(thread, RequestKind::Read, phys, now);
            }
            mc.step(now);
            for (i, prev_state) in prev.iter_mut().enumerate() {
                let v = mc.vtms(ThreadId::new(i as u32));
                for (b, prev_bank) in prev_state.0.iter_mut().enumerate() {
                    let cur = v.bank_reg(b);
                    if cur < *prev_bank {
                        return Err(format!("bank reg {b} decreased at cycle {c}"));
                    }
                    *prev_bank = cur;
                }
                let cur = v.channel_reg();
                if cur < prev_state.1 {
                    return Err(format!("channel reg decreased at cycle {c}"));
                }
                prev_state.1 = cur;
            }
        }
        Ok(())
    });
}

/// Work conservation (first-ready policies): with pending work and an
/// idle data path, the controller keeps making forward progress — a
/// saturating single-thread run achieves high bus utilization. The run
/// length is fixed (the 0.85 threshold assumes amortized startup), so
/// only the starting line shrinks.
#[test]
fn saturating_stream_utilizes_bus() {
    CaseRunner::new("work-conservation").cases(6).run(
        |rng| rng.next_below(1 << 16),
        |&line| if line > 0 { vec![line / 2] } else { vec![] },
        |&start_line| {
            let mut mc = MemoryController::new(
                McConfig::paper(1, SchedulerKind::FrFcfs),
                Geometry::paper(),
                TimingParams::ddr2_800(),
            )
            .unwrap();
            let thread = ThreadId::new(0);
            let mut next_line = start_line;
            let cycles = 20_000u64;
            for c in 1..=cycles {
                let now = DramCycle::new(c);
                // Keep the transaction buffer as full as possible with
                // sequential (row-friendly) reads.
                while mc.can_accept(thread, RequestKind::Read) {
                    let _ = mc.try_submit(thread, RequestKind::Read, next_line * 64, now);
                    next_line += 1;
                }
                mc.step(now);
            }
            mc.finish(DramCycle::new(cycles));
            let util = mc.dram().bus_busy_cycles() as f64 / cycles as f64;
            if util <= 0.85 {
                return Err(format!(
                    "sequential stream only reached {util:.2} bus utilization"
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn fcfs_services_same_bank_in_order() {
    // Strict FCFS: same-bank requests complete in arrival order even when a
    // younger one is a row hit.
    let mut mc = MemoryController::new(
        McConfig::paper(1, SchedulerKind::Fcfs),
        Geometry::paper(),
        TimingParams::ddr2_800(),
    )
    .unwrap();
    let map = *mc.address_map();
    let mk = |bank: u32, row: u32, col: u32| {
        map.encode(fqms_dram::command::DramAddress {
            rank: fqms_dram::command::RankId::new(0),
            bank: fqms_dram::command::BankId::new(bank),
            row: fqms_dram::command::RowId::new(row),
            col: fqms_dram::command::ColId::new(col),
        })
    };
    let t0 = ThreadId::new(0);
    mc.try_submit(t0, RequestKind::Read, mk(0, 1, 0), DramCycle::new(0))
        .unwrap();
    mc.try_submit(t0, RequestKind::Read, mk(0, 2, 0), DramCycle::new(0))
        .unwrap();
    mc.try_submit(t0, RequestKind::Read, mk(0, 1, 1), DramCycle::new(0))
        .unwrap();
    let mut done = Vec::new();
    let mut c = 0;
    while !mc.is_idle() {
        c += 1;
        done.extend(mc.step(DramCycle::new(c)));
    }
    let order: Vec<u64> = done.iter().map(|d| d.id.as_u64()).collect();
    assert_eq!(order, vec![0, 1, 2]);
}

#[test]
fn frfcfs_reorders_row_hit_ahead() {
    // Same scenario under FR-FCFS: the row hit (id 2) jumps ahead of the
    // conflicting request (id 1).
    let mut mc = MemoryController::new(
        McConfig::paper(1, SchedulerKind::FrFcfs),
        Geometry::paper(),
        TimingParams::ddr2_800(),
    )
    .unwrap();
    let map = *mc.address_map();
    let mk = |bank: u32, row: u32, col: u32| {
        map.encode(fqms_dram::command::DramAddress {
            rank: fqms_dram::command::RankId::new(0),
            bank: fqms_dram::command::BankId::new(bank),
            row: fqms_dram::command::RowId::new(row),
            col: fqms_dram::command::ColId::new(col),
        })
    };
    let t0 = ThreadId::new(0);
    mc.try_submit(t0, RequestKind::Read, mk(0, 1, 0), DramCycle::new(0))
        .unwrap();
    mc.try_submit(t0, RequestKind::Read, mk(0, 2, 0), DramCycle::new(0))
        .unwrap();
    mc.try_submit(t0, RequestKind::Read, mk(0, 1, 1), DramCycle::new(0))
        .unwrap();
    let mut done = Vec::new();
    let mut c = 0;
    while !mc.is_idle() {
        c += 1;
        done.extend(mc.step(DramCycle::new(c)));
    }
    let order: Vec<u64> = done.iter().map(|d| d.id.as_u64()).collect();
    assert_eq!(order, vec![0, 2, 1]);
}

/// The XOR address map is a bijection on any power-of-two geometry:
/// encode is a right inverse of decode over the device, and decode is
/// injective over a full device scan.
#[test]
fn address_map_bijective_on_random_geometries() {
    use fqms_memctrl::address_map::AddressMap;
    use std::collections::HashSet;
    let mut rng = SimRng::new(0xB17EC7);
    for case in 0..16 {
        let g = fqms_dram::device::Geometry {
            ranks: 1 << rng.next_below(2),
            banks: 1 << (1 + rng.next_below(3)),
            rows: 1 << (2 + rng.next_below(4)),
            cols: 1 << (2 + rng.next_below(4)),
        };
        let map = AddressMap::new(g, 64);
        let lines = (g.ranks * g.banks * g.rows * g.cols) as u64;
        let mut seen = HashSet::new();
        for i in 0..lines {
            let addr = map.decode(i * 64);
            assert!(seen.insert(addr), "case {case}: collision at line {i}");
            assert_eq!(map.encode(addr), i * 64, "case {case}");
        }
    }
}

/// Multi-channel address localization is a bijection: distinct physical
/// lines map to distinct (channel, local-line) pairs.
#[test]
fn multichannel_routing_is_injective() {
    use fqms_dram::device::Geometry;
    use fqms_dram::timing::TimingParams;
    use fqms_memctrl::multichannel::MultiChannelController;
    use std::collections::HashSet;
    for channels in 1usize..5 {
        let m = MultiChannelController::new(
            channels,
            McConfig::paper(1, SchedulerKind::FrFcfs),
            Geometry::paper(),
            TimingParams::ddr2_800(),
        )
        .unwrap();
        let mut seen = HashSet::new();
        for line in 0..4096u64 {
            let phys = line * 64;
            let ch = m.route(phys);
            let local = (line / channels as u64) * 64;
            assert!(seen.insert((ch, local)), "collision at line {line}");
        }
    }
}
