//! Edge-case coverage for [`RetryPolicy::bounded`] at the channel
//! submission ports: the zero-retry policy, backoff-cap saturation, and
//! the `completed + dropped + rejected == submitted` conservation law
//! when retries exhaust on the last in-flight requests of a run.

use fqms_memctrl::engine::{simulate_serial, EngineSpec, RetryPolicy, SubmitEvent};
use fqms_memctrl::prelude::*;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};

fn spec(channels: usize, threads: usize) -> EngineSpec {
    let mut spec = EngineSpec::paper(channels, threads);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec
}

/// A NACK storm solidly covering `[from, to)`: rate high enough and
/// episodes long enough that the port sees rejections throughout.
fn storm(seed: u64, from: u64, to: u64) -> FaultPlan {
    FaultPlan::new(seed).with(
        FaultKind::NackStorm,
        FaultWindow::new(from, to),
        0.01,
        4_000,
    )
}

#[test]
fn delay_saturates_at_the_cap_without_overflow() {
    let policy = RetryPolicy::bounded(100, 2, 64);
    // Doubles per attempt: 2, 4, 8, ..., then pins at the cap.
    assert_eq!(policy.delay(1), 2);
    assert_eq!(policy.delay(2), 4);
    assert_eq!(policy.delay(5), 32);
    assert_eq!(policy.delay(6), 64);
    assert_eq!(policy.delay(7), 64, "cap not enforced past saturation");
    // Huge attempt counts must neither overflow the shift nor exceed the
    // cap — attempt numbers are unbounded under long storms.
    assert_eq!(policy.delay(63), 64);
    assert_eq!(policy.delay(u32::MAX), 64);

    // A cap below the start is normalized up to the start, never zero.
    let tight = RetryPolicy::bounded(1, 16, 2);
    assert_eq!(tight.delay(1), 16);
    assert_eq!(tight.delay(9), 16);

    // Degenerate zero inputs still yield a positive delay (the port must
    // always make progress toward its next retry).
    let zeroed = RetryPolicy::bounded(0, 0, 0);
    assert!(zeroed.delay(1) >= 1);
    assert!(zeroed.delay(u32::MAX) >= 1);

    // The reference policy retries on the very next cycle, always.
    let imm = RetryPolicy::immediate();
    assert_eq!(imm.delay(1), 1);
    assert_eq!(imm.delay(u32::MAX), 1);
}

#[test]
fn zero_retry_policy_rejects_on_first_nack_and_conserves() {
    let events = fqms_memctrl::engine::synthetic_workload(4, 4_000, 0.4, 23);
    let mut spec = spec(2, 4);
    spec.fault_plan = Some(storm(9, 200, 3_000));
    spec.retry = RetryPolicy::bounded(0, 1, 1);

    let report = simulate_serial(&spec, &events).unwrap();
    assert_eq!(report.unsubmitted, 0, "zero-retry port failed to drain");
    let rejected: usize = report.rejected.iter().map(Vec::len).sum();
    let nacks: u64 = report.per_thread.iter().map(|t| t.nacks).sum();
    assert!(rejected > 0, "storm never rejected: vacuous test");
    // With zero retries every NACK abandons its request immediately, so
    // the two counters must agree exactly.
    assert_eq!(nacks, rejected as u64, "zero-retry got a second attempt");
    assert_eq!(
        report.total_completed() + rejected,
        events.len(),
        "zero-retry broke request conservation"
    );
}

#[test]
fn saturated_backoff_still_drains_and_conserves() {
    let events = fqms_memctrl::engine::synthetic_workload(4, 4_000, 0.4, 29);
    let mut spec = spec(2, 4);
    spec.fault_plan = Some(storm(13, 200, 3_500));
    // Enough retries that long storms drive the backoff well past the
    // cap: correctness must not depend on the exponential staying small.
    spec.retry = RetryPolicy::bounded(40, 2, 16);

    let report = simulate_serial(&spec, &events).unwrap();
    assert_eq!(report.unsubmitted, 0, "saturated backoff wedged the port");
    let rejected: usize = report.rejected.iter().map(Vec::len).sum();
    assert_eq!(
        report.total_completed() + rejected,
        events.len(),
        "saturated backoff broke request conservation"
    );
    // Deterministic: the same spec replays to the same report.
    assert_eq!(report, simulate_serial(&spec, &events).unwrap());
}

#[test]
fn conservation_holds_when_retries_exhaust_on_the_last_requests() {
    // Drops post-admission *and* a NACK storm parked over the tail of the
    // schedule, so the final in-flight requests exhaust their retries at
    // the port: the three-way accounting identity must balance exactly.
    let events = fqms_memctrl::engine::synthetic_workload(4, 4_000, 0.4, 31);
    let last_at = events.last().expect("non-empty workload").at.as_u64();
    let mut spec = spec(2, 4);
    spec.fault_plan = Some(
        FaultPlan::new(17)
            .with(
                FaultKind::RequestDrop,
                FaultWindow::new(100, last_at),
                0.01,
                1,
            )
            // Storm starts before the last submissions and outlasts every
            // possible retry (episodes truncate at the window end, so the
            // window must extend past the point where the port has drained
            // its whole backlog through rejections — each abandoned head
            // costs ~`max_retries` backoff cycles of port throughput).
            .with(
                FaultKind::NackStorm,
                FaultWindow::new(last_at.saturating_sub(600), last_at + 20_000),
                0.05,
                1_000_000,
            ),
    );
    spec.retry = RetryPolicy::bounded(2, 1, 2);

    let report = simulate_serial(&spec, &events).unwrap();
    assert_eq!(report.unsubmitted, 0, "tail storm wedged the schedule");
    let completed = report.total_completed() as u64;
    let dropped: u64 = report.per_thread.iter().map(|t| t.requests_dropped).sum();
    let rejected: u64 = report.rejected.iter().map(|r| r.len() as u64).sum();
    assert!(dropped > 0, "drop plan never fired: vacuous test");
    assert!(rejected > 0, "tail storm never exhausted a retry");
    assert_eq!(
        completed + dropped + rejected,
        events.len() as u64,
        "completed + dropped + rejected != submitted"
    );

    // The storm covers every cycle from its onset through the end of the
    // schedule, so each channel's *final* scheduled request is among the
    // rejected — retries exhaust on the last in-flight request, not just
    // on mid-run traffic.
    let line_bytes = spec.config.line_bytes;
    for (ch, rejected) in report.rejected.iter().enumerate() {
        let last = last_scheduled_for(&events, line_bytes, ch, report.rejected.len());
        if let Some(last) = last {
            assert!(
                rejected.contains(&last),
                "channel {ch}: last scheduled request was not rejected"
            );
        }
    }
}

/// The latest-submitted event routed to `channel`, with the same
/// channel-local address the shard stores (and reports in `rejected`).
fn last_scheduled_for(
    events: &[SubmitEvent],
    line_bytes: u64,
    channel: usize,
    num_channels: usize,
) -> Option<SubmitEvent> {
    events.iter().rev().find_map(|e| {
        let (ch, local) = MultiChannelController::localize(line_bytes, num_channels, e.phys);
        (ch == channel).then_some(SubmitEvent { phys: local, ..*e })
    })
}
