//! Differential protocol conformance: every command stream the controller
//! issues — under every scheduler, row policy, and load pattern — must be
//! clean according to the independently implemented
//! [`fqms_dram::checker::ProtocolChecker`]. The live device model and the
//! checker formulate the DDR2 rules differently, so a timing bug would
//! have to exist twice to escape this test.
//!
//! Workloads are randomized with the in-tree deterministic
//! [`fqms_sim::rng::SimRng`] under fixed seeds: the suite is hermetic (no
//! external `proptest` dependency) and every run checks the same streams.

use fqms_dram::checker::ProtocolChecker;
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::prelude::*;
use fqms_sim::clock::DramCycle;
use fqms_sim::rng::SimRng;

fn drive_and_check(
    kind: SchedulerKind,
    row_policy: RowPolicy,
    seed: u64,
    cycles: u64,
    submit_prob: f64,
) -> (u64, Vec<String>) {
    let mut cfg = McConfig::paper(3, kind);
    cfg.row_policy = row_policy;
    let mut mc = MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
    mc.enable_command_log(1_000_000);
    let mut rng = SimRng::new(seed);
    let mut c = 0u64;
    for _ in 0..cycles {
        c += 1;
        let now = DramCycle::new(c);
        if rng.chance(submit_prob) {
            let thread = ThreadId::new(rng.next_below(3) as u32);
            let kind_r = if rng.chance(0.3) {
                RequestKind::Write
            } else {
                RequestKind::Read
            };
            let _ = mc.try_submit(thread, kind_r, rng.next_below(1 << 22) * 64, now);
        }
        mc.step(now);
    }
    while !mc.is_idle() {
        c += 1;
        mc.step(DramCycle::new(c));
        assert!(c < cycles + 1_000_000);
    }
    let mut checker = ProtocolChecker::new(TimingParams::ddr2_800());
    let log = mc.command_log().unwrap();
    for rec in log.iter() {
        checker.check(rec.cycle, &rec.cmd);
    }
    (
        checker.commands_checked(),
        checker
            .violations()
            .iter()
            .map(ToString::to_string)
            .collect(),
    )
}

/// Random traffic under every scheduler produces protocol-clean command
/// streams (zero DDR2 constraint violations).
#[test]
fn all_schedulers_emit_clean_streams() {
    for seed in 0..8u64 {
        for kind in SchedulerKind::all() {
            let (n, violations) = drive_and_check(kind, RowPolicy::Closed, seed, 4_000, 0.5);
            assert!(n > 50, "{kind}: too few commands ({n}) to be meaningful");
            assert!(
                violations.is_empty(),
                "{kind} seed {seed}: {} violations, first: {}",
                violations.len(),
                violations[0]
            );
        }
    }
}

/// The open-row policy is equally conformant.
#[test]
fn open_row_policy_is_conformant() {
    for seed in 0..8u64 {
        let (n, violations) =
            drive_and_check(SchedulerKind::FqVftf, RowPolicy::Open, seed, 4_000, 0.5);
        assert!(n > 50);
        assert!(
            violations.is_empty(),
            "seed {seed} first: {}",
            violations[0]
        );
    }
}

/// Saturating load (buffers always full) stays conformant — the regime
/// where scheduling pressure is highest.
#[test]
fn saturating_load_is_conformant() {
    for seed in 0..8u64 {
        let (_, violations) =
            drive_and_check(SchedulerKind::FrFcfs, RowPolicy::Closed, seed, 4_000, 1.0);
        assert!(
            violations.is_empty(),
            "seed {seed} first: {}",
            violations[0]
        );
    }
}

#[test]
fn refresh_heavy_stream_is_conformant() {
    // Run long enough to include refreshes and validate the whole stream.
    let mut cfg = McConfig::paper(1, SchedulerKind::FrFcfs);
    cfg.row_policy = RowPolicy::Closed;
    let mut mc = MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
    mc.enable_command_log(4_000_000);
    let mut rng = SimRng::new(9);
    for c in 1..=600_000u64 {
        let now = DramCycle::new(c);
        if rng.chance(0.05) {
            let _ = mc.try_submit(
                ThreadId::new(0),
                RequestKind::Read,
                rng.next_below(1 << 20) * 64,
                now,
            );
        }
        mc.step(now);
    }
    let (_, _, _, _, refreshes) = mc.dram().command_counts();
    assert!(
        refreshes >= 2,
        "expected multiple refreshes, got {refreshes}"
    );
    let mut checker = ProtocolChecker::new(TimingParams::ddr2_800());
    for rec in mc.command_log().unwrap().iter() {
        checker.check(rec.cycle, &rec.cmd);
    }
    assert!(
        checker.is_clean(),
        "violations: {:?}",
        checker.violations().first()
    );
}
