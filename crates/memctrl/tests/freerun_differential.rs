//! Free-running executor differential suite (release gate): the
//! work-stealing free-run engine must be bit-identical to the serial
//! engine — and to the lockstep epoch-barrier reference — across all six
//! schedulers × fault plans, and its checkpoint/resume paths must produce
//! byte-identical snapshots and bit-identical resumed runs.
//!
//! This extends the PR 1 `parallel_equivalence` and PR 5
//! `checkpoint_differential` machinery to the PR 8 executor: the former
//! pinned down *what* a parallel run must equal, this suite pins down
//! that every executor (serial, lockstep, free-run) and every
//! checkpoint path (serial, parallel) is interchangeable.

use fqms_memctrl::engine::{
    resume_parallel, resume_serial, simulate_parallel, simulate_parallel_checkpointed,
    simulate_parallel_lockstep, simulate_serial, simulate_serial_checkpointed, synthetic_workload,
    EngineSpec, RetryPolicy,
};
use fqms_memctrl::policy::SchedulerKind;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};

/// Every fault class in one plan, windowed over the active part of the
/// run so steals and drains land both inside and outside fault episodes.
fn faults(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::NackStorm,
            FaultWindow::new(300, 5_000),
            0.002,
            90,
        )
        .with(
            FaultKind::BankStall,
            FaultWindow::new(300, 5_000),
            0.002,
            110,
        )
        .with(
            FaultKind::RefreshPressure,
            FaultWindow::new(300, 5_000),
            0.001,
            70,
        )
        .with(
            FaultKind::RequestDrop,
            FaultWindow::new(300, 5_000),
            0.003,
            1,
        )
}

fn spec_for(scheduler: SchedulerKind, plan: Option<FaultPlan>) -> EngineSpec {
    let mut spec = EngineSpec::paper(4, 4);
    spec.config.set_scheduler(scheduler);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec.fault_plan = plan.clone();
    if plan.is_some() {
        spec.retry = RetryPolicy::bounded(6, 2, 64);
    }
    spec
}

#[test]
fn every_executor_agrees_across_schedulers_and_faults() {
    // Six schedulers × {clean, faulted} × three worker counts: serial,
    // free-run, and lockstep must produce the same report down to event
    // streams and diagnostics.
    let events = synthetic_workload(4, 4_000, 0.5, 808);
    for scheduler in SchedulerKind::all() {
        for plan in [None, Some(faults(11))] {
            let spec = spec_for(scheduler, plan.clone());
            let ctx = format!("{scheduler:?}/faults={}", plan.is_some());
            let serial = simulate_serial(&spec, &events).unwrap();
            for workers in [2usize, 3, 8] {
                let free = simulate_parallel(&spec, &events, workers).unwrap();
                assert_eq!(
                    serial, free,
                    "{ctx}: free-run diverged at {workers} workers"
                );
            }
            let lockstep = simulate_parallel_lockstep(&spec, &events, 3).unwrap();
            assert_eq!(serial, lockstep, "{ctx}: lockstep diverged");
        }
    }
}

#[test]
fn parallel_checkpoints_are_byte_identical_to_serial() {
    // The parallel checkpoint path walks shards concurrently but must
    // assemble the exact bytes the serial path writes: same sections,
    // same order, same fingerprint.
    let events = synthetic_workload(4, 4_000, 0.4, 2006);
    for scheduler in [
        SchedulerKind::FrFcfs,
        SchedulerKind::FqVftf,
        SchedulerKind::Bliss,
    ] {
        for plan in [None, Some(faults(11))] {
            let spec = spec_for(scheduler, plan.clone());
            let ctx = format!("{scheduler:?}/faults={}", plan.is_some());
            for kill_at in [97u64, 1_500, 2_048, 4_099] {
                let serial_bytes = simulate_serial_checkpointed(&spec, &events, kill_at)
                    .unwrap_or_else(|e| panic!("{ctx}: serial checkpoint at {kill_at}: {e}"));
                for workers in [2usize, 5] {
                    let par_bytes =
                        simulate_parallel_checkpointed(&spec, &events, kill_at, workers)
                            .unwrap_or_else(|e| {
                                panic!("{ctx}: parallel checkpoint at {kill_at}: {e}")
                            });
                    assert_eq!(
                        serial_bytes, par_bytes,
                        "{ctx}: snapshot bytes diverged at kill {kill_at}, {workers} workers"
                    );
                }
            }
        }
    }
}

#[test]
fn kill_and_parallel_resume_is_invisible() {
    // Kill-and-resume through the parallel paths (in both directions:
    // parallel checkpoint → serial resume, serial checkpoint → parallel
    // resume) must reproduce the uninterrupted serial run bit for bit.
    let events = synthetic_workload(4, 4_000, 0.4, 313);
    for scheduler in [SchedulerKind::FqVftf, SchedulerKind::SdVftf] {
        for plan in [None, Some(faults(7))] {
            let spec = spec_for(scheduler, plan.clone());
            let ctx = format!("{scheduler:?}/faults={}", plan.is_some());
            let reference = simulate_serial(&spec, &events).unwrap();
            for kill_at in [97u64, 1_500, 2_048, reference.cycles - 311] {
                let bytes = simulate_parallel_checkpointed(&spec, &events, kill_at, 3)
                    .unwrap_or_else(|e| panic!("{ctx}: checkpoint at {kill_at}: {e}"));
                let resumed_serial = resume_serial(&spec, &events, &bytes)
                    .unwrap_or_else(|e| panic!("{ctx}: serial resume from {kill_at}: {e}"));
                assert_eq!(
                    reference, resumed_serial,
                    "{ctx}: parallel checkpoint broke serial resume at {kill_at}"
                );
                for workers in [2usize, 6] {
                    let resumed_par = resume_parallel(&spec, &events, &bytes, workers)
                        .unwrap_or_else(|e| panic!("{ctx}: parallel resume from {kill_at}: {e}"));
                    assert_eq!(
                        reference, resumed_par,
                        "{ctx}: parallel resume diverged at kill {kill_at}, {workers} workers"
                    );
                }
            }
        }
    }
}

#[test]
fn checkpoint_after_drain_fails_identically() {
    // A kill cycle past the run's natural drain must error — with the
    // same message — on both checkpoint paths, never write bytes.
    let spec = spec_for(SchedulerKind::FrFcfs, None);
    let events = synthetic_workload(4, 1_000, 0.4, 5);
    let reference = simulate_serial(&spec, &events).unwrap();
    let kill_at = reference.cycles + 10_000;
    let serial_err = simulate_serial_checkpointed(&spec, &events, kill_at)
        .expect_err("serial checkpoint past drain succeeded");
    let par_err = simulate_parallel_checkpointed(&spec, &events, kill_at, 3)
        .expect_err("parallel checkpoint past drain succeeded");
    assert_eq!(serial_err, par_err, "drain-error messages diverged");
}
