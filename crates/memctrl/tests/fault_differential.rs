//! Fault-injection differential suite (ISSUE 4 tentpole): deterministic
//! faults must (a) inject *nothing* — bit-for-bit — when disabled,
//! (b) replay identically across the serial, parallel, and fast-forward
//! engines, and (c) separate the schedulers the way the paper's QoS
//! analysis predicts: FQ-VFTF's bounded-delay guarantee degrades
//! gracefully under every fault class, while FR-FCFS starves its victim
//! badly enough to trip the starvation watchdog — surfaced through the
//! observability layer, never by hanging the run.

use fqms_dram::device::Geometry;
use fqms_memctrl::engine::{
    adversarial_workload, simulate_parallel, simulate_serial, synthetic_workload, EngineReport,
    EngineSpec, RetryPolicy,
};
use fqms_memctrl::prelude::*;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};

/// Watchdog threshold used throughout: comfortably above FQ-VFTF's
/// worst-case victim read latency in the adversarial mix (< 200 cycles
/// even under fault injection), comfortably below FR-FCFS's starvation
/// episodes (victim reads wait up to ~400 cycles).
const WATCHDOG: u64 = 300;

fn spec_with(kind: SchedulerKind, channels: usize, threads: usize) -> EngineSpec {
    let mut spec = EngineSpec::paper(channels, threads);
    spec.config.set_scheduler(kind);
    spec.config.starvation_threshold = Some(WATCHDOG);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec
}

/// A plan exercising every fault class in one run.
fn all_faults_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::NackStorm,
            FaultWindow::new(500, 6_000),
            0.002,
            80,
        )
        .with(
            FaultKind::BankStall,
            FaultWindow::new(500, 6_000),
            0.002,
            120,
        )
        .with(
            FaultKind::RefreshPressure,
            FaultWindow::new(500, 6_000),
            0.001,
            60,
        )
        .with(
            FaultKind::RequestDrop,
            FaultWindow::new(500, 6_000),
            0.002,
            1,
        )
}

fn metrics(report: &EngineReport) -> &MetricsSink {
    &report.observations.as_ref().expect("observed run").metrics
}

#[test]
fn disabled_faults_are_bit_identical() {
    // `fault_plan: None`, `Some(FaultPlan::none())`, and a seeded plan
    // with no specs must all produce structurally equal reports: the
    // injector draws all randomness up front, and an empty plan draws
    // nothing at all.
    let events = synthetic_workload(4, 3_000, 0.4, 2006);
    let mut base = EngineSpec::paper(2, 4);
    base.epoch_cycles = 512;
    base.event_capacity = Some(1 << 20);
    let clean = simulate_serial(&base, &events).unwrap();

    let mut with_none = base.clone();
    with_none.fault_plan = Some(FaultPlan::none());
    assert_eq!(
        clean,
        simulate_serial(&with_none, &events).unwrap(),
        "FaultPlan::none() perturbed the run"
    );

    let mut with_empty = base.clone();
    with_empty.fault_plan = Some(FaultPlan::new(0xDEAD_BEEF));
    assert_eq!(
        clean,
        simulate_serial(&with_empty, &events).unwrap(),
        "an empty seeded plan perturbed the run"
    );
    assert_eq!(metrics(&clean).faults_injected, 0);
}

#[test]
fn faulted_runs_replay_identically_across_engines() {
    // With every fault class armed *and* the watchdog attached, the
    // serial, parallel, and cycle-by-cycle reference engines must still
    // agree — fault boundaries and watchdog deadlines feed
    // `next_event_cycle`, so fast-forward may never skip over one.
    let events = synthetic_workload(4, 6_000, 0.4, 42);
    let mut spec = spec_with(SchedulerKind::FqVftf, 2, 4);
    spec.fault_plan = Some(all_faults_plan(7));

    let serial = simulate_serial(&spec, &events).unwrap();
    assert!(
        metrics(&serial).faults_injected > 0,
        "plan never fired: vacuous equivalence"
    );
    let parallel = simulate_parallel(&spec, &events, 4).unwrap();
    assert_eq!(serial, parallel, "fault replay diverged across workers");

    let mut slow = spec.clone();
    slow.fast_forward = false;
    let reference = simulate_serial(&slow, &events).unwrap();
    assert_eq!(serial.cycles, reference.cycles);
    assert_eq!(serial.per_thread, reference.per_thread);
    assert_eq!(serial.completions, reference.completions);
    assert_eq!(serial.rejected, reference.rejected);
    assert_eq!(serial.unsubmitted, reference.unsubmitted);
    assert_eq!(
        serial.observations, reference.observations,
        "fast-forward skipped a fault or watchdog edge"
    );

    // Same seed, same run — twice.
    let again = simulate_serial(&spec, &events).unwrap();
    assert_eq!(serial, again, "fault injection is not reproducible");
}

#[test]
fn dropped_requests_are_conserved_and_counted() {
    let events = synthetic_workload(4, 5_000, 0.4, 11);
    let mut spec = spec_with(SchedulerKind::FqVftf, 2, 4);
    spec.fault_plan = Some(FaultPlan::new(3).with(
        FaultKind::RequestDrop,
        FaultWindow::new(100, 4_000),
        0.01,
        1,
    ));
    let report = simulate_serial(&spec, &events).unwrap();
    assert_eq!(report.unsubmitted, 0, "drop fault wedged the schedule");

    let dropped: u64 = report.per_thread.iter().map(|t| t.requests_dropped).sum();
    assert!(dropped > 0, "drop plan never fired: vacuous test");
    // Dropped requests were admitted but never complete; everything else
    // drains. Accounting must balance exactly.
    assert_eq!(
        report.total_completed() as u64 + dropped,
        events.len() as u64,
        "drops broke request conservation"
    );
    // The metrics sink agrees with the controller's own stats.
    let sink = metrics(&report);
    let sink_dropped: u64 = sink.iter().map(|(_, t)| t.requests_dropped).sum();
    assert_eq!(sink_dropped, dropped, "sink disagrees with stats on drops");
    assert!(sink.faults_injected >= dropped);
}

#[test]
fn nack_storm_with_bounded_retry_drains_instead_of_wedging() {
    let events = synthetic_workload(4, 5_000, 0.4, 19);
    let mut spec = spec_with(SchedulerKind::FqVftf, 2, 4);
    spec.fault_plan = Some(FaultPlan::new(5).with(
        FaultKind::NackStorm,
        FaultWindow::new(100, 4_500),
        0.004,
        400,
    ));
    spec.retry = RetryPolicy::bounded(6, 2, 64);

    let report = simulate_serial(&spec, &events).unwrap();
    assert_eq!(report.unsubmitted, 0, "bounded retry failed to drain");
    let rejected: usize = report.rejected.iter().map(Vec::len).sum();
    assert!(rejected > 0, "storm never exhausted a retry: vacuous test");
    let nacks: u64 = report.per_thread.iter().map(|t| t.nacks).sum();
    assert!(nacks > 0, "storm produced no NACKs");
    // Every submission either completed or was abandoned — none lost.
    assert_eq!(
        report.total_completed() + rejected,
        events.len(),
        "bounded retry broke request conservation"
    );

    // The same storm under the default infinite-retry policy also drains
    // (episodes end), completing strictly more requests.
    let mut infinite = spec.clone();
    infinite.retry = RetryPolicy::immediate();
    let reference = simulate_serial(&infinite, &events).unwrap();
    assert_eq!(reference.unsubmitted, 0);
    assert_eq!(reference.rejected.iter().map(Vec::len).sum::<usize>(), 0);
    assert!(reference.total_completed() > report.total_completed());
}

#[test]
fn watchdog_separates_fr_fcfs_from_fq_vftf() {
    // The adversarial mix with *no* faults: aggressors chain row hits
    // while the victim's row misses wait. FR-FCFS lets the victim's
    // pending reads sit past the watchdog threshold; FQ-VFTF's inversion
    // bound keeps the victim inside its QoS bound and the watchdog dark.
    let events = adversarial_workload(&Geometry::paper(), 3, 20_000, 2006);

    let fr = simulate_serial(&spec_with(SchedulerKind::FrFcfs, 1, 3), &events).unwrap();
    let fq = simulate_serial(&spec_with(SchedulerKind::FqVftf, 1, 3), &events).unwrap();

    let fr_victim = &fr.per_thread[0];
    let fq_victim = &fq.per_thread[0];
    assert!(
        fr_victim.starvations > 0,
        "FR-FCFS never tripped the watchdog: adversarial mix too gentle"
    );
    assert_eq!(
        fq_victim.starvations, 0,
        "FQ-VFTF tripped the watchdog on a fault-free run"
    );
    assert!(
        fq_victim.avg_read_latency() < fr_victim.avg_read_latency(),
        "FQ-VFTF victim latency {:.0} not below FR-FCFS {:.0}",
        fq_victim.avg_read_latency(),
        fr_victim.avg_read_latency()
    );
    // Watchdog trips surface through the observability layer too.
    assert_eq!(
        metrics(&fr).thread(0).starvations,
        fr_victim.starvations,
        "sink disagrees with stats on starvations"
    );
}

#[test]
fn fq_qos_bound_degrades_gracefully_under_each_fault_class() {
    // Per fault class: FQ-VFTF absorbs the fault without ever starving
    // its victim (watchdog stays dark, latency stays bounded), while
    // FR-FCFS keeps starving — the watchdog keeps firing instead of the
    // run hanging or the failure passing silently.
    let events = adversarial_workload(&Geometry::paper(), 3, 20_000, 2006);
    let baseline_fq = simulate_serial(&spec_with(SchedulerKind::FqVftf, 1, 3), &events).unwrap();
    let baseline_victim = baseline_fq.per_thread[0].avg_read_latency();

    for kind in FaultKind::ALL {
        let plan = FaultPlan::new(31).with(kind, FaultWindow::new(2_000, 14_000), 0.002, 150);

        let mut fq_spec = spec_with(SchedulerKind::FqVftf, 1, 3);
        fq_spec.fault_plan = Some(plan.clone());
        let fq = simulate_serial(&fq_spec, &events).unwrap();
        assert!(
            metrics(&fq).faults_injected > 0,
            "{}: plan never fired",
            kind.name()
        );
        let victim = &fq.per_thread[0];
        assert_eq!(
            victim.starvations,
            0,
            "{}: FQ-VFTF victim starved under fault",
            kind.name()
        );
        let faulted = victim.avg_read_latency();
        assert!(
            faulted < 4.0 * baseline_victim.max(1.0),
            "{}: FQ-VFTF victim latency exploded: {:.0} vs fault-free {:.0}",
            kind.name(),
            faulted,
            baseline_victim
        );

        let mut fr_spec = spec_with(SchedulerKind::FrFcfs, 1, 3);
        fr_spec.fault_plan = Some(plan);
        let fr = simulate_serial(&fr_spec, &events).unwrap();
        assert!(
            fr.per_thread[0].starvations > 0,
            "{}: FR-FCFS victim no longer starves under fault",
            kind.name()
        );
    }
}
