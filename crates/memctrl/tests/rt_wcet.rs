//! Real-time mode verification suite (ISSUE 9 tentpole): the analytic
//! WCET bound from [`fqms_memctrl::wcet`] must hold *empirically* on
//! every completion of every in-budget real-time thread, under
//! adversarial best-effort interference and injected faults — and the
//! regulated mode must stay bit-identical across the serial, parallel,
//! fast-forward, and kill-and-resume execution paths.
//!
//! The centrepiece is a shrinking [`CaseRunner`] fuzz over regulated
//! configurations × adversarial fault plans (NACK storms at admission,
//! refresh-deadline pressure, request drops), asserting that **zero**
//! regulated completions exceed the bound computed *before* the run from
//! the case's public fault specs ([`extra_blocking_for`] charges each
//! compiled episode conservatively). Satellite edge cases ride along:
//! zero-budget buckets (pure best-effort demotion), budgets at the run
//! horizon (semantically identical to an unregulated run), replenish
//! boundaries inside fast-forward skip windows, and cross-mode resume
//! rejection by the config fingerprint.

use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_memctrl::engine::{
    adversarial_workload, realtime_workload, resume_serial, simulate_parallel,
    simulate_parallel_lockstep, simulate_serial, simulate_serial_checkpointed, synthetic_workload,
    EngineReport, EngineSpec, ResumeError,
};
use fqms_memctrl::prelude::*;
use fqms_memctrl::wcet::bound_for;
use fqms_sim::fault::{FaultInjector, FaultKind, FaultPlan, FaultWindow};
use fqms_sim::rng::{CaseRunner, SimRng};
use fqms_sim::snapshot::SnapshotError;

/// A regulated single-channel spec: `rt` real-time threads with the given
/// per-period `budget`, `be` best-effort aggressors, bounds attached so
/// the controller itself counts violations.
fn regulated_spec(rt: usize, be: usize, period: u64, budget: u64, extra: u64) -> EngineSpec {
    let mut spec = EngineSpec::paper(1, rt + be);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    let mut reg = RegulationConfig::new(period);
    for _ in 0..rt {
        reg = reg.rt_class(budget, None);
    }
    for _ in 0..be {
        reg = reg.best_effort();
    }
    // Attach the analytic bound so the controller emits `BoundExceeded`
    // and counts violations on its own.
    let bound = bound_for(&spec.timing, &spec.geometry, &reg, 0, extra);
    for class in reg.classes.iter_mut().filter(|c| c.rt && c.budget > 0) {
        class.wcet = bound;
    }
    spec.config = spec.config.with_regulation(reg);
    spec
}

fn metrics(report: &EngineReport) -> &MetricsSink {
    &report.observations.as_ref().expect("observed run").metrics
}

/// Conservative per-channel fault allowance for the WCET bound, computed
/// from the *public* compiled timeline of the plan the engine will apply
/// to channel 0 (`plan.salted(0)`, matching `build_shards`):
///
/// * each refresh-pressure episode can stall the channel for its full
///   duration plus one trailing `tRFC + tRP` refresh it forced urgent,
/// * each NACK storm defers acceptance and piles up an RT backlog that
///   drains at `budget` per period — at most the storm's duration plus
///   two replenish periods of extra queueing per episode,
/// * request drops only shorten queues: no charge.
fn extra_blocking_for(plan: &FaultPlan, timing: &TimingParams, period: u64) -> u64 {
    let inj = FaultInjector::new(&plan.salted(0));
    let mut extra = 0u64;
    for spec in &plan.specs {
        let episodes = inj.scheduled(spec.kind) as u64;
        let per_episode = match spec.kind {
            FaultKind::RefreshPressure => spec
                .duration
                .saturating_add(timing.t_rfc)
                .saturating_add(timing.t_rp),
            FaultKind::NackStorm => spec.duration.saturating_add(period.saturating_mul(2)),
            FaultKind::RequestDrop | FaultKind::BankStall => 0,
        };
        extra = extra.saturating_add(episodes.saturating_mul(per_episode));
    }
    extra
}

/// Asserts every real-time completion of `report` is within `bound` and
/// that the controller's own violation counter agrees. Returns the count
/// of regulated completions checked (for vacuity guards).
fn assert_rt_within(report: &EngineReport, rt_threads: u32, bound: u64) -> Result<usize, String> {
    let mut checked = 0;
    for completion in report.completions.iter().flatten() {
        if completion.thread.as_u32() < rt_threads {
            checked += 1;
            if completion.latency() > bound {
                return Err(format!(
                    "thread {} request {:?} latency {} exceeds bound {bound}",
                    completion.thread.as_u32(),
                    completion.id,
                    completion.latency()
                ));
            }
        }
    }
    let violations = metrics(report).bound_violations;
    if violations != 0 {
        return Err(format!("controller counted {violations} bound violations"));
    }
    Ok(checked)
}

/// Baseline: two regulated real-time threads against two flooding
/// best-effort aggressors, no faults. Every RT completion obeys the
/// analytic bound and the run conserves requests.
#[test]
fn rt_latency_obeys_bound_under_best_effort_flood() {
    let spec = regulated_spec(2, 2, 2_000, 6, 0);
    let reg = spec.config.regulation.as_ref().unwrap();
    let bound = bound_for(&spec.timing, &spec.geometry, reg, 0, 0).unwrap();
    let events = realtime_workload(reg, 4, 30_000, 0.7, 2006);
    let report = simulate_serial(&spec, &events).unwrap();
    assert_eq!(report.unsubmitted, 0, "regulated run failed to drain");
    assert_eq!(report.total_completed(), events.len());
    let checked = assert_rt_within(&report, 2, bound).unwrap();
    assert!(checked > 50, "only {checked} RT completions: vacuous run");
}

/// The separation the `latency_cdf` figure plots: under the bank-camping
/// adversarial mix, unregulated FR-FCFS lets aggressors chain row hits
/// ahead of the victim's row misses, while the regulated mode gives the
/// victim private banks and the premium tier — its worst observed
/// latency stays inside the analytic bound *and* strictly below the
/// FR-FCFS worst case.
#[test]
fn regulation_beats_fr_fcfs_worst_case_under_bank_camping() {
    let events = adversarial_workload(&Geometry::paper(), 4, 20_000, 2006);
    let tail = |r: &EngineReport| {
        r.completions
            .iter()
            .flatten()
            .filter(|c| c.thread.as_u32() == 0)
            .map(|c| c.latency())
            .max()
            .unwrap_or(0)
    };

    let mut fr = EngineSpec::paper(1, 4);
    fr.epoch_cycles = 512;
    fr.config.set_scheduler(SchedulerKind::FrFcfs);
    let fr_tail = tail(&simulate_serial(&fr, &events).unwrap());

    // Victim as an RT class: ~2% arrival rate is a mean of 40 requests
    // per 2000-cycle period; budget 96 leaves the arrival-curve
    // assumption intact with wide margin.
    let mut spec = EngineSpec::paper(1, 4);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    let mut reg = RegulationConfig::new(2_000)
        .rt_class(96, None)
        .best_effort()
        .best_effort()
        .best_effort();
    let bound = bound_for(&spec.timing, &spec.geometry, &reg, 0, 0).unwrap();
    reg.classes[0].wcet = Some(bound);
    spec.config = spec.config.with_regulation(reg);
    let regulated = simulate_serial(&spec, &events).unwrap();

    let reg_tail = tail(&regulated);
    assert_rt_within(&regulated, 1, bound).unwrap();
    assert!(
        reg_tail < fr_tail,
        "regulated victim tail {reg_tail} not below FR-FCFS tail {fr_tail}"
    );
}

/// One generated fuzz case: a regulated configuration plus an adversarial
/// fault plan, with the workload horizon to drive through it.
#[derive(Debug, Clone)]
struct RtCase {
    rt: usize,
    be: usize,
    period: u64,
    budget: u64,
    cycles: u64,
    seed: u64,
    plan: FaultPlan,
}

impl RtCase {
    fn generate(rng: &mut SimRng) -> Self {
        let rt = 1 + rng.next_below(2) as usize;
        let be = 1 + rng.next_below(3) as usize;
        let period = 1_000 + rng.next_below(3) * 1_000;
        let budget = 2 + rng.next_below(6);
        let cycles = 15_000 + rng.next_below(3) * 10_000;
        let seed = rng.next_u64();
        let mut plan = FaultPlan::new(rng.next_u64());
        if rng.chance(0.6) {
            plan = plan.with(
                FaultKind::NackStorm,
                FaultWindow::new(1_000, cycles),
                0.0004,
                50 + rng.next_below(150),
            );
        }
        if rng.chance(0.6) {
            plan = plan.with(
                FaultKind::RefreshPressure,
                FaultWindow::new(1_000, cycles),
                0.0004,
                40 + rng.next_below(120),
            );
        }
        if rng.chance(0.5) {
            plan = plan.with(
                FaultKind::RequestDrop,
                FaultWindow::new(1_000, cycles),
                0.001,
                1,
            );
        }
        RtCase {
            rt,
            be,
            period,
            budget,
            cycles,
            seed,
            plan,
        }
    }

    /// Shrinks toward a shorter horizon and a quieter plan (dropping the
    /// last fault spec first, then halving the run).
    fn shrink(&self) -> Vec<RtCase> {
        let mut out = Vec::new();
        if !self.plan.specs.is_empty() {
            let mut calmer = self.clone();
            calmer.plan.specs.pop();
            out.push(calmer);
        }
        if self.cycles > 5_000 {
            let mut shorter = self.clone();
            shorter.cycles /= 2;
            for spec in &mut shorter.plan.specs {
                spec.window.end = spec
                    .window
                    .end
                    .min(shorter.cycles)
                    .max(spec.window.start + 1);
            }
            out.push(shorter);
        }
        if self.be > 1 {
            let mut fewer = self.clone();
            fewer.be -= 1;
            out.push(fewer);
        }
        out
    }

    fn check(&self) -> Result<(), String> {
        let mut spec = regulated_spec(self.rt, self.be, self.period, self.budget, 0);
        let extra = extra_blocking_for(&self.plan, &spec.timing, self.period);
        spec = regulated_spec(self.rt, self.be, self.period, self.budget, extra);
        spec.fault_plan = Some(self.plan.clone());
        let reg = spec.config.regulation.as_ref().unwrap();
        let bound = bound_for(&spec.timing, &spec.geometry, reg, 0, extra)
            .ok_or("fuzz case produced an unschedulable config")?;
        let events =
            realtime_workload(reg, (self.rt + self.be) as u32, self.cycles, 0.7, self.seed);
        let report =
            simulate_serial(&spec, &events).map_err(|e| format!("engine rejected case: {e}"))?;
        let checked = assert_rt_within(&report, self.rt as u32, bound)?;
        if checked == 0 {
            return Err("no RT completions: vacuous case".into());
        }
        Ok(())
    }
}

/// The release gate: shrinking fuzz over regulated configurations and
/// adversarial fault plans. No regulated completion may ever exceed the
/// bound computed before the run.
#[test]
fn fuzz_no_regulated_completion_exceeds_the_bound() {
    let cases = if cfg!(debug_assertions) { 12 } else { 48 };
    CaseRunner::new("rt-wcet")
        .cases(cases)
        .run(RtCase::generate, RtCase::shrink, |case| case.check());
}

/// Regulated runs replay bit-identically across the serial, free-running
/// parallel, lockstep, and cycle-by-cycle reference engines — replenish
/// boundaries feed `next_event_cycle`, so fast-forward may never skip one.
#[test]
fn regulated_mode_is_bit_identical_across_engines() {
    let mut spec = regulated_spec(2, 2, 1_500, 4, 0);
    spec.num_channels = 2;
    let reg = spec.config.regulation.as_ref().unwrap().clone();
    let events = realtime_workload(&reg, 4, 20_000, 0.6, 31);

    let serial = simulate_serial(&spec, &events).unwrap();
    assert!(
        metrics(&serial).commands_issued > 0,
        "vacuous equivalence: nothing ran"
    );
    for workers in [2, 3, 4] {
        let parallel = simulate_parallel(&spec, &events, workers).unwrap();
        assert_eq!(serial, parallel, "{workers} workers diverged");
    }
    let lockstep = simulate_parallel_lockstep(&spec, &events, 3).unwrap();
    assert_eq!(serial, lockstep, "lockstep engine diverged");

    let mut slow = spec.clone();
    slow.fast_forward = false;
    let reference = simulate_serial(&slow, &events).unwrap();
    assert_eq!(serial.cycles, reference.cycles);
    assert_eq!(serial.per_thread, reference.per_thread);
    assert_eq!(serial.completions, reference.completions);
    assert_eq!(
        serial.observations, reference.observations,
        "fast-forward skipped a replenish boundary"
    );
}

/// Kill-and-resume in regulated mode: checkpoints capture regulator and
/// partition state, and resuming reproduces the uninterrupted run bit for
/// bit — including kill points on and around replenish boundaries.
#[test]
fn regulated_kill_and_resume_is_bit_identical() {
    let mut spec = regulated_spec(1, 2, 1_000, 4, 0);
    spec.event_capacity = Some(1 << 16);
    let reg = spec.config.regulation.as_ref().unwrap().clone();
    let events = realtime_workload(&reg, 3, 8_000, 0.6, 43);
    let reference = simulate_serial(&spec, &events).unwrap();
    // 1000 and 2000 are replenish boundaries; 999/1001 straddle one.
    for kill_at in [1, 999, 1_000, 1_001, 2_000, 5_555] {
        let bytes = simulate_serial_checkpointed(&spec, &events, kill_at).unwrap();
        let resumed = resume_serial(&spec, &events, &bytes).unwrap();
        assert_eq!(resumed, reference, "kill at {kill_at} diverged");
    }
}

/// Cross-mode resume is rejected by the config fingerprint: a checkpoint
/// from a regulated run cannot resume into an unregulated controller (or
/// one with different budgets), and vice versa.
#[test]
fn cross_mode_resume_is_rejected_by_fingerprint() {
    let spec = regulated_spec(1, 2, 1_000, 4, 0);
    let reg = spec.config.regulation.as_ref().unwrap().clone();
    let events = realtime_workload(&reg, 3, 6_000, 0.6, 17);
    let bytes = simulate_serial_checkpointed(&spec, &events, 3_000).unwrap();

    // Same workload, regulation stripped: typed rejection, no panic.
    let mut plain = spec.clone();
    plain.config.regulation = None;
    assert!(matches!(
        resume_serial(&plain, &events, &bytes),
        Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. }))
    ));
    // Same shape, different budget: also a different fingerprint.
    let other = regulated_spec(1, 2, 1_000, 5, 0);
    assert!(matches!(
        resume_serial(&other, &events, &bytes),
        Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. }))
    ));
    // An unregulated checkpoint cannot resume into the regulated mode.
    let plain_bytes = simulate_serial_checkpointed(&plain, &events, 3_000).unwrap();
    assert!(matches!(
        resume_serial(&spec, &events, &plain_bytes),
        Err(ResumeError::Snapshot(SnapshotError::ConfigMismatch { .. }))
    ));
}

/// Zero-budget real-time class: permanently demoted — the thread behaves
/// as pure best-effort, carries no bound, and the run still drains with
/// conservation intact.
#[test]
fn zero_budget_class_is_pure_best_effort_demotion() {
    let mut spec = EngineSpec::paper(1, 3);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 18);
    let reg = RegulationConfig::new(1_000)
        .rt_class(0, None)
        .best_effort()
        .best_effort();
    assert_eq!(bound_for(&spec.timing, &spec.geometry, &reg, 0, 0), None);
    spec.config = spec.config.with_regulation(reg.clone());
    let events = realtime_workload(&reg, 3, 10_000, 0.5, 3);
    let report = simulate_serial(&spec, &events).unwrap();
    assert_eq!(report.unsubmitted, 0, "zero-budget run failed to drain");
    assert_eq!(report.total_completed(), events.len());
    assert_eq!(metrics(&report).bound_violations, 0);
    // Thread 0 completed its (budget-0-suppressed) share: workload gives
    // a zero-budget RT thread nothing to submit, so its count is zero —
    // and nothing else may be attributed to it.
    assert_eq!(report.per_thread[0].reads_completed, 0);
}

/// Budget at the run horizon: with partitioning off and every thread an
/// in-budget real-time class (budget no thread can exhaust), regulation
/// changes *scheduling semantics* not at all — per-thread statistics,
/// completions, logs, and event streams match the unregulated run
/// exactly. (`stepped`/`skipped` may differ: replenish boundaries cap
/// fast-forward windows.)
#[test]
fn saturated_budgets_match_unregulated_run_semantically() {
    let mut plain = EngineSpec::paper(2, 3);
    plain.epoch_cycles = 512;
    plain.log_capacity = Some(100_000);
    plain.event_capacity = Some(1 << 20);
    let events = synthetic_workload(3, 6_000, 0.4, 59);
    let baseline = simulate_serial(&plain, &events).unwrap();

    let mut saturated = plain.clone();
    let reg = RegulationConfig::new(500)
        .rt_class(u64::MAX, None)
        .rt_class(u64::MAX, None)
        .rt_class(u64::MAX, None)
        .partitioned(false);
    saturated.config = saturated.config.with_regulation(reg);
    let report = simulate_serial(&saturated, &events).unwrap();

    assert_eq!(report.cycles, baseline.cycles);
    assert_eq!(report.per_thread, baseline.per_thread);
    assert_eq!(report.completions, baseline.completions);
    assert_eq!(report.command_logs, baseline.command_logs);
    assert_eq!(report.unsubmitted, baseline.unsubmitted);
    assert_eq!(report.rejected, baseline.rejected);
    assert_eq!(report.observations, baseline.observations);
}

/// A replenish boundary landing exactly inside a fast-forward skip window
/// must cap the skip: a long idle gap straddling the boundary replays
/// identically with fast-forward on and off, and demoted threads regain
/// their tier on time.
#[test]
fn replenish_boundary_inside_skip_window_is_not_skipped() {
    let spec = regulated_spec(1, 1, 1_000, 2, 0);
    let reg = spec.config.regulation.as_ref().unwrap().clone();
    // Burst at the start of each period, then total silence across the
    // boundary: fast-forward wants to leap the whole gap.
    let mut events = Vec::new();
    for window in 0..6u64 {
        let start = window * 1_000 + 1;
        for i in 0..2u64 {
            events.push(SubmitEvent {
                at: fqms_sim::clock::DramCycle::new(start + i),
                thread: ThreadId::new(0),
                kind: RequestKind::Read,
                phys: i * 64,
            });
        }
        events.push(SubmitEvent {
            at: fqms_sim::clock::DramCycle::new(start + 2),
            thread: ThreadId::new(1),
            kind: RequestKind::Write,
            phys: (1 << 21) + window * 64,
        });
    }
    let fast = simulate_serial(&spec, &events).unwrap();
    assert!(fast.skipped_cycles > 0, "gap never fast-forwarded: vacuous");
    let mut slow_spec = spec.clone();
    slow_spec.fast_forward = false;
    let slow = simulate_serial(&slow_spec, &events).unwrap();
    assert_eq!(fast.per_thread, slow.per_thread);
    assert_eq!(fast.completions, slow.completions);
    assert_eq!(fast.observations, slow.observations);
    // The regulator actually cycled: thread 0 consumed its budget each
    // window and was replenished, so all its requests completed.
    assert_eq!(
        fast.per_thread[0].reads_completed, 12,
        "regulated thread lost requests across replenish boundaries"
    );
    let reg_bound = bound_for(&spec.timing, &spec.geometry, &reg, 0, 0).unwrap();
    assert_rt_within(&fast, 1, reg_bound).unwrap();
}
