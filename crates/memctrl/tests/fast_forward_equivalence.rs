//! Fast-forward equivalence suite (ISSUE 3 satellite): the event-driven
//! engine must be an *optimisation*, never a semantic change. Every
//! scheduler kind, plus the refresh / row-policy / VFT-binding variants
//! most likely to expose a missed wake-up, is run twice over the same
//! seeded workload — once cycle-by-cycle (`fast_forward: false`) and once
//! with event-driven skipping — and the runs must agree bit-for-bit on
//! completions, per-thread statistics, and the observed event streams.
//!
//! The only fields allowed to differ are the diagnostic skip counters
//! (`stepped_cycles` / `skipped_cycles`): the fast run simulates fewer
//! controller cycles, which is the whole point. `assert_semantic_eq`
//! below compares every other field explicitly so a future `EngineReport`
//! field is compared by default (it breaks compilation-free equality, not
//! silently skipped).

use fqms_dram::timing::TimingParams;
use fqms_memctrl::engine::{
    interference_workload, simulate_parallel, simulate_serial, synthetic_workload, EngineReport,
    EngineSpec,
};
use fqms_memctrl::policy::{RefreshPolicy, RowPolicy, SchedulerKind, VftBinding};

fn spec_with(kind: SchedulerKind, channels: usize, threads: usize, fast: bool) -> EngineSpec {
    let mut spec = EngineSpec::paper(channels, threads);
    spec.config.set_scheduler(kind);
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec.fast_forward = fast;
    spec
}

/// Asserts that two reports agree on every semantic field, ignoring only
/// the `stepped_cycles` / `skipped_cycles` diagnostics (which legitimately
/// differ between a fast-forward run and its cycle-by-cycle reference).
fn assert_semantic_eq(fast: &EngineReport, slow: &EngineReport, label: &str) {
    assert_eq!(fast.cycles, slow.cycles, "{label}: cycles diverged");
    assert_eq!(
        fast.per_thread, slow.per_thread,
        "{label}: per-thread stats diverged"
    );
    assert_eq!(
        fast.completions, slow.completions,
        "{label}: completion streams diverged"
    );
    assert_eq!(
        fast.command_logs, slow.command_logs,
        "{label}: command logs diverged"
    );
    assert_eq!(
        fast.bus_busy_cycles, slow.bus_busy_cycles,
        "{label}: bus occupancy diverged"
    );
    assert_eq!(
        fast.unsubmitted, slow.unsubmitted,
        "{label}: drain state diverged"
    );
    assert_eq!(
        fast.rejected, slow.rejected,
        "{label}: abandoned submissions diverged"
    );
    assert_eq!(
        fast.observations, slow.observations,
        "{label}: observed event streams diverged"
    );
}

/// Runs `spec` fast and slow (serial), plus fast in parallel, and checks
/// all three agree. Returns the fast serial report for extra assertions.
fn check(
    mut spec: EngineSpec,
    events: &[fqms_memctrl::engine::SubmitEvent],
    label: &str,
) -> EngineReport {
    spec.fast_forward = false;
    let slow = simulate_serial(&spec, events).unwrap();
    spec.fast_forward = true;
    let fast = simulate_serial(&spec, events).unwrap();
    assert_semantic_eq(&fast, &slow, label);

    // Serial vs parallel fast runs share identical epoch windows, so even
    // the skip counters must match: full structural equality.
    let par = simulate_parallel(&spec, events, 2).unwrap();
    assert_eq!(fast, par, "{label}: fast serial != fast parallel");
    fast
}

#[test]
fn all_schedulers_are_fast_forward_invariant() {
    // A light mix with plenty of dead cycles: the fast path must both
    // engage (skip something) and change nothing observable.
    let events = synthetic_workload(4, 4_000, 0.15, 2006);
    for kind in SchedulerKind::all() {
        let spec = spec_with(kind, 2, 4, true);
        let fast = check(spec, &events, kind.name());
        assert!(fast.unsubmitted == 0, "{kind}: mix failed to drain");
        assert!(
            fast.skipped_cycles > 0,
            "{kind}: fast path never engaged — vacuous equivalence"
        );
    }
}

#[test]
fn interference_mix_is_fast_forward_invariant() {
    // The paper's QoS-vs-hog mix: bursty per-thread behaviour with long
    // idle tails on the QoS thread's banks. This is also the reference
    // mix the speedup bench gates on.
    let events = interference_workload(4, 6_000, 0.05, 0.8, 2006);
    for kind in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
        let spec = spec_with(kind, 1, 4, true);
        let fast = check(spec, &events, kind.name());
        assert!(fast.skipped_cycles > 0, "{kind}: fast path never engaged");
    }
}

#[test]
fn refresh_heavy_timing_is_fast_forward_invariant() {
    // DDR2-667 refreshes every 2 600 cycles (vs 280 000 for DDR2-800), so
    // a 12 000-cycle run crosses several refresh windows per rank. Refresh
    // engagement, tRFC recovery, and deferred catch-up are the constraints
    // most likely to be missed by a broken `next_event_cycle`.
    let events = synthetic_workload(4, 12_000, 0.08, 99);
    for refresh in [
        RefreshPolicy::Strict,
        RefreshPolicy::Deferred { max_postponed: 4 },
    ] {
        for kind in [SchedulerKind::FrFcfs, SchedulerKind::FqVftf] {
            let mut spec = spec_with(kind, 2, 4, true);
            spec.timing = TimingParams::ddr2_667();
            spec.config.refresh_policy = refresh;
            let label = format!("{kind}/{refresh:?}");
            let fast = check(spec, &events, &label);
            assert!(fast.skipped_cycles > 0, "{label}: fast path never engaged");
        }
    }
}

#[test]
fn policy_variants_are_fast_forward_invariant() {
    // Open-row policy changes which bank thresholds matter (idle
    // precharges disappear, row hits chain); at-arrival binding changes
    // when VFTs are stamped. Neither may interact with cycle skipping.
    let events = synthetic_workload(4, 4_000, 0.2, 7);
    for (row, binding) in [
        (RowPolicy::Open, VftBinding::FirstReady),
        (RowPolicy::Closed, VftBinding::AtArrival),
        (RowPolicy::Open, VftBinding::AtArrival),
    ] {
        let mut spec = spec_with(SchedulerKind::FqVftf, 2, 4, true);
        spec.config.row_policy = row;
        spec.config.vft_binding = binding;
        let label = format!("{row:?}/{binding:?}");
        check(spec, &events, &label);
    }
}

#[test]
fn saturated_mix_is_fast_forward_invariant() {
    // The other extreme: a near-saturated mix where almost no cycle is
    // skippable. The fast path must degrade to cycle-by-cycle without
    // perturbing NACK retry loops or back-pressure.
    let events = synthetic_workload(4, 3_000, 0.9, 13);
    for kind in SchedulerKind::all() {
        let spec = spec_with(kind, 1, 4, true);
        check(spec, &events, kind.name());
    }
}
