//! Kill-and-resume differential suite (release gate): for every
//! scheduler × refresh policy × fault plan, killing a run at an arbitrary
//! cycle, checkpointing, and resuming must reproduce the uninterrupted
//! run **bit for bit** — same completions, same per-thread stats, same
//! recorded event streams and metrics. Corruption of the checkpoint must
//! fail with a typed error, never resume silently wrong.
//!
//! Kill cycles are drawn across the whole run (early, mid-epoch, at an
//! epoch boundary, late) because the checkpoint boundary logic differs at
//! each: an epoch split must be semantically invisible.

use fqms_memctrl::engine::{
    resume_parallel, resume_serial, simulate_parallel_checkpointed, simulate_serial,
    simulate_serial_checkpointed, synthetic_workload, EngineSpec, ResumeError, RetryPolicy,
};
use fqms_memctrl::policy::RefreshPolicy;
use fqms_memctrl::prelude::*;
use fqms_sim::fault::{FaultKind, FaultPlan, FaultWindow};

/// Every fault class in one plan, windowed over the active part of the
/// run so kills land both inside and outside fault episodes.
fn faults(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::NackStorm,
            FaultWindow::new(300, 5_000),
            0.002,
            90,
        )
        .with(
            FaultKind::BankStall,
            FaultWindow::new(300, 5_000),
            0.002,
            110,
        )
        .with(
            FaultKind::RefreshPressure,
            FaultWindow::new(300, 5_000),
            0.001,
            70,
        )
        .with(
            FaultKind::RequestDrop,
            FaultWindow::new(300, 5_000),
            0.003,
            1,
        )
}

fn spec_for(
    scheduler: SchedulerKind,
    refresh: RefreshPolicy,
    plan: Option<FaultPlan>,
) -> EngineSpec {
    let mut spec = EngineSpec::paper(2, 4);
    spec.config.set_scheduler(scheduler);
    spec.config.refresh_policy = refresh;
    spec.epoch_cycles = 512;
    spec.event_capacity = Some(1 << 20);
    spec.fault_plan = plan.clone();
    if plan.is_some() {
        // Bounded retries so NACK storms exercise the port's retry state
        // across the kill boundary too.
        spec.retry = RetryPolicy::bounded(6, 2, 64);
    }
    spec
}

#[test]
fn kill_and_resume_is_bit_identical_across_the_config_matrix() {
    let schedulers = [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfs,
        SchedulerKind::FqVftf,
        SchedulerKind::Bliss,
        SchedulerKind::SdVftf,
    ];
    let refreshes = [
        RefreshPolicy::Strict,
        RefreshPolicy::Deferred { max_postponed: 4 },
    ];
    let events = synthetic_workload(4, 4_000, 0.4, 2006);

    for scheduler in schedulers {
        for refresh in refreshes {
            for plan in [None, Some(faults(11))] {
                let spec = spec_for(scheduler, refresh, plan.clone());
                let reference = simulate_serial(&spec, &events).unwrap();
                let ctx = format!("{scheduler:?}/{refresh:?}/faults={}", plan.is_some());
                // Early, mid-epoch, exactly-on-epoch-boundary, and late
                // kills; all must be invisible after resume.
                for kill_at in [97, 1_500, 2_048, reference.cycles - 311] {
                    let bytes = simulate_serial_checkpointed(&spec, &events, kill_at)
                        .unwrap_or_else(|e| panic!("{ctx}: checkpoint at {kill_at}: {e}"));
                    let resumed = resume_serial(&spec, &events, &bytes)
                        .unwrap_or_else(|e| panic!("{ctx}: resume from {kill_at}: {e}"));
                    assert_eq!(
                        reference, resumed,
                        "{ctx}: kill at {kill_at} changed the run"
                    );
                    // The PR 8 free-running executor joins the kill
                    // matrix: its checkpoint must be the same bytes, and
                    // its resume the same run.
                    let par_bytes = simulate_parallel_checkpointed(&spec, &events, kill_at, 3)
                        .unwrap_or_else(|e| panic!("{ctx}: parallel checkpoint at {kill_at}: {e}"));
                    assert_eq!(
                        bytes, par_bytes,
                        "{ctx}: parallel checkpoint bytes diverged at {kill_at}"
                    );
                    let resumed_par = resume_parallel(&spec, &events, &bytes, 3)
                        .unwrap_or_else(|e| panic!("{ctx}: parallel resume from {kill_at}: {e}"));
                    assert_eq!(
                        reference, resumed_par,
                        "{ctx}: parallel resume at {kill_at} changed the run"
                    );
                }
            }
        }
    }
}

#[test]
fn resume_rejects_cross_config_checkpoints() {
    // A checkpoint taken under one scheduler must not resume under
    // another: the fingerprint binds the bytes to the full spec.
    let events = synthetic_workload(4, 3_000, 0.4, 7);
    let fq = spec_for(SchedulerKind::FqVftf, RefreshPolicy::Strict, None);
    let bytes = simulate_serial_checkpointed(&fq, &events, 1_000).unwrap();

    let fr = spec_for(SchedulerKind::FrFcfs, RefreshPolicy::Strict, None);
    match resume_serial(&fr, &events, &bytes) {
        Err(ResumeError::Snapshot(fqms_sim::snapshot::SnapshotError::ConfigMismatch {
            ..
        })) => {}
        other => panic!("cross-scheduler resume not rejected: {other:?}"),
    }

    let deferred = spec_for(
        SchedulerKind::FqVftf,
        RefreshPolicy::Deferred { max_postponed: 4 },
        None,
    );
    assert!(
        resume_serial(&deferred, &events, &bytes).is_err(),
        "cross-refresh-policy resume not rejected"
    );

    let faulted = spec_for(
        SchedulerKind::FqVftf,
        RefreshPolicy::Strict,
        Some(faults(3)),
    );
    assert!(
        resume_serial(&faulted, &events, &bytes).is_err(),
        "cross-fault-plan resume not rejected"
    );

    // The new schedulers are bound into the fingerprint too: a BLISS
    // checkpoint (which serializes blacklist state) must not resume under
    // SD-VFTF (which does not), and vice versa.
    let bliss = spec_for(SchedulerKind::Bliss, RefreshPolicy::Strict, None);
    let bliss_bytes = simulate_serial_checkpointed(&bliss, &events, 1_000).unwrap();
    let sd = spec_for(SchedulerKind::SdVftf, RefreshPolicy::Strict, None);
    assert!(
        resume_serial(&sd, &events, &bliss_bytes).is_err(),
        "BLISS checkpoint resumed under SD-VFTF"
    );
    let sd_bytes = simulate_serial_checkpointed(&sd, &events, 1_000).unwrap();
    assert!(
        resume_serial(&bliss, &events, &sd_bytes).is_err(),
        "SD-VFTF checkpoint resumed under BLISS"
    );
}
