//! The memory controller: transaction admission, bank schedulers, channel
//! scheduler, VTMS updates, refresh, and the closed-row policy.
//!
//! Structure mirrors the paper's Figure 2: a logical priority queue and a
//! bank scheduler per SDRAM bank feeding a channel scheduler that issues at
//! most one command per DRAM cycle. Each bank scheduler selects the
//! highest-priority pending request for its bank and generates that
//! request's next SDRAM command; the channel scheduler picks the
//! highest-priority *ready* command across banks.
//!
//! # Virtual-finish-time binding
//!
//! The paper evaluates the "second solution" of Section 3.2: virtual finish
//! times are calculated *just before requests are scheduled to begin
//! service* — when a request becomes a thread's oldest first-ready request
//! — and the VTMS registers are updated as each SDRAM command actually
//! issues (Equations 8 and 9, Table 4). We implement that as lazy, cached
//! binding: a request's VFT is computed (from the bank's state at that
//! moment, per Table 3) the first time the bank scheduler evaluates it as a
//! ready candidate — i.e. when it first becomes first-ready — or, under the
//! FQ bank scheduler's locked mode, when the bank scheduler must rank it.
//! Once bound, the VFT is stable for the request's lifetime.

use crate::address_map::AddressMap;
use crate::bliss::BlissState;
use crate::buffers::{Nack, ThreadBuffers};
use crate::cmdlog::{CommandLog, CommandRecord};
use crate::config::McConfig;
use crate::overload::OverloadState;
use crate::policy::{
    BufferSharing, Priority, RefreshPolicy, RowPolicy, ScanKind, SchedulerKind, VftBinding,
};
use crate::regulate::RegulatorState;
use crate::request::{MemoryRequest, RequestId, RequestKind, ThreadId};
use crate::select::{BankQueue, Pending};
use crate::slowdown::SlowdownEstimator;
use crate::stats::McStats;
use crate::vtms::{bank_service, Vtms};
use fqms_dram::command::{BankId, ColId, Command, DramAddress, RankId, RowId};
use fqms_dram::device::{DramDevice, Geometry};
use fqms_dram::timing::TimingParams;
use fqms_obs::{Event, NullObserver, Observer};
use fqms_sim::bitset::DenseBitSet;
use fqms_sim::clock::{DramCycle, NextEvent};
use fqms_sim::fault::{FaultInjector, FaultKind, FaultPlan};
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// A request whose service has finished from the requester's perspective:
/// for reads, the last data beat has arrived; for writes, the line has been
/// issued to the SDRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The completed request's id.
    pub id: RequestId,
    /// Originating thread.
    pub thread: ThreadId,
    /// Read or write.
    pub kind: RequestKind,
    /// Arrival cycle at the controller.
    pub arrival: DramCycle,
    /// Completion cycle.
    pub finish: DramCycle,
}

impl Completion {
    /// The request's controller-resident latency in DRAM cycles.
    pub fn latency(&self) -> u64 {
        self.finish - self.arrival
    }
}

/// A command proposed by a bank scheduler to the channel scheduler.
#[derive(Debug, Clone, Copy)]
struct Proposal {
    cmd: Command,
    prio: Priority,
    /// `(global_bank_index, queue_slot)` of the owning request (a stable
    /// [`BankQueue`] slot, not a position); `None` for unowned commands
    /// (closed-row idle precharges).
    source: Option<(usize, usize)>,
}

/// Memoized bank-scheduler decision for one bank.
///
/// A bank scheduler's proposal is a pure function of (queue contents,
/// open row, bank-level readiness per command class, FQ lock engagement,
/// the bound VFTs) — and all of those are stable between the events that
/// dirty them. The cache is therefore keyed on the *live-probed*
/// [`ReadyClasses`] and lock flag (cheap: a handful of integer compares
/// per cycle) and explicitly invalidated on queue mutation (enqueue,
/// CAS dequeue) and on any command issued to the bank (which is what
/// changes the open row, the timing state the probe reads, and the
/// request's pending-command classification). Everything else — VFT keys
/// once bound, arrival keys, queue order — cannot change while the key
/// matches, so a hit replays the cached proposal without rescanning the
/// queue.
#[derive(Debug, Clone, Copy)]
struct BankCache {
    valid: bool,
    ready: ReadyClasses,
    locked: bool,
    proposal: Option<Proposal>,
}

impl BankCache {
    fn empty() -> Self {
        BankCache {
            valid: false,
            ready: ReadyClasses::NONE,
            locked: false,
            proposal: None,
        }
    }
}

/// Runtime state of an attached fault plan (see
/// [`MemoryController::set_fault_plan`]). All episode timing is
/// precompiled in the injector; this struct only caches the consequences
/// of activation edges so hot-path predicates stay cheap `&self` reads.
#[derive(Debug, Clone)]
struct FaultState {
    injector: FaultInjector,
    /// Per-global-bank stall deadline: the bank scheduler proposes nothing
    /// while `now < stall_until[bank]`.
    stall_until: Vec<u64>,
    /// Refresh is forced urgent while `now < pressure_until` (cached on
    /// the activation edge so `refresh_wanted` stays `&self`).
    pressure_until: u64,
    /// Scratch for draining due request-drop selectors without
    /// reallocating.
    drop_scratch: Vec<u64>,
}

/// Per-thread starvation watchdog (see `McConfig::starvation_threshold`).
/// Purely observational: it counts and reports stalls, never alters
/// scheduling.
#[derive(Debug, Clone)]
struct WatchdogState {
    threshold: u64,
    /// Last cycle each thread made progress (admission or completion).
    last_progress: Vec<DramCycle>,
    /// True once the watchdog fired for the current stall episode; re-arms
    /// on the thread's next progress.
    tripped: Vec<bool>,
    /// Earliest cycle any untripped thread with pending work could reach
    /// its stall deadline (`u64::MAX` when none is armed). The per-cycle
    /// check is a single compare against this; the O(threads) deadline
    /// scan runs only when a deadline actually lands. May run stale-low
    /// (a thread progressed after the deadline was recorded), which costs
    /// one extra scan-and-recompute — never a missed trip: deadlines only
    /// move *later* on progress, and [`MemoryController::note_progress`]
    /// pulls `next_due` down when a new deadline is armed.
    next_due: u64,
}

/// The memory controller.
///
/// Drive it by calling [`MemoryController::try_submit`] as requests arrive
/// and [`MemoryController::step`] exactly once per DRAM cycle with a
/// strictly increasing cycle number.
///
/// # Example
///
/// ```
/// use fqms_memctrl::prelude::*;
/// use fqms_dram::prelude::*;
/// use fqms_sim::clock::DramCycle;
///
/// let cfg = McConfig::paper(2, SchedulerKind::FqVftf);
/// let mut mc = MemoryController::new(
///     cfg, Geometry::paper(), TimingParams::ddr2_800(),
/// ).unwrap();
/// mc.try_submit(ThreadId::new(0), RequestKind::Read, 0x4000, DramCycle::new(0))
///     .unwrap();
/// let mut done = Vec::new();
/// for c in 1..100u64 {
///     done.extend(mc.step(DramCycle::new(c)));
/// }
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: McConfig,
    dram: DramDevice,
    map: AddressMap,
    /// Pending request queue per global bank (admission order preserved,
    /// plus the indexed-selection structures when `config.scan` asks for
    /// them — see [`crate::select`]).
    queues: Vec<BankQueue>,
    buffers: Vec<ThreadBuffers>,
    vtms: Vec<Vtms>,
    inflight_reads: Vec<Completion>,
    next_id: u64,
    id_stride: u64,
    stats: McStats,
    /// Resolved priority-inversion bound `x` in cycles (None = unbounded).
    inversion_cycles: Option<u64>,
    last_step: Option<DramCycle>,
    /// Optional bounded trace of issued commands.
    cmd_log: Option<CommandLog>,
    /// Per-bank edge detector for [`Event::InversionLock`]: true while the
    /// bank's FQ scheduler is in locked mode and the trip has been
    /// reported for the current activation. Only written under
    /// `O::ENABLED`, so it never influences scheduling.
    lock_armed: Vec<bool>,
    /// Memoized bank-scheduler decisions (see [`BankCache`]).
    bank_cache: Vec<BankCache>,
    /// Requests across all bank queues; tracks
    /// `queues.iter().map(Vec::len).sum()` incrementally.
    queued: usize,
    /// Global indices of banks with a non-empty queue, maintained at the
    /// three queue mutation points (submit, CAS dequeue, fault drop) and
    /// rebuilt on restore. Unioned with the device's open-bank mask, this
    /// is exactly the set of banks that can propose anything — the
    /// scheduler hot loop visits only those, in ascending index order (the
    /// order the dense scan used, which channel-arbitration tie-breaking
    /// depends on).
    occupied: DenseBitSet,
    /// Reusable scratch for the masked scheduler sweep (the union is
    /// materialised once per stepped cycle into this buffer so the loop
    /// body can borrow `self` mutably; no per-cycle allocation).
    sched_scratch: Vec<usize>,
    /// Transaction-buffer entries in use summed over threads (shared-pool
    /// admission check without iterating the buffers).
    tx_used: usize,
    /// Write-buffer entries in use summed over threads.
    wr_used: usize,
    /// Cycles actually simulated by [`MemoryController::step`] /
    /// [`MemoryController::tick_until`].
    stepped_cycles: u64,
    /// Provably-inert cycles fast-forwarded by
    /// [`MemoryController::tick_until`].
    skipped_cycles: u64,
    /// A fast-forward skip clamped at a window edge: `(edge, next_event)`
    /// means cycles `(edge, next_event)` are provably inert but the window
    /// ended at `edge`. The next [`MemoryController::tick_until`] starting
    /// exactly there continues the skip instead of re-stepping the edge,
    /// so the stepped/skipped partition is independent of where windows
    /// (epochs, checkpoints) split the run. Invalidated by any step or
    /// submission.
    skip_marker: Option<(u64, u64)>,
    /// Attached fault plan, compiled ([`MemoryController::set_fault_plan`]).
    fault: Option<FaultState>,
    /// Starvation watchdog, when `config.starvation_threshold` is set.
    watchdog: Option<WatchdogState>,
    /// Online per-thread slowdown estimator ([`crate::slowdown`]).
    /// Maintained for *every* scheduler so fairness indices are comparable
    /// across policies; SD-VFTF additionally reads it when binding keys,
    /// which makes it policy state: it snapshots with the controller and
    /// is not cleared by [`MemoryController::reset_stats`].
    slowdown: SlowdownEstimator,
    /// BLISS blacklist state, present exactly when
    /// `config.scheduler == SchedulerKind::Bliss`.
    bliss: Option<BlissState>,
    /// Real-time token-bucket regulator, present exactly when
    /// `config.regulation` is set ([`crate::regulate`], ISSUE 9).
    regulate: Option<RegulatorState>,
    /// Overload-control layer (admission throttle + tiered shedder),
    /// present exactly when `config.overload` is set ([`crate::overload`],
    /// ISSUE 10). Admission-only: it never alters scheduling tiers, so it
    /// needs no bank-cache interaction.
    overload: Option<OverloadState>,
}

impl MemoryController {
    /// Builds a controller for the given configuration, geometry and
    /// timing.
    ///
    /// # Errors
    ///
    /// Returns a description if the configuration is invalid.
    pub fn new(config: McConfig, geometry: Geometry, timing: TimingParams) -> Result<Self, String> {
        config.validate()?;
        geometry.validate()?;
        timing.validate()?;
        let total_banks = geometry.total_banks() as usize;
        let vtms = config
            .shares
            .iter()
            .map(|&phi| Vtms::new(phi, total_banks))
            .collect::<Result<Vec<_>, _>>()?;
        let buffers = vec![
            ThreadBuffers::new(config.transaction_entries, config.write_entries);
            config.num_threads()
        ];
        let inversion_cycles = config.inversion_bound.resolve(timing.t_ras);
        let watchdog = config.starvation_threshold.map(|threshold| WatchdogState {
            threshold,
            last_progress: vec![DramCycle::ZERO; config.num_threads()],
            tripped: vec![false; config.num_threads()],
            next_due: 0,
        });
        let indexed = config.scan == ScanKind::Indexed;
        let vftf = config.scheduler.uses_vftf();
        let slowdown = SlowdownEstimator::new(config.num_threads());
        let bliss = (config.scheduler == SchedulerKind::Bliss).then(|| {
            BlissState::new(
                config.num_threads(),
                config.bliss_threshold,
                config.bliss_clear_interval,
            )
        });
        let regulate = config.regulation.as_ref().map(RegulatorState::new);
        let overload = config
            .overload
            .as_ref()
            .map(|o| OverloadState::new(o, config.regulation.as_ref()));
        Ok(MemoryController {
            map: AddressMap::new(geometry, config.line_bytes),
            dram: DramDevice::new(geometry, timing),
            queues: vec![BankQueue::new(indexed, vftf); total_banks],
            buffers,
            vtms,
            inflight_reads: Vec::new(),
            next_id: 0,
            id_stride: 1,
            stats: McStats::new(config.num_threads()),
            inversion_cycles,
            config,
            last_step: None,
            cmd_log: None,
            lock_armed: vec![false; total_banks],
            bank_cache: vec![BankCache::empty(); total_banks],
            queued: 0,
            occupied: DenseBitSet::new(total_banks),
            sched_scratch: Vec::with_capacity(total_banks),
            tx_used: 0,
            wr_used: 0,
            stepped_cycles: 0,
            skipped_cycles: 0,
            skip_marker: None,
            fault: None,
            watchdog,
            slowdown,
            bliss,
            regulate,
            overload,
        })
    }

    /// Attaches a compiled fault plan. An empty plan detaches fault
    /// injection entirely (the controller is then bit-identical to one
    /// that never had a plan). Must be called before the first step.
    ///
    /// # Panics
    ///
    /// Panics if the controller has already been stepped.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        assert!(
            self.last_step.is_none(),
            "fault plan must be attached before the first step"
        );
        self.fault = if plan.is_empty() {
            None
        } else {
            Some(FaultState {
                injector: FaultInjector::new(plan),
                stall_until: vec![0; self.queues.len()],
                pressure_until: 0,
                drop_scratch: Vec::new(),
            })
        };
    }

    /// The compiled fault injector, when a non-empty plan is attached
    /// (for inspecting per-class injection counts).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref().map(|f| &f.injector)
    }

    /// Enables command-trace logging, retaining the most recent
    /// `capacity` issued commands (see [`crate::cmdlog`]).
    pub fn enable_command_log(&mut self, capacity: usize) {
        self.cmd_log = Some(CommandLog::new(capacity));
    }

    /// The command log, if logging is enabled.
    pub fn command_log(&self) -> Option<&CommandLog> {
        self.cmd_log.as_ref()
    }

    /// Configures request-id numbering to `start, start + stride, ...`.
    /// A multi-channel composition gives each channel a disjoint id space
    /// (`start = channel`, `stride = num_channels`) so ids stay unique
    /// system-wide. Must be called before any request is submitted.
    ///
    /// # Panics
    ///
    /// Panics if requests have already been submitted or `stride` is zero.
    pub fn set_id_numbering(&mut self, start: u64, stride: u64) {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(self.next_id, 0, "id numbering must be set before use");
        self.next_id = start;
        self.id_stride = stride;
    }

    /// The controller's configuration.
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// The underlying DRAM device (for utilization statistics).
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }

    /// The physical-address mapper in use.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Per-thread statistics.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// The VTMS registers of one thread (for inspection/testing).
    pub fn vtms(&self, thread: ThreadId) -> &Vtms {
        &self.vtms[thread.as_usize()]
    }

    /// The online slowdown estimator (see [`crate::slowdown`]).
    pub fn slowdown_estimator(&self) -> &SlowdownEstimator {
        &self.slowdown
    }

    /// The BLISS blacklist state, when the BLISS scheduler is configured.
    pub fn bliss_state(&self) -> Option<&BlissState> {
        self.bliss.as_ref()
    }

    /// The real-time regulator state, when `McConfig::regulation` is set
    /// (see [`crate::regulate`]).
    pub fn regulator_state(&self) -> Option<&RegulatorState> {
        self.regulate.as_ref()
    }

    /// The overload-control state, when `McConfig::overload` is set
    /// (see [`crate::overload`]).
    pub fn overload_state(&self) -> Option<&OverloadState> {
        self.overload.as_ref()
    }

    /// Number of requests currently buffered (not yet fully serviced).
    pub fn pending_requests(&self) -> usize {
        debug_assert_eq!(
            self.queued,
            self.queues.iter().map(BankQueue::len).sum::<usize>()
        );
        self.queued + self.inflight_reads.len()
    }

    /// True if the controller holds no work.
    pub fn is_idle(&self) -> bool {
        self.pending_requests() == 0
    }

    /// True if a request of `kind` from `thread` would be admitted right
    /// now (no NACK).
    pub fn can_accept(&self, thread: ThreadId, kind: RequestKind) -> bool {
        match self.config.buffer_sharing {
            BufferSharing::Partitioned => self.buffers[thread.as_usize()].can_admit(kind),
            BufferSharing::Shared => self.shared_pool_has_room(kind),
        }
    }

    /// Shared-pool admission: total occupancy across threads against the
    /// pooled capacity. Uses the incrementally maintained occupancy
    /// counters, so the NACK decision costs two compares rather than a
    /// per-thread buffer walk.
    fn shared_pool_has_room(&self, kind: RequestKind) -> bool {
        debug_assert_eq!(
            self.tx_used,
            self.buffers
                .iter()
                .map(|b| b.transactions_used())
                .sum::<usize>()
        );
        let n = self.config.num_threads();
        if self.tx_used >= n * self.config.transaction_entries {
            return false;
        }
        if kind == RequestKind::Write && self.wr_used >= n * self.config.write_entries {
            return false;
        }
        true
    }

    /// Submits a memory request for the cache line containing physical
    /// address `phys`.
    ///
    /// # Errors
    ///
    /// Returns the typed [`Nack`] back-pressure signal when the request is
    /// refused — buffer-full (retry when an entry frees), [`Nack::Throttled`]
    /// (retry after the carried delay), or [`Nack::Shed`] (terminal; never
    /// retry). The request is *not* enqueued. Buffer-full and throttle
    /// refusals are counted in the thread's NACK statistics; sheds are
    /// counted separately as drops.
    pub fn try_submit(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
    ) -> Result<RequestId, Nack> {
        self.try_submit_observed(thread, kind, phys, now, &mut NullObserver)
    }

    /// [`MemoryController::try_submit`] with an [`Observer`] attached:
    /// emits [`Event::Nack`] / [`Event::Throttled`] / [`Event::Shed`] /
    /// [`Event::Arrival`] (and, under at-arrival binding,
    /// [`Event::VftBound`]). With [`NullObserver`] this monomorphizes to
    /// exactly `try_submit`.
    ///
    /// # Errors
    ///
    /// Returns the typed [`Nack`] back-pressure signal when the request is
    /// refused, exactly like [`MemoryController::try_submit`].
    pub fn try_submit_observed<O: Observer>(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
        obs: &mut O,
    ) -> Result<RequestId, Nack> {
        let tid = thread.as_usize();
        assert!(tid < self.config.num_threads(), "unknown thread {thread}");
        // Any admission attempt mutates state (stats, fault cursors), so a
        // clamped-skip marker from a previous window no longer applies.
        self.skip_marker = None;
        // NACK-storm fault: the admission port behaves exactly as if the
        // relevant buffer were full for the episode's duration.
        if let Some(f) = self.fault.as_mut() {
            if f.injector
                .active(FaultKind::NackStorm, now.as_u64())
                .is_some()
            {
                let nack = match kind {
                    RequestKind::Write => Nack::WriteBufferFull,
                    RequestKind::Read => Nack::TransactionBufferFull,
                };
                self.stats.thread_mut(thread).nacks += 1;
                if let Some(ov) = self.overload.as_mut() {
                    // A NACK storm presents as buffer pressure, so it
                    // feeds the saturation detector like one.
                    ov.note_buffer_nack();
                }
                if O::ENABLED {
                    obs.on_event(&Event::Nack {
                        cycle: now.as_u64(),
                        thread: thread.as_u32(),
                        is_write: nack == Nack::WriteBufferFull,
                    });
                }
                return Err(nack);
            }
        }
        // Overload control gates admission *before* the buffer checks: a
        // shed or throttled request must not consume detector signal (the
        // detector counts only genuine buffer-full NACKs — anti-windup),
        // and its refusal must be typed so the requester can distinguish
        // "retry later" from "never retry".
        if let Some(nack) = self
            .overload
            .as_ref()
            .and_then(|ov| ov.shed_check(thread.as_u32(), kind == RequestKind::Write))
        {
            self.overload.as_mut().expect("checked above").note_shed();
            self.stats.thread_mut(thread).requests_shed += 1;
            if O::ENABLED {
                let class = match nack {
                    Nack::Shed { class } => class.as_u8(),
                    _ => unreachable!("shed_check returns only Shed"),
                };
                obs.on_event(&Event::Shed {
                    cycle: now.as_u64(),
                    thread: thread.as_u32(),
                    is_write: kind == RequestKind::Write,
                    class,
                });
            }
            return Err(nack);
        }
        if let Some(nack) = self
            .overload
            .as_ref()
            .and_then(|ov| ov.throttle_check(thread.as_u32(), now.as_u64()))
        {
            self.overload
                .as_mut()
                .expect("checked above")
                .note_throttled();
            let ts = self.stats.thread_mut(thread);
            ts.nacks += 1;
            ts.throttle_nacks += 1;
            if O::ENABLED {
                let retry_after = match nack {
                    Nack::Throttled { retry_after } => retry_after,
                    _ => unreachable!("throttle_check returns only Throttled"),
                };
                obs.on_event(&Event::Throttled {
                    cycle: now.as_u64(),
                    thread: thread.as_u32(),
                    retry_after,
                });
            }
            return Err(nack);
        }
        if self.config.buffer_sharing == BufferSharing::Shared && !self.shared_pool_has_room(kind) {
            self.stats.thread_mut(thread).nacks += 1;
            if let Some(ov) = self.overload.as_mut() {
                ov.note_buffer_nack();
            }
            let nack = match kind {
                RequestKind::Write => Nack::WriteBufferFull,
                RequestKind::Read => Nack::TransactionBufferFull,
            };
            if O::ENABLED {
                obs.on_event(&Event::Nack {
                    cycle: now.as_u64(),
                    thread: thread.as_u32(),
                    is_write: nack == Nack::WriteBufferFull,
                });
            }
            return Err(nack);
        }
        // Per-thread accounting always happens (it tracks who holds what);
        // in shared mode the per-thread cap is lifted to the pool size.
        let admit = match self.config.buffer_sharing {
            BufferSharing::Partitioned => self.buffers[tid].try_admit(kind),
            BufferSharing::Shared => {
                self.buffers[tid].force_admit(kind);
                Ok(())
            }
        };
        if let Err(nack) = admit {
            self.stats.thread_mut(thread).nacks += 1;
            if let Some(ov) = self.overload.as_mut() {
                ov.note_buffer_nack();
            }
            if O::ENABLED {
                obs.on_event(&Event::Nack {
                    cycle: now.as_u64(),
                    thread: thread.as_u32(),
                    is_write: nack == Nack::WriteBufferFull,
                });
            }
            return Err(nack);
        }
        self.tx_used += 1;
        if kind == RequestKind::Write {
            self.wr_used += 1;
        }
        // Past every gate: a hog-classified thread pays one admission
        // token (everyone else passes freely).
        if let Some(ov) = self.overload.as_mut() {
            ov.consume(thread.as_u32());
        }
        let mut addr = self.map.decode(phys);
        // Real-time bank partitioning (ISSUE 9): fold the decoded global
        // bank into the submitting thread's private contiguous slice, so
        // no foreign thread can ever conflict on this thread's rows. Row
        // and column are untouched — within its slice the thread keeps the
        // XOR mapping's conflict behaviour.
        if let Some(reg) = &self.config.regulation {
            if reg.partition {
                let g = *self.dram.geometry();
                let (start, len) =
                    g.partition_slice(thread.as_u32(), self.config.num_threads() as u32);
                let global = self.global_bank(addr.rank, addr.bank) as u32;
                let folded = start + (global % len);
                addr.rank = RankId::new(folded / g.banks);
                addr.bank = BankId::new(folded % g.banks);
            }
        }
        let id = RequestId::new(self.next_id);
        self.next_id += self.id_stride;
        let req = MemoryRequest {
            id,
            thread,
            kind,
            addr,
            arrival: now,
        };
        let bank_idx = self.global_bank(addr.rank, addr.bank);
        // Admission precedes scheduling in the event contract (event.rs),
        // so Arrival is emitted before any at-arrival VftBound. The
        // reported depth includes this request, which is pushed below.
        if O::ENABLED {
            obs.on_event(&Event::Arrival {
                cycle: now.as_u64(),
                thread: thread.as_u32(),
                id: id.as_u64(),
                is_write: kind == RequestKind::Write,
                bank: bank_idx as u32,
                queue_depth: (self.queues[bank_idx].len() + 1) as u32,
            });
        }
        // The paper's "first solution" (Section 3.2): bind the virtual
        // finish time at arrival with an average (closed-bank) service
        // requirement and charge the VTMS registers immediately. The
        // evaluated design binds lazily at first-ready instead.
        let vft = if self.config.vft_binding == VftBinding::AtArrival
            && self.config.scheduler.uses_vftf()
        {
            let t = *self.dram.timing();
            let v = &mut self.vtms[tid];
            let mut f = v.virtual_finish_time(now, bank_idx, t.service_closed(), t.burst);
            v.update_bank(now, bank_idx, t.service_closed());
            v.update_channel(bank_idx, t.burst);
            // SD-VFTF: divide the key by the thread's current slowdown
            // estimate so the most-slowed-down thread sorts first. The
            // scaled key is what is stored, emitted, and ranked.
            if self.config.scheduler == SchedulerKind::SdVftf {
                f /= self.slowdown.slowdown(thread.as_u32());
            }
            if O::ENABLED {
                obs.on_event(&Event::VftBound {
                    cycle: now.as_u64(),
                    thread: thread.as_u32(),
                    id: id.as_u64(),
                    vft: f,
                });
            }
            Some(f)
        } else {
            None
        };
        self.queues[bank_idx].push(Pending {
            req,
            vft,
            ras_issued: 0,
        });
        self.queued += 1;
        self.occupied.insert(bank_idx);
        self.bank_cache[bank_idx].valid = false;
        let ts = self.stats.thread_mut(thread);
        match kind {
            RequestKind::Read => ts.reads_accepted += 1,
            RequestKind::Write => ts.writes_accepted += 1,
        }
        // Admission into an *empty* partition restarts the thread's
        // progress clock — its pending-work epoch begins now (and, under
        // fast-forward, `now` may follow a skipped idle window the
        // per-cycle watchdog reset never saw). Admissions on top of an
        // existing backlog are deliberately *not* progress: a thread whose
        // pending requests never complete is starving no matter how many
        // more it manages to enqueue.
        if self.buffers[tid].transactions_used() == 1 {
            self.note_progress(thread, now);
        }
        Ok(id)
    }

    /// Records watchdog progress for `thread` (a completion, or the first
    /// admission into an empty partition) and re-arms its trip detector.
    #[inline]
    fn note_progress(&mut self, thread: ThreadId, now: DramCycle) {
        if let Some(w) = self.watchdog.as_mut() {
            let t = thread.as_usize();
            w.last_progress[t] = now;
            w.tripped[t] = false;
            // This progress arms a fresh deadline; pull the incremental
            // scan trigger down so the deadline cycle is actually checked
            // (essential when `next_due` had drained to `u64::MAX`).
            w.next_due = w.next_due.min(now.as_u64().saturating_add(w.threshold));
        }
    }

    fn global_bank(&self, rank: RankId, bank: BankId) -> usize {
        (rank.as_u32() * self.dram.geometry().banks + bank.as_u32()) as usize
    }

    /// Advances the controller by one DRAM cycle: completes finished reads,
    /// runs the bank and channel schedulers, and issues at most one SDRAM
    /// command.
    ///
    /// Returns the requests that completed this cycle.
    ///
    /// # Panics
    ///
    /// Panics if called with a non-increasing cycle number.
    pub fn step(&mut self, now: DramCycle) -> Vec<Completion> {
        self.step_observed(now, &mut NullObserver)
    }

    /// [`MemoryController::step`] with an [`Observer`] attached: emits
    /// completion, scheduling, and command-issue events as they happen.
    /// With [`NullObserver`] every `if O::ENABLED` guard folds away and
    /// this monomorphizes to exactly `step` — observation is a pure
    /// function of the simulation and never changes it.
    pub fn step_observed<O: Observer>(&mut self, now: DramCycle, obs: &mut O) -> Vec<Completion> {
        let mut out = Vec::new();
        self.step_core(now, &mut out, obs);
        out
    }

    /// Allocation-free [`MemoryController::step_observed`]: appends this
    /// cycle's completions to `out` (a scratch buffer owned by the caller)
    /// instead of returning a fresh `Vec`, and reports whether a command
    /// issued. This is the hot-path entry point used by the engine.
    pub fn step_into<O: Observer>(
        &mut self,
        now: DramCycle,
        out: &mut Vec<Completion>,
        obs: &mut O,
    ) -> bool {
        self.step_core(now, out, obs)
    }

    /// Earliest *strictly future* cycle at which this controller could do
    /// anything differently from what it would do by idling: a timing
    /// constraint expires, a refresh deadline (or deferred-refresh
    /// postponement budget) lands, an in-flight read's data burst
    /// completes, or an FQ bank scheduler's priority-inversion bound
    /// trips. Returns [`DramCycle::MAX`] when no such event is scheduled.
    ///
    /// The bound is conservative (it may name a cycle where nothing
    /// user-visible happens) but never misses an event — the contract
    /// [`MemoryController::tick_until`] relies on. It is only meaningful
    /// when computed from a *quiescent* cycle (one where `step` neither
    /// issued a command nor completed a request): controller state
    /// mutates only on issue/completion/submit, so from a quiescent cycle
    /// every scheduling predicate is frozen until the returned cycle.
    pub fn next_event_cycle(&self, now: DramCycle) -> DramCycle {
        let mut ev = NextEvent::after(now);
        ev.consider(self.dram.next_event_cycle(now));
        for c in &self.inflight_reads {
            ev.consider(c.finish);
        }
        if self.config.scheduler.uses_fq_bank_scheduler() {
            if let Some(x) = self.inversion_cycles {
                // Only open banks can be mid-activation (`active_since`
                // is `Some` exactly while a row is open), so the masked
                // sweep visits the same banks the dense rank×bank scan
                // found trips on.
                let g = *self.dram.geometry();
                for idx in self.dram.open_banks().iter() {
                    let rank = RankId::new(idx as u32 / g.banks);
                    let bank = BankId::new(idx as u32 % g.banks);
                    if let Some(since) = self.dram.bank(rank, bank).active_since() {
                        ev.consider(since.saturating_add(x));
                    }
                }
            }
        }
        if let RefreshPolicy::Deferred { max_postponed } = self.config.refresh_policy {
            let t_refi = self.dram.timing().t_refi;
            let k = u64::from(max_postponed.max(1));
            for r in 0..self.dram.geometry().ranks {
                let deadline = self.dram.refresh_deadline(RankId::new(r));
                ev.consider(deadline.saturating_add((k - 1) * t_refi));
            }
        }
        if let Some(f) = &self.fault {
            // Never skip over a fault-episode edge: every start/end is a
            // cycle where scheduling predicates change.
            if let Some(boundary) = f.injector.next_boundary(now.as_u64()) {
                ev.consider(DramCycle::new(boundary));
            }
            // During refresh pressure the refresh machinery re-evaluates
            // every cycle (its readiness is not in the filtered DRAM
            // next-event set when no deadline is due), so step
            // cycle-by-cycle for the episode's duration.
            if now.as_u64() < f.pressure_until {
                ev.consider(DramCycle::new(now.as_u64() + 1));
            }
        }
        if let Some(w) = &self.watchdog {
            // A watchdog trip is an observable event: make sure the
            // deadline cycle is stepped, not skipped. `next_due` is a
            // conservative (never-late) bound over every armed deadline,
            // so one compare replaces the per-thread scan.
            if w.next_due != u64::MAX {
                ev.consider(DramCycle::new(w.next_due));
            }
        }
        if let Some(b) = &self.bliss {
            // A clearing boundary changes scheduling state (blacklist
            // wipe): the boundary cycle must be stepped, never skipped,
            // so fast-forwarded runs clear at exactly the same cycles as
            // per-cycle runs.
            ev.consider(DramCycle::new(b.next_clear()));
        }
        if let Some(rg) = &self.regulate {
            // A replenish boundary can promote a demoted thread back to
            // the premium tier: the boundary cycle must be stepped, never
            // skipped, or a fast-forwarded run would restore the tier late.
            ev.consider(DramCycle::new(rg.next_replenish()));
        }
        if let Some(ov) = &self.overload {
            // Both overload boundaries must be stepped, never skipped: hog
            // reclassification reads the slowdown estimator *at* the
            // replenish boundary (a completion between a skipped boundary
            // and the next submit would change the hog set), and a window
            // evaluation reads the occupancy *at* the window boundary.
            ev.consider(DramCycle::new(ov.next_replenish()));
            ev.consider(DramCycle::new(ov.next_window()));
        }
        ev.earliest()
    }

    /// Advances the controller from cycle `from` (exclusive, the last
    /// cycle already stepped) to `to` (inclusive), fast-forwarding through
    /// provably-inert stretches.
    ///
    /// Equivalence contract: the skip rule only ever jumps *from a cycle
    /// where `step` did nothing* (no command issued, no completion
    /// drained) *to the cycle before the next scheduled event*. From such
    /// a quiescent cycle no state mutates, so every skipped cycle would
    /// have been an identical no-op; after any activity cycle the next
    /// cycle is stepped unconditionally (a command that lost channel
    /// arbitration may have all its thresholds already in the past).
    /// Completions, statistics, and observer events are therefore
    /// bit-identical to calling [`MemoryController::step`] once per
    /// cycle. Completions are appended to `out`.
    pub fn tick_until(&mut self, from: DramCycle, to: DramCycle, out: &mut Vec<Completion>) {
        self.tick_until_observed(from, to, out, &mut NullObserver);
    }

    /// [`MemoryController::tick_until`] with an [`Observer`] attached.
    pub fn tick_until_observed<O: Observer>(
        &mut self,
        from: DramCycle,
        to: DramCycle,
        out: &mut Vec<Completion>,
        obs: &mut O,
    ) {
        let mut c = from;
        // A skip clamped at the previous window's edge resumes here: the
        // recorded event bound still holds (nothing stepped or arrived
        // since, or the marker would have been invalidated), so the edge
        // cycle is not re-stepped and the stepped/skipped partition is
        // identical to a run whose window never ended at `from`.
        if let Some((edge, next)) = self.skip_marker {
            if edge == c.as_u64() && next > c.as_u64() + 1 {
                let dead_until = DramCycle::new((next - 1).min(to.as_u64()));
                self.skipped_cycles += dead_until - c;
                self.skip_marker = if dead_until.as_u64() < next - 1 {
                    Some((dead_until.as_u64(), next))
                } else {
                    None
                };
                c = dead_until;
            }
        }
        while c < to {
            let before = out.len();
            c = DramCycle::new(c.as_u64() + 1);
            let issued = self.step_core(c, out, obs);
            if issued || out.len() != before {
                continue; // activity: the very next cycle must be stepped
            }
            let next = self.next_event_cycle(c).as_u64();
            if next > c.as_u64() + 1 {
                // Cycles (c, next) are provably inert; jump to just before
                // the event (clamped to the window end). A clamped jump
                // leaves a marker so the next window can finish the skip.
                let dead_until = DramCycle::new((next - 1).min(to.as_u64()));
                self.skipped_cycles += dead_until - c;
                self.skip_marker = if dead_until.as_u64() < next - 1 {
                    Some((dead_until.as_u64(), next))
                } else {
                    None
                };
                c = dead_until;
            }
        }
    }

    /// Cycles actually simulated (per-cycle `step` executions).
    pub fn stepped_cycles(&self) -> u64 {
        self.stepped_cycles
    }

    /// Cycles fast-forwarded by [`MemoryController::tick_until`] without
    /// being simulated.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    fn step_core<O: Observer>(
        &mut self,
        now: DramCycle,
        out: &mut Vec<Completion>,
        obs: &mut O,
    ) -> bool {
        if let Some(last) = self.last_step {
            assert!(now > last, "step({now}) after step({last})");
        }
        self.last_step = Some(now);
        self.stepped_cycles += 1;
        self.skip_marker = None;

        self.drain_read_completions(now, out, obs);
        if self.fault.is_some() {
            self.apply_faults(now, obs);
        }
        if self.watchdog.is_some() {
            self.check_watchdog(now, obs);
        }
        // BLISS clearing interval: wipe blacklist flags at every elapsed
        // boundary *before* scheduling, so the boundary cycle already
        // schedules with a clean slate. A wipe changes the tier bits the
        // memoized proposals were ranked under, so every bank cache drops.
        if let Some(b) = self.bliss.as_mut() {
            if b.maybe_clear(now.as_u64()) {
                for cache in &mut self.bank_cache {
                    cache.valid = false;
                }
            }
        }
        // Regulator replenish boundary: refill every token bucket before
        // scheduling, so the boundary cycle already schedules with the
        // restored tiers. A refill can promote a demoted thread, changing
        // the tier bits memoized proposals were ranked under.
        if let Some(rg) = self.regulate.as_mut() {
            if rg.maybe_replenish(now.as_u64()) {
                for cache in &mut self.bank_cache {
                    cache.valid = false;
                }
            }
        }
        // Overload boundaries: refill admission tokens / reclassify hogs,
        // and walk the saturation ladder — before scheduling, so the
        // boundary cycle already admits under the new state. Admission-only
        // state: no memoized proposal depends on it, so no cache drop.
        if let Some(ov) = self.overload.as_mut() {
            ov.maybe_replenish(now.as_u64(), &self.slowdown);
            if let Some((from, to)) = ov.maybe_evaluate(now.as_u64(), self.tx_used) {
                if O::ENABLED {
                    if to > from {
                        obs.on_event(&Event::SaturationEntered {
                            cycle: now.as_u64(),
                            level: to.as_u8(),
                        });
                    } else {
                        obs.on_event(&Event::SaturationExited {
                            cycle: now.as_u64(),
                            level: to.as_u8(),
                        });
                    }
                }
            }
        }

        let urgent_rank = (0..self.dram.geometry().ranks)
            .map(RankId::new)
            .find(|&r| self.refresh_wanted(r, now));

        let scheduled = match urgent_rank {
            Some(rank) => self.schedule_refresh(rank, now).map(|cmd| Proposal {
                cmd,
                prio: Priority {
                    ready: true,
                    tier: 0,
                    cas: false,
                    key: f64::INFINITY,
                    id: RequestId::new(u64::MAX),
                },
                source: None,
            }),
            None => self.schedule_normal(now, obs),
        };

        match scheduled {
            Some(p) => {
                self.issue(p, now, out, obs);
                true
            }
            None => false,
        }
    }

    /// Consumes this cycle's fault-timeline edges: reports activation
    /// edges, caches their consequences (bank stall deadlines, refresh
    /// pressure), and executes due request drops. Runs once per stepped
    /// cycle, between completion drain and scheduling; with no plan
    /// attached it is never called.
    fn apply_faults<O: Observer>(&mut self, now: DramCycle, obs: &mut O) {
        let n = now.as_u64();
        let f = self.fault.as_mut().expect("checked by caller");
        if let Some(e) = f.injector.activated(FaultKind::NackStorm, n) {
            if O::ENABLED {
                obs.on_event(&Event::FaultInjected {
                    cycle: n,
                    kind: FaultKind::NackStorm,
                    until: e.end,
                    bank: None,
                });
            }
        }
        if let Some(e) = f.injector.activated(FaultKind::RefreshPressure, n) {
            f.pressure_until = f.pressure_until.max(e.end);
            if O::ENABLED {
                obs.on_event(&Event::FaultInjected {
                    cycle: n,
                    kind: FaultKind::RefreshPressure,
                    until: e.end,
                    bank: None,
                });
            }
        }
        if let Some(e) = f.injector.activated(FaultKind::BankStall, n) {
            let bank = (e.selector % f.stall_until.len() as u64) as usize;
            f.stall_until[bank] = f.stall_until[bank].max(e.end);
            self.bank_cache[bank].valid = false;
            if O::ENABLED {
                obs.on_event(&Event::FaultInjected {
                    cycle: n,
                    kind: FaultKind::BankStall,
                    until: e.end,
                    bank: Some(bank as u32),
                });
            }
        }
        let mut drops = std::mem::take(&mut f.drop_scratch);
        f.injector.take_due(FaultKind::RequestDrop, n, &mut drops);
        for &selector in &drops {
            if O::ENABLED {
                obs.on_event(&Event::FaultInjected {
                    cycle: n,
                    kind: FaultKind::RequestDrop,
                    until: n + 1,
                    bank: None,
                });
            }
            if self.queued == 0 {
                continue; // nothing queued: the drop lands on air
            }
            // Deterministic victim: flatten the bank queues in bank-index
            // order (admission order within each) and pick the selector'th
            // entry.
            let mut target = (selector % self.queued as u64) as usize;
            let (bank_idx, pos) = self
                .queues
                .iter()
                .enumerate()
                .find_map(|(bi, q)| {
                    if target < q.len() {
                        Some((bi, target))
                    } else {
                        target -= q.len();
                        None
                    }
                })
                .expect("queued tracks the summed queue lengths");
            let slot = self.queues[bank_idx]
                .nth_slot(pos)
                .expect("position bounded by live length");
            let pending = self.queues[bank_idx].remove(slot);
            self.queued -= 1;
            if self.queues[bank_idx].is_empty() {
                self.occupied.remove(bank_idx);
            }
            self.bank_cache[bank_idx].valid = false;
            let req = pending.req;
            // Release the buffer entry exactly as completion would — the
            // requester is never told; the request simply vanishes.
            let buf = &mut self.buffers[req.thread.as_usize()];
            match req.kind {
                RequestKind::Read => {
                    buf.complete(RequestKind::Read);
                    self.tx_used -= 1;
                }
                RequestKind::Write => {
                    buf.release_write_data();
                    buf.complete(RequestKind::Write);
                    self.wr_used -= 1;
                    self.tx_used -= 1;
                }
            }
            self.stats.thread_mut(req.thread).requests_dropped += 1;
            if O::ENABLED {
                obs.on_event(&Event::RequestDropped {
                    cycle: n,
                    thread: req.thread.as_u32(),
                    id: req.id.as_u64(),
                    is_write: req.kind == RequestKind::Write,
                });
            }
        }
        drops.clear();
        self.fault.as_mut().expect("still attached").drop_scratch = drops;
    }

    /// Fires the starvation watchdog for threads that hold pending work
    /// but have made no progress for the configured threshold. Purely
    /// observational: one stat increment and one event per stall episode.
    ///
    /// Incremental: the common case is one compare against the cached
    /// earliest deadline (`next_due`); the O(threads) scan runs only on
    /// cycles where a deadline can actually land. Idle threads are simply
    /// skipped — their stale progress clocks are rewritten by
    /// [`MemoryController::note_progress`] on the admission that makes
    /// them active again, so no per-cycle pinning is needed.
    fn check_watchdog<O: Observer>(&mut self, now: DramCycle, obs: &mut O) {
        let w = self.watchdog.as_mut().expect("checked by caller");
        if now.as_u64() < w.next_due {
            return;
        }
        let mut next = u64::MAX;
        for t in 0..w.last_progress.len() {
            if self.buffers[t].transactions_used() == 0 {
                // Nothing pending: an idle thread is not starved.
                continue;
            }
            if w.tripped[t] {
                continue;
            }
            let due = w.last_progress[t].as_u64().saturating_add(w.threshold);
            if now.as_u64() >= due {
                w.tripped[t] = true;
                self.stats.thread_mut(ThreadId::new(t as u32)).starvations += 1;
                if O::ENABLED {
                    obs.on_event(&Event::StarvationDetected {
                        cycle: now.as_u64(),
                        thread: t as u32,
                        stalled_for: now.as_u64() - w.last_progress[t].as_u64(),
                    });
                }
            } else {
                next = next.min(due);
            }
        }
        w.next_due = next;
    }

    /// Finalizes utilization statistics at the end of a run.
    pub fn finish(&mut self, now: DramCycle) {
        self.dram.advance_stats(now);
    }

    /// Zeroes all measurement counters (per-thread stats and DRAM
    /// utilization) without disturbing queued requests, bank state, or
    /// VTMS registers. Used to exclude warmup from measurement.
    pub fn reset_stats(&mut self, now: DramCycle) {
        self.stats.reset();
        self.dram.reset_stats(now);
        self.stepped_cycles = 0;
        self.skipped_cycles = 0;
    }

    fn drain_read_completions<O: Observer>(
        &mut self,
        now: DramCycle,
        out: &mut Vec<Completion>,
        obs: &mut O,
    ) {
        let mut i = 0;
        while i < self.inflight_reads.len() {
            if self.inflight_reads[i].finish > now {
                i += 1;
                continue;
            }
            let c = self.inflight_reads.swap_remove(i);
            self.buffers[c.thread.as_usize()].complete(RequestKind::Read);
            self.tx_used -= 1;
            self.note_progress(c.thread, now);
            // Alone-time model (DESIGN.md §16): the request's intrinsic
            // closed-bank service cost plus its data burst — what it
            // would have cost on an unloaded bank.
            let alone = {
                let t = self.dram.timing();
                t.service_closed() + t.burst
            };
            self.slowdown.record(c.thread.as_u32(), alone, c.latency());
            let ts = self.stats.thread_mut(c.thread);
            ts.reads_completed += 1;
            ts.read_latency_total += c.latency();
            ts.alone_cycles_est += alone;
            ts.shared_cycles += c.latency();
            if O::ENABLED {
                obs.on_event(&Event::Completed {
                    cycle: now.as_u64(),
                    thread: c.thread.as_u32(),
                    id: c.id.as_u64(),
                    is_write: false,
                    latency: c.latency(),
                    bytes: self.config.line_bytes,
                    alone_cycles: alone,
                });
            }
            // WCET verification hook (ISSUE 9): a regulated completion
            // above its class's configured bound is counted and reported.
            // The release gates assert this never happens.
            if let Some(rg) = self.regulate.as_mut() {
                if let Some(bound) = rg.wcet_bound(c.thread.as_u32()) {
                    if c.latency() > bound {
                        rg.note_violation();
                        if O::ENABLED {
                            obs.on_event(&Event::BoundExceeded {
                                cycle: now.as_u64(),
                                thread: c.thread.as_u32(),
                                id: c.id.as_u64(),
                                is_write: false,
                                latency: c.latency(),
                                bound,
                            });
                        }
                    }
                }
            }
            out.push(c);
        }
    }

    /// Decides whether to enter refresh mode for `rank` this cycle, per
    /// the configured [`RefreshPolicy`].
    fn refresh_wanted(&self, rank: RankId, now: DramCycle) -> bool {
        // Refresh-pressure fault: force refresh urgency (a refresh storm)
        // for the episode's duration, regardless of the real deadline.
        if let Some(f) = &self.fault {
            if now.as_u64() < f.pressure_until {
                return true;
            }
        }
        if !self.dram.refresh_urgent(rank, now) {
            return false;
        }
        match self.config.refresh_policy {
            RefreshPolicy::Strict => true,
            RefreshPolicy::Deferred { max_postponed } => {
                let t_refi = self.dram.timing().t_refi;
                let deadline = self.dram.refresh_deadline(rank);
                let owed = 1 + (now.as_u64().saturating_sub(deadline.as_u64())) / t_refi;
                owed >= max_postponed.max(1) as u64 || self.queued == 0
            }
        }
    }

    /// Refresh urgency: block normal traffic on the rank, close open banks,
    /// then issue the refresh command.
    fn schedule_refresh(&mut self, rank: RankId, now: DramCycle) -> Option<Command> {
        let refresh = Command::Refresh { rank };
        if self.dram.is_ready(&refresh, now) {
            return Some(refresh);
        }
        // Only open banks need closing; the mask visits them in the same
        // ascending bank order the dense scan used.
        let banks = self.dram.geometry().banks;
        let rank_start = (rank.as_u32() * banks) as usize;
        for idx in self.dram.open_banks().iter() {
            if idx < rank_start {
                continue;
            }
            if idx >= rank_start + banks as usize {
                break;
            }
            let bank = BankId::new(idx as u32 % banks);
            let pre = Command::Precharge { rank, bank };
            if self.dram.is_ready(&pre, now) {
                return Some(pre);
            }
        }
        None
    }

    /// Runs every bank scheduler and the channel scheduler; returns the
    /// winning ready command, if any.
    fn schedule_normal<O: Observer>(&mut self, now: DramCycle, obs: &mut O) -> Option<Proposal> {
        let timing = *self.dram.timing();
        let geometry = *self.dram.geometry();
        let kind = self.config.scheduler;
        let inversion = self.inversion_cycles;
        let scan = self.config.scan;
        let ctx = SchedCtx {
            blacklist: self.bliss.as_ref().map(BlissState::blacklist),
            est: (kind == SchedulerKind::SdVftf).then_some(&self.slowdown),
            reg: self.regulate.as_ref(),
        };

        // Masked sweep: a bank outside `occupied ∪ open` has an empty
        // queue and a closed row, so the dense loop's body would compute
        // `None` for it and touch no state — skipping it is invisible.
        // The union is materialised into the reusable scratch (taken out
        // of `self` so the body below can borrow `self` mutably) and is
        // ascending, preserving the dense scan's first-proposer
        // tie-breaking at the channel scheduler.
        let mut scratch = std::mem::take(&mut self.sched_scratch);
        scratch.clear();
        scratch.extend(self.occupied.union_iter(self.dram.open_banks()));

        let mut best: Option<Proposal> = None;
        for &bank_idx in &scratch {
            // Bank-stall fault: a stalled bank proposes nothing. Safe to
            // skip before the cache probe — no command issues to the bank
            // while stalled, so its cached decision stays coherent.
            if let Some(f) = &self.fault {
                if now.as_u64() < f.stall_until[bank_idx] {
                    continue;
                }
            }
            let rank = RankId::new(bank_idx as u32 / geometry.banks);
            let bank = BankId::new(bank_idx as u32 % geometry.banks);
            let open_row = self.dram.open_row(rank, bank);

            let proposal = if self.queues[bank_idx].is_empty() {
                // Closed-row policy: once all pending accesses to the row
                // have completed, close it. Lowest priority: it never
                // beats real work at the channel scheduler. (The open-row
                // ablation leaves the row open until a conflicting
                // request arrives.) Not worth caching: it is a single
                // bank-ready probe.
                if self.config.row_policy == RowPolicy::Closed && open_row.is_some() {
                    let pre = Command::Precharge { rank, bank };
                    self.dram.bank_ready(&pre, now).then_some(Proposal {
                        cmd: pre,
                        prio: Priority {
                            ready: true,
                            tier: 0,
                            cas: false,
                            key: f64::INFINITY,
                            id: RequestId::new(u64::MAX),
                        },
                        source: None,
                    })
                } else {
                    None
                }
            } else {
                let ready = ReadyClasses::probe(&self.dram, rank, bank, open_row.is_some(), now);
                // FQ lock engagement (Section 3.3): the bank has been
                // active for at least the inversion bound `x`.
                let lock = if kind.uses_fq_bank_scheduler() {
                    match (self.dram.bank(rank, bank).active_for(now), inversion) {
                        (Some(active_for), Some(x)) if active_for >= x => Some(active_for),
                        _ => None,
                    }
                } else {
                    None
                };
                let cache = &self.bank_cache[bank_idx];
                if cache.valid && cache.ready == ready && cache.locked == lock.is_some() {
                    cache.proposal
                } else {
                    let propose = match scan {
                        ScanKind::Linear => propose_linear::<O>,
                        ScanKind::Indexed => propose_indexed::<O>,
                    };
                    let proposal = propose(
                        &mut self.queues[bank_idx],
                        ready,
                        lock,
                        ctx,
                        &self.vtms,
                        kind,
                        bank_idx,
                        rank,
                        bank,
                        open_row,
                        now,
                        &timing,
                        &mut self.lock_armed[bank_idx],
                        obs,
                    );
                    self.bank_cache[bank_idx] = BankCache {
                        valid: true,
                        ready,
                        locked: lock.is_some(),
                        proposal,
                    };
                    proposal
                }
            };
            // Channel scheduler: each bank presents at most one command;
            // only commands that are ready with respect to the channel
            // (bus occupancy, tCCD, tWTR, tRRD, refresh) can issue. A
            // bank whose presented command is channel-blocked issues
            // nothing this cycle — its lower-priority pending work stays
            // hidden behind it (the paper's chaining behaviour).
            if let Some(p) = proposal {
                if !self.dram.is_ready(&p.cmd, now) {
                    continue;
                }
                if best.is_none_or(|b| p.prio < b.prio) {
                    best = Some(p);
                }
            }
        }
        self.sched_scratch = scratch;
        best
    }

    /// Issues the chosen command and applies all side effects: DRAM state,
    /// VTMS registers, queue/buffer updates, and statistics.
    fn issue<O: Observer>(
        &mut self,
        p: Proposal,
        now: DramCycle,
        out: &mut Vec<Completion>,
        obs: &mut O,
    ) {
        let timing = *self.dram.timing();
        let data_done = self.dram.issue(&p.cmd, now);
        // Any command to a bank changes the state its scheduler decision
        // was derived from (open row, timing thresholds, or the queue
        // below): drop the memoized proposal. A refresh touches every
        // bank of its rank.
        match p.cmd {
            Command::Refresh { rank } => {
                let start = (rank.as_u32() * self.dram.geometry().banks) as usize;
                let n = self.dram.geometry().banks as usize;
                for cache in &mut self.bank_cache[start..start + n] {
                    cache.valid = false;
                }
            }
            _ => {
                let bank = p.cmd.bank().expect("non-refresh commands target a bank");
                let idx = self.global_bank(p.cmd.rank(), bank);
                self.bank_cache[idx].valid = false;
            }
        }
        if let Some(log) = &mut self.cmd_log {
            log.record(CommandRecord {
                cycle: now,
                cmd: p.cmd,
                thread: p
                    .source
                    .map(|(bank_idx, slot)| self.queues[bank_idx].get(slot as u32).req.thread),
            });
        }
        if O::ENABLED {
            let owner = p
                .source
                .map(|(bank_idx, slot)| self.queues[bank_idx].get(slot as u32).req);
            obs.on_event(&Event::CommandIssued {
                cycle: now.as_u64(),
                kind: p.cmd.kind(),
                bank: p
                    .cmd
                    .bank()
                    .map(|b| p.cmd.rank().as_u32() * self.dram.geometry().banks + b.as_u32()),
                thread: owner.map(|r| r.thread.as_u32()),
                id: owner.map(|r| r.id.as_u64()),
            });
        }
        let Some((bank_idx, slot)) = p.source else {
            return; // unowned command (idle close / refresh): no VTMS update
        };
        let slot = slot as u32;
        let pending = *self.queues[bank_idx].get(slot);
        let req = pending.req;
        if self.config.vft_binding == VftBinding::FirstReady {
            self.vtms[req.thread.as_usize()].apply_command(
                p.cmd.kind(),
                req.arrival,
                bank_idx,
                &timing,
            );
        }
        if !p.cmd.is_cas() {
            // RAS command: request stays queued for its CAS. `ras_issued`
            // is not a selection key, so the in-place update is safe on
            // the indexed queue.
            let e = self.queues[bank_idx].get_mut(slot);
            e.ras_issued = e.ras_issued.saturating_add(1);
            return;
        }
        // CAS issued: the request leaves the bank queue.
        self.queues[bank_idx].remove(slot);
        self.queued -= 1;
        if self.queues[bank_idx].is_empty() {
            self.occupied.remove(bank_idx);
        }
        // BLISS counts one bank service per CAS. A threshold crossing
        // flips a blacklist flag, which changes the tier bits every
        // memoized proposal was ranked under: drop all bank caches.
        if let Some(b) = self.bliss.as_mut() {
            if b.record_service(req.thread.as_u32()) {
                for cache in &mut self.bank_cache {
                    cache.valid = false;
                }
            }
        }
        // The regulator also counts one bank service per CAS. Exhausting a
        // bucket demotes the thread to the best-effort tier, which changes
        // the tier bits every memoized proposal was ranked under.
        if let Some(rg) = self.regulate.as_mut() {
            if rg.consume(req.thread.as_u32()) {
                for cache in &mut self.bank_cache {
                    cache.valid = false;
                }
            }
        }
        let ts = self.stats.thread_mut(req.thread);
        ts.bus_busy_cycles += timing.burst;
        match pending.ras_issued {
            0 => ts.row_hits += 1,
            1 => ts.row_closed += 1,
            _ => ts.row_conflicts += 1,
        }
        let finish = data_done.expect("CAS commands return a data completion time");
        let completion = Completion {
            id: req.id,
            thread: req.thread,
            kind: req.kind,
            arrival: req.arrival,
            finish,
        };
        match req.kind {
            RequestKind::Read => self.inflight_reads.push(completion),
            RequestKind::Write => {
                // Writes complete (from the requester's view) at issue: the
                // data has left the controller.
                let buf = &mut self.buffers[req.thread.as_usize()];
                buf.release_write_data();
                buf.complete(RequestKind::Write);
                self.wr_used -= 1;
                self.tx_used -= 1;
                let alone = timing.service_closed() + timing.burst;
                self.slowdown
                    .record(req.thread.as_u32(), alone, completion.latency());
                let ts = self.stats.thread_mut(req.thread);
                ts.writes_completed += 1;
                ts.alone_cycles_est += alone;
                ts.shared_cycles += completion.latency();
                self.note_progress(req.thread, now);
                if O::ENABLED {
                    obs.on_event(&Event::Completed {
                        cycle: now.as_u64(),
                        thread: req.thread.as_u32(),
                        id: req.id.as_u64(),
                        is_write: true,
                        latency: completion.latency(),
                        bytes: self.config.line_bytes,
                        alone_cycles: alone,
                    });
                }
                if let Some(rg) = self.regulate.as_mut() {
                    if let Some(bound) = rg.wcet_bound(req.thread.as_u32()) {
                        if completion.latency() > bound {
                            rg.note_violation();
                            if O::ENABLED {
                                obs.on_event(&Event::BoundExceeded {
                                    cycle: now.as_u64(),
                                    thread: req.thread.as_u32(),
                                    id: req.id.as_u64(),
                                    is_write: true,
                                    latency: completion.latency(),
                                    bound,
                                });
                            }
                        }
                    }
                }
                out.push(completion);
            }
        }
    }
}

fn put_pending(w: &mut SectionWriter, p: &Pending) {
    w.put_u64(p.req.id.as_u64());
    w.put_u32(p.req.thread.as_u32());
    w.put_bool(p.req.kind == RequestKind::Write);
    w.put_u32(p.req.addr.rank.as_u32());
    w.put_u32(p.req.addr.bank.as_u32());
    w.put_u32(p.req.addr.row.as_u32());
    w.put_u32(p.req.addr.col.as_u32());
    w.put_u64(p.req.arrival.as_u64());
    w.put_opt_u64(p.vft.map(f64::to_bits));
    w.put_u8(p.ras_issued);
}

fn get_pending(r: &mut SectionReader<'_>) -> Result<Pending, SnapshotError> {
    Ok(Pending {
        req: MemoryRequest {
            id: RequestId::new(r.get_u64()?),
            thread: ThreadId::new(r.get_u32()?),
            kind: if r.get_bool()? {
                RequestKind::Write
            } else {
                RequestKind::Read
            },
            addr: DramAddress {
                rank: RankId::new(r.get_u32()?),
                bank: BankId::new(r.get_u32()?),
                row: RowId::new(r.get_u32()?),
                col: ColId::new(r.get_u32()?),
            },
            arrival: DramCycle::new(r.get_u64()?),
        },
        vft: r.get_opt_u64()?.map(f64::from_bits),
        ras_issued: r.get_u8()?,
    })
}

pub(crate) fn put_completion(w: &mut SectionWriter, c: &Completion) {
    w.put_u64(c.id.as_u64());
    w.put_u32(c.thread.as_u32());
    w.put_bool(c.kind == RequestKind::Write);
    w.put_u64(c.arrival.as_u64());
    w.put_u64(c.finish.as_u64());
}

pub(crate) fn get_completion(r: &mut SectionReader<'_>) -> Result<Completion, SnapshotError> {
    Ok(Completion {
        id: RequestId::new(r.get_u64()?),
        thread: ThreadId::new(r.get_u32()?),
        kind: if r.get_bool()? {
            RequestKind::Write
        } else {
            RequestKind::Read
        },
        arrival: DramCycle::new(r.get_u64()?),
        finish: DramCycle::new(r.get_u64()?),
    })
}

/// What is serialized vs. rebuilt:
///
/// * **Serialized**: the DRAM device, every bank queue (requests plus their
///   bound VFTs and RAS progress, in admission order), buffer occupancy,
///   VTMS registers, in-flight reads, id allocation, statistics, the
///   command log, fault cursors and cached episode deadlines, watchdog
///   progress clocks plus the incremental `next_due` trigger, the
///   inversion-lock edge detectors, the step/skip counters, the slowdown
///   estimator (SD-VFTF's key scaling depends on it), the BLISS
///   blacklist (streak, flags, next clearing boundary), the real-time
///   regulator (token usage, next replenish boundary, violation count),
///   and the overload layer (hog flags, token usage, saturation level,
///   window NACK counter, both boundary clocks) — every bit of state a
///   resumed run's behaviour or reporting depends on.
/// * **Rebuilt**: configuration (validated via the envelope fingerprint and
///   per-field checks), the address map, fault episode *timelines* (a pure
///   function of plan and seed, already present in the identically-built
///   target), the `BankCache` memo — it is invalidated wholesale on
///   restore and repopulated by the first post-resume scheduling pass,
///   which recomputes exactly the decisions the cache would have replayed —
///   and the `BankQueue` index structures (row-group heaps, tournament
///   tree, unbound list): re-pushing the serialized admission-order entries
///   reconstructs them, and the exactness argument in [`crate::select`]
///   guarantees the rebuilt (renumbered) layout selects identically. The
///   queue byte format is therefore independent of [`ScanKind`].
impl Snapshot for MemoryController {
    fn save(&self, w: &mut SectionWriter) {
        self.dram.save(w);
        w.put_seq_len(self.queues.len());
        for q in &self.queues {
            w.put_seq_len(q.len());
            for (_, p) in q.iter() {
                put_pending(w, p);
            }
        }
        w.put_seq_len(self.buffers.len());
        for b in &self.buffers {
            b.save(w);
        }
        for v in &self.vtms {
            v.save(w);
        }
        w.put_seq_len(self.inflight_reads.len());
        for c in &self.inflight_reads {
            put_completion(w, c);
        }
        w.put_u64(self.next_id);
        w.put_u64(self.id_stride);
        self.stats.save(w);
        w.put_opt_u64(self.last_step.map(DramCycle::as_u64));
        w.put_bool(self.cmd_log.is_some());
        if let Some(log) = &self.cmd_log {
            log.save(w);
        }
        w.put_seq_len(self.lock_armed.len());
        for &armed in &self.lock_armed {
            w.put_bool(armed);
        }
        w.put_u64(self.stepped_cycles);
        w.put_u64(self.skipped_cycles);
        w.put_bool(self.skip_marker.is_some());
        if let Some((edge, next)) = self.skip_marker {
            w.put_u64(edge);
            w.put_u64(next);
        }
        w.put_bool(self.fault.is_some());
        if let Some(f) = &self.fault {
            f.injector.save(w);
            w.put_seq_len(f.stall_until.len());
            for &until in &f.stall_until {
                w.put_u64(until);
            }
            w.put_u64(f.pressure_until);
        }
        w.put_bool(self.watchdog.is_some());
        if let Some(wd) = &self.watchdog {
            w.put_u64(wd.threshold);
            w.put_seq_len(wd.last_progress.len());
            for (&progress, &tripped) in wd.last_progress.iter().zip(&wd.tripped) {
                w.put_u64(progress.as_u64());
                w.put_bool(tripped);
            }
            w.put_u64(wd.next_due);
        }
        self.slowdown.save(w);
        w.put_bool(self.bliss.is_some());
        if let Some(b) = &self.bliss {
            b.save(w);
        }
        w.put_bool(self.regulate.is_some());
        if let Some(rg) = &self.regulate {
            rg.save(w);
        }
        w.put_bool(self.overload.is_some());
        if let Some(ov) = &self.overload {
            ov.save(w);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        self.dram.restore(r)?;
        let nq = r.seq_len()?;
        if nq != self.queues.len() {
            return Err(r.malformed(format!(
                "snapshot has {nq} bank queues, controller has {}",
                self.queues.len()
            )));
        }
        let mut queued = 0usize;
        for q in &mut self.queues {
            let len = r.seq_len()?;
            q.clear();
            for _ in 0..len {
                q.push(get_pending(r)?);
            }
            queued += len;
        }
        let nb = r.seq_len()?;
        if nb != self.buffers.len() {
            return Err(r.malformed(format!(
                "snapshot has {nb} thread buffers, controller has {}",
                self.buffers.len()
            )));
        }
        for b in &mut self.buffers {
            b.restore(r)?;
        }
        for v in &mut self.vtms {
            v.restore(r)?;
        }
        let ni = r.seq_len()?;
        let mut inflight = Vec::with_capacity(ni);
        for _ in 0..ni {
            inflight.push(get_completion(r)?);
        }
        self.inflight_reads = inflight;
        self.next_id = r.get_u64()?;
        let stride = r.get_u64()?;
        if stride != self.id_stride {
            return Err(r.malformed(format!(
                "id stride {stride} != configured {}",
                self.id_stride
            )));
        }
        self.stats.restore(r)?;
        self.last_step = r.get_opt_u64()?.map(DramCycle::new);
        let has_log = r.get_bool()?;
        if has_log != self.cmd_log.is_some() {
            return Err(r.malformed(format!(
                "snapshot {} a command log, controller {}",
                if has_log { "carries" } else { "lacks" },
                if self.cmd_log.is_some() {
                    "has one"
                } else {
                    "has none"
                }
            )));
        }
        if let Some(log) = &mut self.cmd_log {
            log.restore(r)?;
        }
        let nl = r.seq_len()?;
        if nl != self.lock_armed.len() {
            return Err(r.malformed(format!(
                "snapshot has {nl} lock detectors, controller has {}",
                self.lock_armed.len()
            )));
        }
        for armed in &mut self.lock_armed {
            *armed = r.get_bool()?;
        }
        self.stepped_cycles = r.get_u64()?;
        self.skipped_cycles = r.get_u64()?;
        self.skip_marker = if r.get_bool()? {
            Some((r.get_u64()?, r.get_u64()?))
        } else {
            None
        };
        let has_fault = r.get_bool()?;
        if has_fault != self.fault.is_some() {
            return Err(r.malformed(
                "snapshot and controller disagree on fault-plan attachment".to_string(),
            ));
        }
        if let Some(f) = &mut self.fault {
            f.injector.restore(r)?;
            let ns = r.seq_len()?;
            if ns != f.stall_until.len() {
                return Err(r.malformed(format!(
                    "snapshot has {ns} bank-stall deadlines, controller has {}",
                    f.stall_until.len()
                )));
            }
            for until in &mut f.stall_until {
                *until = r.get_u64()?;
            }
            f.pressure_until = r.get_u64()?;
            f.drop_scratch.clear();
        }
        let has_watchdog = r.get_bool()?;
        if has_watchdog != self.watchdog.is_some() {
            return Err(
                r.malformed("snapshot and controller disagree on watchdog attachment".to_string())
            );
        }
        if let Some(wd) = &mut self.watchdog {
            let threshold = r.get_u64()?;
            if threshold != wd.threshold {
                return Err(r.malformed(format!(
                    "watchdog threshold {threshold} != configured {}",
                    wd.threshold
                )));
            }
            let nw = r.seq_len()?;
            if nw != wd.last_progress.len() {
                return Err(r.malformed(format!(
                    "snapshot has {nw} watchdog clocks, controller has {}",
                    wd.last_progress.len()
                )));
            }
            for t in 0..nw {
                wd.last_progress[t] = DramCycle::new(r.get_u64()?);
                wd.tripped[t] = r.get_bool()?;
            }
            wd.next_due = r.get_u64()?;
        }
        self.slowdown.restore(r)?;
        let has_bliss = r.get_bool()?;
        if has_bliss != self.bliss.is_some() {
            return Err(
                r.malformed("snapshot and controller disagree on the BLISS scheduler".to_string())
            );
        }
        if let Some(b) = &mut self.bliss {
            b.restore(r)?;
        }
        let has_regulate = r.get_bool()?;
        if has_regulate != self.regulate.is_some() {
            return Err(r.malformed(
                "snapshot and controller disagree on real-time regulation".to_string(),
            ));
        }
        if let Some(rg) = &mut self.regulate {
            rg.restore(r)?;
        }
        let has_overload = r.get_bool()?;
        if has_overload != self.overload.is_some() {
            return Err(
                r.malformed("snapshot and controller disagree on overload control".to_string())
            );
        }
        if let Some(ov) = &mut self.overload {
            ov.restore(r)?;
        }
        // Derived occupancy counters are recomputed from the restored
        // structures (cheaper to re-derive than to cross-validate), and
        // the scheduler memo is dropped: the first post-resume pass
        // recomputes every proposal from live state.
        self.queued = queued;
        self.occupied.clear();
        for (idx, q) in self.queues.iter().enumerate() {
            if !q.is_empty() {
                self.occupied.insert(idx);
            }
        }
        self.tx_used = self.buffers.iter().map(|b| b.transactions_used()).sum();
        self.wr_used = self.buffers.iter().map(|b| b.writes_used()).sum();
        for cache in &mut self.bank_cache {
            cache.valid = false;
        }
        Ok(())
    }
}

/// Derives the next SDRAM command a request needs, given its bank's state.
fn next_command(
    req: &MemoryRequest,
    open_row: Option<RowId>,
    rank: RankId,
    bank: BankId,
) -> Command {
    match open_row {
        Some(row) if row == req.addr.row => match req.kind {
            RequestKind::Read => Command::Read {
                rank,
                bank,
                col: req.addr.col,
            },
            RequestKind::Write => Command::Write {
                rank,
                bank,
                col: req.addr.col,
            },
        },
        Some(_) => Command::Precharge { rank, bank },
        None => Command::Activate {
            rank,
            bank,
            row: req.addr.row,
        },
    }
}

/// Classifies one pending request against the bank state: is its next
/// command's class ready this cycle, and is that command a CAS?
fn classify(p: &Pending, open_row: Option<RowId>, ready: ReadyClasses) -> (bool, bool) {
    match open_row {
        Some(row) if row == p.req.addr.row => match p.req.kind {
            RequestKind::Read => (ready.read(), true),
            RequestKind::Write => (ready.write(), true),
        },
        Some(_) => (ready.precharge(), false),
        None => (ready.activate(), false),
    }
}

/// Slowdown-aware scheduler context threaded through both scan paths (the
/// signatures must match for the fn-pointer dispatch in
/// `schedule_normal`).
///
/// * `blacklist` is `Some` exactly when BLISS is active: blacklisted
///   threads rank at [`Priority`] tier 1 (Linear-only — `McConfig`
///   rejects BLISS with `ScanKind::Indexed`, whose static-key heaps
///   cannot express a dynamic tier).
/// * `est` is `Some` exactly when SD-VFTF is active: VFT keys are
///   divided by the thread's current slowdown estimate at bind time, so
///   the most-slowed-down thread sorts first. Keys are static once bound
///   (the estimator only advances on completions), preserving the select
///   index invariants.
/// * `reg` is `Some` exactly when the real-time regulator is active:
///   threads that are not in budget (best-effort classes and exhausted
///   real-time buckets) rank at tier 1, so every in-budget real-time
///   request beats every best-effort request at both the bank and channel
///   schedulers (Linear-only, like BLISS).
#[derive(Clone, Copy)]
struct SchedCtx<'a> {
    blacklist: Option<&'a [bool]>,
    est: Option<&'a SlowdownEstimator>,
    reg: Option<&'a RegulatorState>,
}

impl SchedCtx<'_> {
    /// The priority tier of `thread`: 1 when BLISS-blacklisted or outside
    /// its real-time budget, else 0. BLISS and regulation are mutually
    /// exclusive (`McConfig::validate`), so at most one source demotes.
    fn tier(&self, thread: ThreadId) -> u8 {
        u8::from(
            self.blacklist.is_some_and(|bl| bl[thread.as_usize()])
                || self.reg.is_some_and(|r| !r.in_budget(thread.as_u32())),
        )
    }
}

/// The linear-scan bank scheduler (the retained reference path,
/// `ScanKind::Linear`; free function so the borrow of the queue is
/// disjoint from the device and VTMS borrows). The caller has already
/// probed bank-level readiness (`ready`) and FQ lock engagement (`lock`,
/// `Some(active_for)` when the inversion bound has tripped); the queue is
/// non-empty.
#[allow(clippy::too_many_arguments)]
fn propose_linear<O: Observer>(
    queue: &mut BankQueue,
    ready: ReadyClasses,
    lock: Option<u64>,
    ctx: SchedCtx<'_>,
    vtms: &[Vtms],
    kind: SchedulerKind,
    bank_idx: usize,
    rank: RankId,
    bank: BankId,
    open_row: Option<RowId>,
    now: DramCycle,
    timing: &TimingParams,
    lock_armed: &mut bool,
    obs: &mut O,
) -> Option<Proposal> {
    debug_assert!(!queue.is_empty());

    // FQ bank scheduling (Section 3.3): after the bank has been active for
    // `x` cycles, lock onto the earliest-virtual-finish-time request and
    // wait for its command to become ready — row hits may no longer chain
    // ahead of it.
    if kind.uses_fq_bank_scheduler() {
        if O::ENABLED && lock.is_none() {
            // The activation ended (or the bound is unreachable): re-arm
            // the inversion-trip edge detector for the next activation.
            *lock_armed = false;
        }
        if let Some(active_for) = lock {
            if O::ENABLED && !*lock_armed {
                *lock_armed = true;
                obs.on_event(&Event::InversionLock {
                    cycle: now.as_u64(),
                    bank: bank_idx as u32,
                    active_for,
                });
            }
            let mut best: Option<(u32, f64, RequestId)> = None;
            for i in 0..queue.order_len() {
                let Some(slot) = queue.order_slot(i) else {
                    continue;
                };
                let key = bind_vft(
                    queue.get_mut(slot),
                    ctx.est,
                    vtms,
                    bank_idx,
                    open_row,
                    timing,
                    now,
                    obs,
                );
                let id = queue.get(slot).req.id;
                match best {
                    Some((_, bk, bid)) if (bk, bid) <= (key, id) => {}
                    _ => best = Some((slot, key, id)),
                }
            }
            let (slot, key, id) = best.expect("non-empty queue");
            let winner = queue.get(slot).req.thread;
            let cmd = next_command(&queue.get(slot).req, open_row, rank, bank);
            if ready.allows(&cmd) {
                // The locked pick keeps its thread's tier at the channel
                // scheduler: a no-op for plain FQ-VFTF (no tier source is
                // active there), but essential under regulation — a locked
                // best-effort pick must not outrank a ready in-budget
                // real-time command from another bank, or the WCET
                // channel-interference term would be unsound.
                return Some(Proposal {
                    cmd,
                    prio: Priority {
                        ready: true,
                        tier: ctx.tier(winner),
                        cas: cmd.is_cas(),
                        key,
                        id,
                    },
                    source: Some((bank_idx, slot as usize)),
                });
            }
            return None; // wait: do not let lower-priority work chain
        }
    }

    // First-ready scheduling: consider every pending request (FCFS
    // ablation: only the oldest). Rank candidates by *bank-level*
    // readiness — the bank scheduler only tracks its own bank's timing.
    // The selected command is presented to the channel scheduler even if
    // the channel will reject it this cycle: lower-priority pending work
    // cannot bypass it (the first-ready chaining behaviour of Section
    // 3.3).
    //
    // Bank-level readiness depends only on the command *class* at this
    // bank (CAS read, CAS write, precharge, activate) — never on the row
    // or column — so one probe per class replaces a probe per pending
    // request and the scan reduces to a row-compare plus a key compare
    // per request: the channel arbitration step is O(banks), not
    // O(requests).
    let mut best: Option<(Priority, u32)> = None;
    let mut seen = 0usize;
    for i in 0..queue.order_len() {
        let Some(slot) = queue.order_slot(i) else {
            continue;
        };
        seen += 1;
        if seen > 1 && !kind.uses_first_ready() {
            break; // FCFS ablation: only the oldest request competes
        }
        let p = *queue.get(slot);
        let (class_ready, cas) = classify(&p, open_row, ready);
        if !class_ready {
            continue;
        }
        let key = if kind.uses_vftf() {
            bind_vft(
                queue.get_mut(slot),
                ctx.est,
                vtms,
                bank_idx,
                open_row,
                timing,
                now,
                obs,
            )
        } else {
            p.req.arrival.as_f64()
        };
        let prio = Priority {
            ready: true,
            tier: ctx.tier(p.req.thread),
            cas,
            key,
            id: p.req.id,
        };
        if best.as_ref().is_none_or(|(b, _)| prio < *b) {
            best = Some((prio, slot));
        }
    }
    best.map(|(prio, slot)| Proposal {
        cmd: next_command(&queue.get(slot).req, open_row, rank, bank),
        prio,
        source: Some((bank_idx, slot as usize)),
    })
}

/// The index-backed bank scheduler (`ScanKind::Indexed`): identical
/// selection to [`propose_linear`] (see the exactness argument in
/// [`crate::select`]) in O(log n).
///
/// Structure: first a *bind pre-pass* replays exactly the lazy VFT
/// bindings the linear scan would have performed this evaluation —
/// visiting still-unkeyed entries in admission order and binding those
/// that are ranking candidates (every entry under the FQ lock; the
/// class-ready ones otherwise) — so the `VftBound` event stream is
/// bit-identical. Then the winner is read from the index: the open-row
/// group's heap minimum for CAS hits (gated per kind), the tournament
/// minimum excluding that group for the precharge candidate, or the
/// global tournament minimum for a closed bank / the locked pick.
#[allow(clippy::too_many_arguments)]
fn propose_indexed<O: Observer>(
    queue: &mut BankQueue,
    ready: ReadyClasses,
    lock: Option<u64>,
    ctx: SchedCtx<'_>,
    vtms: &[Vtms],
    kind: SchedulerKind,
    bank_idx: usize,
    rank: RankId,
    bank: BankId,
    open_row: Option<RowId>,
    now: DramCycle,
    timing: &TimingParams,
    lock_armed: &mut bool,
    obs: &mut O,
) -> Option<Proposal> {
    debug_assert!(!queue.is_empty());

    if kind.uses_fq_bank_scheduler() {
        if O::ENABLED && lock.is_none() {
            *lock_armed = false;
        }
        if let Some(active_for) = lock {
            if O::ENABLED && !*lock_armed {
                *lock_armed = true;
                obs.on_event(&Event::InversionLock {
                    cycle: now.as_u64(),
                    bank: bank_idx as u32,
                    active_for,
                });
            }
        }
    }

    if kind.uses_vftf() {
        let locked = lock.is_some();
        queue.drain_unbound(|p| {
            // Under the FQ lock every entry is ranked (and therefore
            // bound); otherwise only class-ready candidates are — the
            // same set, in the same admission order, as the linear scan
            // binds lazily.
            if !locked && !classify(p, open_row, ready).0 {
                return None;
            }
            let state = match open_row {
                Some(r) => fqms_dram::bank::BankState::Open(r),
                None => fqms_dram::bank::BankState::Closed,
            };
            let svc = bank_service(state, p.req.addr.row, timing);
            let mut v = vtms[p.req.thread.as_usize()].virtual_finish_time(
                p.req.arrival,
                bank_idx,
                svc,
                timing.burst,
            );
            // SD-VFTF: the *scaled* key is what is stored and indexed —
            // identical to the linear path's `bind_vft`.
            if let Some(e) = ctx.est {
                v /= e.slowdown(p.req.thread.as_u32());
            }
            if O::ENABLED {
                obs.on_event(&Event::VftBound {
                    cycle: now.as_u64(),
                    thread: p.req.thread.as_u32(),
                    id: p.req.id.as_u64(),
                    vft: v,
                });
            }
            Some(v)
        });
    }

    if lock.is_some() {
        // Locked FQ mode: the earliest-(key, id) entry overall, ready or
        // not — the bank waits for it rather than letting other work
        // chain. All entries are keyed after the pre-pass.
        let (sel, slot) = queue.min_all().expect("non-empty, fully keyed queue");
        let p = queue.get(slot);
        let cmd = next_command(&p.req, open_row, rank, bank);
        if ready.allows(&cmd) {
            return Some(Proposal {
                cmd,
                prio: Priority {
                    ready: true,
                    tier: 0,
                    cas: cmd.is_cas(),
                    key: sel.key,
                    id: p.req.id,
                },
                source: Some((bank_idx, slot as usize)),
            });
        }
        return None;
    }

    if !kind.uses_first_ready() {
        // FCFS ablation: only the oldest request competes.
        let slot = queue.front_slot().expect("non-empty queue");
        let p = queue.get(slot);
        let (class_ready, cas) = classify(p, open_row, ready);
        if !class_ready {
            return None;
        }
        return Some(Proposal {
            cmd: next_command(&p.req, open_row, rank, bank),
            prio: Priority {
                ready: true,
                tier: 0,
                cas,
                key: p.req.arrival.as_f64(),
                id: p.req.id,
            },
            source: Some((bank_idx, slot as usize)),
        });
    }

    // First-ready selection from the index. A ready CAS hit beats every
    // RAS candidate (the `cas` priority level), so the classes resolve in
    // order without comparing across them.
    match open_row {
        Some(row) => {
            if let Some((sel, slot)) = queue.min_cas(row.as_u32(), ready.read(), ready.write()) {
                let p = queue.get(slot);
                let cmd = next_command(&p.req, open_row, rank, bank);
                debug_assert!(cmd.is_cas());
                return Some(Proposal {
                    cmd,
                    prio: Priority {
                        ready: true,
                        tier: 0,
                        cas: true,
                        key: sel.key,
                        id: p.req.id,
                    },
                    source: Some((bank_idx, slot as usize)),
                });
            }
            if !ready.precharge() {
                return None;
            }
            let (sel, slot) = queue.min_excluding_row(row.as_u32())?;
            let p = queue.get(slot);
            Some(Proposal {
                cmd: Command::Precharge { rank, bank },
                prio: Priority {
                    ready: true,
                    tier: 0,
                    cas: false,
                    key: sel.key,
                    id: p.req.id,
                },
                source: Some((bank_idx, slot as usize)),
            })
        }
        None => {
            if !ready.activate() {
                return None;
            }
            let (sel, slot) = queue.min_all()?;
            let p = queue.get(slot);
            Some(Proposal {
                cmd: Command::Activate {
                    rank,
                    bank,
                    row: p.req.addr.row,
                },
                prio: Priority {
                    ready: true,
                    tier: 0,
                    cas: false,
                    key: sel.key,
                    id: p.req.id,
                },
                source: Some((bank_idx, slot as usize)),
            })
        }
    }
}

/// Bank-level readiness of each command class at one bank this cycle,
/// packed into one byte (flat layout: the [`BankCache`] key compare and
/// the cache line it sits on both shrink to single-byte operations).
///
/// [`DramDevice::bank_ready`] is a function of the bank's timing state and
/// the command kind only (rows and columns never enter the inequality), so
/// the bank scheduler probes each class once per cycle instead of once per
/// pending request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReadyClasses(u8);

impl ReadyClasses {
    /// CAS read to the open row.
    const READ: u8 = 1 << 0;
    /// CAS write to the open row.
    const WRITE: u8 = 1 << 1;
    /// Precharge of the open row.
    const PRECHARGE: u8 = 1 << 2;
    /// Activate on a closed bank.
    const ACTIVATE: u8 = 1 << 3;
    /// No class ready (the empty cache key).
    const NONE: ReadyClasses = ReadyClasses(0);

    fn read(self) -> bool {
        self.0 & Self::READ != 0
    }

    fn write(self) -> bool {
        self.0 & Self::WRITE != 0
    }

    fn precharge(self) -> bool {
        self.0 & Self::PRECHARGE != 0
    }

    fn activate(self) -> bool {
        self.0 & Self::ACTIVATE != 0
    }

    /// Bank-level readiness of `cmd`, looked up by class — equivalent to
    /// `DramDevice::bank_ready` for commands derived from this bank's
    /// state (`next_command` with the same open row the probe saw).
    fn allows(&self, cmd: &Command) -> bool {
        match cmd {
            Command::Read { .. } => self.read(),
            Command::Write { .. } => self.write(),
            Command::Precharge { .. } => self.precharge(),
            Command::Activate { .. } => self.activate(),
            Command::Refresh { .. } => unreachable!("bank schedulers never propose refresh"),
        }
    }

    fn probe(dram: &DramDevice, rank: RankId, bank: BankId, open: bool, now: DramCycle) -> Self {
        let mut bits = 0u8;
        if open {
            let col = ColId::new(0);
            if dram.bank_ready(&Command::Read { rank, bank, col }, now) {
                bits |= Self::READ;
            }
            if dram.bank_ready(&Command::Write { rank, bank, col }, now) {
                bits |= Self::WRITE;
            }
            if dram.bank_ready(&Command::Precharge { rank, bank }, now) {
                bits |= Self::PRECHARGE;
            }
        } else {
            let act = Command::Activate {
                rank,
                bank,
                row: RowId::new(0),
            };
            if dram.bank_ready(&act, now) {
                bits |= Self::ACTIVATE;
            }
        }
        ReadyClasses(bits)
    }
}

/// Binds (or returns the cached) virtual finish time of a pending request,
/// classifying its bank service by the bank's state right now (Table 3).
/// Under SD-VFTF (`est` is `Some`) the bound key is the virtual finish
/// time divided by the thread's current slowdown estimate — scaled once,
/// at bind time, then static for the request's lifetime.
#[allow(clippy::too_many_arguments)]
fn bind_vft<O: Observer>(
    p: &mut Pending,
    est: Option<&SlowdownEstimator>,
    vtms: &[Vtms],
    bank_idx: usize,
    open_row: Option<RowId>,
    timing: &TimingParams,
    now: DramCycle,
    obs: &mut O,
) -> f64 {
    if let Some(v) = p.vft {
        return v;
    }
    let state = match open_row {
        Some(r) => fqms_dram::bank::BankState::Open(r),
        None => fqms_dram::bank::BankState::Closed,
    };
    let svc = bank_service(state, p.req.addr.row, timing);
    let mut v = vtms[p.req.thread.as_usize()].virtual_finish_time(
        p.req.arrival,
        bank_idx,
        svc,
        timing.burst,
    );
    if let Some(e) = est {
        v /= e.slowdown(p.req.thread.as_u32());
    }
    p.vft = Some(v);
    if O::ENABLED {
        obs.on_event(&Event::VftBound {
            cycle: now.as_u64(),
            thread: p.req.thread.as_u32(),
            id: p.req.id.as_u64(),
            vft: v,
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_dram::command::ColId as _ColId;

    fn mc(kind: SchedulerKind, threads: usize) -> MemoryController {
        MemoryController::new(
            McConfig::paper(threads, kind),
            Geometry::paper(),
            TimingParams::ddr2_800(),
        )
        .unwrap()
    }

    /// Physical address that decodes to the given (bank, row, col) on the
    /// paper geometry (single rank), accounting for the XOR fold.
    fn phys(bank: u32, row: u32, col: u32) -> u64 {
        let g = Geometry::paper();
        let map = AddressMap::new(g, 64);
        let addr = fqms_dram::command::DramAddress {
            rank: RankId::new(0),
            bank: BankId::new(bank),
            row: RowId::new(row),
            col: _ColId::new(col),
        };
        map.encode(addr)
    }

    fn run_until_idle(mc: &mut MemoryController, start: u64) -> (Vec<Completion>, u64) {
        let mut out = Vec::new();
        let mut c = start;
        while !mc.is_idle() {
            c += 1;
            out.extend(mc.step(DramCycle::new(c)));
            assert!(c < start + 1_000_000, "controller failed to drain");
        }
        (out, c)
    }

    #[test]
    fn single_read_completes_with_unloaded_latency() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 5, 3),
            DramCycle::new(0),
        )
        .unwrap();
        let (done, _) = run_until_idle(&mut m, 0);
        assert_eq!(done.len(), 1);
        // ACT@1, RD@6, data done @ 6+5+4 = 15 -> latency 15.
        assert_eq!(done[0].latency(), 15);
        assert_eq!(m.stats().thread(ThreadId::new(0)).reads_completed, 1);
    }

    #[test]
    fn row_hits_are_serviced_back_to_back() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        for col in 0..4 {
            m.try_submit(
                ThreadId::new(0),
                RequestKind::Read,
                phys(0, 5, col),
                DramCycle::new(0),
            )
            .unwrap();
        }
        let (done, _) = run_until_idle(&mut m, 0);
        assert_eq!(done.len(), 4);
        // One activate, four reads: 4 bursts * 4 cycles of bus.
        let (acts, _, reads, _, _) = m.dram().command_counts();
        assert_eq!(acts, 1);
        assert_eq!(reads, 4);
    }

    #[test]
    fn bank_conflict_needs_precharge_activate() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(0),
        )
        .unwrap();
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 2, 0),
            DramCycle::new(0),
        )
        .unwrap();
        let (done, _) = run_until_idle(&mut m, 0);
        assert_eq!(done.len(), 2);
        let (acts, pres, reads, _, _) = m.dram().command_counts();
        assert_eq!(acts, 2);
        assert_eq!(reads, 2);
        assert!(pres >= 1);
    }

    #[test]
    fn closed_row_policy_precharges_idle_banks() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(0),
        )
        .unwrap();
        let (_, end) = run_until_idle(&mut m, 0);
        // After the read completes, keep stepping: the idle-close precharge
        // should fire once tRAS/tRTP allow.
        let mut c = end;
        for _ in 0..40 {
            c += 1;
            m.step(DramCycle::new(c));
        }
        let (_, pres, _, _, _) = m.dram().command_counts();
        assert_eq!(pres, 1);
        assert_eq!(m.dram().open_row(RankId::new(0), BankId::new(0)), None);
    }

    #[test]
    fn writes_complete_at_issue_and_free_buffers() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Write,
            phys(2, 7, 0),
            DramCycle::new(0),
        )
        .unwrap();
        let (done, _) = run_until_idle(&mut m, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, RequestKind::Write);
        assert_eq!(m.stats().thread(ThreadId::new(0)).writes_completed, 1);
        assert!(m.can_accept(ThreadId::new(0), RequestKind::Write));
    }

    #[test]
    fn nack_when_transaction_buffer_full() {
        let mut m = mc(SchedulerKind::FrFcfs, 2);
        // Fill thread 0's 16 transaction entries without stepping.
        for i in 0..16 {
            m.try_submit(
                ThreadId::new(0),
                RequestKind::Read,
                phys(i % 8, 1, 0),
                DramCycle::new(0),
            )
            .unwrap();
        }
        let err = m
            .try_submit(
                ThreadId::new(0),
                RequestKind::Read,
                phys(0, 2, 0),
                DramCycle::new(0),
            )
            .unwrap_err();
        assert_eq!(err, Nack::TransactionBufferFull);
        assert_eq!(m.stats().thread(ThreadId::new(0)).nacks, 1);
        // Independent partitions: thread 1 is unaffected.
        assert!(m.can_accept(ThreadId::new(1), RequestKind::Read));
    }

    #[test]
    fn fr_fcfs_prefers_row_hit_over_older_conflict() {
        let mut m = mc(SchedulerKind::FrFcfs, 2);
        // Open row 1 in bank 0 via thread 0's request.
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(0),
        )
        .unwrap();
        let mut c = 0u64;
        // Step until the activate + read have issued (row open, read done).
        while m.dram().open_row(RankId::new(0), BankId::new(0)).is_none() {
            c += 1;
            m.step(DramCycle::new(c));
        }
        // Now: an older request from thread 1 to a *different* row, and a
        // younger row-hit from thread 0.
        m.try_submit(
            ThreadId::new(1),
            RequestKind::Read,
            phys(0, 9, 0),
            DramCycle::new(c),
        )
        .unwrap();
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 5),
            DramCycle::new(c),
        )
        .unwrap();
        let (done, _) = run_until_idle(&mut m, c);
        // FR-FCFS: the ready row-hit CAS (thread 0) beats the older
        // conflict (thread 1) whose precharge is also ready but is RAS.
        let reads: Vec<_> = done
            .iter()
            .filter(|d| d.kind == RequestKind::Read)
            .collect();
        let t0_finish = reads
            .iter()
            .find(|d| d.thread == ThreadId::new(0))
            .unwrap()
            .finish;
        let t1_finish = reads
            .iter()
            .find(|d| d.thread == ThreadId::new(1))
            .unwrap()
            .finish;
        assert!(t0_finish < t1_finish, "row hit should finish first");
    }

    #[test]
    fn vtms_registers_advance_on_service() {
        let mut m = mc(SchedulerKind::FqVftf, 2);
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(0),
        )
        .unwrap();
        run_until_idle(&mut m, 0);
        let v = m.vtms(ThreadId::new(0));
        assert!(v.bank_reg(0) > 0.0);
        assert!(v.channel_reg() > 0.0);
        // Thread 1 consumed nothing.
        assert_eq!(m.vtms(ThreadId::new(1)).channel_reg(), 0.0);
    }

    #[test]
    fn refresh_eventually_issues_and_unblocks() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        let mut c = 0u64;
        // Idle until past the refresh deadline.
        for _ in 0..280_100 {
            c += 1;
            m.step(DramCycle::new(c));
        }
        let (.., refreshes) = m.dram().command_counts();
        assert_eq!(refreshes, 1);
        // Traffic still works afterwards.
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(c),
        )
        .unwrap();
        let (done, _) = run_until_idle(&mut m, c);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn deferred_refresh_postpones_under_load() {
        // Keep a stream of work pending across the refresh deadline: the
        // strict controller refreshes at the deadline; the deferred one
        // postpones while work is pending.
        let run = |policy| {
            let mut cfg = McConfig::paper(1, SchedulerKind::FrFcfs);
            cfg.refresh_policy = policy;
            let mut m =
                MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
            let mut next_row = 0u32;
            // Step just past the refresh deadline with the queue kept busy.
            for c in 1..=280_400u64 {
                let now = DramCycle::new(c);
                if m.pending_requests() < 8 {
                    next_row += 1;
                    let _ = m.try_submit(
                        ThreadId::new(0),
                        RequestKind::Read,
                        phys(next_row % 8, 1 + next_row / 8, 0),
                        now,
                    );
                }
                m.step(now);
            }
            m.dram().command_counts().4
        };
        let strict = run(crate::policy::RefreshPolicy::Strict);
        let deferred = run(crate::policy::RefreshPolicy::Deferred { max_postponed: 8 });
        assert_eq!(strict, 1, "strict must refresh at the deadline");
        assert_eq!(deferred, 0, "deferred must postpone while work is pending");
    }

    #[test]
    fn deferred_refresh_catches_up_when_idle_or_capped() {
        let mut cfg = McConfig::paper(1, SchedulerKind::FrFcfs);
        cfg.refresh_policy = crate::policy::RefreshPolicy::Deferred { max_postponed: 8 };
        let mut m =
            MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
        // Idle system: the deferred policy refreshes as soon as it is due
        // (nothing pending to defer for).
        for c in 1..=281_000u64 {
            m.step(DramCycle::new(c));
        }
        assert_eq!(m.dram().command_counts().4, 1);
    }

    #[test]
    fn shared_buffer_pool_lets_one_thread_occupy_everything() {
        let mut cfg = McConfig::paper(2, SchedulerKind::FqVftf);
        cfg.buffer_sharing = crate::policy::BufferSharing::Shared;
        let mut m =
            MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        // Thread 0 fills the whole 32-entry pooled transaction buffer
        // (impossible under the paper's 16-entry partitions).
        for i in 0..32u32 {
            m.try_submit(
                t0,
                RequestKind::Read,
                phys(i % 8, 1 + i, 0),
                DramCycle::new(0),
            )
            .unwrap();
        }
        // Thread 1 is now NACKed at admission despite consuming nothing.
        assert!(!m.can_accept(t1, RequestKind::Read));
        assert!(m
            .try_submit(t1, RequestKind::Read, phys(0, 99, 0), DramCycle::new(0))
            .is_err());
        // Under partitioning the same traffic leaves thread 1 untouched.
        let mut part = mc(SchedulerKind::FqVftf, 2);
        for i in 0..16u32 {
            part.try_submit(
                t0,
                RequestKind::Read,
                phys(i % 8, 1 + i, 0),
                DramCycle::new(0),
            )
            .unwrap();
        }
        assert!(part.can_accept(t1, RequestKind::Read));
    }

    #[test]
    fn step_rejects_non_monotonic_cycles() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        m.step(DramCycle::new(5));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.step(DramCycle::new(5));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn open_row_policy_keeps_idle_rows_open() {
        let mut cfg = McConfig::paper(1, SchedulerKind::FrFcfs);
        cfg.row_policy = crate::policy::RowPolicy::Open;
        let mut m =
            MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(0),
        )
        .unwrap();
        let (_, end) = run_until_idle(&mut m, 0);
        let mut c = end;
        for _ in 0..60 {
            c += 1;
            m.step(DramCycle::new(c));
        }
        // Unlike the closed policy, the row stays open with no pending work.
        assert_eq!(
            m.dram().open_row(RankId::new(0), BankId::new(0)),
            Some(RowId::new(1))
        );
        let (_, pres, ..) = m.dram().command_counts();
        assert_eq!(pres, 0);
    }

    #[test]
    fn at_arrival_binding_charges_vtms_at_submit() {
        let mut cfg = McConfig::paper(2, SchedulerKind::FqVftf);
        cfg.vft_binding = crate::policy::VftBinding::AtArrival;
        let mut m =
            MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(10),
        )
        .unwrap();
        // Registers move immediately: bank by (tRCD+tCL)/phi, channel by BL/2.
        let v = m.vtms(ThreadId::new(0));
        let bank0 = m.address_map().decode(phys(0, 1, 0)).bank.as_usize();
        assert_eq!(v.bank_reg(bank0), 10.0 + 10.0 / 0.5);
        assert_eq!(v.channel_reg(), 30.0 + 4.0 / 0.5);
        let bank_before = v.bank_reg(bank0);
        let chan_before = v.channel_reg();
        // Servicing the request must NOT charge the registers again.
        run_until_idle(&mut m, 10);
        let v = m.vtms(ThreadId::new(0));
        assert_eq!(v.bank_reg(bank0), bank_before);
        assert_eq!(v.channel_reg(), chan_before);
    }

    #[test]
    fn at_arrival_binding_emits_arrival_before_vft_bound() {
        // event.rs contract: within a cycle, admission events precede
        // scheduling events — replay consumers (differential.rs) key the
        // VFT onto a request first seen via its Arrival.
        let mut cfg = McConfig::paper(2, SchedulerKind::FqVftf);
        cfg.vft_binding = crate::policy::VftBinding::AtArrival;
        let mut m =
            MemoryController::new(cfg, Geometry::paper(), TimingParams::ddr2_800()).unwrap();
        let mut obs = fqms_obs::TracingObserver::new(16, 2);
        m.try_submit_observed(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(10),
            &mut obs,
        )
        .unwrap();
        let events: Vec<Event> = obs.events().iter().copied().collect();
        let arrival = events
            .iter()
            .position(|e| matches!(e, Event::Arrival { .. }))
            .expect("admission emits Arrival");
        let bound = events
            .iter()
            .position(|e| matches!(e, Event::VftBound { .. }))
            .expect("at-arrival binding emits VftBound");
        assert!(arrival < bound, "Arrival must precede VftBound: {events:?}");
    }

    #[test]
    fn channel_scheduler_prefers_cas_over_ras_across_banks() {
        // Thread 0 has a ready row hit in bank 0; thread 1 has a ready
        // activate in bank 1 with an *earlier* arrival. The CAS must win
        // the channel arbitration (priority level 2 beats level 3).
        let mut m = mc(SchedulerKind::FrFcfs, 2);
        // Open row 1 in bank 0.
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(0),
        )
        .unwrap();
        let mut c = 0u64;
        while m.dram().open_row(RankId::new(0), BankId::new(0)).is_none() || !m.is_idle() {
            c += 1;
            m.step(DramCycle::new(c));
            if c > 100 {
                break;
            }
        }
        // Older request: thread 1 activate in bank 1. Newer: thread 0 row
        // hit in bank 0.
        m.try_submit(
            ThreadId::new(1),
            RequestKind::Read,
            phys(1, 2, 0),
            DramCycle::new(c),
        )
        .unwrap();
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 3),
            DramCycle::new(c),
        )
        .unwrap();
        // The next issued command must be the read (CAS), not the activate.
        let reads_before = m.dram().command_counts().2;
        let acts_before = m.dram().command_counts().0;
        loop {
            c += 1;
            m.step(DramCycle::new(c));
            let (acts, _, reads, _, _) = m.dram().command_counts();
            if reads > reads_before {
                break; // CAS issued first: correct
            }
            assert_eq!(acts, acts_before, "activate must not beat the ready CAS");
        }
        run_until_idle(&mut m, c);
    }

    #[test]
    fn vft_is_stable_once_bound() {
        // Under FR-VFTF, a request's priority must not drift while it
        // waits (stable EDF ordering). We observe this indirectly: two
        // same-thread requests to one bank complete in VFT (arrival) order
        // even when the younger becomes ready first... which for one
        // thread and one row cannot invert; so instead check the cached
        // VFT does not change the completion order across a conflicting
        // interleaving.
        let mut m = mc(SchedulerKind::FrVftf, 2);
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        m.try_submit(t0, RequestKind::Read, phys(2, 1, 0), DramCycle::new(0))
            .unwrap();
        m.try_submit(t1, RequestKind::Read, phys(2, 2, 0), DramCycle::new(0))
            .unwrap();
        m.try_submit(t0, RequestKind::Read, phys(2, 1, 1), DramCycle::new(0))
            .unwrap();
        let (done, _) = run_until_idle(&mut m, 0);
        assert_eq!(done.len(), 3);
        // All three complete exactly once (conservation under VFTF).
        let mut ids: Vec<u64> = done.iter().map(|d| d.id.as_u64()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn command_log_captures_issue_sequence() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        m.enable_command_log(16);
        m.try_submit(
            ThreadId::new(0),
            RequestKind::Read,
            phys(0, 1, 0),
            DramCycle::new(0),
        )
        .unwrap();
        run_until_idle(&mut m, 0);
        let log = m.command_log().unwrap();
        let kinds: Vec<_> = log.iter().map(|r| r.cmd.kind()).collect();
        use fqms_dram::command::CommandKind::*;
        // ACT then RD for the request; the closed-row precharge follows
        // later (possibly beyond this drain window).
        assert!(kinds.starts_with(&[Activate, Read]), "got {kinds:?}");
        assert_eq!(log.iter().next().unwrap().thread, Some(ThreadId::new(0)));
    }

    #[test]
    fn row_locality_classification_counts() {
        let mut m = mc(SchedulerKind::FrFcfs, 1);
        let t0 = ThreadId::new(0);
        // 1) closed-bank access (ACT + RD) -> row_closed.
        m.try_submit(t0, RequestKind::Read, phys(0, 1, 0), DramCycle::new(0))
            .unwrap();
        // 2) row hit (same row, queued behind) -> row_hits.
        m.try_submit(t0, RequestKind::Read, phys(0, 1, 1), DramCycle::new(0))
            .unwrap();
        // 3) conflict (different row, same bank) -> row_conflicts.
        m.try_submit(t0, RequestKind::Read, phys(0, 2, 0), DramCycle::new(0))
            .unwrap();
        run_until_idle(&mut m, 0);
        let s = m.stats().thread(t0);
        assert_eq!(s.row_closed, 1, "{s:?}");
        assert_eq!(s.row_hits, 1, "{s:?}");
        assert_eq!(s.row_conflicts, 1, "{s:?}");
        assert!((s.row_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn per_thread_bus_accounting_sums_to_device_total() {
        let mut m = mc(SchedulerKind::FrFcfs, 2);
        for i in 0..6 {
            m.try_submit(
                ThreadId::new(i % 2),
                RequestKind::Read,
                phys(i % 8, 1 + i, 0),
                DramCycle::new(0),
            )
            .unwrap();
        }
        run_until_idle(&mut m, 0);
        let per_thread: u64 = m.stats().iter().map(|(_, s)| s.bus_busy_cycles).sum();
        assert_eq!(per_thread, m.dram().bus_busy_cycles());
    }
}
