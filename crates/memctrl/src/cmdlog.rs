//! Bounded command-trace logging.
//!
//! For debugging scheduler behaviour and for fine-grained analyses (e.g.
//! inspecting a priority-inversion episode command by command), the
//! controller can record every issued SDRAM command with its cycle and
//! owning thread into a bounded ring. Disabled by default — logging is
//! opt-in and the ring never grows beyond its capacity.

use crate::request::ThreadId;
use fqms_dram::command::Command;
use fqms_sim::clock::DramCycle;
use std::collections::VecDeque;

/// One issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Issue cycle.
    pub cycle: DramCycle,
    /// The SDRAM command.
    pub cmd: Command,
    /// Owning thread; `None` for unowned commands (closed-row idle
    /// precharges, refresh machinery).
    pub thread: Option<ThreadId>,
}

impl std::fmt::Display for CommandRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.thread {
            Some(t) => write!(f, "{}: {} ({t})", self.cycle, self.cmd),
            None => write!(f, "{}: {} (ctrl)", self.cycle, self.cmd),
        }
    }
}

/// A bounded ring of issued commands.
///
/// # Example
///
/// ```
/// use fqms_memctrl::cmdlog::{CommandLog, CommandRecord};
/// use fqms_dram::command::{Command, RankId, BankId, RowId};
/// use fqms_sim::clock::DramCycle;
///
/// let mut log = CommandLog::new(2);
/// for c in 0..3u64 {
///     log.record(CommandRecord {
///         cycle: DramCycle::new(c),
///         cmd: Command::Precharge { rank: RankId::new(0), bank: BankId::new(0) },
///         thread: None,
///     });
/// }
/// assert_eq!(log.len(), 2); // oldest entry evicted
/// assert_eq!(log.iter().next().unwrap().cycle, DramCycle::new(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommandLog {
    ring: VecDeque<CommandRecord>,
    capacity: usize,
    total: u64,
}

impl CommandLog {
    /// Creates a log keeping the most recent `capacity` commands.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be positive");
        CommandLog {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn record(&mut self, rec: CommandRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
        self.total += 1;
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total commands ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Iterates oldest-to-newest over the retained records.
    pub fn iter(&self) -> impl Iterator<Item = &CommandRecord> {
        self.ring.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_dram::command::{BankId, RankId};

    fn rec(c: u64) -> CommandRecord {
        CommandRecord {
            cycle: DramCycle::new(c),
            cmd: Command::Precharge {
                rank: RankId::new(0),
                bank: BankId::new(1),
            },
            thread: Some(ThreadId::new(2)),
        }
    }

    #[test]
    fn keeps_most_recent_entries() {
        let mut log = CommandLog::new(3);
        for c in 0..10 {
            log.record(rec(c));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 10);
        let cycles: Vec<u64> = log.iter().map(|r| r.cycle.as_u64()).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn display_includes_owner() {
        let r = rec(5);
        assert_eq!(r.to_string(), "5 dram-cycles: PRE r0b1 (T2)");
        let anon = CommandRecord {
            thread: None,
            ..rec(6)
        };
        assert!(anon.to_string().ends_with("(ctrl)"));
    }

    #[test]
    fn empty_behaviour() {
        let log = CommandLog::new(4);
        assert!(log.is_empty());
        assert_eq!(log.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = CommandLog::new(0);
    }
}
