//! Bounded command-trace logging.
//!
//! For debugging scheduler behaviour and for fine-grained analyses (e.g.
//! inspecting a priority-inversion episode command by command), the
//! controller can record every issued SDRAM command with its cycle and
//! owning thread into a bounded ring. Disabled by default — logging is
//! opt-in and the ring never grows beyond its capacity.

use crate::request::ThreadId;
use fqms_dram::command::{BankId, ColId, Command, RankId, RowId};
use fqms_sim::clock::DramCycle;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};
use std::collections::VecDeque;

/// One issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Issue cycle.
    pub cycle: DramCycle,
    /// The SDRAM command.
    pub cmd: Command,
    /// Owning thread; `None` for unowned commands (closed-row idle
    /// precharges, refresh machinery).
    pub thread: Option<ThreadId>,
}

impl std::fmt::Display for CommandRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.thread {
            Some(t) => write!(f, "{}: {} ({t})", self.cycle, self.cmd),
            None => write!(f, "{}: {} (ctrl)", self.cycle, self.cmd),
        }
    }
}

/// A bounded ring of issued commands.
///
/// # Example
///
/// ```
/// use fqms_memctrl::cmdlog::{CommandLog, CommandRecord};
/// use fqms_dram::command::{Command, RankId, BankId, RowId};
/// use fqms_sim::clock::DramCycle;
///
/// let mut log = CommandLog::new(2);
/// for c in 0..3u64 {
///     log.record(CommandRecord {
///         cycle: DramCycle::new(c),
///         cmd: Command::Precharge { rank: RankId::new(0), bank: BankId::new(0) },
///         thread: None,
///     });
/// }
/// assert_eq!(log.len(), 2); // oldest entry evicted
/// assert_eq!(log.iter().next().unwrap().cycle, DramCycle::new(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommandLog {
    ring: VecDeque<CommandRecord>,
    capacity: usize,
    total: u64,
}

impl CommandLog {
    /// Creates a log keeping the most recent `capacity` commands.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be positive");
        CommandLog {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Appends a record, evicting the oldest if full.
    pub fn record(&mut self, rec: CommandRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
        self.total += 1;
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total commands ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Iterates oldest-to-newest over the retained records.
    pub fn iter(&self) -> impl Iterator<Item = &CommandRecord> {
        self.ring.iter()
    }
}

fn put_command(w: &mut SectionWriter, cmd: &Command) {
    match *cmd {
        Command::Activate { rank, bank, row } => {
            w.put_u8(0);
            w.put_u32(rank.as_u32());
            w.put_u32(bank.as_u32());
            w.put_u32(row.as_u32());
        }
        Command::Precharge { rank, bank } => {
            w.put_u8(1);
            w.put_u32(rank.as_u32());
            w.put_u32(bank.as_u32());
        }
        Command::Read { rank, bank, col } => {
            w.put_u8(2);
            w.put_u32(rank.as_u32());
            w.put_u32(bank.as_u32());
            w.put_u32(col.as_u32());
        }
        Command::Write { rank, bank, col } => {
            w.put_u8(3);
            w.put_u32(rank.as_u32());
            w.put_u32(bank.as_u32());
            w.put_u32(col.as_u32());
        }
        Command::Refresh { rank } => {
            w.put_u8(4);
            w.put_u32(rank.as_u32());
        }
    }
}

fn get_command(r: &mut SectionReader<'_>) -> Result<Command, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => Command::Activate {
            rank: RankId::new(r.get_u32()?),
            bank: BankId::new(r.get_u32()?),
            row: RowId::new(r.get_u32()?),
        },
        1 => Command::Precharge {
            rank: RankId::new(r.get_u32()?),
            bank: BankId::new(r.get_u32()?),
        },
        2 => Command::Read {
            rank: RankId::new(r.get_u32()?),
            bank: BankId::new(r.get_u32()?),
            col: ColId::new(r.get_u32()?),
        },
        3 => Command::Write {
            rank: RankId::new(r.get_u32()?),
            bank: BankId::new(r.get_u32()?),
            col: ColId::new(r.get_u32()?),
        },
        4 => Command::Refresh {
            rank: RankId::new(r.get_u32()?),
        },
        tag => return Err(r.malformed(format!("unknown command tag {tag}"))),
    })
}

/// The log capacity is construction-time configuration and must match the
/// restore target; the retained records and lifetime total are state.
impl Snapshot for CommandLog {
    fn save(&self, w: &mut SectionWriter) {
        w.put_usize(self.capacity);
        w.put_u64(self.total);
        w.put_seq_len(self.ring.len());
        for rec in &self.ring {
            w.put_u64(rec.cycle.as_u64());
            put_command(w, &rec.cmd);
            w.put_opt_u64(rec.thread.map(|t| u64::from(t.as_u32())));
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let capacity = r.get_usize()?;
        if capacity != self.capacity {
            return Err(r.malformed(format!(
                "command log capacity {capacity} != {}",
                self.capacity
            )));
        }
        let total = r.get_u64()?;
        let n = r.seq_len()?;
        if n > capacity || (n as u64) > total {
            return Err(r.malformed(format!(
                "{n} retained records inconsistent with capacity {capacity} / total {total}"
            )));
        }
        let mut ring = VecDeque::with_capacity(n);
        for _ in 0..n {
            let cycle = DramCycle::new(r.get_u64()?);
            let cmd = get_command(r)?;
            let thread = match r.get_opt_u64()? {
                None => None,
                Some(t) => {
                    Some(ThreadId::new(u32::try_from(t).map_err(|_| {
                        r.malformed(format!("thread id {t} out of range"))
                    })?))
                }
            };
            ring.push_back(CommandRecord { cycle, cmd, thread });
        }
        self.ring = ring;
        self.total = total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqms_dram::command::{BankId, RankId};

    fn rec(c: u64) -> CommandRecord {
        CommandRecord {
            cycle: DramCycle::new(c),
            cmd: Command::Precharge {
                rank: RankId::new(0),
                bank: BankId::new(1),
            },
            thread: Some(ThreadId::new(2)),
        }
    }

    #[test]
    fn keeps_most_recent_entries() {
        let mut log = CommandLog::new(3);
        for c in 0..10 {
            log.record(rec(c));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 10);
        let cycles: Vec<u64> = log.iter().map(|r| r.cycle.as_u64()).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn display_includes_owner() {
        let r = rec(5);
        assert_eq!(r.to_string(), "5 dram-cycles: PRE r0b1 (T2)");
        let anon = CommandRecord {
            thread: None,
            ..rec(6)
        };
        assert!(anon.to_string().ends_with("(ctrl)"));
    }

    #[test]
    fn empty_behaviour() {
        let log = CommandLog::new(4);
        assert!(log.is_empty());
        assert_eq!(log.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = CommandLog::new(0);
    }
}
