//! Overload-resilient admission control (ISSUE 10): slowdown-feedback
//! throttling and tiered load shedding *in front of* the scheduler.
//!
//! The paper's fairness guarantees only cover requests the controller
//! admits; under a heavy streaming flood the admission path itself
//! becomes the contended resource. Following the BLISS insight (feedback
//! is cheapest *before* selection) and the heterogeneous-systems
//! scheduler (bandwidth-hungry agents must be throttled at admission),
//! [`OverloadState`] is a deterministic state machine with two
//! independent mechanisms:
//!
//! * **Admission throttle** — at every replenish boundary, threads are
//!   reclassified from the online [`SlowdownEstimator`]: a thread whose
//!   slowdown sits `margin` times below the worst in the system is a
//!   bandwidth hog (it runs near its alone speed precisely because it
//!   crowds everyone else out) and is token-gated to `tokens` admissions
//!   per `period`, refused with [`Nack::Throttled`] once exhausted.
//! * **Tiered load shedding** — a saturation detector with hysteresis
//!   over transaction-buffer occupancy and buffer-full NACK rate walks a
//!   ladder `Normal → Degraded → Shedding` one level per window
//!   boundary. `Degraded` sheds best-effort writebacks, `Shedding` sheds
//!   all best-effort requests ([`Nack::Shed`]); protected threads are
//!   untouched at every level. Only buffer-full NACKs feed the detector
//!   — its own refusals never do, so shedding cannot sustain itself
//!   (anti-windup).
//!
//! Shaped like [`crate::regulate::RegulatorState`] for the same reasons:
//! knobs fixed at construction, boundary clocks advanced by lazy jumps,
//! `next_replenish` / `next_window` fed into the controller's
//! `next_event_cycle` so the event-driven fast path never skips a
//! boundary (classification reads the estimator *at the boundary cycle*
//! — skipping one would let an interleaved completion change the hog
//! set), and a presence-gated snapshot section validated against the
//! configured knobs on restore so kill-and-resume is bit-identical.

use crate::buffers::{Nack, ShedClass};
use crate::config::{OverloadConfig, RegulationConfig};
use crate::slowdown::SlowdownEstimator;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// Saturation level of the tiered load shedder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SaturationLevel {
    /// No shedding: every class admitted.
    Normal,
    /// Best-effort writebacks are shed.
    Degraded,
    /// All best-effort requests are shed.
    Shedding,
}

impl SaturationLevel {
    /// Stable wire encoding for snapshots and observability events.
    pub fn as_u8(self) -> u8 {
        match self {
            SaturationLevel::Normal => 0,
            SaturationLevel::Degraded => 1,
            SaturationLevel::Shedding => 2,
        }
    }

    /// Decodes the wire encoding; `None` for out-of-range values.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(SaturationLevel::Normal),
            1 => Some(SaturationLevel::Degraded),
            2 => Some(SaturationLevel::Shedding),
            _ => None,
        }
    }

    fn escalated(self) -> Self {
        match self {
            SaturationLevel::Normal => SaturationLevel::Degraded,
            _ => SaturationLevel::Shedding,
        }
    }

    fn de_escalated(self) -> Self {
        match self {
            SaturationLevel::Shedding => SaturationLevel::Degraded,
            _ => SaturationLevel::Normal,
        }
    }
}

/// Per-controller overload-control state: hog classification + token
/// buckets for the admission throttle, and the hysteresis ladder for the
/// tiered shedder.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadState {
    /// Throttle replenish period in DRAM cycles; 0 = throttle disabled
    /// (knob).
    period: u64,
    /// Admissions per period for a hog-classified thread (knob).
    tokens: u64,
    /// Hog classification ratio (knob).
    margin: f64,
    /// Shed detector window in DRAM cycles; 0 = shedding disabled (knob).
    window: u64,
    /// Occupancy / NACK hysteresis thresholds (knobs).
    occ_enter: usize,
    occ_exit: usize,
    nack_enter: u64,
    nack_exit: u64,
    /// Threads never throttled or shed (knob; regulation real-time
    /// classes are folded in at construction).
    protected: Vec<bool>,
    /// Hog flags, reclassified at each replenish boundary.
    hog: Vec<bool>,
    /// Tokens consumed this period (tracked for hogs only).
    used: Vec<u64>,
    /// Cycle at which tokens replenish and hogs are reclassified.
    next_replenish: u64,
    /// Current saturation level of the shedder.
    level: SaturationLevel,
    /// Buffer-full NACKs observed in the current detector window.
    window_nacks: u64,
    /// Cycle at which the detector evaluates next.
    next_window: u64,
    /// Total throttle refusals issued (monotone).
    throttled: u64,
    /// Total requests shed (monotone).
    shed: u64,
}

impl OverloadState {
    /// Builds the overload layer from a validated [`OverloadConfig`],
    /// folding in implicit protection for every real-time regulation
    /// class.
    pub fn new(config: &OverloadConfig, regulation: Option<&RegulationConfig>) -> Self {
        let n = config.protected.len();
        let mut protected = config.protected.clone();
        if let Some(reg) = regulation {
            for (p, class) in protected.iter_mut().zip(&reg.classes) {
                *p |= class.rt;
            }
        }
        let (period, tokens, margin) = config
            .throttle
            .as_ref()
            .map_or((0, 0, 1.0), |t| (t.period, t.tokens, t.margin));
        let (window, occ_enter, occ_exit, nack_enter, nack_exit) =
            config.shed.as_ref().map_or((0, 0, 0, 0, 0), |s| {
                (
                    s.window,
                    s.occupancy_enter,
                    s.occupancy_exit,
                    s.nack_enter,
                    s.nack_exit,
                )
            });
        OverloadState {
            period,
            tokens,
            margin,
            window,
            occ_enter,
            occ_exit,
            nack_enter,
            nack_exit,
            protected,
            hog: vec![false; n],
            used: vec![0; n],
            next_replenish: if period == 0 { u64::MAX } else { period },
            level: SaturationLevel::Normal,
            window_nacks: 0,
            next_window: if window == 0 { u64::MAX } else { window },
            throttled: 0,
            shed: 0,
        }
    }

    /// Cycle of the next throttle replenish boundary (`u64::MAX` when
    /// the throttle is disabled). Feeds `next_event_cycle`: fast-forward
    /// must step the boundary so hog reclassification reads the
    /// estimator exactly there.
    pub fn next_replenish(&self) -> u64 {
        self.next_replenish
    }

    /// Cycle of the next shed-detector evaluation (`u64::MAX` when
    /// shedding is disabled). Also feeds `next_event_cycle`.
    pub fn next_window(&self) -> u64 {
        self.next_window
    }

    /// Current saturation level.
    pub fn level(&self) -> SaturationLevel {
        self.level
    }

    /// Whether `thread` is currently classified a bandwidth hog.
    pub fn is_hog(&self, thread: u32) -> bool {
        self.hog[thread as usize]
    }

    /// Whether `thread` is exempt from throttling and shedding.
    pub fn is_protected(&self, thread: u32) -> bool {
        self.protected[thread as usize]
    }

    /// Total throttle refusals issued so far.
    pub fn total_throttled(&self) -> u64 {
        self.throttled
    }

    /// Total requests shed so far.
    pub fn total_shed(&self) -> u64 {
        self.shed
    }

    /// Advances the throttle clock to `now`: at an elapsed boundary,
    /// refills every bucket and reclassifies hogs from the estimator.
    /// Idempotent for a fixed `now`; no-op while the boundary is ahead.
    pub fn maybe_replenish(&mut self, now: u64, est: &SlowdownEstimator) {
        if now < self.next_replenish {
            return;
        }
        // Lazy jump past every elapsed boundary, exactly like the
        // regulator: stepping one period at a time would not terminate
        // for adversarial clocks near `u64::MAX`.
        self.next_replenish = (now / self.period)
            .checked_add(1)
            .and_then(|n| n.checked_mul(self.period))
            .unwrap_or(u64::MAX);
        self.used.fill(0);
        let max = est.max_slowdown();
        for t in 0..self.hog.len() {
            self.hog[t] = !self.protected[t] && max >= self.margin * est.slowdown(t as u32);
        }
    }

    /// Throttle gate for one submission attempt: `Some(nack)` when
    /// `thread` is a hog with no tokens left, carrying the cycles until
    /// the next replenish (at least 1). Does not consume.
    pub fn throttle_check(&self, thread: u32, now: u64) -> Option<Nack> {
        let t = thread as usize;
        if self.hog[t] && self.used[t] >= self.tokens {
            let retry_after = self.next_replenish.saturating_sub(now).max(1);
            return Some(Nack::Throttled { retry_after });
        }
        None
    }

    /// Shed gate for one submission attempt: `Some(nack)` when the
    /// current saturation level drops this request's class.
    pub fn shed_check(&self, thread: u32, is_write: bool) -> Option<Nack> {
        if self.protected[thread as usize] {
            return None;
        }
        match self.level {
            SaturationLevel::Normal => None,
            SaturationLevel::Degraded => is_write.then_some(Nack::Shed {
                class: ShedClass::BestEffortWrite,
            }),
            SaturationLevel::Shedding => Some(Nack::Shed {
                class: ShedClass::BestEffort,
            }),
        }
    }

    /// Records one successful admission: hogs consume a token, everyone
    /// else passes freely.
    pub fn consume(&mut self, thread: u32) {
        let t = thread as usize;
        if self.hog[t] {
            self.used[t] = self.used[t].saturating_add(1);
        }
    }

    /// Counts one throttle refusal (issued by the caller).
    pub fn note_throttled(&mut self) {
        self.throttled = self.throttled.saturating_add(1);
    }

    /// Counts one shed request (dropped by the caller).
    pub fn note_shed(&mut self) {
        self.shed = self.shed.saturating_add(1);
    }

    /// Counts one buffer-full NACK toward the detector window. Throttle
    /// and shed refusals are deliberately *not* counted (anti-windup).
    pub fn note_buffer_nack(&mut self) {
        self.window_nacks = self.window_nacks.saturating_add(1);
    }

    /// Advances the shed detector to `now`: at an elapsed window
    /// boundary, compares `occupied` transaction entries and the
    /// window's buffer-full NACKs against the hysteresis thresholds and
    /// moves one level along the ladder. Returns the `(from, to)`
    /// transition when the level changed.
    pub fn maybe_evaluate(
        &mut self,
        now: u64,
        occupied: usize,
    ) -> Option<(SaturationLevel, SaturationLevel)> {
        if now < self.next_window {
            return None;
        }
        self.next_window = (now / self.window)
            .checked_add(1)
            .and_then(|n| n.checked_mul(self.window))
            .unwrap_or(u64::MAX);
        let nacks = self.window_nacks;
        self.window_nacks = 0;
        let from = self.level;
        if occupied >= self.occ_enter || nacks >= self.nack_enter {
            self.level = self.level.escalated();
        } else if occupied < self.occ_exit && nacks < self.nack_exit {
            self.level = self.level.de_escalated();
        }
        (self.level != from).then_some((from, self.level))
    }
}

impl Snapshot for OverloadState {
    fn save(&self, w: &mut SectionWriter) {
        w.put_u64(self.period);
        w.put_u64(self.tokens);
        w.put_f64(self.margin);
        w.put_u64(self.window);
        w.put_usize(self.occ_enter);
        w.put_usize(self.occ_exit);
        w.put_u64(self.nack_enter);
        w.put_u64(self.nack_exit);
        w.put_seq_len(self.protected.len());
        for t in 0..self.protected.len() {
            w.put_bool(self.protected[t]);
            w.put_bool(self.hog[t]);
            w.put_u64(self.used[t]);
        }
        w.put_u64(self.next_replenish);
        w.put_u8(self.level.as_u8());
        w.put_u64(self.window_nacks);
        w.put_u64(self.next_window);
        w.put_u64(self.throttled);
        w.put_u64(self.shed);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let period = r.get_u64()?;
        let tokens = r.get_u64()?;
        let margin = r.get_f64()?;
        if period != self.period
            || tokens != self.tokens
            || margin.to_bits() != self.margin.to_bits()
        {
            return Err(r.malformed(format!(
                "overload throttle knobs {period}/{tokens}/{margin} disagree with config \
                 {}/{}/{}",
                self.period, self.tokens, self.margin
            )));
        }
        let window = r.get_u64()?;
        let occ_enter = r.get_usize()?;
        let occ_exit = r.get_usize()?;
        let nack_enter = r.get_u64()?;
        let nack_exit = r.get_u64()?;
        if window != self.window
            || occ_enter != self.occ_enter
            || occ_exit != self.occ_exit
            || nack_enter != self.nack_enter
            || nack_exit != self.nack_exit
        {
            return Err(r.malformed("overload shed knobs disagree with config".to_string()));
        }
        let n = r.seq_len()?;
        if n != self.protected.len() {
            return Err(r.malformed(format!(
                "overload state for {n} threads, controller has {}",
                self.protected.len()
            )));
        }
        for t in 0..n {
            let protected = r.get_bool()?;
            if protected != self.protected[t] {
                return Err(r.malformed(format!(
                    "overload protection flag for thread {t} disagrees with config"
                )));
            }
            self.hog[t] = r.get_bool()?;
            self.used[t] = r.get_u64()?;
        }
        self.next_replenish = r.get_u64()?;
        let level = r.get_u8()?;
        self.level = SaturationLevel::from_u8(level)
            .ok_or_else(|| r.malformed(format!("saturation level {level} out of range")))?;
        self.window_nacks = r.get_u64()?;
        self.next_window = r.get_u64()?;
        self.throttled = r.get_u64()?;
        self.shed = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OverloadConfig;

    fn throttle_only(n: usize, period: u64, tokens: u64, margin: f64) -> OverloadState {
        OverloadState::new(
            &OverloadConfig::new(n).throttled(period, tokens, margin),
            None,
        )
    }

    fn shed_only(n: usize) -> OverloadState {
        // Window 100; escalate at 8 occupied or 10 NACKs; exit below 4/2.
        OverloadState::new(&OverloadConfig::new(n).shedding(100, 8, 4, 10, 2), None)
    }

    /// A two-thread estimator where thread 1 is slowed 4x and thread 0
    /// runs at its alone speed (the classic hog/victim shape).
    fn skewed_estimator() -> SlowdownEstimator {
        let mut est = SlowdownEstimator::new(2);
        est.record(0, 100, 100); // slowdown 1.0 (the hog)
        est.record(1, 100, 400); // slowdown 4.0 (the victim)
        est
    }

    #[test]
    fn hog_classification_gates_tokens_and_replenish_restores() {
        let mut ov = throttle_only(2, 100, 2, 2.0);
        let est = skewed_estimator();
        // Before the first boundary nothing is classified.
        assert!(ov.throttle_check(0, 10).is_none());
        ov.maybe_replenish(100, &est);
        assert!(ov.is_hog(0), "alone-speed thread not classified a hog");
        assert!(!ov.is_hog(1), "victim misclassified");
        // Two tokens pass, the third is gated until the next boundary.
        ov.consume(0);
        ov.consume(0);
        match ov.throttle_check(0, 150) {
            Some(Nack::Throttled { retry_after }) => assert_eq!(retry_after, 50),
            other => panic!("expected Throttled, got {other:?}"),
        }
        assert!(ov.throttle_check(1, 150).is_none(), "victim gated");
        ov.maybe_replenish(200, &est);
        assert!(ov.throttle_check(0, 200).is_none(), "replenish failed");
        assert_eq!(ov.next_replenish(), 300);
    }

    #[test]
    fn protected_and_balanced_threads_are_never_hogs() {
        let cfg = OverloadConfig::new(2).throttled(100, 0, 2.0).protect(0);
        let mut ov = OverloadState::new(&cfg, None);
        ov.maybe_replenish(100, &skewed_estimator());
        assert!(!ov.is_hog(0), "protected thread classified a hog");
        // A balanced system (all slowdowns equal) classifies nobody.
        let mut even = throttle_only(2, 100, 0, 2.0);
        let mut est = SlowdownEstimator::new(2);
        est.record(0, 100, 300);
        est.record(1, 100, 300);
        even.maybe_replenish(100, &est);
        assert!(!even.is_hog(0) && !even.is_hog(1));
    }

    #[test]
    fn regulation_rt_classes_are_implicitly_protected() {
        let reg = RegulationConfig::new(1_000).rt_class(4, None).best_effort();
        let cfg = OverloadConfig::new(2).throttled(100, 0, 2.0);
        let mut ov = OverloadState::new(&cfg, Some(&reg));
        assert!(ov.is_protected(0), "rt class not folded into protection");
        assert!(!ov.is_protected(1));
        ov.maybe_replenish(100, &skewed_estimator());
        assert!(!ov.is_hog(0));
        assert!(ov.shed_check(0, true).is_none());
    }

    #[test]
    fn hysteresis_ladder_escalates_and_exits_one_level_per_window() {
        let mut ov = shed_only(1);
        assert_eq!(ov.level(), SaturationLevel::Normal);
        // Occupancy pressure: one level per boundary, not a jump.
        assert_eq!(
            ov.maybe_evaluate(100, 9),
            Some((SaturationLevel::Normal, SaturationLevel::Degraded))
        );
        assert_eq!(
            ov.maybe_evaluate(200, 9),
            Some((SaturationLevel::Degraded, SaturationLevel::Shedding))
        );
        assert_eq!(ov.maybe_evaluate(300, 9), None, "ladder has a top");
        // Between thresholds (exit <= occupied < enter): hold, no flap.
        assert_eq!(ov.maybe_evaluate(400, 5), None);
        assert_eq!(ov.level(), SaturationLevel::Shedding);
        // Below the exit threshold: one level back per boundary.
        assert_eq!(
            ov.maybe_evaluate(500, 0),
            Some((SaturationLevel::Shedding, SaturationLevel::Degraded))
        );
        assert_eq!(
            ov.maybe_evaluate(600, 0),
            Some((SaturationLevel::Degraded, SaturationLevel::Normal))
        );
        assert_eq!(ov.maybe_evaluate(700, 0), None, "ladder has a floor");
    }

    #[test]
    fn nack_rate_feeds_the_detector_and_resets_each_window() {
        let mut ov = shed_only(1);
        for _ in 0..10 {
            ov.note_buffer_nack();
        }
        assert_eq!(
            ov.maybe_evaluate(100, 0),
            Some((SaturationLevel::Normal, SaturationLevel::Degraded))
        );
        // The counter reset at the boundary; low occupancy + quiet window
        // de-escalates immediately.
        assert_eq!(
            ov.maybe_evaluate(200, 0),
            Some((SaturationLevel::Degraded, SaturationLevel::Normal))
        );
    }

    #[test]
    fn shed_tiers_follow_class_and_protection() {
        let cfg = OverloadConfig::new(2).shedding(100, 8, 4, 10, 2).protect(1);
        let mut ov = OverloadState::new(&cfg, None);
        assert!(ov.shed_check(0, true).is_none(), "Normal sheds nothing");
        ov.maybe_evaluate(100, 9);
        assert_eq!(
            ov.shed_check(0, true),
            Some(Nack::Shed {
                class: ShedClass::BestEffortWrite
            }),
            "Degraded must shed best-effort writes"
        );
        assert!(ov.shed_check(0, false).is_none(), "Degraded shed a read");
        ov.maybe_evaluate(200, 9);
        assert_eq!(
            ov.shed_check(0, false),
            Some(Nack::Shed {
                class: ShedClass::BestEffort
            }),
            "Shedding must shed best-effort reads too"
        );
        assert!(ov.shed_check(1, true).is_none(), "protected thread shed");
    }

    #[test]
    fn boundary_clocks_saturate_instead_of_wrapping() {
        let mut ov = throttle_only(1, 1 << 62, 1, 2.0);
        ov.maybe_replenish(u64::MAX - 1, &SlowdownEstimator::new(1));
        assert_eq!(ov.next_replenish(), u64::MAX);
        let mut shed = shed_only(1);
        // Window 100 divides u64::MAX-ish clocks without overflow.
        shed.maybe_evaluate(u64::MAX - 1, 0);
        assert_eq!(shed.next_window(), u64::MAX);
    }

    #[test]
    fn snapshot_round_trips_and_validates_knobs() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let cfg = OverloadConfig::new(2)
            .throttled(100, 2, 2.0)
            .shedding(50, 8, 4, 10, 2)
            .protect(1);
        let mut a = OverloadState::new(&cfg, None);
        a.maybe_replenish(100, &skewed_estimator());
        a.consume(0);
        a.note_buffer_nack();
        a.note_throttled();
        a.note_shed();
        a.maybe_evaluate(100, 9);
        let mut w = SnapshotWriter::new(7);
        w.section("overload", |s| a.save(s));
        let bytes = w.into_bytes();
        let mut b = OverloadState::new(&cfg, None);
        let mut r = SnapshotReader::new(&bytes, 7).unwrap();
        r.section("overload", |s| b.restore(s)).unwrap();
        assert_eq!(a, b);
        // A different margin is a knob mismatch, not silent adoption.
        let other = OverloadConfig::new(2)
            .throttled(100, 2, 3.0)
            .shedding(50, 8, 4, 10, 2)
            .protect(1);
        let mut c = OverloadState::new(&other, None);
        let mut r = SnapshotReader::new(&bytes, 7).unwrap();
        assert!(r.section("overload", |s| c.restore(s)).is_err());
    }
}
