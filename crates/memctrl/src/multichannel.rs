//! Multi-channel memory systems — the paper's stated future work ("In
//! this work we focus on single channel memory systems and leave
//! multi-channel memory systems for future work").
//!
//! The natural extension of the VTMS model to `N` channels keeps one
//! virtual channel resource per physical channel: each channel gets its
//! own bank/channel schedulers and its own per-thread VTMS registers, and
//! physical addresses are interleaved across channels at cache-line
//! granularity. [`MultiChannelController`] composes `N` independent
//! [`MemoryController`]s accordingly:
//!
//! * line-interleaved routing — line `L` goes to channel `L mod N`, so a
//!   sequential stream spreads across all channels,
//! * per-thread buffers are partitioned per channel (each channel's
//!   controller keeps the paper's per-thread partition; total buffering
//!   scales with the channel count, as it would in hardware),
//! * statistics aggregate across channels.

use crate::buffers::Nack;
use crate::config::McConfig;
use crate::controller::{Completion, MemoryController};
use crate::request::{RequestId, RequestKind, ThreadId};
use crate::stats::ThreadStats;
use fqms_dram::device::Geometry;
use fqms_dram::timing::TimingParams;
use fqms_obs::{EventRing, MetricsSink, NullObserver, TracingObserver};
use fqms_sim::clock::{DramCycle, NextEvent};
use fqms_sim::fault::FaultPlan;
use fqms_sim::snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotError};

/// A memory system with `N` line-interleaved channels, each with its own
/// scheduler and VTMS state.
///
/// # Example
///
/// ```
/// use fqms_memctrl::multichannel::MultiChannelController;
/// use fqms_memctrl::prelude::*;
/// use fqms_dram::prelude::*;
/// use fqms_sim::clock::DramCycle;
///
/// let cfg = McConfig::paper(2, SchedulerKind::FqVftf);
/// let mut mc = MultiChannelController::new(
///     2, cfg, Geometry::paper(), TimingParams::ddr2_800(),
/// ).unwrap();
/// mc.try_submit(ThreadId::new(0), RequestKind::Read, 0x0, DramCycle::new(0)).unwrap();
/// mc.try_submit(ThreadId::new(0), RequestKind::Read, 0x40, DramCycle::new(0)).unwrap();
/// let mut done = 0;
/// for c in 1..200u64 {
///     done += mc.step(DramCycle::new(c)).len();
/// }
/// assert_eq!(done, 2);
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelController {
    channels: Vec<MemoryController>,
    line_bytes: u64,
    /// One observer per channel when observation is enabled (index-aligned
    /// with `channels`); empty ⇒ unobserved, zero-overhead dispatch.
    observers: Vec<TracingObserver>,
}

impl MultiChannelController {
    /// Builds a controller with `num_channels` identical channels.
    ///
    /// # Errors
    ///
    /// Returns a description if `num_channels` is zero or the underlying
    /// configuration is invalid.
    pub fn new(
        num_channels: usize,
        config: McConfig,
        geometry: Geometry,
        timing: TimingParams,
    ) -> Result<Self, String> {
        if num_channels == 0 {
            return Err("at least one channel is required".into());
        }
        let line_bytes = config.line_bytes;
        let mut channels = (0..num_channels)
            .map(|_| MemoryController::new(config.clone(), geometry, timing))
            .collect::<Result<Vec<_>, _>>()?;
        for (i, ch) in channels.iter_mut().enumerate() {
            // Disjoint request-id spaces keep ids unique system-wide.
            ch.set_id_numbering(i as u64, num_channels as u64);
        }
        Ok(MultiChannelController {
            channels,
            line_bytes,
            observers: Vec::new(),
        })
    }

    /// Attaches a [`TracingObserver`] to every channel, each retaining up
    /// to `event_capacity` events. Until this is called, submission and
    /// stepping dispatch through the no-op observer and compile to the
    /// unobserved code (zero overhead).
    pub fn enable_observation(&mut self, event_capacity: usize) {
        let threads = self.channels[0].config().num_threads();
        self.observers = (0..self.channels.len())
            .map(|_| TracingObserver::new(event_capacity, threads))
            .collect();
    }

    /// True if [`MultiChannelController::enable_observation`] was called.
    pub fn is_observed(&self) -> bool {
        !self.observers.is_empty()
    }

    /// One channel's retained event stream (None when unobserved).
    pub fn event_stream(&self, channel: usize) -> Option<&EventRing> {
        self.observers.get(channel).map(TracingObserver::events)
    }

    /// Metrics merged across channels in channel-index order (None when
    /// unobserved). The merge order is fixed, so the result is
    /// deterministic and matches the sharded engine's merge.
    pub fn merged_metrics(&self) -> Option<MetricsSink> {
        if self.observers.is_empty() {
            return None;
        }
        let mut merged = MetricsSink::new(self.channels[0].config().num_threads());
        for obs in &self.observers {
            merged.merge(obs.metrics());
        }
        Some(merged)
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// One channel's controller (for inspection).
    pub fn channel(&self, idx: usize) -> &MemoryController {
        &self.channels[idx]
    }

    /// The channel a physical address routes to (line interleaving).
    pub fn route(&self, phys: u64) -> usize {
        ((phys / self.line_bytes) % self.channels.len() as u64) as usize
    }

    /// Routes and localizes a physical address: the channel it belongs to
    /// and the dense channel-local address (channel bits stripped). This
    /// is the exact math [`MultiChannelController::try_submit`] applies,
    /// exposed so sharded engines can pre-route submission schedules.
    pub fn localize(line_bytes: u64, num_channels: usize, phys: u64) -> (usize, u64) {
        let line = phys / line_bytes;
        let ch = (line % num_channels as u64) as usize;
        let local = (line / num_channels as u64) * line_bytes + phys % line_bytes;
        (ch, local)
    }

    /// Attaches a deterministic fault plan, salted per channel so channels
    /// draw independent episode timelines from the same plan (matching the
    /// sharded engine's per-channel salting). Must be called before the
    /// first step; an empty plan leaves every channel unfaulted.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for (ch, mc) in self.channels.iter_mut().enumerate() {
            mc.set_fault_plan(&plan.salted(ch as u64));
        }
    }

    /// Enables command-trace logging on every channel, each retaining the
    /// most recent `capacity` issued commands.
    pub fn enable_command_log(&mut self, capacity: usize) {
        for ch in &mut self.channels {
            ch.enable_command_log(capacity);
        }
    }

    /// Decomposes the controller into its per-channel controllers (in
    /// channel order), e.g. to shard them across worker threads.
    pub fn into_channels(self) -> Vec<MemoryController> {
        self.channels
    }

    /// True if the routing channel would admit this request.
    pub fn can_accept(&self, thread: ThreadId, kind: RequestKind, phys: u64) -> bool {
        self.channels[self.route(phys)].can_accept(thread, kind)
    }

    /// Submits a request to its channel.
    ///
    /// # Errors
    ///
    /// Returns the channel's [`Nack`] when that channel's per-thread
    /// partition is full.
    pub fn try_submit(
        &mut self,
        thread: ThreadId,
        kind: RequestKind,
        phys: u64,
        now: DramCycle,
    ) -> Result<RequestId, Nack> {
        // Strip the channel bits so each channel sees a dense address
        // space (otherwise only 1/N of each channel's rows are used).
        let (ch, local) = Self::localize(self.line_bytes, self.channels.len(), phys);
        match self.observers.get_mut(ch) {
            Some(obs) => self.channels[ch].try_submit_observed(thread, kind, local, now, obs),
            None => self.channels[ch].try_submit(thread, kind, local, now),
        }
    }

    /// Advances every channel by one DRAM cycle (channels are independent
    /// resources and may each issue one command per cycle).
    pub fn step(&mut self, now: DramCycle) -> Vec<Completion> {
        let mut out = Vec::new();
        if self.observers.is_empty() {
            for ch in &mut self.channels {
                out.extend(ch.step(now));
            }
        } else {
            for (ch, obs) in self.channels.iter_mut().zip(&mut self.observers) {
                out.extend(ch.step_observed(now, obs));
            }
        }
        out
    }

    /// Allocation-free [`MultiChannelController::step`]: appends every
    /// channel's completions (in channel order) to `out`.
    pub fn step_into(&mut self, now: DramCycle, out: &mut Vec<Completion>) {
        if self.observers.is_empty() {
            for ch in &mut self.channels {
                ch.step_into(now, out, &mut NullObserver);
            }
        } else {
            for (ch, obs) in self.channels.iter_mut().zip(&mut self.observers) {
                ch.step_into(now, out, obs);
            }
        }
    }

    /// Earliest strictly-future cycle at which *any* channel has a
    /// scheduled event (see [`MemoryController::next_event_cycle`]).
    pub fn next_event_cycle(&self, now: DramCycle) -> DramCycle {
        let mut ev = NextEvent::after(now);
        for ch in &self.channels {
            ev.consider(ch.next_event_cycle(now));
        }
        ev.earliest()
    }

    /// Advances every channel from cycle `from` (exclusive) to `to`
    /// (inclusive) with event-driven fast-forward, channel by channel.
    ///
    /// Only sound when no submissions occur inside the window (the caller
    /// knows its next arrival, exactly like the sharded engine). Each
    /// channel's completions land in `out` grouped by channel rather than
    /// interleaved by cycle — callers that need cycle-interleaved order
    /// must use [`MultiChannelController::step_into`] per cycle.
    pub fn tick_until(&mut self, from: DramCycle, to: DramCycle, out: &mut Vec<Completion>) {
        if self.observers.is_empty() {
            for ch in &mut self.channels {
                ch.tick_until(from, to, out);
            }
        } else {
            for (ch, obs) in self.channels.iter_mut().zip(&mut self.observers) {
                ch.tick_until_observed(from, to, out, obs);
            }
        }
    }

    /// Controller cycles actually simulated, summed over channels.
    pub fn stepped_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.stepped_cycles()).sum()
    }

    /// Cycles fast-forwarded without simulation, summed over channels.
    pub fn skipped_cycles(&self) -> u64 {
        self.channels.iter().map(|c| c.skipped_cycles()).sum()
    }

    /// Finalizes utilization statistics on every channel.
    pub fn finish(&mut self, now: DramCycle) {
        for ch in &mut self.channels {
            ch.finish(now);
        }
    }

    /// Total pending requests across channels.
    pub fn pending_requests(&self) -> usize {
        self.channels.iter().map(|c| c.pending_requests()).sum()
    }

    /// True if no channel holds work.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    /// Aggregate data-bus busy cycles (sum over channels; divide by
    /// `num_channels * elapsed` for mean utilization).
    pub fn bus_busy_cycles(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.dram().bus_busy_cycles())
            .sum()
    }

    /// Aggregate bank-busy cycles (sum over channels and banks).
    pub fn bank_busy_cycles(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.dram().bank_busy_cycles())
            .sum()
    }

    /// Total banks across all channels (bank-utilization denominator).
    pub fn total_banks(&self) -> u32 {
        self.channels
            .iter()
            .map(|c| c.dram().geometry().total_banks())
            .sum()
    }

    /// One thread's statistics summed over channels.
    pub fn thread_stats(&self, thread: ThreadId) -> ThreadStats {
        let mut agg = ThreadStats::default();
        for ch in &self.channels {
            let s = ch.stats().thread(thread);
            agg.reads_accepted += s.reads_accepted;
            agg.writes_accepted += s.writes_accepted;
            agg.reads_completed += s.reads_completed;
            agg.writes_completed += s.writes_completed;
            agg.read_latency_total += s.read_latency_total;
            agg.bus_busy_cycles += s.bus_busy_cycles;
            agg.nacks += s.nacks;
            agg.row_hits += s.row_hits;
            agg.row_closed += s.row_closed;
            agg.row_conflicts += s.row_conflicts;
            agg.requests_dropped += s.requests_dropped;
            agg.starvations += s.starvations;
        }
        agg
    }

    /// Zeroes measurement counters on every channel (warmup exclusion).
    /// Observers, when attached, are reset with the stats so events and
    /// metrics cover the measurement window only.
    pub fn reset_stats(&mut self, now: DramCycle) {
        for ch in &mut self.channels {
            ch.reset_stats(now);
        }
        for obs in &mut self.observers {
            obs.reset();
        }
    }
}

/// Channel count and observation attachment are configuration (validated);
/// each channel's controller and observer state delegate to their own
/// [`Snapshot`] impls.
impl Snapshot for MultiChannelController {
    fn save(&self, w: &mut SectionWriter) {
        w.put_seq_len(self.channels.len());
        for ch in &self.channels {
            ch.save(w);
        }
        w.put_bool(!self.observers.is_empty());
        for obs in &self.observers {
            obs.save(w);
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SnapshotError> {
        let n = r.seq_len()?;
        if n != self.channels.len() {
            return Err(r.malformed(format!(
                "snapshot has {n} channels, controller has {}",
                self.channels.len()
            )));
        }
        for ch in &mut self.channels {
            ch.restore(r)?;
        }
        let observed = r.get_bool()?;
        if observed == self.observers.is_empty() {
            return Err(r.malformed(
                "snapshot and controller disagree on observation attachment".to_string(),
            ));
        }
        for obs in &mut self.observers {
            obs.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SchedulerKind;
    use fqms_sim::fault::{FaultKind, FaultWindow};
    use fqms_sim::rng::SimRng;

    fn mc(channels: usize) -> MultiChannelController {
        MultiChannelController::new(
            channels,
            McConfig::paper(2, SchedulerKind::FqVftf),
            Geometry::paper(),
            TimingParams::ddr2_800(),
        )
        .unwrap()
    }

    #[test]
    fn zero_channels_rejected() {
        assert!(MultiChannelController::new(
            0,
            McConfig::paper(1, SchedulerKind::FrFcfs),
            Geometry::paper(),
            TimingParams::ddr2_800(),
        )
        .is_err());
    }

    #[test]
    fn line_interleaving_routes_round_robin() {
        let m = mc(2);
        assert_eq!(m.route(0), 0);
        assert_eq!(m.route(64), 1);
        assert_eq!(m.route(128), 0);
        assert_eq!(m.route(65), 1); // same line, same channel
    }

    #[test]
    fn sequential_stream_uses_both_channels() {
        let mut m = mc(2);
        let t = ThreadId::new(0);
        for i in 0..8 {
            m.try_submit(t, RequestKind::Read, i * 64, DramCycle::new(0))
                .unwrap();
        }
        let mut done = 0;
        let mut c = 0;
        while !m.is_idle() {
            c += 1;
            done += m.step(DramCycle::new(c)).len();
            assert!(c < 10_000);
        }
        assert_eq!(done, 8);
        // Both channels saw traffic.
        assert!(m.channel(0).dram().bus_busy_cycles() > 0);
        assert!(m.channel(1).dram().bus_busy_cycles() > 0);
    }

    #[test]
    fn two_channels_double_peak_bandwidth() {
        // Saturating independent reads: two channels should complete
        // roughly twice the requests of one channel in the same window.
        let drive = |channels: usize| {
            let mut m = mc(channels);
            let mut rng = SimRng::new(5);
            let t = ThreadId::new(0);
            let mut done = 0usize;
            for c in 1..=20_000u64 {
                let now = DramCycle::new(c);
                for _ in 0..4 {
                    let phys = rng.next_below(1 << 22) * 64;
                    if m.can_accept(t, RequestKind::Read, phys) {
                        let _ = m.try_submit(t, RequestKind::Read, phys, now);
                    }
                }
                done += m.step(now).len();
            }
            done
        };
        let one = drive(1);
        let two = drive(2);
        assert!(
            two as f64 > 1.6 * one as f64,
            "2 channels completed {two} vs {one} on one channel"
        );
    }

    #[test]
    fn per_channel_vtms_is_independent() {
        let mut m = mc(2);
        let t = ThreadId::new(0);
        // Lines 0, 2, 4... all route to channel 0.
        for i in 0..4u64 {
            m.try_submit(t, RequestKind::Read, i * 128, DramCycle::new(0))
                .unwrap();
        }
        let mut c = 0;
        while !m.is_idle() {
            c += 1;
            m.step(DramCycle::new(c));
        }
        assert!(m.channel(0).vtms(t).channel_reg() > 0.0);
        assert_eq!(m.channel(1).vtms(t).channel_reg(), 0.0);
    }

    #[test]
    fn aggregate_stats_sum_over_channels() {
        let mut m = mc(2);
        let t = ThreadId::new(0);
        for i in 0..8u64 {
            m.try_submit(t, RequestKind::Read, i * 64, DramCycle::new(0))
                .unwrap();
        }
        let mut c = 0;
        while !m.is_idle() {
            c += 1;
            m.step(DramCycle::new(c));
        }
        m.finish(DramCycle::new(c));
        let agg = m.thread_stats(t);
        assert_eq!(agg.reads_completed, 8);
        // Per-channel stats sum to the aggregate.
        let sum: u64 = (0..2)
            .map(|ch| m.channel(ch).stats().thread(t).reads_completed)
            .sum();
        assert_eq!(sum, 8);
        assert_eq!(agg.bus_busy_cycles, m.bus_busy_cycles());
        assert_eq!(m.total_banks(), 16);
        assert!(m.bank_busy_cycles() > 0);
    }

    #[test]
    fn reset_stats_zeroes_all_channels() {
        let mut m = mc(2);
        let t = ThreadId::new(0);
        for i in 0..4u64 {
            m.try_submit(t, RequestKind::Read, i * 64, DramCycle::new(0))
                .unwrap();
        }
        let mut c = 0;
        while !m.is_idle() {
            c += 1;
            m.step(DramCycle::new(c));
        }
        m.reset_stats(DramCycle::new(c));
        assert_eq!(m.thread_stats(t).reads_completed, 0);
        assert_eq!(m.bus_busy_cycles(), 0);
    }

    #[test]
    fn observation_is_passive_and_consistent() {
        let drive = |observe: bool| {
            let mut m = mc(2);
            if observe {
                m.enable_observation(1 << 16);
            }
            let t = ThreadId::new(0);
            let mut rng = SimRng::new(23);
            let mut done = Vec::new();
            for c in 1..=3_000u64 {
                let now = DramCycle::new(c);
                if rng.chance(0.4) {
                    let kind = if rng.chance(0.3) {
                        RequestKind::Write
                    } else {
                        RequestKind::Read
                    };
                    let _ = m.try_submit(t, kind, rng.next_below(1 << 18) * 64, now);
                }
                done.extend(m.step(now));
            }
            (m, done)
        };
        let (plain, plain_done) = drive(false);
        let (observed, observed_done) = drive(true);
        // Observation never perturbs the simulation.
        assert_eq!(plain_done, observed_done);
        assert_eq!(
            plain.thread_stats(ThreadId::new(0)),
            observed.thread_stats(ThreadId::new(0))
        );
        assert!(plain.merged_metrics().is_none());
        assert!(plain.event_stream(0).is_none());
        // Observed metrics agree with the controller's own stats.
        let metrics = observed.merged_metrics().unwrap();
        let stats = observed.thread_stats(ThreadId::new(0));
        let sink = metrics.thread(0);
        assert_eq!(sink.reads_completed, stats.reads_completed);
        assert_eq!(sink.writes_completed, stats.writes_completed);
        assert_eq!(sink.nacks, stats.nacks);
        assert!(observed.event_stream(0).unwrap().total_recorded() > 0);
        assert!(observed.event_stream(1).unwrap().total_recorded() > 0);
    }

    #[test]
    fn reset_stats_clears_observers() {
        let mut m = mc(2);
        m.enable_observation(1 << 12);
        let t = ThreadId::new(0);
        for i in 0..4u64 {
            m.try_submit(t, RequestKind::Read, i * 64, DramCycle::new(0))
                .unwrap();
        }
        let mut c = 0;
        while !m.is_idle() {
            c += 1;
            m.step(DramCycle::new(c));
        }
        assert!(m.merged_metrics().unwrap().thread(0).reads_completed > 0);
        m.reset_stats(DramCycle::new(c));
        assert_eq!(m.merged_metrics().unwrap().thread(0).reads_completed, 0);
        assert!(m.event_stream(0).unwrap().is_empty());
    }

    #[test]
    fn snapshot_mid_run_resumes_bit_identical() {
        use fqms_sim::snapshot::{SnapshotReader, SnapshotWriter};
        let build = || {
            let mut m = mc(2);
            m.enable_observation(1 << 12);
            m.enable_command_log(64);
            m.set_fault_plan(
                &FaultPlan::new(99)
                    .with(FaultKind::NackStorm, FaultWindow::new(100, 3_500), 0.01, 40)
                    .with(
                        FaultKind::BankStall,
                        FaultWindow::new(500, 3_000),
                        0.005,
                        60,
                    ),
            );
            m
        };
        let drive = |m: &mut MultiChannelController,
                     rng: &mut SimRng,
                     from: u64,
                     to: u64,
                     done: &mut Vec<Completion>| {
            for c in (from + 1)..=to {
                let now = DramCycle::new(c);
                if rng.chance(0.4) {
                    let t = ThreadId::new(rng.next_below(2) as u32);
                    let kind = if rng.chance(0.3) {
                        RequestKind::Write
                    } else {
                        RequestKind::Read
                    };
                    let _ = m.try_submit(t, kind, rng.next_below(1 << 18) * 64, now);
                }
                done.extend(m.step(now));
            }
        };

        // Uninterrupted reference run.
        let mut reference = build();
        let mut ref_rng = SimRng::new(7);
        let mut ref_done = Vec::new();
        drive(&mut reference, &mut ref_rng, 0, 4_000, &mut ref_done);

        // Interrupted run: snapshot at cycle 2_000, "crash", restore into
        // an identically-built controller, and finish the window.
        let mut first = build();
        let mut rng = SimRng::new(7);
        let mut done = Vec::new();
        drive(&mut first, &mut rng, 0, 2_000, &mut done);
        let mut w = SnapshotWriter::new(9);
        w.section("mc", |s| first.save(s));
        let bytes = w.into_bytes();
        drop(first);

        let mut resumed = build();
        let mut r = SnapshotReader::new(&bytes, 9).unwrap();
        r.section("mc", |s| resumed.restore(s)).unwrap();
        r.finish().unwrap();
        drive(&mut resumed, &mut rng, 2_000, 4_000, &mut done);

        assert_eq!(done, ref_done);
        for t in 0..2u32 {
            assert_eq!(
                resumed.thread_stats(ThreadId::new(t)),
                reference.thread_stats(ThreadId::new(t))
            );
        }
        assert_eq!(resumed.merged_metrics(), reference.merged_metrics());
        for ch in 0..2 {
            let a: Vec<_> = resumed.event_stream(ch).unwrap().iter().collect();
            let b: Vec<_> = reference.event_stream(ch).unwrap().iter().collect();
            assert_eq!(a, b, "channel {ch} event streams diverged");
            assert!(
                resumed
                    .channel(ch)
                    .command_log()
                    .unwrap()
                    .iter()
                    .eq(reference.channel(ch).command_log().unwrap().iter()),
                "channel {ch} command logs diverged"
            );
        }
    }

    #[test]
    fn snapshot_rejects_channel_count_mismatch() {
        use fqms_sim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
        let m2 = mc(2);
        let mut w = SnapshotWriter::new(1);
        w.section("mc", |s| m2.save(s));
        let bytes = w.into_bytes();
        let mut m4 = mc(4);
        let mut r = SnapshotReader::new(&bytes, 1).unwrap();
        let err = r.section("mc", |s| m4.restore(s)).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }

    #[test]
    fn conservation_across_channels() {
        let mut m = mc(4);
        let mut rng = SimRng::new(11);
        let mut submitted = 0usize;
        let mut done = 0usize;
        for c in 1..=5_000u64 {
            let now = DramCycle::new(c);
            if rng.chance(0.5) {
                let t = ThreadId::new(rng.next_below(2) as u32);
                let kind = if rng.chance(0.3) {
                    RequestKind::Write
                } else {
                    RequestKind::Read
                };
                let phys = rng.next_below(1 << 20) * 64;
                if m.try_submit(t, kind, phys, now).is_ok() {
                    submitted += 1;
                }
            }
            done += m.step(now).len();
        }
        let mut c = 5_000u64;
        while !m.is_idle() {
            c += 1;
            done += m.step(DramCycle::new(c)).len();
            assert!(c < 1_000_000);
        }
        assert_eq!(submitted, done);
    }
}
